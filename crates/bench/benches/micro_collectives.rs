//! Criterion microbenchmarks of the collective algorithms: barrier,
//! allreduce, allgather, and both all-to-all variants (real thread-rank
//! execution, including thread spawn cost — compare *between* rows, not
//! against MPI absolute numbers).

use beatnik_comm::{AllToAllAlgo, World};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives_8ranks");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    let p = 8;
    let reps = 20;

    g.bench_function("barrier", |b| {
        b.iter(|| {
            World::builder(p).run(|comm| {
                for _ in 0..reps {
                    comm.barrier();
                }
            })
        })
    });

    g.bench_function("allreduce_f64", |b| {
        b.iter(|| {
            World::builder(p).run(|comm| {
                let mut acc = comm.rank() as f64;
                for _ in 0..reps {
                    acc = comm.allreduce_sum(acc);
                }
                acc
            })
        })
    });

    g.bench_function("allgather_1k", |b| {
        b.iter(|| {
            World::builder(p).run(|comm| {
                for _ in 0..reps {
                    let _ = comm.allgather(&[0u64; 128]);
                }
            })
        })
    });

    for (name, algo) in [
        ("alltoall_pairwise_4k", AllToAllAlgo::Pairwise),
        ("alltoall_direct_4k", AllToAllAlgo::Direct),
        ("alltoall_bruck_4k", AllToAllAlgo::Bruck),
        ("alltoall_adaptive_4k", AllToAllAlgo::Adaptive),
    ] {
        g.bench_with_input(BenchmarkId::new(name, p), &algo, |b, &algo| {
            b.iter(|| {
                World::builder(p).run(move |comm| {
                    for _ in 0..reps {
                        let send = vec![0u64; comm.size() * 64];
                        let _ = comm.alltoall_with(&send, algo);
                    }
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
