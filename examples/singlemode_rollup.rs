//! The paper's Figure-2 workload: the single-mode non-periodic rocket rig
//! on the high-order cutoff solver. As the interface rolls up, points
//! cluster in 3D space and the spatial decomposition develops the load
//! imbalance the paper measures in Figures 6 and 7.
//!
//! Prints the evolving ownership distribution (min/max fraction of points
//! per spatial rank region) and writes VTK snapshots of the rollup.
//!
//! Run with: `cargo run --release --example singlemode_rollup`

use beatnik_comm::World;
use beatnik_core::diagnostics::imbalance;
use beatnik_rocketrig::{run_rig, BenchCase};

fn main() {
    let ranks = 4;
    let steps = 400;
    let mut cfg = BenchCase::CutoffStrong.config(48, steps);
    // Scaled-down single-mode deck: bigger timestep + stronger forcing so
    // the rollup develops within a laptop-sized run.
    cfg.params.dt = 6e-3;
    cfg.params.gravity = 20.0;
    cfg.params.mu = 0.1;
    cfg.params.epsilon = 0.15;
    cfg.params.cutoff = 1.0;
    cfg.record_ownership = true;
    // Bin ownership into 256 virtual spatial regions, as the paper's
    // Figures 6/7 do, regardless of how many ranks actually run.
    cfg.ownership_ranks = Some(256);
    cfg.diag_every = 40;
    cfg.vtk_every = 200;
    cfg.out_dir = std::path::PathBuf::from("target/singlemode-out");

    println!(
        "single-mode open deck, high-order cutoff solver, {0}x{0} mesh, {1} ranks, {2} steps",
        cfg.mesh_n, ranks, steps
    );

    let cfg2 = cfg.clone();
    let (logs, trace) = World::builder(ranks).run_traced(move |comm| run_rig(&comm, &cfg2));
    let log = logs.into_iter().next().unwrap();

    println!(
        "\n{:>6} {:>9} {:>13} {:>11} {:>11} {:>11}",
        "step", "time", "amplitude", "min own%", "max own%", "imbalance"
    );
    for rec in &log.steps {
        let own = rec.ownership.as_ref().unwrap();
        let min = own.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = own.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:>6} {:>9.3} {:>13.4e} {:>10.2}% {:>10.2}% {:>11.3}",
            rec.step,
            rec.time,
            rec.diagnostics.amplitude,
            min * 100.0,
            max * 100.0,
            imbalance(own)
        );
    }

    let first = log.steps.first().unwrap().ownership.as_ref().unwrap();
    let last = log.steps.last().unwrap().ownership.as_ref().unwrap();
    println!(
        "\nimbalance grew from {:.3} to {:.3} as the interface evolved \
         (the Figure 6 -> Figure 7 effect)",
        imbalance(first),
        imbalance(last)
    );
    println!("\ncommunication profile (migration + point halos via alltoallv):");
    println!("{}", trace.summary());
    println!("VTK snapshots written to target/singlemode-out/");
}
