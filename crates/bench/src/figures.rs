//! Series builders for every table and figure in the paper's Section 5.
//! The `benches/` targets print these; the tests here pin their shapes.

use crate::cutoffmodel::CutoffModel;
use crate::lowmodel::LowOrderModel;
use beatnik_comm::World;
use beatnik_core::diagnostics::{imbalance, ownership_fractions};
use beatnik_dfft::FftConfig;
use beatnik_model::{AllToAllCost, Machine, ScalingSeries};
use beatnik_rocketrig::{BenchCase, RigConfig};

/// Table 1: the heFFTe parameter configurations.
pub fn table1_text() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:>13} {:>9} {:>8} {:>8}", "Configuration", "AllToAll", "Pencils", "Reorder");
    for c in FftConfig::table1() {
        let _ = writeln!(
            out,
            "{:>13} {:>9} {:>8} {:>8}",
            c.index(),
            c.all_to_all,
            c.pencils,
            c.reorder
        );
    }
    out
}

/// Map a Table-1 config onto the low-order cost model's knobs.
pub fn low_model_for(machine: &Machine, cfg: FftConfig) -> LowOrderModel {
    let mut m = LowOrderModel::new(machine);
    m.algo = if cfg.all_to_all {
        AllToAllCost::Pairwise
    } else {
        AllToAllCost::Direct
    };
    m.pencils = cfg.pencils;
    m.reorder = cfg.reorder;
    m
}

/// Figure 3: low-order weak scaling, per-step runtime at 4–1024 GPUs.
pub fn fig3_series(machine: &Machine) -> ScalingSeries {
    let model = LowOrderModel::new(machine);
    let mut s = ScalingSeries::new("low-weak (s/step)");
    for p in crate::paper_rank_sweep() {
        s.push(p, model.weak_step_time(p));
    }
    s
}

/// Figure 4: low-order strong scaling of the fixed 4864² mesh.
pub fn fig4_series(machine: &Machine) -> ScalingSeries {
    let model = LowOrderModel::new(machine);
    let mut s = ScalingSeries::new("low-strong (s/step)");
    for p in crate::paper_rank_sweep() {
        s.push(p, model.strong_step_time(p));
    }
    s
}

/// Figure 5: cutoff-solver weak scaling (768² per GPU, cutoff 0.2).
pub fn fig5_series(machine: &Machine) -> ScalingSeries {
    let mut model = CutoffModel::new(machine);
    model.cutoff = 0.2;
    let mut s = ScalingSeries::new("cutoff-weak (s/step)");
    for p in crate::paper_rank_sweep() {
        s.push(p, model.weak_step_time(p));
    }
    s
}

/// Measured structure from a real (scaled-down) single-mode cutoff run:
/// ownership distributions over 256 virtual spatial regions early and
/// late in the run, plus per-rank-count load-imbalance factors.
pub struct SingleModeReference {
    /// Fractions per region at the early measurement (the paper's
    /// timestep-80 analogue: pre-rollup, flat at ~1/256).
    pub early256: Vec<f64>,
    /// Fractions per region at the late measurement (timestep-340
    /// analogue: rollup-driven imbalance).
    pub late256: Vec<f64>,
    /// `(ranks, lambda_early, lambda_late)` with λ = max/mean points per
    /// region when the domain is split over `ranks` regions.
    pub lambda_by_p: Vec<(usize, f64, f64)>,
}

/// Run the scaled single-mode reference simulation (collective work under
/// the hood; call once and share). `mesh_n` ≈ 48 and `late_step` ≈ 240
/// reproduce the paper's distributions at laptop cost.
pub fn singlemode_reference(mesh_n: usize, early_step: usize, late_step: usize) -> SingleModeReference {
    let ranks = 4;
    let sweep = crate::paper_rank_sweep();
    let out = World::builder(ranks).run(move |comm| {
        let mut cfg: RigConfig = BenchCase::CutoffStrong.config(mesh_n, late_step);
        cfg.params.dt = 6e-3;
        cfg.params.gravity = 20.0;
        cfg.params.mu = 0.1;
        cfg.params.epsilon = 0.15;
        cfg.params.cutoff = 1.0;
        cfg.diag_every = 0;

        let mesh = cfg.build_mesh(&comm);
        let bc = cfg.boundary_condition();
        let mut solver = beatnik_core::Solver::new(mesh, bc, cfg.solver_config());

        let measure = |solver: &beatnik_core::Solver| -> (Vec<f64>, Vec<(usize, f64)>) {
            let smesh256 = cfg.spatial_mesh(256);
            let f256 = ownership_fractions(solver.problem(), &smesh256);
            let lambdas = sweep
                .iter()
                .map(|&p| {
                    let sm = cfg.spatial_mesh(p);
                    let f = ownership_fractions(solver.problem(), &sm);
                    (p, imbalance(&f))
                })
                .collect();
            (f256, lambdas)
        };

        for _ in 0..early_step {
            solver.step();
        }
        let (early256, lam_early) = measure(&solver);
        for _ in early_step..late_step {
            solver.step();
        }
        let (late256, lam_late) = measure(&solver);
        (early256, late256, lam_early, lam_late)
    });
    let (early256, late256, lam_early, lam_late) = out.into_iter().next().unwrap();
    let lambda_by_p = lam_early
        .into_iter()
        .zip(lam_late)
        .map(|((p, e), (_, l))| (p, e, l))
        .collect();
    SingleModeReference {
        early256,
        late256,
        lambda_by_p,
    }
}

/// Figure 8: cutoff strong scaling using measured imbalance factors.
pub fn fig8_series(machine: &Machine, reference: &SingleModeReference) -> ScalingSeries {
    let model = CutoffModel::new(machine);
    let mut s = ScalingSeries::new("cutoff-strong (s/step)");
    for &(p, _, lambda_late) in &reference.lambda_by_p {
        if p <= 256 {
            // The paper's Figure 8 sweeps 4-256 GPUs.
            s.push(p, model.strong_step_time(p, lambda_late));
        }
    }
    s
}

/// Figure 9: all eight heFFTe-style configurations weak-scaled.
pub fn fig9_matrix(machine: &Machine) -> Vec<(FftConfig, ScalingSeries)> {
    FftConfig::table1()
        .into_iter()
        .map(|cfg| {
            let model = low_model_for(machine, cfg);
            let mut s = ScalingSeries::new(format!("cfg{}", cfg.index()));
            for p in crate::paper_rank_sweep() {
                s.push(p, model.weak_step_time(p));
            }
            (cfg, s)
        })
        .collect()
}

/// Format an ownership distribution as the paper's Figures 6/7 report it:
/// per-region fractions with min/max/mean annotations.
pub fn ownership_report(title: &str, fractions: &[f64]) -> String {
    use std::fmt::Write as _;
    let n = fractions.len();
    let min = fractions.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = fractions.iter().cloned().fold(0.0f64, f64::max);
    let mean = fractions.iter().sum::<f64>() / n as f64;
    let mut out = String::new();
    let _ = writeln!(out, "{title} ({n} spatial regions)");
    let _ = writeln!(
        out,
        "  min {:.3}%  mean {:.3}%  max {:.3}%  imbalance {:.2}",
        min * 100.0,
        mean * 100.0,
        max * 100.0,
        imbalance(fractions)
    );
    // Histogram of region loads in 10 buckets of max.
    let mut hist = [0usize; 10];
    for &f in fractions {
        let b = if max > 0.0 {
            ((f / max) * 9.999) as usize
        } else {
            0
        };
        hist[b.min(9)] += 1;
    }
    let _ = writeln!(out, "  load histogram (fraction of max -> region count):");
    for (b, count) in hist.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {:>4.0}-{:>3.0}% {:>5} {}",
            b as f64 * 10.0,
            (b + 1) as f64 * 10.0,
            count,
            "#".repeat((count * 60).div_ceil(n.max(1)))
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_eight() {
        let t = table1_text();
        assert_eq!(t.lines().count(), 9);
        assert!(t.contains("AllToAll"));
    }

    #[test]
    fn fig3_grows_with_slope_change() {
        let s = fig3_series(&Machine::lassen());
        assert_eq!(s.points.len(), 9);
        let t8 = s.time_at(8).unwrap();
        let t256 = s.time_at(256).unwrap();
        let t1024 = s.time_at(1024).unwrap();
        assert!(t256 > t8);
        assert!(t1024 > t256);
        // Growth over the off-node range is substantial but bounded.
        let growth = t1024 / t8;
        assert!(growth > 1.3 && growth < 6.0, "growth {growth}");
    }

    #[test]
    fn fig4_turnover_in_paper_range() {
        let s = fig4_series(&Machine::lassen());
        let best = s.best_ranks().unwrap();
        assert!(
            (32..=256).contains(&best),
            "strong-scaling turnover at {best}, paper saw 64"
        );
        let sp = s.time_at(4).unwrap() / s.time_at(64).unwrap();
        assert!(sp > 2.0 && sp < 6.0, "4->64 speedup {sp} (paper: 3.5)");
    }

    #[test]
    fn fig5_is_nearly_flat() {
        let s = fig5_series(&Machine::lassen());
        let growth = s.time_at(1024).unwrap() / s.time_at(4).unwrap();
        assert!(growth > 1.0 && growth < 1.6, "growth {growth} (paper: ~1.2)");
    }

    #[test]
    fn fig9_crossover_between_alltoall_and_custom() {
        // Paper §5.5: custom exchange (AllToAll=false) wins at small rank
        // counts; MPI_Alltoall wins at large counts. Compare matched
        // configs 3 (F,T,T) and 7 (T,T,T).
        let m = fig9_matrix(&Machine::lassen());
        let custom = &m[3].1;
        let alltoall = &m[7].1;
        assert!(
            custom.time_at(8).unwrap() < alltoall.time_at(8).unwrap(),
            "custom exchange should win at 8 ranks"
        );
        assert!(
            alltoall.time_at(1024).unwrap() < custom.time_at(1024).unwrap(),
            "MPI_Alltoall should win at 1024 ranks"
        );
    }

    #[test]
    fn ownership_report_formats() {
        let r = ownership_report("test", &[0.5, 0.25, 0.25, 0.0]);
        assert!(r.contains("max 50.000%"));
        assert!(r.contains("imbalance 2.00"));
        assert!(r.contains("histogram"));
    }
}
