//! Deterministic, seeded fault injection for the message-passing runtime.
//!
//! Large-scale MPI runs die in ways a correctness test suite never
//! exercises: a rank is lost mid-collective, a message stalls in a
//! congested NIC, a packet is dropped. This module injects exactly those
//! three failure modes — **rank death**, **message delay**, and
//! **message drop** — at configured `(rank, op-count)` or `(rank, step)`
//! points, driven by [`beatnik_prng`] so a run with the same
//! [`FaultPlan`] and seed replays *identically*: same op indices, same
//! delays, same telemetry.
//!
//! # Spec grammar
//!
//! A plan is a comma-separated list of actions:
//!
//! ```text
//! kill:r2@step5            kill rank 2 at the start of step 5
//! kill:r2@op100            kill rank 2 on its 100th counted comm op
//! drop:r0@op3              silently drop rank 0's 3rd sent message
//! delay:r1@op10:50ms       delay rank 1's 10th send by ~50ms (seeded jitter)
//! ```
//!
//! Op counts are **send-side**: every `send`, `isend`, and collective
//! fan-out message a rank initiates bumps its counter, so the trigger
//! point is a deterministic function of the program, independent of
//! scheduling. Step triggers (driver-level, via
//! [`crate::Communicator::fault_step`]) are only meaningful for `kill`.
//!
//! The seed comes from `BEATNIK_FAULT_SEED` (see [`seed_from_env`]); each
//! rank derives its own stream as `seed ^ rank`, so delay jitter is
//! deterministic per rank and uncorrelated across ranks.

use crate::error::CommError;
use crate::sync::Mutex;
use beatnik_prng::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Environment variable naming the fault-plan seed.
pub const FAULT_SEED_ENV: &str = "BEATNIK_FAULT_SEED";

/// Default seed when `BEATNIK_FAULT_SEED` is unset.
pub const DEFAULT_FAULT_SEED: u64 = 0xBEA7;

/// Telemetry phase name stamped (as an instant) when a kill fires.
pub const FAULT_KILL_PHASE: &str = "fault-kill";
/// Telemetry phase name stamped when a message is dropped.
pub const FAULT_DROP_PHASE: &str = "fault-drop";
/// Telemetry phase name spanning an injected message delay.
pub const FAULT_DELAY_PHASE: &str = "fault-delay";
/// Telemetry phase name stamped when a communicator is revoked.
pub const REVOKE_PHASE: &str = "revoke";
/// Telemetry phase name stamped when a `shrink` builds a survivor comm.
pub const SHRINK_PHASE: &str = "shrink";
/// Telemetry phase name spanning an app-level recovery epoch
/// (revoke + shrink + checkpoint restore in the driver).
pub const RECOVERY_PHASE: &str = "recovery";

/// Read the fault seed from `BEATNIK_FAULT_SEED`, falling back to
/// [`DEFAULT_FAULT_SEED`].
pub fn seed_from_env() -> u64 {
    std::env::var(FAULT_SEED_ENV)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(DEFAULT_FAULT_SEED)
}

/// What an injected fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The rank dies (panics with a [`RankKilled`] payload).
    Kill,
    /// One outgoing message is silently discarded.
    Drop,
    /// One outgoing message is held for the given base duration
    /// (±50% seeded jitter) before delivery.
    Delay(Duration),
}

impl FaultKind {
    /// Short label used in telemetry span names and event listings.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Kill => "kill",
            FaultKind::Drop => "drop",
            FaultKind::Delay(_) => "delay",
        }
    }
}

/// When an action fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// On the rank's `n`th counted (1-based, send-side) comm operation.
    Op(u64),
    /// At the start of solver step `n` (driver calls
    /// [`crate::Communicator::fault_step`]). `kill` only.
    Step(u64),
}

/// One configured fault: do `kind` on `rank` when `trigger` fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultAction {
    /// What to inject.
    pub kind: FaultKind,
    /// World rank the action applies to.
    pub rank: usize,
    /// When it fires.
    pub trigger: Trigger,
}

/// A parsed, seeded fault plan. Cheap to clone; seed included so two
/// plans replay identically iff both spec and seed match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The configured actions, in spec order.
    pub actions: Vec<FaultAction>,
    /// Seed for per-rank jitter streams.
    pub seed: u64,
}

impl FaultPlan {
    /// Parse a comma-separated fault spec (see module docs for grammar).
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut actions = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            actions.push(parse_action(part)?);
        }
        if actions.is_empty() {
            return Err(format!("fault spec {spec:?} contains no actions"));
        }
        Ok(FaultPlan { actions, seed })
    }

    /// Build the per-rank injector for `world_rank`. Returns `None` when
    /// the plan has no actions for that rank, so untargeted ranks pay
    /// nothing on their send paths.
    pub fn injector_for(&self, world_rank: usize) -> Option<Arc<FaultInjector>> {
        let mine: Vec<FaultAction> = self
            .actions
            .iter()
            .filter(|a| a.rank == world_rank)
            .cloned()
            .collect();
        if mine.is_empty() {
            return None;
        }
        Some(Arc::new(FaultInjector {
            world_rank,
            actions: mine,
            ops: AtomicU64::new(0),
            rng: Mutex::new(Rng::seed_from_u64(self.seed ^ world_rank as u64)),
            events: Mutex::new(Vec::new()),
        }))
    }
}

fn parse_action(part: &str) -> Result<FaultAction, String> {
    let mut fields = part.split(':');
    let kind_str = fields.next().unwrap_or("");
    let target = fields
        .next()
        .ok_or_else(|| format!("fault action {part:?}: missing ':rN@...' target"))?;
    let extra = fields.next();
    if fields.next().is_some() {
        return Err(format!("fault action {part:?}: too many ':' fields"));
    }

    let (rank_str, when_str) = target
        .split_once('@')
        .ok_or_else(|| format!("fault action {part:?}: target needs 'rN@opM' or 'rN@stepM'"))?;
    let rank: usize = rank_str
        .strip_prefix('r')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("fault action {part:?}: bad rank {rank_str:?} (want e.g. r2)"))?;
    let trigger = if let Some(n) = when_str.strip_prefix("op") {
        Trigger::Op(
            n.parse()
                .map_err(|_| format!("fault action {part:?}: bad op count {n:?}"))?,
        )
    } else if let Some(n) = when_str.strip_prefix("step") {
        Trigger::Step(
            n.parse()
                .map_err(|_| format!("fault action {part:?}: bad step {n:?}"))?,
        )
    } else {
        return Err(format!(
            "fault action {part:?}: trigger {when_str:?} must be opN or stepN"
        ));
    };

    let kind = match kind_str {
        "kill" => {
            if extra.is_some() {
                return Err(format!("fault action {part:?}: kill takes no duration"));
            }
            FaultKind::Kill
        }
        "drop" => {
            if extra.is_some() {
                return Err(format!("fault action {part:?}: drop takes no duration"));
            }
            FaultKind::Drop
        }
        "delay" => {
            let dur = extra
                .ok_or_else(|| format!("fault action {part:?}: delay needs a duration"))?;
            FaultKind::Delay(parse_duration(dur).ok_or_else(|| {
                format!("fault action {part:?}: bad duration {dur:?} (want e.g. 50ms, 2s)")
            })?)
        }
        other => {
            return Err(format!(
                "fault action {part:?}: unknown kind {other:?} (want kill|drop|delay)"
            ))
        }
    };
    if matches!(trigger, Trigger::Step(_)) && kind != FaultKind::Kill {
        return Err(format!(
            "fault action {part:?}: step triggers only apply to kill (drop/delay need @opN)"
        ));
    }
    Ok(FaultAction { kind, rank, trigger })
}

fn parse_duration(s: &str) -> Option<Duration> {
    let (num, mul_ns) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000_000u64)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1_000u64)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000_000u64)
    } else {
        return None;
    };
    let v: u64 = num.parse().ok()?;
    Some(Duration::from_nanos(v.checked_mul(mul_ns)?))
}

/// What the communicator should do at the current injection point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Proceed normally.
    Proceed,
    /// Discard this message.
    Drop,
    /// Hold this message for the given (jittered) duration.
    Delay(Duration),
    /// Die now.
    Kill,
}

/// One injected fault, recorded for replay verification and telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// The action's kind label ("kill" / "drop" / "delay").
    pub kind: &'static str,
    /// World rank the fault fired on.
    pub rank: usize,
    /// The rank's send-side op count when it fired (0 for step kills
    /// that fired before any op).
    pub op_index: u64,
    /// Solver step, for step-triggered kills.
    pub step: Option<u64>,
    /// Applied delay in nanoseconds (delay faults only).
    pub delay_ns: u64,
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} r{} @ op {}", self.kind, self.rank, self.op_index)?;
        if let Some(s) = self.step {
            write!(f, " (step {s})")?;
        }
        if self.delay_ns > 0 {
            write!(f, " [{} ns]", self.delay_ns)?;
        }
        Ok(())
    }
}

/// Per-rank injection state: op counter, this rank's actions, and the
/// seeded jitter stream. Shared (`Arc`) between the communicator and any
/// communicators derived from it by `split`/`duplicate`/`shrink`, so the
/// op count is global to the rank, not per-communicator.
pub struct FaultInjector {
    world_rank: usize,
    actions: Vec<FaultAction>,
    ops: AtomicU64,
    rng: Mutex<Rng>,
    events: Mutex<Vec<FaultEvent>>,
}

impl FaultInjector {
    /// Count one send-side op and report what to inject for it.
    pub fn on_op(&self) -> Injection {
        let n = self.ops.fetch_add(1, Ordering::SeqCst) + 1;
        let hit = self
            .actions
            .iter()
            .find(|a| a.trigger == Trigger::Op(n));
        let Some(action) = hit else {
            return Injection::Proceed;
        };
        match action.kind {
            FaultKind::Kill => {
                self.record(FaultEvent {
                    kind: "kill",
                    rank: self.world_rank,
                    op_index: n,
                    step: None,
                    delay_ns: 0,
                });
                Injection::Kill
            }
            FaultKind::Drop => {
                self.record(FaultEvent {
                    kind: "drop",
                    rank: self.world_rank,
                    op_index: n,
                    step: None,
                    delay_ns: 0,
                });
                Injection::Drop
            }
            FaultKind::Delay(base) => {
                // ±50% jitter from the per-rank seeded stream: identical
                // across replays, uncorrelated across ranks.
                let factor = 0.5 + self.rng.lock().next_f64();
                let jittered = Duration::from_nanos(
                    (base.as_nanos() as f64 * factor).round() as u64,
                );
                self.record(FaultEvent {
                    kind: "delay",
                    rank: self.world_rank,
                    op_index: n,
                    step: None,
                    delay_ns: jittered.as_nanos() as u64,
                });
                Injection::Delay(jittered)
            }
        }
    }

    /// Report whether a step-triggered kill fires at `step`, recording it.
    pub fn on_step(&self, step: u64) -> Injection {
        let fires = self
            .actions
            .iter()
            .any(|a| a.kind == FaultKind::Kill && a.trigger == Trigger::Step(step));
        if !fires {
            return Injection::Proceed;
        }
        self.record(FaultEvent {
            kind: "kill",
            rank: self.world_rank,
            op_index: self.ops.load(Ordering::SeqCst),
            step: Some(step),
            delay_ns: 0,
        });
        Injection::Kill
    }

    /// The rank's current send-side op count.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// World rank this injector belongs to.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Snapshot of the faults injected so far, in firing order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events.lock().clone()
    }

    fn record(&self, ev: FaultEvent) {
        self.events.lock().push(ev);
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("world_rank", &self.world_rank)
            .field("actions", &self.actions)
            .field("ops", &self.op_count())
            .finish_non_exhaustive()
    }
}

/// Panic payload carried by a rank killed by fault injection. The world
/// runner ([`crate::WorldBuilder::run_ft`]) downcasts for this to tell an
/// injected death from a genuine bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankKilled {
    /// World rank that died.
    pub world_rank: usize,
    /// Step the kill was triggered at, if step-triggered.
    pub step: Option<u64>,
    /// The rank's send-side op count at death.
    pub op: u64,
}

/// Panic payload thrown by the panicking collective wrappers when a
/// *peer failure* — not a local bug — prevented completion. Recovery
/// drivers (`rocketrig`'s fault loop) catch and downcast for this to
/// start shrink/restart instead of crashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveFailed {
    /// Name of the collective that could not complete.
    pub op: &'static str,
    /// The underlying failure.
    pub error: CommError,
}

impl std::fmt::Display for CollectiveFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} failed: {}", self.op, self.error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips_all_kinds() {
        let plan =
            FaultPlan::parse("kill:r2@step5, drop:r0@op3,delay:r1@op10:50ms", 7).unwrap();
        assert_eq!(plan.actions.len(), 3);
        assert_eq!(
            plan.actions[0],
            FaultAction {
                kind: FaultKind::Kill,
                rank: 2,
                trigger: Trigger::Step(5)
            }
        );
        assert_eq!(
            plan.actions[1],
            FaultAction {
                kind: FaultKind::Drop,
                rank: 0,
                trigger: Trigger::Op(3)
            }
        );
        assert_eq!(
            plan.actions[2],
            FaultAction {
                kind: FaultKind::Delay(Duration::from_millis(50)),
                rank: 1,
                trigger: Trigger::Op(10)
            }
        );
    }

    #[test]
    fn grammar_rejects_malformed_specs() {
        for bad in [
            "",
            "kill",
            "kill:r2",
            "kill:2@step5",
            "kill:r2@banana5",
            "explode:r2@step5",
            "delay:r1@op10",       // missing duration
            "delay:r1@op10:fast",  // bad duration
            "drop:r0@step3",       // step trigger on non-kill
            "kill:r2@step5:50ms",  // kill takes no duration
        ] {
            assert!(FaultPlan::parse(bad, 0).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn durations_parse_with_all_suffixes() {
        assert_eq!(parse_duration("50ms"), Some(Duration::from_millis(50)));
        assert_eq!(parse_duration("2s"), Some(Duration::from_secs(2)));
        assert_eq!(parse_duration("100us"), Some(Duration::from_micros(100)));
        assert_eq!(parse_duration("50"), None);
        assert_eq!(parse_duration("ms"), None);
    }

    #[test]
    fn injector_fires_on_exact_op_and_counts_deterministically() {
        let plan = FaultPlan::parse("drop:r1@op3", 42).unwrap();
        assert!(plan.injector_for(0).is_none(), "untargeted rank has no injector");
        let inj = plan.injector_for(1).unwrap();
        assert_eq!(inj.on_op(), Injection::Proceed);
        assert_eq!(inj.on_op(), Injection::Proceed);
        assert_eq!(inj.on_op(), Injection::Drop);
        assert_eq!(inj.on_op(), Injection::Proceed);
        assert_eq!(inj.op_count(), 4);
        let events = inj.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "drop");
        assert_eq!(events[0].op_index, 3);
    }

    #[test]
    fn delay_jitter_replays_identically_per_seed() {
        let ev = |seed: u64| {
            let inj = FaultPlan::parse("delay:r0@op1:10ms", seed)
                .unwrap()
                .injector_for(0)
                .unwrap();
            match inj.on_op() {
                Injection::Delay(d) => d,
                other => panic!("expected delay, got {other:?}"),
            }
        };
        let a = ev(5);
        let b = ev(5);
        let c = ev(6);
        assert_eq!(a, b, "same seed must replay the same jitter");
        assert_ne!(a, c, "different seed should jitter differently");
        // Jitter stays within ±50% of the 10ms base.
        assert!(a >= Duration::from_millis(5) && a < Duration::from_millis(15));
    }

    #[test]
    fn step_kills_fire_only_on_their_step() {
        let inj = FaultPlan::parse("kill:r2@step5", 0)
            .unwrap()
            .injector_for(2)
            .unwrap();
        assert_eq!(inj.on_step(4), Injection::Proceed);
        assert_eq!(inj.on_step(5), Injection::Kill);
        let events = inj.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].step, Some(5));
    }

    #[test]
    fn seed_env_parses_and_defaults() {
        // Avoid mutating process env (tests run in parallel); exercise the
        // parse path through a plan equality check instead.
        assert_eq!(
            FaultPlan::parse("kill:r0@op1", DEFAULT_FAULT_SEED).unwrap().seed,
            DEFAULT_FAULT_SEED
        );
    }
}
