//! The top-level `Solver` (paper §3.1): wires the problem state, the
//! Z-Model, a BR solver, and the time integrator, and runs the timestep
//! loop with per-step callbacks for I/O and diagnostics.

use crate::br::{BalancedCutoffBrSolver, BrSolver, CutoffBrSolver, ExactBrSolver, TreeBrSolver};
use crate::init::InitialCondition;
use crate::integrator::TimeIntegrator;
use crate::order::Order;
use crate::params::Params;
use crate::problem::ProblemManager;
use crate::zmodel::ZModel;
use beatnik_comm::dims_create;
use beatnik_dfft::FftConfig;
use beatnik_mesh::{SpatialMesh, SurfaceMesh};
use beatnik_json::{field, impl_json_struct, FromJson, JsonError, ToJson, Value};
use beatnik_spatial::neighbors::Backend;

/// Which far-field solver to construct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BrChoice {
    /// No BR solver (low order only).
    None,
    /// O(n²) ring-pass solver.
    Exact,
    /// Cutoff solver over a spatial mesh spanning `bounds` with the
    /// given cutoff radius.
    Cutoff {
        /// Spatial domain corners `(lo, hi)`.
        bounds: ([f64; 3], [f64; 3]),
    },
    /// Barnes–Hut tree code with the given opening angle.
    Tree {
        /// Opening angle θ (0 = exact).
        theta: f64,
    },
    /// Cutoff solver over a per-evaluation RCB (load-balanced)
    /// decomposition of the x/y domain `bounds`.
    BalancedCutoff {
        /// Spatial domain corners `(lo, hi)` (z extent unused).
        bounds: ([f64; 3], [f64; 3]),
    },
}

impl ToJson for BrChoice {
    fn to_json(&self) -> Value {
        // Externally tagged, matching serde's derive layout.
        match self {
            BrChoice::None => Value::Str("None".to_string()),
            BrChoice::Exact => Value::Str("Exact".to_string()),
            BrChoice::Cutoff { bounds } => Value::Object(vec![(
                "Cutoff".to_string(),
                Value::Object(vec![("bounds".to_string(), bounds.to_json())]),
            )]),
            BrChoice::Tree { theta } => Value::Object(vec![(
                "Tree".to_string(),
                Value::Object(vec![("theta".to_string(), theta.to_json())]),
            )]),
            BrChoice::BalancedCutoff { bounds } => Value::Object(vec![(
                "BalancedCutoff".to_string(),
                Value::Object(vec![("bounds".to_string(), bounds.to_json())]),
            )]),
        }
    }
}

impl FromJson for BrChoice {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Str(s) if s == "None" => Ok(BrChoice::None),
            Value::Str(s) if s == "Exact" => Ok(BrChoice::Exact),
            Value::Object(pairs) if pairs.len() == 1 => {
                let (tag, body) = &pairs[0];
                match tag.as_str() {
                    "Cutoff" => Ok(BrChoice::Cutoff {
                        bounds: field(body, "bounds")?,
                    }),
                    "Tree" => Ok(BrChoice::Tree {
                        theta: field(body, "theta")?,
                    }),
                    "BalancedCutoff" => Ok(BrChoice::BalancedCutoff {
                        bounds: field(body, "bounds")?,
                    }),
                    other => Err(JsonError::new(format!("unknown BrChoice variant '{other}'"))),
                }
            }
            other => Err(JsonError::new(format!(
                "expected BrChoice, got {}",
                other.kind()
            ))),
        }
    }
}

/// Everything needed to assemble a solver (mirrors the rocketrig driver's
/// command line).
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Model order.
    pub order: Order,
    /// Far-field solver choice.
    pub br: BrChoice,
    /// Physical/numerical parameters.
    pub params: Params,
    /// Distributed-FFT tuning (low/medium order).
    pub fft: FftConfig,
    /// Initial interface shape.
    pub ic: InitialCondition,
}

impl_json_struct!(SolverConfig { order, br, params, fft, ic });

/// The assembled simulation.
pub struct Solver {
    pm: ProblemManager,
    zmodel: ZModel,
    integrator: TimeIntegrator,
    dt: f64,
    time: f64,
    step: usize,
}

impl Solver {
    /// Build the solver over an existing mesh/state container.
    /// Collective.
    pub fn new(mesh: SurfaceMesh, bc: beatnik_mesh::BoundaryCondition, cfg: SolverConfig) -> Self {
        cfg.params.validate().expect("invalid parameters");
        let mut pm = ProblemManager::new(mesh, bc);
        cfg.ic.apply(&mut pm);
        let br: Option<Box<dyn BrSolver>> = match cfg.br {
            BrChoice::None => None,
            BrChoice::Exact => Some(Box::new(ExactBrSolver)),
            BrChoice::Cutoff { bounds } => {
                let dims = dims_create(pm.mesh().comm().size());
                let smesh = SpatialMesh::new(bounds.0, bounds.1, dims);
                Some(Box::new(CutoffBrSolver::new(
                    smesh,
                    cfg.params.cutoff,
                    Backend::Grid,
                )))
            }
            BrChoice::Tree { theta } => Some(Box::new(TreeBrSolver::new(theta))),
            BrChoice::BalancedCutoff { bounds } => Some(Box::new(BalancedCutoffBrSolver::new(
                [bounds.0[0], bounds.0[1]],
                [bounds.1[0], bounds.1[1]],
                cfg.params.cutoff,
                Backend::Grid,
            ))),
        };
        let zmodel = ZModel::new(&pm, cfg.order, cfg.params, br, cfg.fft);
        let integrator = TimeIntegrator::new(&pm);
        Solver {
            pm,
            zmodel,
            integrator,
            dt: cfg.params.dt,
            time: 0.0,
            step: 0,
        }
    }

    /// The problem state.
    pub fn problem(&self) -> &ProblemManager {
        &self.pm
    }

    /// Mutable problem state (for custom initial conditions).
    pub fn problem_mut(&mut self) -> &mut ProblemManager {
        &mut self.pm
    }

    /// The Z-Model in use.
    pub fn zmodel(&self) -> &ZModel {
        &self.zmodel
    }

    /// Simulated time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Completed step count.
    pub fn step_count(&self) -> usize {
        self.step
    }

    /// Restore clock state from a checkpoint (the state fields themselves
    /// are loaded by `beatnik_io::checkpoint::load` into the problem).
    pub fn restore_clock(&mut self, step: usize, time: f64) {
        self.step = step;
        self.time = time;
    }

    /// Advance one timestep (applying the Krasny filter on the
    /// configured cadence).
    pub fn step(&mut self) {
        // Clone the recorder handle so the guard does not hold a borrow
        // of `self.pm` across the mutable integrator call.
        let telemetry = std::sync::Arc::clone(self.pm.mesh().comm().telemetry());
        let _phase = telemetry.phase("step");
        self.integrator.step(&self.zmodel, &mut self.pm, self.dt);
        self.time += self.dt;
        self.step += 1;
        let p = self.zmodel.params();
        if p.filter_every > 0 && self.step.is_multiple_of(p.filter_every) {
            let tol = p.filter_tolerance;
            self.zmodel.apply_krasny_filter(&mut self.pm, tol);
        }
    }

    /// Run `steps` timesteps, invoking `callback(step_index, &problem)`
    /// after each (step_index counts completed steps, starting at 1).
    pub fn run(&mut self, steps: usize, mut callback: impl FnMut(usize, &ProblemManager)) {
        for _ in 0..steps {
            self.step();
            callback(self.step, &self.pm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Diagnostics;
    use beatnik_comm::World;
    use beatnik_mesh::BoundaryCondition;
    use std::f64::consts::PI;

    fn config(order: Order, br: BrChoice) -> SolverConfig {
        SolverConfig {
            order,
            br,
            params: Params {
                atwood: 0.5,
                gravity: 2.0,
                mu: 0.0,
                epsilon: 0.15,
                cutoff: 10.0,
                dt: 5e-3,
                ..Params::default()
            },
            fft: FftConfig::default(),
            ic: InitialCondition::SingleMode {
                amplitude: 1e-3,
                modes: [1.0, 1.0],
            },
        }
    }

    fn periodic_mesh(comm: &beatnik_comm::Communicator, n: usize) -> SurfaceMesh {
        let l = 2.0 * PI;
        SurfaceMesh::new(comm, [n, n], [true, true], 2, [0.0, 0.0], [l, l])
    }

    #[test]
    fn low_order_solver_runs_and_grows() {
        World::builder(4).run(|comm| {
            let mesh = periodic_mesh(&comm, 16);
            let bc = BoundaryCondition::Periodic {
                periods: [2.0 * PI, 2.0 * PI],
            };
            let mut s = Solver::new(mesh, bc, config(Order::Low, BrChoice::None));
            let before = Diagnostics::compute(s.problem()).amplitude;
            let mut seen = 0;
            s.run(20, |_, _| seen += 1);
            assert_eq!(seen, 20);
            assert_eq!(s.step_count(), 20);
            assert!((s.time() - 0.1).abs() < 1e-12);
            let after = Diagnostics::compute(s.problem()).amplitude;
            assert!(after > before, "RT instability must grow: {before} -> {after}");
        });
    }

    #[test]
    fn all_three_orders_run_with_each_br_solver() {
        World::builder(2).run(|comm| {
            let l = 2.0 * PI;
            let cutoff = BrChoice::Cutoff {
                bounds: ([-1.0, -1.0, -2.0], [l + 1.0, l + 1.0, 2.0]),
            };
            for (order, br) in [
                (Order::Low, BrChoice::None),
                (Order::Medium, BrChoice::Exact),
                (Order::Medium, cutoff),
                (Order::High, BrChoice::Exact),
                (Order::High, cutoff),
                (Order::High, BrChoice::Tree { theta: 0.5 }),
                (
                    Order::High,
                    BrChoice::BalancedCutoff {
                        bounds: ([-1.0, -1.0, -2.0], [l + 1.0, l + 1.0, 2.0]),
                    },
                ),
            ] {
                let mesh = periodic_mesh(&comm, 12);
                let bc = BoundaryCondition::Periodic { periods: [l, l] };
                let mut s = Solver::new(mesh, bc, config(order, br));
                s.run(2, |_, _| {});
                let d = Diagnostics::compute(s.problem());
                assert!(d.amplitude.is_finite(), "{order} diverged");
                assert!(d.amplitude > 0.0);
            }
        });
    }

    #[test]
    fn high_order_supports_open_boundaries() {
        World::builder(2).run(|comm| {
            let mesh =
                SurfaceMesh::new(&comm, [12, 12], [false, false], 2, [0.0, 0.0], [1.0, 1.0]);
            let mut cfg = config(Order::High, BrChoice::Exact);
            cfg.params.dt = 1e-3;
            let mut s = Solver::new(mesh, BoundaryCondition::Free, cfg);
            s.run(3, |_, _| {});
            assert!(Diagnostics::compute(s.problem()).amplitude.is_finite());
        });
    }
}
