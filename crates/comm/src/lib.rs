//! # beatnik-comm — an in-process MPI-like message-passing runtime
//!
//! This crate is the communication substrate for Beatnik-RS. The paper's
//! Beatnik runs on MPI; Rust has no mature MPI story, so this crate
//! reimplements the message-passing model Beatnik needs, from scratch:
//!
//! * **Ranks as threads.** [`World::builder`] spawns `P` scoped threads,
//!   each receiving its own [`Communicator`] handle for the world group.
//! * **Point-to-point messaging** with MPI-style `(source, tag)` matching,
//!   buffered (non-blocking) sends and blocking receives.
//! * **Collectives** implemented with the same algorithms production MPI
//!   libraries use: dissemination barrier, binomial-tree broadcast and
//!   reduce, recursive-doubling allreduce, ring allgather, and both
//!   pairwise-exchange and direct (post-all) all-to-all. This matters
//!   because Beatnik is a *communication pattern* benchmark — the pattern
//!   of messages, not just the result, must match an MPI execution.
//! * **Communicator splitting** ([`Communicator::split`]) and a 2D
//!   [`cart::CartComm`] Cartesian topology with neighbor shifts, used for
//!   mesh halos and pencil FFT row/column exchanges.
//! * **Instrumentation**: every operation is counted (messages, bytes,
//!   calls) in a per-rank [`trace::RankTrace`], which the analytic
//!   performance model (`beatnik-model`) consumes to extrapolate runs to
//!   the paper's 4–1024 GPU scales. With profiling enabled
//!   ([`WorldBuilder::run_profiled`]), every operation additionally records a
//!   timestamped span into a per-rank `beatnik-telemetry` ring buffer,
//!   aggregated into a [`telemetry::WorldTimeline`] for wait-time
//!   attribution, collective-skew, and Chrome-trace export.
//!
//! Messages move `Vec<T>` buffers by pointer between threads (no
//! serialization). Slice sends pick a protocol by payload size (see
//! [`transport`]): small messages go eagerly through a pooled byte
//! envelope, large ones take a rendezvous path that performs a single
//! copy and deposits directly into a posted receive when one exists.
//! Byte counts for the trace are computed as `len * size_of::<T>()`.
//!
//! ## Example
//!
//! ```
//! use beatnik_comm::World;
//!
//! // Sum ranks with an allreduce across 4 ranks.
//! let results = World::builder(4).run(|comm| {
//!     comm.allreduce_sum(comm.rank() as f64)
//! });
//! assert!(results.iter().all(|&s| s == 6.0));
//! ```
//!
//! Ranks default to threads of this process, but the transport is
//! pluggable ([`transport::Transport`]): `World::builder(n).transport(...)`
//! selects shared-memory rings or TCP sockets, and [`proc`] launches one
//! process per rank.

pub mod cart;
pub mod collectives;
pub mod communicator;
pub mod config;
pub mod error;
pub mod fault;
pub mod mailbox;
pub mod message;
pub mod metrics;
pub mod pool;
pub mod proc;
pub mod rankpool;
pub mod reduce_op;
pub mod registry;
pub mod request;
pub mod sync;
pub mod trace;
pub mod transport;
pub mod world;

pub use cart::{dims_create, CartComm};
pub use communicator::{Communicator, Tag, ANY_SOURCE, ANY_TAG};
pub use config::{CommConfig, RECV_TIMEOUT_ENV, SHM_RING_BYTES_ENV, TRANSPORT_ENV};
pub use error::CommError;
pub use fault::{
    seed_from_env, CollectiveFailed, FaultEvent, FaultKind, FaultPlan, RankKilled,
    DEFAULT_FAULT_SEED, FAULT_SEED_ENV, RECOVERY_PHASE, SHRINK_PHASE,
};
pub use metrics::MetricsPlane;
pub use pool::{BufferPool, PoolStats};
pub use rankpool::{RankLease, RankPool};
pub use reduce_op::{MaxOp, MinOp, ProdOp, ReduceOp, SumOp};
pub use request::{try_wait_all, wait_all, RecvRequest, SendRequest};
pub use trace::{
    MatrixCell, MatrixImbalance, OpKind, OpStats, RankTrace, WorldMatrixCell, WorldTrace,
};
pub use transport::{
    eager_limit_from_env, Transport, TransportKind, DEFAULT_EAGER_LIMIT, EAGER_LIMIT_ENV,
};
pub use world::{FtReport, World, WorldBuilder, DEFAULT_RECV_TIMEOUT};

pub use collectives::alltoall::AllToAllAlgo;

/// Re-export of the span-tracing layer so downstream crates reach the
/// telemetry types through their existing `beatnik-comm` dependency.
pub use beatnik_telemetry as telemetry;
pub use beatnik_telemetry::{SpanRecorder, WorldTimeline};
