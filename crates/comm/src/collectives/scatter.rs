//! Direct scatter from root.
//!
//! The root sends rank `d` its block directly; buffered sends make this a
//! single burst of P−1 messages from the root, matching MPI's short-message
//! scatter behaviour.

use crate::communicator::Communicator;
use crate::error::CommError;
use crate::message::CommData;
use crate::trace::OpKind;
use beatnik_telemetry::CommOp;

/// Scatter `root`'s per-rank buffers. The root passes `Some(blocks)` with
/// exactly `size()` entries (block `d` goes to rank `d`); other ranks pass
/// `None`. Every rank returns its own block.
pub fn scatter<T: CommData + Clone>(
    comm: &Communicator,
    root: usize,
    data: Option<Vec<Vec<T>>>,
) -> Result<Vec<T>, CommError> {
    comm.coll_begin(OpKind::Scatter);
    let mut span = comm.telemetry().op(CommOp::Scatter);
    span.peer(root);
    comm.check_group_alive()?;
    let p = comm.size();
    let r = comm.rank();
    assert!(root < p, "scatter: root {root} out of range");
    let mine = if r == root {
        let mut blocks = data.expect("scatter: root must supply blocks");
        assert_eq!(blocks.len(), p, "scatter: need exactly one block per rank");
        // Keep our own block; send everyone else theirs.
        let mine = std::mem::take(&mut blocks[root]);
        for (d, block) in blocks.into_iter().enumerate() {
            if d != root {
                comm.coll_send(d, root as u64, block, OpKind::Scatter);
            }
        }
        mine
    } else {
        assert!(data.is_none(), "scatter: non-root must pass None");
        comm.try_coll_recv::<T>(root, root as u64, "scatter")?
    };
    span.bytes(std::mem::size_of_val(mine.as_slice()) as u64);
    Ok(mine)
}

#[cfg(test)]
mod tests {
    use crate::trace::OpKind;
    use crate::world::World;

    #[test]
    fn scatter_delivers_correct_blocks() {
        for p in [1usize, 2, 4, 5] {
            for root in 0..p {
                let out = World::builder(p).run(move |c| {
                    if c.rank() == root {
                        let data: Vec<u64> = (0..p)
                            .flat_map(|d| [d as u64 * 10, root as u64])
                            .collect();
                        c.scatter(root, Some(&data))
                    } else {
                        c.scatter::<u64>(root, None)
                    }
                });
                for (d, block) in out.into_iter().enumerate() {
                    assert_eq!(block, vec![d as u64 * 10, root as u64]);
                }
            }
        }
    }

    #[test]
    fn scatter_root_sends_p_minus_one_messages() {
        let (_, trace) = World::builder(6).run_traced(|c| {
            let _ = if c.rank() == 2 {
                c.scatter(2, Some(&[0f32; 24]))
            } else {
                c.scatter::<f32>(2, None)
            };
        });
        assert_eq!(trace.rank(2).get(OpKind::Scatter).messages, 5);
        assert_eq!(trace.rank(0).get(OpKind::Scatter).messages, 0);
    }

    #[test]
    #[should_panic(expected = "one block per rank")]
    fn wrong_block_count_panics() {
        World::builder(2).run(|c| {
            let data = if c.rank() == 0 { Some(vec![vec![1u8]]) } else { None };
            let _ = super::scatter(&c, 0, data);
        });
    }
}
