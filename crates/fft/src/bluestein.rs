//! Bluestein's chirp-z algorithm: DFT of arbitrary length `n` via a
//! circular convolution of length `m ≥ 2n−1`, `m` a power of two.
//!
//! Identity: with chirp `c[j] = e^{-πi j²/n}`,
//! `X[k] = c[k] · Σ_j (x[j] c[j]) · conj(c)[k−j]`, i.e. a convolution of
//! the chirp-premultiplied signal with the conjugate chirp, evaluated by
//! zero-padded power-of-two FFTs.

use crate::complex::Complex;
use crate::plan::Fft;

/// Planned Bluestein transform of one length.
pub struct Bluestein {
    n: usize,
    m: usize,
    /// Forward chirp `e^{-πi j²/n}` for `j < n`.
    chirp: Vec<Complex>,
    /// FFT (length m) of the zero-padded conjugate chirp (the convolution
    /// kernel), precomputed.
    kernel_spec: Vec<Complex>,
    inner: Fft,
}

impl Bluestein {
    /// Plan length-`n` transforms (`n ≥ 2`; power-of-two sizes work but
    /// [`crate::Fft`] routes those to radix-2 directly).
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "bluestein: n must be at least 2");
        let m = (2 * n - 1).next_power_of_two();
        // j² mod 2n keeps the phase argument small and exact.
        let chirp: Vec<Complex> = (0..n)
            .map(|j| {
                let jj = (j * j) % (2 * n);
                Complex::cis(-std::f64::consts::PI * jj as f64 / n as f64)
            })
            .collect();
        // Kernel b[j] = conj(chirp[|j|]) laid out circularly on length m.
        let mut kernel = vec![Complex::default(); m];
        kernel[0] = chirp[0].conj();
        for j in 1..n {
            kernel[j] = chirp[j].conj();
            kernel[m - j] = chirp[j].conj();
        }
        let inner = Fft::new(m);
        let mut kernel_spec = kernel;
        inner.forward(&mut kernel_spec);
        Bluestein {
            n,
            m,
            chirp,
            kernel_spec,
            inner,
        }
    }

    /// Padded convolution length.
    pub fn padded_len(&self) -> usize {
        self.m
    }

    /// In-place forward DFT.
    pub fn forward(&self, data: &mut [Complex]) {
        self.run(data, false);
    }

    /// In-place inverse DFT (normalized by `1/n`).
    ///
    /// Implemented via the conjugation identity
    /// `idft(x) = conj(dft(conj(x))) / n`.
    pub fn inverse(&self, data: &mut [Complex]) {
        for v in data.iter_mut() {
            *v = v.conj();
        }
        self.run(data, false);
        let s = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.conj().scale(s);
        }
    }

    fn run(&self, data: &mut [Complex], _unused: bool) {
        assert_eq!(data.len(), self.n, "bluestein: buffer length mismatch");
        let m = self.m;
        // a[j] = x[j] * chirp[j], zero-padded to m.
        let mut a = vec![Complex::default(); m];
        for (j, (&x, &c)) in data.iter().zip(&self.chirp).enumerate() {
            a[j] = x * c;
        }
        self.inner.forward(&mut a);
        for (av, &kv) in a.iter_mut().zip(&self.kernel_spec) {
            *av *= kv;
        }
        self.inner.inverse(&mut a);
        for (k, out) in data.iter_mut().enumerate() {
            *out = a[k] * self.chirp[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;

    #[test]
    fn matches_naive_for_awkward_sizes() {
        for n in [2usize, 3, 7, 11, 13, 30, 97, 257] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 1.3).sin(), (i as f64).sqrt()))
                .collect();
            let mut fast = x.clone();
            Bluestein::new(n).forward(&mut fast);
            let slow = dft_naive(&x);
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!((*a - *b).abs() < 1e-8 * n as f64, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for n in [5usize, 9, 21, 50] {
            let x: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, -(i as f64))).collect();
            let plan = Bluestein::new(n);
            let mut buf = x.clone();
            plan.forward(&mut buf);
            plan.inverse(&mut buf);
            for (a, b) in buf.iter().zip(&x) {
                assert!((*a - *b).abs() < 1e-9 * n as f64);
            }
        }
    }

    #[test]
    fn padding_is_a_power_of_two_at_least_2n_minus_1() {
        for n in [3usize, 12, 100] {
            let b = Bluestein::new(n);
            assert!(b.padded_len().is_power_of_two());
            assert!(b.padded_len() >= 2 * n - 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_sizes() {
        let _ = Bluestein::new(1);
    }
}
