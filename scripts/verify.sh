#!/usr/bin/env bash
# Repo verification gate: release build, full test suite, and lints.
# Hermetic — never touches the network.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy -- -D warnings =="
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== clippy not installed; skipping lints =="
fi

echo "verify: OK"
