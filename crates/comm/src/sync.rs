//! Poison-free synchronization primitives over `std::sync`.
//!
//! The runtime originally used `parking_lot`; to keep the workspace
//! hermetic (no registry access at build time) this module provides the
//! same ergonomic surface — `lock()`/`read()`/`write()` without poison
//! `Result`s, and a [`Condvar`] that re-waits through a `&mut` guard —
//! on top of the standard library. Poisoning is deliberately ignored: a
//! rank thread that panics aborts the whole world through the abort
//! flag, so a poisoned mailbox lock is never observed by a healthy rank
//! except while the world is already tearing down.

use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

/// RAII guard for [`Mutex`]; released on drop.
pub struct MutexGuard<'a, T> {
    // `Option` so `Condvar` can move the std guard out and back while
    // the caller keeps holding this wrapper by `&mut`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of a timed wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the lock and wait for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wait with a timeout measured from now.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wait until an absolute deadline.
    pub fn wait_until<T>(&self, guard: &mut MutexGuard<'_, T>, deadline: Instant) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquire shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                c.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn timed_waits_report_timeout() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        assert!(c.wait_for(&mut g, Duration::from_millis(5)).timed_out());
        let past = Instant::now() - Duration::from_millis(1);
        assert!(c.wait_until(&mut g, past).timed_out());
    }

    #[test]
    fn poisoned_locks_recover() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
