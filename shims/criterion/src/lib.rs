//! Hermetic stand-in for the `criterion` bench harness.
//!
//! The build container has no registry access, so the real criterion
//! crate cannot be resolved; this shim implements the subset of its API
//! the `beatnik-bench` targets use (`Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `measurement_time` / `sample_size`, `b.iter`, and the
//! `criterion_group!` / `criterion_main!` macros) as a plain wall-clock
//! timing harness. Each benchmark runs a short warmup, then `samples`
//! timed batches, and prints min/median mean-per-iteration times —
//! enough to compare variants (blocking vs nonblocking paths) without
//! criterion's statistics machinery. Not a statistical benchmark; for
//! rigorous numbers run the real criterion outside the container.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(1),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.measurement_time, self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing time/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Total time budget per benchmark (split across samples).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark with an input parameter.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.measurement_time, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Run one benchmark without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_benchmark(&label, self.measurement_time, self.sample_size, |b| f(b));
        self
    }

    /// End the group (no-op; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Benchmark identifier: function name plus parameter rendering.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a name and a displayed parameter.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// Id from a displayed parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// Things accepted as a benchmark label.
pub trait IntoLabel {
    /// Render to the printed label.
    fn into_label(self) -> String;
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` `self.iters` times, recording total elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    measurement_time: Duration,
    sample_size: usize,
    mut f: F,
) {
    // Calibrate: run single iterations until we know roughly how long
    // one takes (bounded so very slow benchmarks still finish).
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let budget = measurement_time.max(once);
    let samples = sample_size.max(2);
    // Split the budget into `samples` batches of equal iteration count.
    let total_iters = (budget.as_nanos() / once.as_nanos()).clamp(1, u64::MAX as u128) as u64;
    let per_sample = (total_iters / samples as u64).max(1);

    let mut means: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        means.push(b.elapsed.as_secs_f64() / per_sample as f64);
    }
    means.sort_by(f64::total_cmp);
    let min = means[0];
    let median = means[means.len() / 2];
    println!(
        "bench {label:<52} {:>12}/iter  (min {:>12}, {} x {} iters)",
        fmt_time(median),
        fmt_time(min),
        samples,
        per_sample,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Build a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Build `main()` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        let mut count = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| {
                count += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("a", 4).label, "a/4");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
