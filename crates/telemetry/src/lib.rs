//! # beatnik-telemetry — span-based timeline tracing
//!
//! `RankTrace` (in `beatnik-comm`) answers *how much* each rank
//! communicated; this crate answers *when*. Every communication
//! operation and every solver phase records a [`Span`] — a start/end
//! pair on a monotonic clock shared by all ranks — into a per-rank
//! [`SpanRecorder`]. After the world joins, the recorders aggregate
//! into a [`WorldTimeline`] which computes:
//!
//! * **wait-time attribution** — how much of each solver phase a rank
//!   spent blocked in a receive, a request wait, or a collective,
//!   versus computing;
//! * **collective entry/exit skew** — histograms of how far apart the
//!   ranks were when they entered and left the k-th occurrence of each
//!   collective;
//! * **a dominant-path summary per timestep** — which rank was
//!   critical and which phase dominated it.
//!
//! The timeline exports as Chrome Trace Event JSON
//! (`chrome://tracing` / [Perfetto](https://ui.perfetto.dev)) and CSV
//! (through `beatnik-io`).
//!
//! ## Overhead budget
//!
//! The recorder is designed so instrumentation can stay compiled into
//! the hot paths:
//!
//! * **Disabled** (the default): [`SpanRecorder::begin`] reads one
//!   bool and returns; [`SpanRecorder::end`] is a no-op. No
//!   allocation, no atomics, no clock read.
//! * **Enabled**: one `Instant::now()` per span edge and one store
//!   into a **preallocated ring buffer** — no locks, no allocation.
//!   Each recorder is written only by its own rank thread (the
//!   single-writer protocol documented on [`SpanRecorder`]), so the
//!   hot path is a plain indexed store plus a release counter bump.
//!
//! Overflow drops the *oldest* spans (the ring wraps) and counts them
//! in [`SpanRecorder::dropped_spans`], so a too-small buffer degrades
//! to a truncated-history timeline instead of an error or a stall.

mod chrome;
pub mod metrics;
mod recorder;
pub mod sizebins;
mod span;
mod timeline;

pub use chrome::chrome_trace;
pub use recorder::{AlgoScope, OpGuard, PhaseGuard, SpanRecorder, Ticket, DEFAULT_SPAN_CAPACITY};
pub use span::{algos, CommOp, Span, SpanKind};
pub use timeline::{
    CriticalPath, CriticalSegment, CriticalStep, PhaseRow, RankTimeline, SkewHistogram, SkewRow,
    StepRow, WorldTimeline, SKEW_BUCKETS,
};
