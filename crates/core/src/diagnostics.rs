//! Run diagnostics: interface measures, vorticity norms, and the
//! per-rank particle-ownership distribution behind Figures 6 and 7.

use crate::problem::ProblemManager;
use beatnik_json::impl_json_struct;
use beatnik_mesh::SpatialMesh;

/// Global scalar diagnostics of the current state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diagnostics {
    /// Max of `|z₃|` over the interface.
    pub amplitude: f64,
    /// Min interface height.
    pub z_min: f64,
    /// Max interface height.
    pub z_max: f64,
    /// `Σ |w|²·ΔA` — a vorticity-energy proxy.
    pub enstrophy: f64,
    /// Mean interface height `⟨z₃⟩` — conserved by incompressibility on
    /// periodic problems (the fluid volume below the interface is fixed),
    /// so its drift measures integration error.
    pub mean_height: f64,
    /// Global point count.
    pub points: usize,
}

impl_json_struct!(Diagnostics {
    amplitude,
    z_min,
    z_max,
    enstrophy,
    mean_height,
    points,
});

impl Diagnostics {
    /// Compute global diagnostics (collective).
    pub fn compute(pm: &ProblemManager) -> Self {
        let mesh = pm.mesh();
        let [dy, dx] = mesh.spacing();
        let da = dy * dx;
        let mut amp: f64 = 0.0;
        let mut zmin = f64::INFINITY;
        let mut zmax = f64::NEG_INFINITY;
        let mut ens = 0.0;
        let mut zsum = 0.0;
        for (lr, lc, _, _) in mesh.owned_indices() {
            let z3 = pm.z().get(lr, lc, 2);
            amp = amp.max(z3.abs());
            zmin = zmin.min(z3);
            zmax = zmax.max(z3);
            zsum += z3;
            let w = pm.w().node(lr, lc);
            ens += (w[0] * w[0] + w[1] * w[1]) * da;
        }
        let comm = mesh.comm();
        let points = comm.allreduce_sum(mesh.owned_count() as f64);
        Diagnostics {
            amplitude: comm.allreduce_max(amp),
            z_min: comm.allreduce_min(zmin),
            z_max: comm.allreduce_max(zmax),
            enstrophy: comm.allreduce_sum(ens),
            mean_height: comm.allreduce_sum(zsum) / points,
            points: points as usize,
        }
    }
}

/// The Figure 6/7 measurement: the fraction of all interface points that
/// each *spatial* rank region owns, given the current positions. Every
/// rank returns the full distribution (length `smesh.ranks()`), summing
/// to 1.
pub fn ownership_fractions(pm: &ProblemManager, smesh: &SpatialMesh) -> Vec<f64> {
    let mut counts = vec![0.0f64; smesh.ranks()];
    for (lr, lc, _, _) in pm.mesh().owned_indices() {
        let z = pm.z().node(lr, lc);
        counts[smesh.rank_of_point([z[0], z[1], z[2]])] += 1.0;
    }
    let comm = pm.mesh().comm();
    let total: f64 = counts.iter().sum::<f64>();
    let total = comm.allreduce_sum(total);
    let summed = comm.allreduce_vec(counts, &beatnik_comm::SumOp);
    summed.into_iter().map(|c| c / total).collect()
}

/// Load-imbalance ratio of an ownership distribution: max/mean.
pub fn imbalance(fractions: &[f64]) -> f64 {
    if fractions.is_empty() {
        return 1.0;
    }
    let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
    let max = fractions.iter().fold(0.0f64, |m, &v| m.max(v));
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::InitialCondition;
    use beatnik_comm::{dims_create, World};
    use beatnik_mesh::{BoundaryCondition, SurfaceMesh};

    #[test]
    fn diagnostics_of_single_mode() {
        World::builder(4).run(|comm| {
            let mesh =
                SurfaceMesh::new(&comm, [16, 16], [true, true], 2, [-1.0, -1.0], [1.0, 1.0]);
            let mut pm = ProblemManager::new(
                mesh,
                BoundaryCondition::Periodic { periods: [2.0, 2.0] },
            );
            InitialCondition::SingleMode {
                amplitude: 0.25,
                modes: [1.0, 1.0],
            }
            .apply(&mut pm);
            let d = Diagnostics::compute(&pm);
            assert!((d.amplitude - 0.25).abs() < 1e-12);
            assert!((d.z_max - 0.25).abs() < 1e-12);
            assert!((d.z_min + 0.25).abs() < 1e-12);
            assert_eq!(d.enstrophy, 0.0);
            assert_eq!(d.points, 256);
            // cos(2πx)·cos(2πy) has zero mean.
            assert!(d.mean_height.abs() < 1e-12);
        });
    }

    #[test]
    fn flat_interface_ownership_is_balanced() {
        World::builder(4).run(|comm| {
            let mesh =
                SurfaceMesh::new(&comm, [16, 16], [true, true], 2, [-1.0, -1.0], [1.0, 1.0]);
            let mut pm = ProblemManager::new(
                mesh,
                BoundaryCondition::Periodic { periods: [2.0, 2.0] },
            );
            InitialCondition::Flat.apply(&mut pm);
            let smesh = SpatialMesh::new(
                [-1.0, -1.0, -1.0],
                [1.0, 1.0, 1.0],
                dims_create(comm.size()),
            );
            let f = ownership_fractions(&pm, &smesh);
            assert_eq!(f.len(), 4);
            assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            // A uniform flat sheet splits evenly (up to edge binning).
            for v in &f {
                assert!((v - 0.25).abs() < 0.05, "{f:?}");
            }
            assert!(imbalance(&f) < 1.2);
        });
    }

    #[test]
    fn clustered_interface_shows_imbalance() {
        World::builder(2).run(|comm| {
            let mesh =
                SurfaceMesh::new(&comm, [16, 16], [true, true], 2, [-1.0, -1.0], [1.0, 1.0]);
            let mut pm = ProblemManager::new(
                mesh,
                BoundaryCondition::Periodic { periods: [2.0, 2.0] },
            );
            InitialCondition::Flat.apply(&mut pm);
            // Compress all x positions into the left half.
            let idx: Vec<_> = pm.mesh().owned_indices().collect();
            for (lr, lc, _, _) in idx {
                let x = pm.z().get(lr, lc, 0);
                pm.z_mut().set(lr, lc, 0, -1.0 + (x + 1.0) / 4.0);
            }
            let smesh =
                SpatialMesh::new([-1.0, -1.0, -1.0], [1.0, 1.0, 1.0], [1, 2]);
            let f = ownership_fractions(&pm, &smesh);
            assert!(f[0] > 0.99, "{f:?}");
            assert!(imbalance(&f) > 1.9);
        });
    }

    #[test]
    fn imbalance_edge_cases() {
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0.0, 0.0]), 1.0);
        assert!((imbalance(&[0.25; 4]) - 1.0).abs() < 1e-12);
        assert!((imbalance(&[0.5, 0.5, 0.0, 0.0]) - 2.0).abs() < 1e-12);
    }
}
