//! Message envelopes moved between rank mailboxes.
//!
//! A message payload takes one of four forms:
//!
//! * **Typed** — a `Vec<T>` boxed as `dyn Any`, so the mailbox can be
//!   type-agnostic while transfers stay zero-copy (the vector's heap
//!   buffer moves between threads untouched). Used by the blocking
//!   by-value send path, the ownership-transfer path
//!   ([`crate::Communicator::isend_owned`]), and the **rendezvous**
//!   protocol: slice sends above the eager limit materialise the payload
//!   once into an owned `Vec` that then moves by pointer.
//! * **Shared** — an `Arc<Vec<T>>` cloned per destination, for
//!   multi-destination sends of one buffer
//!   ([`crate::Communicator::isend_shared`], broadcast fan-out). The
//!   sender never copies payload bytes; the *last* receiver to claim the
//!   buffer takes the allocation itself (`Arc::try_unwrap`), earlier
//!   ones clone.
//! * **Pooled** — raw bytes in a [`PooledBuf`] checked out of the sending
//!   rank's [`crate::pool::BufferPool`], tagged with the element
//!   `TypeId`. Used by the **eager** protocol for slice sends at or
//!   below the limit ([`crate::Communicator::isend`]): the sender copies
//!   the slice into a reused envelope, and when the receiver unpacks the
//!   payload the envelope returns to the sender's pool. Restricted to
//!   `T: Copy`.
//! * **Raw** — bytes reconstructed from a wire frame by the shmem/TCP
//!   pollers.
//!
//! The envelope carries the metadata MPI would put on the wire: source
//! rank, tag, and the payload size in bytes (used by the instrumentation
//! layer).

use crate::error::CommError;
use crate::pool::PooledBuf;
use std::any::{Any, TypeId};
use std::sync::Arc;

/// Marker trait for element types that can travel in a message.
///
/// Blanket-implemented for every `Send + 'static` type; the bound exists so
/// signatures read as intent ("this is message data") and so a future
/// serializing transport could narrow it.
pub trait CommData: Send + 'static {}
impl<T: Send + 'static> CommData for T {}

/// The four payload transports.
enum Payload {
    /// An owned `Vec<T>` moved by pointer.
    Typed(Box<dyn Any + Send>),
    /// An `Arc<Vec<T>>` shared with the sender and/or other envelopes of
    /// the same buffer. `take` is the monomorphized claim function
    /// captured at construction: unwrap the allocation when this is the
    /// last reference, clone otherwise.
    Shared {
        arc: Arc<dyn Any + Send + Sync>,
        take: fn(Arc<dyn Any + Send + Sync>) -> Box<dyn Any + Send>,
    },
    /// `count` elements of the type with id `elem`, memcpy'd into a
    /// pooled byte envelope.
    Pooled { buf: PooledBuf, elem: TypeId },
    /// Raw bytes reconstructed from a wire frame (shmem/TCP backends).
    /// Type identity is the envelope's `type_name` — sound across
    /// processes because every rank runs the same binary, and the
    /// sender only produces a wire view for plain-data types (no drop
    /// glue; see [`Envelope::wire_view`]).
    Raw(Vec<u8>),
}

/// Claim a shared buffer: move the allocation out when this envelope
/// holds the last `Arc` reference, clone the contents otherwise.
/// Monomorphized per element type at [`Envelope::from_shared`].
fn shared_take<T: CommData + Clone + Sync>(
    arc: Arc<dyn Any + Send + Sync>,
) -> Box<dyn Any + Send> {
    let typed = arc
        .downcast::<Vec<T>>()
        .expect("shared claim called with foreign payload");
    let v = Arc::try_unwrap(typed).unwrap_or_else(|still_shared| (*still_shared).clone());
    Box::new(v)
}

/// Monomorphized byte view of a `Payload::Typed` buffer. Captured as a
/// plain `fn` pointer at [`Envelope::new`] so the type-erased envelope
/// can be serialized later without specialization. Only instantiated
/// for `T` without drop glue, which is what makes the byte reading (and
/// the receiving side's byte reconstruction) sound.
fn typed_bytes<T: 'static>(any: &(dyn Any + Send)) -> &[u8] {
    let v = any
        .downcast_ref::<Vec<T>>()
        .expect("wire view called with foreign payload");
    // SAFETY: T has no drop glue and no interior references (checked at
    // capture time via needs_drop); viewing its memory as bytes is a
    // plain reinterpretation of initialized POD storage.
    unsafe {
        std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), std::mem::size_of_val(v.as_slice()))
    }
}

/// Intern a wire-received type name so reconstructed envelopes can
/// carry the same `&'static str` the in-process path does. The set of
/// element types a program sends is small and fixed, so the leak is
/// bounded (one allocation per distinct type name per process).
fn intern_type_name(name: &str) -> &'static str {
    use crate::sync::Mutex;
    use std::collections::HashSet;
    use std::sync::OnceLock;
    static NAMES: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let names = NAMES.get_or_init(|| Mutex::new(HashSet::new()));
    let mut set = names.lock();
    if let Some(&interned) = set.get(name) {
        return interned;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// A typed message in flight between two ranks of one communicator.
pub struct Envelope {
    /// Rank of the sender *within the communicator the message was sent on*.
    pub src: usize,
    /// User-chosen matching tag.
    pub tag: u64,
    /// Payload transport (owned vector or pooled bytes).
    payload: Payload,
    /// Payload size in bytes (`len * size_of::<T>()`), for tracing.
    pub bytes: usize,
    /// Number of elements in the payload.
    pub count: usize,
    /// Name of the element type: diagnostics on mismatched receives,
    /// and the cross-process type identity for wire transports (every
    /// rank runs the same binary, so equal names mean equal layouts).
    pub type_name: &'static str,
    /// Size of one element in bytes (`size_of::<T>()`).
    pub elem_size: usize,
    /// Byte view of a `Typed` payload, captured at construction when
    /// the element type is plain data (no drop glue). `None` means the
    /// payload cannot cross a wire transport.
    byte_view: Option<fn(&(dyn Any + Send)) -> &[u8]>,
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("src", &self.src)
            .field("tag", &self.tag)
            .field("bytes", &self.bytes)
            .field("count", &self.count)
            .field("type_name", &self.type_name)
            .field("pooled", &matches!(self.payload, Payload::Pooled { .. }))
            .finish_non_exhaustive()
    }
}

impl Envelope {
    /// Wrap a typed buffer into an envelope (owned-vector transport).
    pub fn new<T: CommData>(src: usize, tag: u64, data: Vec<T>) -> Self {
        let count = data.len();
        let bytes = count * std::mem::size_of::<T>();
        Envelope {
            src,
            tag,
            payload: Payload::Typed(Box::new(data)),
            bytes,
            count,
            type_name: std::any::type_name::<T>(),
            elem_size: std::mem::size_of::<T>(),
            byte_view: (!std::mem::needs_drop::<T>()).then_some(typed_bytes::<T> as _),
        }
    }

    /// Wrap a shared buffer into an envelope (Arc-slice transport). The
    /// sender copies nothing; see the module docs for who ends up owning
    /// the allocation. `T: Clone` is required only for the
    /// earlier-receiver fallback — the last claim is a move.
    pub fn from_shared<T: CommData + Clone + Sync>(src: usize, tag: u64, data: Arc<Vec<T>>) -> Self {
        let count = data.len();
        let bytes = count * std::mem::size_of::<T>();
        Envelope {
            src,
            tag,
            payload: Payload::Shared {
                arc: data,
                take: shared_take::<T>,
            },
            bytes,
            count,
            type_name: std::any::type_name::<T>(),
            elem_size: std::mem::size_of::<T>(),
            byte_view: (!std::mem::needs_drop::<T>()).then_some(typed_bytes::<T> as _),
        }
    }

    /// Copy a slice into a pooled byte envelope (pooled transport). The
    /// `T: Copy` bound is what makes the byte-level round trip sound.
    pub fn from_slice<T: CommData + Copy>(
        src: usize,
        tag: u64,
        data: &[T],
        mut buf: PooledBuf,
    ) -> Self {
        buf.fill_from(data);
        Envelope {
            src,
            tag,
            bytes: buf.len(),
            count: data.len(),
            payload: Payload::Pooled {
                buf,
                elem: TypeId::of::<T>(),
            },
            type_name: std::any::type_name::<T>(),
            elem_size: std::mem::size_of::<T>(),
            byte_view: None, // pooled payloads are already bytes
        }
    }

    /// Serialized view of the payload for wire transports: the raw
    /// bytes. `None` when the element type has drop glue — such a
    /// payload cannot leave the process, and a wire backend asked to
    /// carry one must fail loudly rather than corrupt it.
    pub(crate) fn wire_view(&self) -> Option<&[u8]> {
        match &self.payload {
            Payload::Typed(any) => self.byte_view.map(|view| view(any.as_ref())),
            Payload::Shared { arc, .. } => {
                // Dropping `Sync` from the trait object is a plain
                // coercion; the view fn only needs `Any` to downcast.
                self.byte_view.map(|view| view(arc.as_ref() as &(dyn Any + Send)))
            }
            Payload::Pooled { buf, .. } => Some(&buf.as_slice()[..self.bytes]),
            Payload::Raw(bytes) => Some(bytes),
        }
    }

    /// Reconstruct an envelope from a decoded wire frame. The payload
    /// stays as raw bytes until the receiver claims it with a concrete
    /// type, at which point `type_name` equality (same binary on every
    /// rank) proves the layout matches.
    pub(crate) fn from_wire(
        src: usize,
        tag: u64,
        count: usize,
        elem_size: usize,
        type_name: &str,
        bytes: Vec<u8>,
    ) -> Self {
        debug_assert_eq!(bytes.len(), count * elem_size);
        Envelope {
            src,
            tag,
            bytes: bytes.len(),
            count,
            payload: Payload::Raw(bytes),
            type_name: intern_type_name(type_name),
            elem_size,
            byte_view: None,
        }
    }

    /// Recover the typed buffer, panicking with context on a type mismatch.
    ///
    /// A mismatch is a protocol error between sender and receiver — the
    /// moral equivalent of an MPI datatype mismatch — so, like MPI, we
    /// treat it as fatal. For pooled payloads this copies the bytes out
    /// and (on drop of the internal buffer) returns the envelope to the
    /// sender's pool.
    pub fn into_data<T: CommData>(self) -> Vec<T> {
        self.try_into_data().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Recover the typed buffer, returning [`CommError::TypeMismatch`]
    /// instead of panicking when the element types disagree. Used by the
    /// fallible receive paths, which must surface protocol errors without
    /// tearing the rank down.
    pub fn try_into_data<T: CommData>(self) -> Result<Vec<T>, CommError> {
        let mismatch = CommError::TypeMismatch {
            expected: std::any::type_name::<T>(),
            got: self.type_name,
            src: self.src,
            tag: self.tag,
        };
        match self.payload {
            Payload::Typed(any) => match any.downcast::<Vec<T>>() {
                Ok(v) => Ok(*v),
                Err(_) => Err(mismatch),
            },
            Payload::Shared { arc, take } => match take(arc).downcast::<Vec<T>>() {
                Ok(v) => Ok(*v),
                Err(_) => Err(mismatch),
            },
            Payload::Pooled { buf, elem } => {
                if elem != TypeId::of::<T>() {
                    return Err(mismatch);
                }
                // The TypeId check proves this T is exactly the `T: Copy`
                // the buffer was filled from in `from_slice` (the only
                // constructor of pooled payloads), so reconstructing the
                // values with a byte copy is sound even though the `Copy`
                // bound is not visible on this signature.
                let n = self.count * std::mem::size_of::<T>();
                debug_assert!(n <= buf.len());
                let mut out: Vec<T> = Vec::with_capacity(self.count);
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        buf.as_slice().as_ptr(),
                        out.as_mut_ptr().cast::<u8>(),
                        n,
                    );
                    out.set_len(self.count);
                }
                Ok(out)
            }
            Payload::Raw(bytes) => {
                // Wire frames carry type identity by name: equal names
                // in the same binary mean the same type. The layout and
                // drop checks are defense in depth — a name can only
                // disagree with them across incompatible binaries,
                // which the proc launcher never mixes.
                if self.type_name != std::any::type_name::<T>()
                    || self.elem_size != std::mem::size_of::<T>()
                    || std::mem::needs_drop::<T>()
                {
                    return Err(mismatch);
                }
                debug_assert_eq!(bytes.len(), self.count * self.elem_size);
                let mut out: Vec<T> = Vec::with_capacity(self.count);
                // SAFETY: the sender produced these bytes from a
                // `Vec<T>` of a drop-free T with this exact name and
                // size (the only way a wire view exists), so copying
                // them back into T storage reconstructs the values.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        bytes.as_ptr(),
                        out.as_mut_ptr().cast::<u8>(),
                        bytes.len(),
                    );
                    out.set_len(self.count);
                }
                Ok(out)
            }
        }
    }

    /// Whether this envelope matches a `(src, tag)` selector pair.
    /// `usize::MAX` / `u64::MAX` act as wildcards (ANY_SOURCE / ANY_TAG).
    #[inline]
    pub fn matches(&self, src: usize, tag: u64) -> bool {
        (src == usize::MAX || self.src == src) && (tag == u64::MAX || self.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::BufferPool;
    use std::sync::Arc;

    #[test]
    fn roundtrip_preserves_data_and_metadata() {
        let env = Envelope::new(2, 17, vec![1.0f64, 2.0, 3.0]);
        assert_eq!(env.src, 2);
        assert_eq!(env.tag, 17);
        assert_eq!(env.count, 3);
        assert_eq!(env.bytes, 24);
        let v: Vec<f64> = env.into_data();
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn pooled_roundtrip_preserves_data_and_returns_buffer() {
        let pool = Arc::new(BufferPool::new());
        let (buf, _) = pool.acquire(32);
        let env = Envelope::from_slice(1, 9, &[10u32, 20, 30], buf);
        assert_eq!(env.count, 3);
        assert_eq!(env.bytes, 12);
        let v: Vec<u32> = env.into_data();
        assert_eq!(v, vec![10, 20, 30]);
        // The envelope returned its buffer to the pool on unpack.
        assert_eq!(pool.stats().free, 1);
    }

    #[test]
    fn shared_claims_move_when_last_and_clone_when_not() {
        let buf = Arc::new(vec![1u64, 2, 3]);
        let ptr = buf.as_ptr();
        let e1 = Envelope::from_shared(0, 1, Arc::clone(&buf));
        let e2 = Envelope::from_shared(0, 2, Arc::clone(&buf));
        assert_eq!(e1.bytes, 24);
        assert_eq!(e1.count, 3);
        drop(buf); // only the two envelopes hold the buffer now
        let v1: Vec<u64> = e1.into_data(); // still shared with e2: clones
        assert_eq!(v1, vec![1, 2, 3]);
        assert_ne!(v1.as_ptr(), ptr);
        let v2: Vec<u64> = e2.into_data(); // last reference: moves
        assert_eq!(v2, vec![1, 2, 3]);
        assert_eq!(v2.as_ptr(), ptr);
    }

    #[test]
    fn shared_payloads_have_wire_views_and_reject_type_confusion() {
        let buf = Arc::new(vec![9u32, 8, 7]);
        let env = Envelope::from_shared(2, 5, Arc::clone(&buf));
        let bytes = env.wire_view().expect("u32 is wire-safe").to_vec();
        assert_eq!(bytes.len(), 12);
        let back = Envelope::from_wire(2, 5, env.count, env.elem_size, env.type_name, bytes);
        assert_eq!(back.into_data::<u32>(), vec![9, 8, 7]);
        let err = env.try_into_data::<f32>().unwrap_err();
        assert!(matches!(err, CommError::TypeMismatch { .. }));
    }

    #[test]
    fn matching_with_wildcards() {
        let env = Envelope::new(1, 5, vec![0u8]);
        assert!(env.matches(1, 5));
        assert!(env.matches(usize::MAX, 5));
        assert!(env.matches(1, u64::MAX));
        assert!(env.matches(usize::MAX, u64::MAX));
        assert!(!env.matches(2, 5));
        assert!(!env.matches(1, 6));
    }

    #[test]
    #[should_panic(expected = "message type mismatch")]
    fn type_mismatch_panics_with_context() {
        let env = Envelope::new(0, 0, vec![1u32, 2]);
        let _: Vec<f32> = env.into_data();
    }

    #[test]
    #[should_panic(expected = "message type mismatch")]
    fn pooled_type_mismatch_panics_with_context() {
        let pool = Arc::new(BufferPool::new());
        let (buf, _) = pool.acquire(8);
        let env = Envelope::from_slice(0, 0, &[1u32, 2], buf);
        let _: Vec<f32> = env.into_data();
    }

    #[test]
    fn try_into_data_reports_mismatch_as_error() {
        let env = Envelope::new(4, 11, vec![1u32, 2]);
        let err = env.try_into_data::<f32>().unwrap_err();
        assert!(matches!(
            err,
            CommError::TypeMismatch { src: 4, tag: 11, .. }
        ));
        assert!(err.to_string().contains("message type mismatch"));
    }

    #[test]
    fn wire_view_roundtrips_plain_data() {
        let env = Envelope::new(3, 21, vec![1.5f64, -2.5, 4.0]);
        let bytes = env.wire_view().expect("f64 is wire-safe").to_vec();
        assert_eq!(bytes.len(), 24);
        let back = Envelope::from_wire(env.src, env.tag, env.count, env.elem_size, env.type_name, bytes);
        assert_eq!(back.src, 3);
        assert_eq!(back.tag, 21);
        assert_eq!(back.count, 3);
        assert_eq!(back.into_data::<f64>(), vec![1.5, -2.5, 4.0]);
    }

    #[test]
    fn wire_view_roundtrips_pooled_payloads() {
        let pool = Arc::new(BufferPool::new());
        let (buf, _) = pool.acquire(12);
        let env = Envelope::from_slice(1, 9, &[10u32, 20, 30], buf);
        let bytes = env.wire_view().expect("pooled is already bytes").to_vec();
        let back = Envelope::from_wire(1, 9, env.count, env.elem_size, env.type_name, bytes);
        assert_eq!(back.into_data::<u32>(), vec![10, 20, 30]);
    }

    #[test]
    fn droppy_types_have_no_wire_view() {
        let env = Envelope::new(0, 0, vec![String::from("not"), String::from("wireable")]);
        assert!(env.wire_view().is_none());
        // ...but still round-trip in process.
        assert_eq!(env.into_data::<String>().len(), 2);
    }

    #[test]
    fn wire_reconstruction_rejects_type_confusion() {
        let env = Envelope::new(0, 0, vec![7u32, 8]);
        let bytes = env.wire_view().unwrap().to_vec();
        let back = Envelope::from_wire(0, 0, env.count, env.elem_size, env.type_name, bytes);
        let err = back.try_into_data::<f32>().unwrap_err();
        assert!(matches!(err, CommError::TypeMismatch { .. }));
    }

    #[test]
    fn zero_sized_payloads_are_fine() {
        let env = Envelope::new(0, 0, Vec::<f64>::new());
        assert_eq!(env.bytes, 0);
        assert_eq!(env.count, 0);
        let v: Vec<f64> = env.into_data();
        assert!(v.is_empty());
    }
}
