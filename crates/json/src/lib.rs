//! # beatnik-json — dependency-free JSON for run artifacts
//!
//! The repo's JSON needs are narrow: write/read checkpoints, run logs,
//! scaling tables, and configuration structs, with **bit-exact `f64`
//! round-trips** (checkpoint/restart must resume bitwise-identically).
//! This crate covers exactly that without an external dependency, which
//! keeps the workspace hermetic — it builds with no registry access.
//!
//! * [`Value`] — a JSON document tree.
//! * [`ToJson`] / [`FromJson`] — conversion traits, implemented for the
//!   primitives, arrays, tuples, `Option`, `Vec`, `String`, `PathBuf`.
//! * [`impl_json_struct!`] / [`impl_json_unit_enum!`] — derive-style
//!   macros for plain structs and C-like enums; data-carrying enums
//!   write the two trait impls by hand (externally tagged, matching the
//!   layout serde's derive would have produced, so pre-existing JSON
//!   artifacts stay readable).
//! * [`to_string`], [`to_string_pretty`], [`to_writer`],
//!   [`to_writer_pretty`], [`from_str`] — the serde_json-shaped entry
//!   points.
//!
//! Floats are printed with Rust's shortest-round-trip formatting (`{:?}`)
//! and parsed with `str::parse::<f64>` (correctly rounded), so
//! `f64 → text → f64` is the identity for every finite value. Non-finite
//! floats serialize as `null` and fail to deserialize as numbers.

mod parse;
mod value;
mod write;

pub use parse::parse;
pub use value::Value;

use std::path::PathBuf;

/// Error raised by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }

    /// Wrap the error with the field it occurred in.
    pub fn in_field(self, key: &str) -> Self {
        JsonError {
            msg: format!("field '{key}': {}", self.msg),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Convert a value into a JSON document tree.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Value;
}

/// Convert a JSON document tree back into a value.
pub trait FromJson: Sized {
    /// Parse `self` out of a JSON value.
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

/// Serialize to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    write::compact(&value.to_json())
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    write::pretty(&value.to_json())
}

/// Serialize compactly into a writer.
pub fn to_writer<W: std::io::Write, T: ToJson + ?Sized>(
    mut w: W,
    value: &T,
) -> std::io::Result<()> {
    w.write_all(to_string(value).as_bytes())
}

/// Serialize with indentation into a writer.
pub fn to_writer_pretty<W: std::io::Write, T: ToJson + ?Sized>(
    mut w: W,
    value: &T,
) -> std::io::Result<()> {
    w.write_all(to_string_pretty(value).as_bytes())
}

/// Parse a value out of JSON text.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

/// Read `key` from an object, converting to `T`.
///
/// A missing key is handed to `T` as [`Value::Null`], so `Option` fields
/// treat absent and `null` identically (serde's behavior); every other
/// type reports a missing-field error.
pub fn field<T: FromJson>(v: &Value, key: &str) -> Result<T, JsonError> {
    let Value::Object(pairs) = v else {
        return Err(JsonError::new(format!(
            "expected object with field '{key}', got {}",
            v.kind()
        )));
    };
    match pairs.iter().find(|(k, _)| k == key) {
        Some((_, val)) => T::from_json(val).map_err(|e| e.in_field(key)),
        None => T::from_json(&Value::Null)
            .map_err(|_| JsonError::new(format!("missing field '{key}'"))),
    }
}

// ---------------------------------------------------------------------
// Trait impls for the building-block types.
// ---------------------------------------------------------------------

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_f64()
            .ok_or_else(|| JsonError::new(format!("expected number, got {}", v.kind())))
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let n = v.as_u64().ok_or_else(|| {
                    JsonError::new(format!("expected unsigned integer, got {}", v.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    JsonError::new(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )+};
}
impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let n = v.as_i64().ok_or_else(|| {
                    JsonError::new(format!("expected integer, got {}", v.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    JsonError::new(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )+};
}
impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(JsonError::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for PathBuf {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}

impl FromJson for PathBuf {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(PathBuf::from(String::from_json(v)?))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(x) => x.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(JsonError::new(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let items = Vec::<T>::from_json(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| JsonError::new(format!("expected array of {N} elements, got {got}")))
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            other => Err(JsonError::new(format!(
                "expected 2-element array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_json(&items[0])?,
                B::from_json(&items[1])?,
                C::from_json(&items[2])?,
            )),
            other => Err(JsonError::new(format!(
                "expected 3-element array, got {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Derive-style macros.
// ---------------------------------------------------------------------

/// Implement [`ToJson`]/[`FromJson`] for a plain struct with named
/// fields: `impl_json_struct!(Params { atwood, gravity, ... });`.
/// The JSON shape is the object serde's derive would produce.
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field))),+
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Value) -> Result<Self, $crate::JsonError> {
                Ok($ty {
                    $($field: $crate::field(v, stringify!($field))?),+
                })
            }
        }
    };
}

/// Implement [`ToJson`]/[`FromJson`] for a C-like enum (unit variants
/// only): `impl_json_unit_enum!(Order { Low, Medium, High });`.
/// Variants serialize as bare strings (serde's externally-tagged form).
#[macro_export]
macro_rules! impl_json_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                match self {
                    $($ty::$variant => $crate::Value::Str(stringify!($variant).to_string())),+
                }
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Value) -> Result<Self, $crate::JsonError> {
                match v {
                    $($crate::Value::Str(s) if s == stringify!($variant) => Ok($ty::$variant),)+
                    other => Err($crate::JsonError::new(format!(
                        "unknown {} variant: {:?}", stringify!($ty), other
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Demo {
        n: usize,
        x: f64,
        name: String,
        tags: Vec<u64>,
        opt: Option<f64>,
    }
    impl_json_struct!(Demo { n, x, name, tags, opt });

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Tri {
        A,
        B,
        C,
    }
    impl_json_unit_enum!(Tri { A, B, C });

    fn demo() -> Demo {
        Demo {
            n: 42,
            x: 0.1 + 0.2, // not representable exactly: exercises round-trip
            name: "hello \"world\"\n".to_string(),
            tags: vec![1, u64::MAX],
            opt: None,
        }
    }

    #[test]
    fn struct_roundtrip_compact_and_pretty() {
        let d = demo();
        let back: Demo = from_str(&to_string(&d)).unwrap();
        assert_eq!(back, d);
        let back: Demo = from_str(&to_string_pretty(&d)).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn option_field_absent_or_null_reads_as_none() {
        let d: Demo = from_str(r#"{"n":1,"x":2.0,"name":"a","tags":[],"opt":null}"#).unwrap();
        assert_eq!(d.opt, None);
        let d: Demo = from_str(r#"{"n":1,"x":2.0,"name":"a","tags":[]}"#).unwrap();
        assert_eq!(d.opt, None);
        let d: Demo = from_str(r#"{"n":1,"x":2.0,"name":"a","tags":[],"opt":3.5}"#).unwrap();
        assert_eq!(d.opt, Some(3.5));
    }

    #[test]
    fn missing_required_field_errors() {
        let err = from_str::<Demo>(r#"{"x":2.0,"name":"a","tags":[]}"#).unwrap_err();
        assert!(err.to_string().contains("missing field 'n'"), "{err}");
    }

    #[test]
    fn unit_enum_roundtrip() {
        for t in [Tri::A, Tri::B, Tri::C] {
            let back: Tri = from_str(&to_string(&t)).unwrap();
            assert_eq!(back, t);
        }
        assert!(from_str::<Tri>("\"D\"").is_err());
    }

    #[test]
    fn f64_bit_exact_roundtrip() {
        // A spread of awkward values, including subnormals and the
        // extremes; each must survive text round-trip bit-for-bit.
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 8.0,
            f64::MAX,
            -2.225_073_858_507_201e-308,
            6.02e23,
            -0.0,
        ] {
            let back: f64 = from_str(&to_string(&x)).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x:e}");
        }
    }

    #[test]
    fn arrays_and_tuples() {
        let v: ([f64; 3], [f64; 2]) = ([1.5, -2.0, 0.25], [9.0, 8.0]);
        let nodes = vec![v, ([0.0; 3], [0.0; 2])];
        let back: Vec<([f64; 3], [f64; 2])> = from_str(&to_string(&nodes)).unwrap();
        assert_eq!(back, nodes);
    }

    #[test]
    fn u64_beyond_f64_precision_survives() {
        let seed: u64 = (1 << 60) + 1; // not representable as f64
        let back: u64 = from_str(&to_string(&seed)).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn writer_entry_points() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &demo()).unwrap();
        let back: Demo = from_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(back, demo());
    }
}
