//! The rocket-rig driver binary: Beatnik-RS's equivalent of the paper's
//! ~700-line driver program. Launches `--ranks` thread-ranks, runs the
//! configured deck, prints per-step diagnostics, and optionally writes
//! VTK dumps and a JSON run log.

use beatnik_comm::telemetry::DEFAULT_SPAN_CAPACITY;
use beatnik_comm::World;
use beatnik_rocketrig::{parse_args, run_rig, run_rig_ft, CliOptions, FT_RECV_TIMEOUT};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        run_serve(&args[1..]);
        return;
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.contains("USAGE") { 0 } else { 2 });
        }
    };

    if opts.print_config {
        let mut config = beatnik_comm::CommConfig::from_env();
        config.transport = opts.transport;
        println!("{config}");
        return;
    }

    let cfg = opts.config.clone();
    if opts.procs {
        run_procs(&opts, &cfg, &args);
        return;
    }
    println!(
        "rocketrig: {:?}, {} order, {}x{} mesh, {} steps, {} ranks, {}",
        cfg.deck, cfg.order, cfg.mesh_n, cfg.mesh_n, cfg.steps, opts.ranks, cfg.fft
    );

    let start = std::time::Instant::now();
    let (log, trace, timeline) = if opts.fault_tolerant() {
        let plan = opts.fault_spec.as_deref().map(|s| {
            beatnik_comm::FaultPlan::parse(s, beatnik_comm::seed_from_env())
                .expect("spec validated during argument parsing")
        });
        std::fs::create_dir_all(&cfg.out_dir).expect("cannot create output dir");
        let ckpt = cfg.out_dir.join("checkpoint.json");
        let _ = std::fs::remove_file(&ckpt); // stale state must not leak in
        let every = opts.checkpoint_every;
        let report = {
            let (cfg2, ckpt2) = (cfg.clone(), ckpt.clone());
            let mut builder = World::builder(opts.ranks)
                .transport(opts.transport)
                .recv_timeout(FT_RECV_TIMEOUT);
            if opts.profiling() {
                builder = builder.span_capacity(DEFAULT_SPAN_CAPACITY);
            }
            if let Some(p) = plan.as_ref() {
                builder = builder.fault_plan(p);
            }
            builder.run_ft(move |comm| run_rig_ft(comm, &cfg2, every, &ckpt2))
        };
        if !report.killed.is_empty() {
            println!("ranks killed by fault injection: {:?}", report.killed);
        }
        for ev in &report.fault_events {
            println!("fault: {ev}");
        }
        if !report.fault_events.is_empty() {
            let path = cfg.out_dir.join("fault-events.json");
            write_fault_events(&report.fault_events, &path)
                .expect("failed to write fault events");
            println!("fault events written to {}", path.display());
        }
        let log = report
            .results
            .into_iter()
            .flatten()
            .next()
            .expect("no surviving rank produced a log");
        (log, report.trace, report.timeline)
    } else {
        let cfg2 = cfg.clone();
        if opts.profiling() {
            let (logs, trace, timeline) = World::builder(opts.ranks)
                .transport(opts.transport)
                .run_profiled(move |comm| run_rig(&comm, &cfg2));
            let log = logs.into_iter().next().expect("no rank output");
            (log, trace, Some(timeline))
        } else {
            let (logs, trace) = World::builder(opts.ranks)
                .transport(opts.transport)
                .run_traced(move |comm| run_rig(&comm, &cfg2));
            let log = logs.into_iter().next().expect("no rank output");
            (log, trace, None)
        }
    };
    let elapsed = start.elapsed();

    for rec in &log.steps {
        println!(
            "step {:5}  t={:.5}  amplitude={:.6e}  z=[{:+.4e}, {:+.4e}]  enstrophy={:.4e}",
            rec.step,
            rec.time,
            rec.diagnostics.amplitude,
            rec.diagnostics.z_min,
            rec.diagnostics.z_max,
            rec.diagnostics.enstrophy
        );
        if let Some(own) = &rec.ownership {
            let max = own.iter().cloned().fold(0.0f64, f64::max);
            println!(
                "            ownership: max {:.3}% of points on one rank ({} ranks)",
                max * 100.0,
                own.len()
            );
        }
    }

    println!(
        "\ncommunication summary (all ranks, eager limit {} B):\n{}",
        beatnik_comm::eager_limit_from_env(),
        trace.summary()
    );
    if opts.print_matrix {
        println!("{}", trace.matrix_text());
    }
    println!("wall time: {:.3} s", elapsed.as_secs_f64());

    if let Some(timeline) = &timeline {
        if opts.profile_summary {
            println!("\ntelemetry summary:\n{}", timeline.summary());
        }
        if let Some(path) = &opts.profile_path {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            beatnik_io::write_chrome_trace(timeline, path).expect("failed to write trace");
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("profile");
            let phases = path.with_file_name(format!("{stem}-phases.csv"));
            let skew = path.with_file_name(format!("{stem}-skew.csv"));
            beatnik_io::write_phase_csv(timeline, &phases).expect("failed to write phase CSV");
            beatnik_io::write_skew_csv(timeline, &skew).expect("failed to write skew CSV");
            println!(
                "profile written to {} (open in chrome://tracing or Perfetto); \
                 tables: {}, {}",
                path.display(),
                phases.display(),
                skew.display()
            );
        }
    }

    if let Some(mpath) = &cfg.metrics_path {
        // The live files were flushed by rank 0 during the run; add the
        // post-run artifacts that need the aggregated trace/timeline.
        let stem = mpath.file_stem().and_then(|s| s.to_str()).unwrap_or("metrics");
        let matrix = mpath.with_file_name(format!("{stem}-matrix.csv"));
        beatnik_io::write_comm_matrix_csv(&trace, &matrix)
            .expect("failed to write comm-matrix CSV");
        let mut outputs = format!("{}, {}", mpath.display(), matrix.display());
        if let Some(timeline) = &timeline {
            let cp = timeline.critical_path("step");
            let cp_path = mpath.with_file_name("critical-path.json");
            beatnik_io::write_critical_path_json(&cp, &cp_path)
                .expect("failed to write critical-path JSON");
            outputs.push_str(&format!(", {}", cp_path.display()));
        }
        println!("metrics written to {outputs}");
    }

    if let Some(path) = opts.log_path {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        log.write_json(&path).expect("failed to write run log");
        println!("run log written to {}", path.display());
    }
}

/// Multi-process launch (`--procs`): one OS process per rank via
/// [`beatnik_comm::proc::spmd`]. Children re-execute this binary with
/// the same argv and are routed back here; only the parent (world
/// rank 0) returns to print the log. The cross-rank trace summary is
/// unavailable in this mode — each process owns only its own trace.
fn run_procs(opts: &CliOptions, cfg: &beatnik_rocketrig::RigConfig, args: &[String]) {
    let parent = beatnik_comm::proc::child_rank().is_none();
    if parent {
        println!(
            "rocketrig: {:?}, {} order, {}x{} mesh, {} steps, {} process-ranks over {}, {}",
            cfg.deck, cfg.order, cfg.mesh_n, cfg.mesh_n, cfg.steps, opts.ranks, opts.transport,
            cfg.fft
        );
    }
    let child_args: Vec<&str> = args.iter().map(String::as_str).collect();
    let start = std::time::Instant::now();
    let cfg2 = cfg.clone();
    let (log, _killed) = beatnik_comm::proc::spmd(opts.ranks, opts.transport, &child_args, {
        move |comm| run_rig(&comm, &cfg2)
    });
    let elapsed = start.elapsed();
    for rec in &log.steps {
        println!(
            "step {:5}  t={:.5}  amplitude={:.6e}  z=[{:+.4e}, {:+.4e}]  enstrophy={:.4e}",
            rec.step,
            rec.time,
            rec.diagnostics.amplitude,
            rec.diagnostics.z_min,
            rec.diagnostics.z_max,
            rec.diagnostics.enstrophy
        );
    }
    println!("wall time: {:.3} s", elapsed.as_secs_f64());
    if let Some(path) = &opts.log_path {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        log.write_json(path).expect("failed to write run log");
        println!("run log written to {}", path.display());
    }
}

/// Write the injected-fault ledger as a JSON array (one object per
/// fault, in `(rank, op_index)` order — byte-identical across replays
/// with the same plan and seed).
fn write_fault_events(
    events: &[beatnik_comm::FaultEvent],
    path: &std::path::Path,
) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "[")?;
    for (i, ev) in events.iter().enumerate() {
        let step = ev
            .step
            .map(|s| s.to_string())
            .unwrap_or_else(|| "null".into());
        write!(
            f,
            "  {{\"kind\": \"{}\", \"rank\": {}, \"op_index\": {}, \"step\": {}, \"delay_ns\": {}}}",
            ev.kind, ev.rank, ev.op_index, step, ev.delay_ns
        )?;
        writeln!(f, "{}", if i + 1 < events.len() { "," } else { "" })?;
    }
    writeln!(f, "]")
}

/// The `rocketrig serve` subcommand: a long-running multi-tenant
/// simulation service. Blocks until SIGTERM/SIGINT, then drains the
/// scheduler (queued jobs cancel, running jobs checkpoint and stop)
/// before exiting 0.
fn run_serve(args: &[String]) {
    use beatnik_comm::telemetry::metrics::MetricsRegistry;
    use beatnik_rocketrig::{parse_serve_args, RigRunner};
    use beatnik_serve::{serve, JobLimits, Scheduler, SchedulerConfig};
    use std::sync::Arc;

    let opts = match parse_serve_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.starts_with("rocketrig serve") { 0 } else { 2 });
        }
    };

    let cfg = SchedulerConfig {
        pool_ranks: opts.pool_ranks,
        max_queue: opts.max_queue,
        limits: JobLimits {
            max_mesh_n: opts.max_mesh_n,
            max_steps: opts.max_steps,
            pool_ranks: opts.pool_ranks,
        },
        ckpt_dir: opts.ckpt_dir.clone(),
    };
    let registry = Arc::new(MetricsRegistry::new());
    let scheduler = Arc::new(Scheduler::new(cfg, registry, Arc::new(RigRunner::new())));
    let handle = match serve(opts.addr.as_str(), scheduler) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("rocketrig serve: cannot listen on {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    println!(
        "rocketrig serve: listening on http://{} ({} rank pool, queue {}, checkpoints in {})",
        handle.addr(),
        opts.pool_ranks,
        opts.max_queue,
        opts.ckpt_dir.display(),
    );

    sig::install();
    while !sig::requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    println!("rocketrig serve: signal received, draining");
    handle.shutdown();
    println!("rocketrig serve: bye");
}

/// Minimal libc-free SIGTERM/SIGINT hookup (same `extern "C"` approach
/// as the shmem transport's mmap bindings). The handler only flips an
/// atomic — all real work happens on the main thread.
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    pub fn requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}
