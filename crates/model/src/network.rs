//! Point-to-point network cost model (alpha–beta with LogGP-style
//! per-message overhead and node-level injection sharing).

use crate::machine::Machine;
use beatnik_telemetry::sizebins;

/// Network model specialized to a job of `ranks` ranks on a given machine.
///
/// Cost of a single message of `n` bytes between two ranks:
///
/// ```text
/// T(n) = α + o + n / β_eff
/// ```
///
/// where `α` is wire latency, `o` per-message software overhead, and
/// `β_eff` the bandwidth the sending rank actually gets: intra-node
/// bandwidth when the job fits on one node, otherwise the node NIC
/// bandwidth divided by the ranks sharing it.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    machine: Machine,
    ranks: usize,
}

impl NetworkModel {
    /// Build a model for `ranks` ranks on `machine`.
    pub fn new(machine: &Machine, ranks: usize) -> Self {
        assert!(ranks > 0, "network model needs at least one rank");
        NetworkModel {
            machine: machine.clone(),
            ranks,
        }
    }

    /// The machine this model was built for.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Job size in ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Latency of one message hop for this job size.
    pub fn latency(&self) -> f64 {
        if self.machine.single_node(self.ranks) {
            self.machine.intra_node_latency
        } else {
            self.machine.nic_latency
        }
    }

    /// Per-message software overhead.
    pub fn overhead(&self) -> f64 {
        self.machine.msg_overhead
    }

    /// Effective point-to-point bandwidth available to one rank when all
    /// ranks of the job communicate simultaneously (the common case in
    /// halo exchanges and transposes).
    pub fn effective_bandwidth(&self) -> f64 {
        if self.machine.single_node(self.ranks) {
            self.machine.intra_node_bandwidth
        } else {
            // The node NIC is shared by every on-node rank talking off-node.
            self.machine.nic_bandwidth / self.machine.gpus_per_node as f64
        }
    }

    /// Time for one `bytes`-byte message under concurrent communication.
    pub fn p2p_time(&self, bytes: usize) -> f64 {
        self.latency() + self.overhead() + bytes as f64 / self.effective_bandwidth()
    }

    /// Total time for the messages of a measured size histogram (the
    /// shared [`sizebins`] buckets recorded per-op by
    /// `beatnik_comm::RankTrace`): each bucket's count is priced at the
    /// bucket's representative (midpoint) size. This is how a traced run
    /// feeds the analytic model without replaying individual messages.
    pub fn histogram_time(&self, hist: &[u64; sizebins::NUM_BUCKETS]) -> f64 {
        hist.iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| c as f64 * self.p2p_time(sizebins::midpoint(i) as usize))
            .sum()
    }

    /// Time for `count` back-to-back messages of `bytes` each from one
    /// rank (pipelined: latency paid once, overhead per message).
    pub fn burst_time(&self, count: usize, bytes: usize) -> f64 {
        if count == 0 {
            return 0.0;
        }
        self.latency()
            + count as f64 * (self.overhead() + bytes as f64 / self.effective_bandwidth())
    }

    /// Congestion multiplier for *unscheduled* traffic where `msgs`
    /// messages from each rank contend in the fabric at once (e.g. the
    /// direct all-to-all). Scheduled exchanges (pairwise, ring) keep one
    /// message per link and get factor 1.
    ///
    /// Model: at one or two nodes, unscheduled traffic only contends at
    /// the NICs (already captured by [`NetworkModel::effective_bandwidth`])
    /// and the factor is 1. As node count grows, the P−1 concurrent flows
    /// per rank increasingly collide in the fabric core: the factor ramps
    /// with `log2(nodes)` toward `1/bisection_factor` plus a spread term
    /// growing logarithmically with the number of simultaneous messages —
    /// the empirically observed behaviour of unscheduled all-to-alls.
    pub fn congestion_factor(&self, msgs_per_rank: usize) -> f64 {
        if self.machine.single_node(self.ranks) || msgs_per_rank <= 1 {
            return 1.0;
        }
        let nodes = self.machine.nodes_for(self.ranks) as f64;
        // 0 at 2 nodes, saturating at 1 around 256 nodes.
        let ramp = (((nodes.log2()) - 1.0) / 7.0).clamp(0.0, 1.0);
        let spread = (msgs_per_rank as f64).log2().max(1.0);
        let taper = 1.0 / self.machine.bisection_factor;
        1.0 + ramp * ((taper - 1.0) + 0.12 * spread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn p2p_time_is_monotone_in_bytes() {
        let net = NetworkModel::new(&Machine::lassen(), 16);
        let t1 = net.p2p_time(1 << 10);
        let t2 = net.p2p_time(1 << 20);
        let t3 = net.p2p_time(1 << 26);
        assert!(t1 < t2 && t2 < t3);
    }

    #[test]
    fn single_node_jobs_use_fast_path() {
        let m = Machine::lassen();
        let small = NetworkModel::new(&m, 4);
        let large = NetworkModel::new(&m, 8);
        assert!(small.effective_bandwidth() > large.effective_bandwidth());
        assert!(small.latency() < large.latency());
        // Same message is cheaper inside a node.
        assert!(small.p2p_time(1 << 20) < large.p2p_time(1 << 20));
    }

    #[test]
    fn nic_sharing_divides_bandwidth() {
        let m = Machine::lassen();
        let net = NetworkModel::new(&m, 64);
        assert!((net.effective_bandwidth() - m.nic_bandwidth / 4.0).abs() < 1.0);
    }

    #[test]
    fn burst_amortizes_latency() {
        let net = NetworkModel::new(&Machine::lassen(), 16);
        let single = net.p2p_time(1 << 16);
        let burst = net.burst_time(10, 1 << 16);
        assert!(burst < 10.0 * single);
        assert!(burst > 9.0 * (1 << 16) as f64 / net.effective_bandwidth());
        assert_eq!(net.burst_time(0, 1 << 16), 0.0);
    }

    #[test]
    fn histogram_time_prices_buckets_at_midpoints() {
        use beatnik_telemetry::sizebins;
        let net = NetworkModel::new(&Machine::lassen(), 16);
        let mut hist = [0u64; sizebins::NUM_BUCKETS];
        assert_eq!(net.histogram_time(&hist), 0.0);
        let b = sizebins::bucket_of(1 << 16);
        hist[b] = 10;
        let expect = 10.0 * net.p2p_time(sizebins::midpoint(b) as usize);
        assert!((net.histogram_time(&hist) - expect).abs() < 1e-15);
        // Adding messages in another bucket adds their cost.
        hist[0] = 5;
        assert!(net.histogram_time(&hist) > expect);
    }

    #[test]
    fn congestion_grows_with_unscheduled_messages() {
        let net = NetworkModel::new(&Machine::lassen(), 1024);
        let c1 = net.congestion_factor(1);
        let c32 = net.congestion_factor(32);
        let c1024 = net.congestion_factor(1023);
        assert_eq!(c1, 1.0);
        assert!(c32 > 1.0);
        assert!(c1024 > c32);
        // Intra-node jobs never congest the fabric.
        let intra = NetworkModel::new(&Machine::lassen(), 4);
        assert_eq!(intra.congestion_factor(1000), 1.0);
    }
}
