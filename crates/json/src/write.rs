//! JSON writers: compact and 2-space-indented pretty output.
//!
//! Floats use Rust's `{:?}` formatting — the shortest decimal string
//! that round-trips to the same bits — which is what makes checkpoint
//! files bit-exact. Non-finite floats have no JSON representation and
//! are written as `null` (serde_json's `to_value` behavior).

use crate::Value;
use std::fmt::Write as _;

/// Serialize without whitespace.
pub fn compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Serialize with 2-space indentation.
pub fn pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, x, d| {
            write_value(o, x, indent, d)
        }),
        Value::Object(pairs) => {
            write_seq(out, pairs.iter(), indent, depth, ('{', '}'), |o, (k, x), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            })
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * depth));
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `{:?}` prints shortest-round-trip and always marks the value as a
    // float ("1.0", "1e300"), so the parser reads it back as Float.
    let _ = write!(out, "{x:?}");
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_output_shape() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::UInt(1), Value::Float(2.0)])),
            ("b".into(), Value::Str("x\"y".into())),
        ]);
        assert_eq!(compact(&v), r#"{"a":[1,2.0],"b":"x\"y"}"#);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = Value::Object(vec![(
            "steps".into(),
            Value::Array(vec![Value::Object(vec![("n".into(), Value::UInt(3))])]),
        )]);
        let text = pretty(&v);
        assert!(text.contains("\n  \"steps\": [\n"));
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn empty_containers_stay_tight() {
        assert_eq!(pretty(&Value::Array(vec![])), "[]");
        assert_eq!(pretty(&Value::Object(vec![])), "{}");
    }

    #[test]
    fn non_finite_floats_write_null() {
        assert_eq!(compact(&Value::Float(f64::NAN)), "null");
        assert_eq!(compact(&Value::Float(f64::INFINITY)), "null");
    }

    #[test]
    fn control_characters_escape() {
        assert_eq!(compact(&Value::Str("\u{0001}".into())), "\"\\u0001\"");
    }
}
