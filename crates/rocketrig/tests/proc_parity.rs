//! Numerical parity across process boundaries: the same deck run on
//! two thread-ranks in one process and on two OS processes over the
//! shared-memory transport must produce the same physics — every
//! diagnostic matches to 1e-8. This is the end-to-end proof that wire
//! serialization, mailbox routing, and collective algorithms are
//! transparent to the solver.
#![cfg(unix)]

use beatnik_comm::{proc, TransportKind, World};
use beatnik_rocketrig::{run_rig, RigConfig};

fn small_cfg() -> RigConfig {
    RigConfig {
        mesh_n: 16,
        steps: 3,
        ..RigConfig::default()
    }
}

#[test]
fn two_process_shmem_run_matches_single_process() {
    // Children re-enter here and are consumed by spmd before the
    // single-process reference would run.
    let run_spmd = || {
        let cfg = small_cfg();
        proc::spmd(
            2,
            TransportKind::Shmem,
            &[
                "two_process_shmem_run_matches_single_process",
                "--exact",
                "--nocapture",
                "--test-threads=1",
            ],
            move |comm| run_rig(&comm, &cfg),
        )
    };
    if proc::child_rank().is_some() {
        run_spmd();
        unreachable!("spmd exits the process in a child rank");
    }

    let cfg = small_cfg();
    let reference = World::builder(2)
        .run(move |comm| run_rig(&comm, &cfg))
        .into_iter()
        .next()
        .expect("rank 0 log");

    let (log, killed) = run_spmd();
    assert!(killed.is_empty());

    assert_eq!(log.steps.len(), reference.steps.len());
    for (a, b) in log.steps.iter().zip(&reference.steps) {
        assert_eq!(a.step, b.step);
        assert!((a.time - b.time).abs() < 1e-8, "time diverged at step {}", a.step);
        for (name, x, y) in [
            ("amplitude", a.diagnostics.amplitude, b.diagnostics.amplitude),
            ("z_min", a.diagnostics.z_min, b.diagnostics.z_min),
            ("z_max", a.diagnostics.z_max, b.diagnostics.z_max),
            ("enstrophy", a.diagnostics.enstrophy, b.diagnostics.enstrophy),
        ] {
            assert!(
                (x - y).abs() < 1e-8,
                "{name} diverged at step {}: {x} vs {y}",
                a.step
            );
        }
    }
}
