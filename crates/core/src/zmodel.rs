//! The Z-Model derivative kernels (paper §3.1, `ZModel` class).
//!
//! `ZModel::derivatives` computes `(∂t z, ∂t w)` for every owned surface
//! node. It never communicates directly — exactly as the paper describes,
//! it *invokes* components that do: the surface-mesh halo exchange, the
//! distributed FFT (low/medium order), and a Birkhoff–Rott solver
//! (medium/high order).

use crate::br::{BrPoint, BrSolver};
use crate::geometry;
use crate::order::Order;
use crate::params::Params;
use crate::problem::ProblemManager;
use beatnik_dfft::{DistributedFft2d, FftConfig, Rect};
use beatnik_fft::spectral::wavenumbers;
use beatnik_fft::Complex;
use beatnik_mesh::stencil::{ddx4, ddy4, laplacian9};
use beatnik_mesh::Field;

/// The Z-Model solver for one rank.
pub struct ZModel {
    order: Order,
    params: Params,
    br: Option<Box<dyn BrSolver>>,
    dfft: Option<DistributedFft2d>,
    /// Global wavenumber tables (reference space): `kx[global col]`,
    /// `ky[global row]`.
    kx: Vec<f64>,
    ky: Vec<f64>,
    /// Global node counts (for Nyquist detection).
    global: [usize; 2],
}

impl ZModel {
    /// Build a Z-Model for the given problem. Collective (constructs the
    /// distributed FFT when the order needs one).
    ///
    /// # Panics
    /// Panics if the order needs a BR solver and none is given, or needs
    /// FFTs and the problem is not periodic.
    pub fn new(
        pm: &ProblemManager,
        order: Order,
        params: Params,
        br: Option<Box<dyn BrSolver>>,
        fft_config: FftConfig,
    ) -> Self {
        params.validate().expect("invalid model parameters");
        if order.needs_br_solver() {
            assert!(
                br.is_some(),
                "{order}-order model requires a Birkhoff-Rott solver"
            );
        }
        let mesh = pm.mesh();
        let [nr, nc] = mesh.global();
        let [ly, lx] = mesh.lengths();
        let dfft = if order.needs_fft() {
            assert!(
                pm.bc().is_periodic(),
                "{order}-order model requires periodic boundaries (paper §4)"
            );
            let plan = DistributedFft2d::new(
                mesh.comm(),
                mesh.partition().dims,
                nr,
                nc,
                fft_config,
            );
            // The FFT block layout must coincide with the mesh partition.
            let rect = plan.local_rect();
            assert_eq!(rect.rows, mesh.own_rows(), "fft/mesh row layout mismatch");
            assert_eq!(rect.cols, mesh.own_cols(), "fft/mesh col layout mismatch");
            Some(plan)
        } else {
            None
        };
        ZModel {
            order,
            params,
            br,
            dfft,
            kx: wavenumbers(nc, lx),
            ky: wavenumbers(nr, ly),
            global: [nr, nc],
        }
    }

    /// The configured order.
    pub fn order(&self) -> Order {
        self.order
    }

    /// The model parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Compute `(∂t z, ∂t w)` into `zdot` (3 comps) and `wdot` (2 comps),
    /// refreshing halos first. Halo entries of the outputs are zeroed.
    /// Collective.
    pub fn derivatives(&self, pm: &mut ProblemManager, zdot: &mut Field, wdot: &mut Field) {
        pm.halo_all();
        let pm = &*pm;
        let mesh = pm.mesh();
        let [dy, dx] = mesh.spacing();
        let da = dy * dx;
        let n_own = mesh.owned_count();
        let z = pm.z();
        let w = pm.w();

        // --- geometry at owned nodes -----------------------------------
        let mut normals = Vec::with_capacity(n_own);
        for (lr, lc, _, _) in mesh.owned_indices() {
            normals.push(geometry::unit_normal(z, lr, lc, dy, dx));
        }

        // --- interface velocity ----------------------------------------
        let vel: Vec<[f64; 3]> = match self.order {
            Order::Low => {
                // Transposed-layout spectra: the multipliers are diagonal
                // in k, so staying in the intermediate layout saves a
                // third of the FFT reshapes (heFFTe's transposed-output
                // optimization).
                let (rect, w1_spec) = self.forward_comp(pm, w, 0);
                let (_, w2_spec) = self.forward_comp(pm, w, 1);
                let riesz = self.riesz_block(&w1_spec, &w2_spec, &rect);
                let w3 = self.inverse_re(riesz);
                w3.iter()
                    .zip(&normals)
                    .map(|(&m, n)| [m * n[0], m * n[1], m * n[2]])
                    .collect()
            }
            Order::Medium | Order::High => {
                let mut points = Vec::with_capacity(n_own);
                for (lr, lc, _, _) in mesh.owned_indices() {
                    let p = z.node(lr, lc);
                    let s = geometry::sheet_strength(z, w, lr, lc, dy, dx);
                    points.push(BrPoint {
                        pos: [p[0], p[1], p[2]],
                        strength: [s[0] * da, s[1] * da, s[2] * da],
                    });
                }
                self.br
                    .as_ref()
                    .expect("BR solver required")
                    .velocities(mesh.comm(), &points, self.params.epsilon)
            }
        };

        // --- ∂t z = V ---------------------------------------------------
        zdot.fill(0.0);
        for ((lr, lc, _, _), v) in mesh.owned_indices().zip(&vel) {
            zdot.set_node(lr, lc, v);
        }

        // --- ∂t w -------------------------------------------------------
        // S = g·z₃ − |V|²/8; ∂t w = 2A·(∂₂S, −∂₁S) + μ·Δw.
        let a2 = 2.0 * self.params.atwood;
        let mu = self.params.mu;
        let g = self.params.gravity;
        let s_vals: Vec<f64> = mesh
            .owned_indices()
            .zip(&vel)
            .map(|((lr, lc, _, _), v)| {
                let z3 = z.get(lr, lc, 2);
                let v2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
                g * z3 - v2 / 8.0
            })
            .collect();

        wdot.fill(0.0);
        match self.order {
            Order::High => {
                // Stencil path: S needs halos of its own.
                let mut s_field = mesh.make_field(1);
                for ((lr, lc, _, _), &s) in mesh.owned_indices().zip(&s_vals) {
                    s_field.set(lr, lc, 0, s);
                }
                pm.halo_aux(&mut s_field);
                for (lr, lc, _, _) in mesh.owned_indices() {
                    let ds_dx = ddx4(&s_field, lr, lc, 0, dx);
                    let ds_dy = ddy4(&s_field, lr, lc, 0, dy);
                    let lap1 = laplacian9(w, lr, lc, 0, dx);
                    let lap2 = laplacian9(w, lr, lc, 1, dx);
                    wdot.set(lr, lc, 0, a2 * ds_dy + mu * lap1);
                    wdot.set(lr, lc, 1, -a2 * ds_dx + mu * lap2);
                }
            }
            Order::Low | Order::Medium => {
                // Spectral path ("the medium-order model uses FFTs for
                // calculating changes in vorticity", paper §6), in the
                // transposed layout throughout.
                let (rect, s_spec) = self.forward_vals(&s_vals);
                let mut sx = s_spec.clone();
                self.mul_ik(&mut sx, &rect, Axis::X);
                let mut sy = s_spec;
                self.mul_ik(&mut sy, &rect, Axis::Y);
                let ds_dx = self.inverse_re(sx);
                let ds_dy = self.inverse_re(sy);
                let (_, mut l1) = self.forward_comp(pm, w, 0);
                self.mul_minus_k2(&mut l1, &rect);
                let (_, mut l2) = self.forward_comp(pm, w, 1);
                self.mul_minus_k2(&mut l2, &rect);
                let lap1 = self.inverse_re(l1);
                let lap2 = self.inverse_re(l2);
                for (i, (lr, lc, _, _)) in mesh.owned_indices().enumerate() {
                    wdot.set(lr, lc, 0, a2 * ds_dy[i] + mu * lap1[i]);
                    wdot.set(lr, lc, 1, -a2 * ds_dx[i] + mu * lap2[i]);
                }
            }
        }
    }

    /// Krasny spectral filter: zero every Fourier mode of the
    /// perturbation fields (position deviation from the flat reference
    /// plane, and both vorticity components) whose normalized amplitude
    /// is below the tolerance. This is the classic stabilization for
    /// vortex-sheet methods — roundoff seeds a short-wavelength
    /// Kelvin–Helmholtz instability that the filter removes before it
    /// can grow. Requires an FFT-capable (periodic) order. Collective.
    pub fn apply_krasny_filter(&self, pm: &mut ProblemManager, tolerance: f64) {
        assert!(
            self.dfft.is_some(),
            "krasny filter requires an FFT-capable (low/medium) model order"
        );
        pm.halo_all();
        let mesh = pm.mesh();
        let n_total = (self.global[0] * self.global[1]) as f64;
        // Reference-plane coordinates for the position deviation.
        let refs: Vec<[f64; 2]> = mesh
            .owned_indices()
            .map(|(_, _, gr, gc)| {
                let c = mesh.coord_of(gr as i64, gc as i64);
                [c[1], c[0]]
            })
            .collect();

        // Gather the five perturbation fields in owned order.
        let mut fields: Vec<Vec<f64>> =
            std::iter::repeat_with(|| Vec::with_capacity(refs.len())).take(5).collect();
        for (i, (lr, lc, _, _)) in mesh.owned_indices().enumerate() {
            let z = pm.z().node(lr, lc);
            let w = pm.w().node(lr, lc);
            fields[0].push(z[0] - refs[i][0]);
            fields[1].push(z[1] - refs[i][1]);
            fields[2].push(z[2]);
            fields[3].push(w[0]);
            fields[4].push(w[1]);
        }

        let filtered: Vec<Vec<f64>> = fields
            .iter()
            .map(|vals| {
                let (_, mut spec) = self.forward_vals(vals);
                for v in spec.iter_mut() {
                    // Normalized amplitude (forward transform is
                    // unnormalized: divide by the mode count).
                    if v.abs() / n_total < tolerance {
                        *v = beatnik_fft::Complex::default();
                    }
                }
                self.inverse_re(spec)
            })
            .collect();

        let coords: Vec<_> = pm.mesh().owned_indices().collect();
        for (i, (lr, lc, _, _)) in coords.into_iter().enumerate() {
            pm.z_mut().set_node(
                lr,
                lc,
                &[
                    filtered[0][i] + refs[i][0],
                    filtered[1][i] + refs[i][1],
                    filtered[2][i],
                ],
            );
            pm.w_mut().set_node(lr, lc, &[filtered[3][i], filtered[4][i]]);
        }
    }

    // ------------------------------------------------------------------
    // Distributed spectral helpers
    // ------------------------------------------------------------------

    fn forward_comp(&self, pm: &ProblemManager, f: &Field, comp: usize) -> (Rect, Vec<Complex>) {
        let vals: Vec<f64> = pm
            .mesh()
            .owned_indices()
            .map(|(lr, lc, _, _)| f.get(lr, lc, comp))
            .collect();
        self.forward_vals(&vals)
    }

    /// Forward transform into the *transposed* spectrum layout (its
    /// rectangle is returned so multipliers can map global wavenumbers).
    fn forward_vals(&self, vals: &[f64]) -> (Rect, Vec<Complex>) {
        let plan = self.dfft.as_ref().expect("fft not configured");
        let block: Vec<Complex> = vals.iter().map(|&v| Complex::real(v)).collect();
        plan.forward_transposed(block)
    }

    fn inverse_re(&self, spec: Vec<Complex>) -> Vec<f64> {
        let plan = self.dfft.as_ref().expect("fft not configured");
        plan.inverse_transposed(spec)
            .into_iter()
            .map(|z| z.re)
            .collect()
    }

    #[inline]
    fn is_nyquist(&self, gr: usize, gc: usize) -> bool {
        let [nr, nc] = self.global;
        (nr % 2 == 0 && gr == nr / 2) || (nc % 2 == 0 && gc == nc / 2)
    }

    fn mul_ik(&self, spec: &mut [Complex], rect: &Rect, axis: Axis) {
        let mut i = 0;
        for gr in rect.rows.clone() {
            for gc in rect.cols.clone() {
                let v = &mut spec[i];
                if self.is_nyquist(gr, gc) {
                    *v = Complex::default();
                } else {
                    let k = match axis {
                        Axis::X => self.kx[gc],
                        Axis::Y => self.ky[gr],
                    };
                    *v = Complex::new(-v.im * k, v.re * k);
                }
                i += 1;
            }
        }
    }

    fn mul_minus_k2(&self, spec: &mut [Complex], rect: &Rect) {
        let mut i = 0;
        for gr in rect.rows.clone() {
            for gc in rect.cols.clone() {
                let k2 = self.kx[gc] * self.kx[gc] + self.ky[gr] * self.ky[gr];
                spec[i] = spec[i].scale(-k2);
                i += 1;
            }
        }
    }

    /// The linearized Birkhoff–Rott normal velocity:
    /// `Ŵ₃ = (i/2)(k̂₁·ŵ₂ − k̂₂·ŵ₁)`, mean and Nyquist bins zeroed.
    fn riesz_block(&self, w1: &[Complex], w2: &[Complex], rect: &Rect) -> Vec<Complex> {
        let mut out = vec![Complex::default(); w1.len()];
        let mut i = 0;
        for gr in rect.rows.clone() {
            for gc in rect.cols.clone() {
                let kx = self.kx[gc];
                let ky = self.ky[gr];
                let kmag = (kx * kx + ky * ky).sqrt();
                if kmag > 0.0 && !self.is_nyquist(gr, gc) {
                    let re = (kx * w2[i].re - ky * w1[i].re) / kmag;
                    let im = (kx * w2[i].im - ky * w1[i].im) / kmag;
                    // (i/2)·(re + i·im) = −im/2 + i·re/2
                    out[i] = Complex::new(-im * 0.5, re * 0.5);
                }
                i += 1;
            }
        }
        out
    }
}

enum Axis {
    X,
    Y,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::br::ExactBrSolver;
    use beatnik_comm::World;
    use beatnik_mesh::{BoundaryCondition, SurfaceMesh};
    use std::f64::consts::PI;

    fn periodic_pm(comm: &beatnik_comm::Communicator, n: usize) -> ProblemManager {
        let l = 2.0 * PI;
        let mesh = SurfaceMesh::new(comm, [n, n], [true, true], 2, [0.0, 0.0], [l, l]);
        ProblemManager::new(mesh, BoundaryCondition::Periodic { periods: [l, l] })
    }

    /// Flat interface at z=0 with a single vorticity mode; the low-order
    /// velocity must equal the analytic Riesz transform.
    #[test]
    fn low_order_velocity_matches_analytic_riesz() {
        for p in [1usize, 4] {
            World::builder(p).run(|comm| {
                let mut pm = periodic_pm(&comm, 16);
                let coords: Vec<_> = pm.mesh().owned_indices().collect();
                for (lr, lc, gr, gc) in coords {
                    let c = pm.mesh().coord_of(gr as i64, gc as i64);
                    pm.z_mut().set_node(lr, lc, &[c[1], c[0], 0.0]);
                    // w2 = sin(3x) -> W3 = (1/2)cos(3x).
                    pm.w_mut().set_node(lr, lc, &[0.0, (3.0 * c[1]).sin()]);
                }
                let params = Params {
                    mu: 0.0,
                    ..Params::default()
                };
                let zm = ZModel::new(&pm, Order::Low, params, None, FftConfig::default());
                let mut zdot = pm.mesh().make_field(3);
                let mut wdot = pm.mesh().make_field(2);
                zm.derivatives(&mut pm, &mut zdot, &mut wdot);
                for (lr, lc, _, gc) in pm.mesh().owned_indices() {
                    let x = pm.mesh().coord_of(0, gc as i64)[1];
                    let want = 0.5 * (3.0 * x).cos();
                    //

                    // Flat sheet: unit normal is ẑ, so zdot = (0, 0, W3).
                    assert!(zdot.get(lr, lc, 0).abs() < 1e-10);
                    assert!(zdot.get(lr, lc, 1).abs() < 1e-10);
                    assert!(
                        (zdot.get(lr, lc, 2) - want).abs() < 1e-9,
                        "p={p} gc={gc}: {} vs {want}",
                        zdot.get(lr, lc, 2)
                    );
                }
            });
        }
    }

    /// Vorticity forcing: flat tilted interface z₃ = sin(2x) with zero
    /// vorticity gives ẇ₂ = −2A·g·∂₁z₃ (spectral) and the same from the
    /// high-order stencil path.
    #[test]
    fn vorticity_forcing_matches_between_orders() {
        World::builder(2).run(|comm| {
            let n = 32;
            let amplitude = 1e-3; // keep |V|² negligible
            let build = |pm: &mut ProblemManager| {
                let coords: Vec<_> = pm.mesh().owned_indices().collect();
                for (lr, lc, gr, gc) in coords {
                    let c = pm.mesh().coord_of(gr as i64, gc as i64);
                    let z3 = amplitude * (2.0 * c[1]).sin();
                    pm.z_mut().set_node(lr, lc, &[c[1], c[0], z3]);
                    pm.w_mut().set_node(lr, lc, &[0.0, 0.0]);
                }
            };
            let params = Params {
                atwood: 0.5,
                gravity: 4.0,
                mu: 0.0,
                epsilon: 0.1,
                ..Params::default()
            };
            let run = |order: Order| -> Vec<f64> {
                let mut pm = periodic_pm(&comm, n);
                build(&mut pm);
                let br: Option<Box<dyn BrSolver>> = if order.needs_br_solver() {
                    Some(Box::new(ExactBrSolver))
                } else {
                    None
                };
                let zm = ZModel::new(&pm, order, params, br, FftConfig::default());
                let mut zdot = pm.mesh().make_field(3);
                let mut wdot = pm.mesh().make_field(2);
                zm.derivatives(&mut pm, &mut zdot, &mut wdot);
                pm.mesh()
                    .owned_indices()
                    .map(|(lr, lc, _, _)| wdot.get(lr, lc, 1))
                    .collect()
            };
            let low = run(Order::Low);
            let high = run(Order::High);
            // Analytic: ẇ₂ = −2A·g·∂₁z₃ = −2·0.5·4·amplitude·2·cos(2x).
            let pm = periodic_pm(&comm, n);
            for (i, (_, _, _, gc)) in pm.mesh().owned_indices().enumerate() {
                let x = pm.mesh().coord_of(0, gc as i64)[1];
                let want = -2.0 * 0.5 * 4.0 * amplitude * 2.0 * (2.0 * x).cos();
                assert!(
                    (low[i] - want).abs() < 1e-7,
                    "low gc={gc}: {} vs {want}",
                    low[i]
                );
                assert!(
                    (high[i] - want).abs() < 1e-5 * (1.0 + want.abs()),
                    "high gc={gc}: {} vs {want}",
                    high[i]
                );
            }
        });
    }

    #[test]
    fn krasny_filter_removes_roundoff_noise_keeps_signal() {
        World::builder(4).run(|comm| {
            let n = 16;
            let mut pm = periodic_pm(&comm, n);
            let coords: Vec<_> = pm.mesh().owned_indices().collect();
            for (lr, lc, gr, gc) in coords {
                let c = pm.mesh().coord_of(gr as i64, gc as i64);
                // Large mode + alternating-sign "roundoff" noise.
                let noise = if (gr + gc) % 2 == 0 { 1e-13 } else { -1e-13 };
                let z3 = 0.01 * c[1].sin() + noise;
                pm.z_mut().set_node(lr, lc, &[c[1], c[0], z3]);
                pm.w_mut().set_node(lr, lc, &[noise, 2.0 * noise]);
            }
            let zm = ZModel::new(
                &pm,
                Order::Low,
                Params::default(),
                None,
                FftConfig::default(),
            );
            zm.apply_krasny_filter(&mut pm, 1e-10);
            for (lr, lc, gr, gc) in pm.mesh().owned_indices() {
                let c = pm.mesh().coord_of(gr as i64, gc as i64);
                // Noise gone from vorticity…
                assert!(pm.w().get(lr, lc, 0).abs() < 1e-14, "w1 noise survived");
                assert!(pm.w().get(lr, lc, 1).abs() < 1e-14, "w2 noise survived");
                // …and from z3, while the signal mode survives intact.
                let want = 0.01 * c[1].sin();
                assert!(
                    (pm.z().get(lr, lc, 2) - want).abs() < 1e-12,
                    "z3 at ({gr},{gc}): {} vs {want}",
                    pm.z().get(lr, lc, 2)
                );
                // Reference-plane coordinates are reconstructed exactly.
                assert!((pm.z().get(lr, lc, 0) - c[1]).abs() < 1e-12);
                assert!((pm.z().get(lr, lc, 1) - c[0]).abs() < 1e-12);
            }
        });
    }

    #[test]
    fn filtered_solve_tracks_unfiltered_solve() {
        // With a sane tolerance the filter must not perturb the physics.
        World::builder(2).run(|comm| {
            let run = |filter_every: usize| -> f64 {
                let mut pm = periodic_pm(&comm, 16);
                crate::init::InitialCondition::SingleMode {
                    amplitude: 1e-4,
                    modes: [1.0, 1.0],
                }
                .apply(&mut pm);
                let params = Params {
                    atwood: 0.5,
                    gravity: 2.0,
                    mu: 0.0,
                    filter_every,
                    filter_tolerance: 1e-11,
                    ..Params::default()
                };
                let zm = ZModel::new(&pm, Order::Low, params, None, FftConfig::default());
                let mut ti = crate::integrator::TimeIntegrator::new(&pm);
                for step in 1..=20 {
                    ti.step(&zm, &mut pm, 5e-3);
                    if filter_every > 0 && step % filter_every == 0 {
                        zm.apply_krasny_filter(&mut pm, 1e-11);
                    }
                }
                let local = pm
                    .mesh()
                    .owned_indices()
                    .map(|(lr, lc, _, _)| pm.z().get(lr, lc, 2).abs())
                    .fold(0.0f64, f64::max);
                pm.mesh().comm().allreduce_max(local)
            };
            let plain = run(0);
            let filtered = run(5);
            assert!(
                (plain - filtered).abs() < 1e-6 * plain,
                "{plain} vs {filtered}"
            );
        });
    }

    #[test]
    #[should_panic(expected = "requires an FFT-capable")]
    fn filter_on_high_order_rejected() {
        World::builder(1).run(|comm| {
            let mesh =
                SurfaceMesh::new(&comm, [8, 8], [true, true], 2, [0.0, 0.0], [1.0, 1.0]);
            let mut pm = ProblemManager::new(
                mesh,
                BoundaryCondition::Periodic { periods: [1.0, 1.0] },
            );
            let zm = ZModel::new(
                &pm,
                Order::High,
                Params::default(),
                Some(Box::new(ExactBrSolver)),
                FftConfig::default(),
            );
            zm.apply_krasny_filter(&mut pm, 1e-10);
        });
    }

    #[test]
    #[should_panic(expected = "requires a Birkhoff-Rott solver")]
    fn high_order_without_br_rejected() {
        World::builder(1).run(|comm| {
            let pm = periodic_pm(&comm, 8);
            let _ = ZModel::new(
                &pm,
                Order::High,
                Params::default(),
                None,
                FftConfig::default(),
            );
        });
    }

    #[test]
    #[should_panic(expected = "requires periodic boundaries")]
    fn low_order_with_open_boundaries_rejected() {
        World::builder(1).run(|comm| {
            let mesh =
                SurfaceMesh::new(&comm, [8, 8], [false, false], 2, [0.0, 0.0], [1.0, 1.0]);
            let pm = ProblemManager::new(mesh, BoundaryCondition::Free);
            let _ = ZModel::new(
                &pm,
                Order::Low,
                Params::default(),
                None,
                FftConfig::default(),
            );
        });
    }
}
