//! Error types for the message-passing runtime.

use std::fmt;

/// Errors surfaced by fallible communicator operations.
///
/// Most protocol violations (e.g. receiving into the wrong element type)
/// are programming errors and panic with a descriptive message, mirroring
/// how MPI aborts the job; `CommError` covers conditions a caller can
/// reasonably handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A receive with a timeout expired before a matching message arrived.
    Timeout {
        /// Receiving rank.
        rank: usize,
        /// Source selector the receive was matching (usize::MAX = any).
        src: usize,
        /// Tag selector the receive was matching (u64::MAX = any).
        tag: u64,
    },
    /// A rank index was out of range for the communicator.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// The communicator size.
        size: usize,
    },
    /// Requested Cartesian dimensions do not multiply to the group size.
    BadDims {
        /// Product of the requested dimensions.
        product: usize,
        /// The communicator size.
        size: usize,
    },
    /// A buffer length or count vector disagrees with what the collective
    /// requires (e.g. an `alltoall` send buffer not divisible by the
    /// communicator size, or a counts slice of the wrong length).
    SizeMismatch {
        /// Which quantity was wrong (e.g. `"alltoall send length"`).
        what: &'static str,
        /// The size the operation required.
        expected: usize,
        /// The size the caller supplied.
        got: usize,
    },
    /// A peer rank the operation depends on has died (ULFM's
    /// `MPI_ERR_PROC_FAILED`). Collectives report the lowest-numbered
    /// failed member of the communicator.
    RankFailed {
        /// Rank that observed the failure.
        rank: usize,
        /// World rank of the failed peer.
        failed: usize,
    },
    /// The communicator was revoked (ULFM's `MPI_ERR_REVOKED`): some rank
    /// called `revoke()` to interrupt all pending and future operations,
    /// typically as the first step of recovery.
    Revoked {
        /// Rank that observed the revocation.
        rank: usize,
    },
    /// The received message's element type does not match the type the
    /// receiver asked for — the moral equivalent of an MPI datatype
    /// mismatch.
    TypeMismatch {
        /// Element type name the receiver requested.
        expected: &'static str,
        /// Element type name the sender actually sent.
        got: &'static str,
        /// Sender's rank within the communicator.
        src: usize,
        /// Message tag.
        tag: u64,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout { rank, src, tag } => write!(
                f,
                "recv timeout on rank {rank} waiting for src={src} tag={tag}"
            ),
            CommError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            CommError::BadDims { product, size } => write!(
                f,
                "cartesian dims product {product} does not match communicator size {size}"
            ),
            CommError::SizeMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: expected {expected}, got {got}"),
            CommError::RankFailed { rank, failed } => write!(
                f,
                "rank {rank} detected failure of world rank {failed}"
            ),
            CommError::Revoked { rank } => {
                write!(f, "communicator revoked (observed on rank {rank})")
            }
            CommError::TypeMismatch {
                expected,
                got,
                src,
                tag,
            } => write!(
                f,
                "message type mismatch: received {got} from rank {src} (tag {tag}) but tried \
                 to receive as Vec<{expected}>"
            ),
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = CommError::Timeout {
            rank: 3,
            src: 1,
            tag: 7,
        };
        assert!(e.to_string().contains("rank 3"));
        let e = CommError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains("out of range"));
        let e = CommError::BadDims {
            product: 6,
            size: 4,
        };
        assert!(e.to_string().contains("dims"));
        let e = CommError::SizeMismatch {
            what: "alltoall send length",
            expected: 4,
            got: 3,
        };
        assert!(e.to_string().contains("expected 4, got 3"));
        let e = CommError::RankFailed { rank: 0, failed: 2 };
        assert!(e.to_string().contains("world rank 2"));
        let e = CommError::Revoked { rank: 1 };
        assert!(e.to_string().contains("revoked"));
        let e = CommError::TypeMismatch {
            expected: "f64",
            got: "u32",
            src: 3,
            tag: 9,
        };
        assert!(e.to_string().contains("message type mismatch"));
        assert!(e.to_string().contains("Vec<f64>"));
    }
}
