//! Service-level metrics, published through the workspace-wide
//! `beatnik-telemetry` registry so `GET /metrics` reuses the PR 5
//! OpenMetrics renderer unchanged.
//!
//! Family names follow the exposition conventions already enforced by
//! the registry tests: counters end `_total`, histograms use the
//! canonical power-of-two buckets (queue waits and latencies are
//! recorded in milliseconds, so the bucket edges read naturally as
//! 1 ms, 2 ms, 4 ms, ...).

use beatnik_telemetry::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::Arc;

/// Pre-registered handles for every scheduler-level metric family.
/// Cloning shares the cells.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// The registry all families live in (per-job families register
    /// lazily against it).
    pub registry: Arc<MetricsRegistry>,
    /// Jobs accepted by `POST /jobs`.
    pub jobs_submitted: Counter,
    /// Jobs rejected at admission, labelled by `reason`
    /// (`invalid`, `queue_full`).
    pub jobs_rejected_invalid: Counter,
    /// Jobs rejected because the queue was saturated.
    pub jobs_rejected_queue_full: Counter,
    /// Jobs that reached `completed`.
    pub jobs_completed: Counter,
    /// Jobs that reached `failed`.
    pub jobs_failed: Counter,
    /// Jobs that reached `canceled`.
    pub jobs_canceled: Counter,
    /// Scheduler-initiated preemptions (checkpoint + requeue).
    pub preemptions: Counter,
    /// Jobs currently waiting for a gang.
    pub queue_depth: Gauge,
    /// Rank slots currently leased to running jobs.
    pub ranks_busy: Gauge,
    /// Total rank slots in the pool (constant; exported for ratio
    /// queries).
    pub pool_ranks: Gauge,
    /// Queue-wait distribution in milliseconds (accumulated across
    /// requeues, observed at each dispatch).
    pub queue_wait_ms: Histogram,
    /// End-to-end job latency distribution in milliseconds (observed at
    /// terminal states).
    pub job_latency_ms: Histogram,
}

impl ServeMetrics {
    /// Register every family against `registry`.
    pub fn new(registry: Arc<MetricsRegistry>, pool_ranks: usize) -> Self {
        let r = &registry;
        let m = ServeMetrics {
            jobs_submitted: r.counter(
                "beatnik_serve_jobs_submitted_total",
                "jobs accepted by POST /jobs",
                &[],
            ),
            jobs_rejected_invalid: r.counter(
                "beatnik_serve_jobs_rejected_total",
                "jobs rejected at admission",
                &[("reason", "invalid")],
            ),
            jobs_rejected_queue_full: r.counter(
                "beatnik_serve_jobs_rejected_total",
                "jobs rejected at admission",
                &[("reason", "queue_full")],
            ),
            jobs_completed: r.counter(
                "beatnik_serve_jobs_completed_total",
                "jobs finished successfully",
                &[],
            ),
            jobs_failed: r.counter(
                "beatnik_serve_jobs_failed_total",
                "jobs that failed",
                &[],
            ),
            jobs_canceled: r.counter(
                "beatnik_serve_jobs_canceled_total",
                "jobs canceled by DELETE /jobs/{id}",
                &[],
            ),
            preemptions: r.counter(
                "beatnik_serve_preemptions_total",
                "scheduler-initiated preemptions",
                &[],
            ),
            queue_depth: r.gauge(
                "beatnik_serve_queue_depth",
                "jobs waiting for a gang",
                &[],
            ),
            ranks_busy: r.gauge(
                "beatnik_serve_ranks_busy",
                "rank slots leased to running jobs",
                &[],
            ),
            pool_ranks: r.gauge(
                "beatnik_serve_pool_ranks",
                "rank slots in the shared pool",
                &[],
            ),
            queue_wait_ms: r.histogram(
                "beatnik_serve_job_queue_wait_ms",
                "queue wait per dispatch in milliseconds",
                &[],
            ),
            job_latency_ms: r.histogram(
                "beatnik_serve_job_latency_ms",
                "end-to-end job latency in milliseconds",
                &[],
            ),
            registry,
        };
        m.pool_ranks.set(pool_ranks as u64);
        m
    }

    /// Per-job state gauge (value = [`crate::job::JobState::code`]).
    pub fn job_state(&self, id: u64) -> Gauge {
        self.registry.gauge(
            "beatnik_serve_job_state",
            "job state code (0 queued, 1 running, 2 preempted, 3 completed, 4 failed, 5 canceled)",
            &[("job", &id.to_string())],
        )
    }

    /// Per-job completed-step counter.
    pub fn job_steps(&self, id: u64) -> Counter {
        self.registry.counter(
            "beatnik_serve_job_steps_total",
            "timesteps completed per job",
            &[("job", &id.to_string())],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_telemetry::metrics::openmetrics_text;

    #[test]
    fn families_render_to_openmetrics() {
        let m = ServeMetrics::new(Arc::new(MetricsRegistry::new()), 8);
        m.jobs_submitted.inc();
        m.jobs_rejected_queue_full.inc();
        m.queue_wait_ms.observe(12);
        m.job_state(1).set(1);
        m.job_steps(1).add(4);
        let text = openmetrics_text(&m.registry.snapshot());
        assert!(text.contains("beatnik_serve_jobs_submitted_total 1"), "{text}");
        assert!(
            text.contains("beatnik_serve_jobs_rejected_total{reason=\"queue_full\"} 1"),
            "{text}"
        );
        assert!(text.contains("beatnik_serve_pool_ranks 8"), "{text}");
        assert!(text.contains("beatnik_serve_job_state{job=\"1\"} 1"), "{text}");
        assert!(text.contains("beatnik_serve_job_steps_total{job=\"1\"} 4"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
    }

    #[test]
    fn per_job_handles_are_idempotent() {
        let m = ServeMetrics::new(Arc::new(MetricsRegistry::new()), 4);
        m.job_steps(7).add(2);
        m.job_steps(7).add(3);
        assert_eq!(m.job_steps(7).get(), 5);
    }
}
