//! Profiling exports: Chrome Trace Event JSON and CSV summaries of a
//! [`WorldTimeline`] recorded by `WorldBuilder::run_profiled`.
//!
//! The JSON file loads directly in `chrome://tracing` or Perfetto
//! (one track per rank); the CSVs carry the wait-time attribution and
//! collective-skew tables for scripted analysis.

use beatnik_comm::telemetry::{chrome_trace, WorldTimeline};
use std::io::Write;
use std::path::Path;

/// Write the timeline as Chrome Trace Event JSON. Single-writer (the
/// timeline is already aggregated on the launching thread).
pub fn write_chrome_trace(
    timeline: &WorldTimeline,
    path: impl AsRef<Path>,
) -> std::io::Result<()> {
    let json = beatnik_json::to_string(&chrome_trace(timeline));
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    out.write_all(json.as_bytes())?;
    out.flush()
}

/// Write the per-phase wait-time attribution table as CSV.
pub fn write_phase_csv(
    timeline: &WorldTimeline,
    path: impl AsRef<Path>,
) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    writeln!(
        out,
        "phase,calls,total_s,self_s,wait_s,compute_s,max_wait_s,max_wait_rank"
    )?;
    for row in timeline.phase_attribution() {
        writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            row.name,
            row.calls,
            row.total_s,
            row.self_s,
            row.wait_s,
            row.compute_s,
            row.max_wait_s,
            row.max_wait_rank
        )?;
    }
    out.flush()
}

/// Write the collective entry/exit skew table as CSV.
pub fn write_skew_csv(
    timeline: &WorldTimeline,
    path: impl AsRef<Path>,
) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    writeln!(
        out,
        "op,matched,entry_mean_us,entry_max_us,exit_mean_us,exit_max_us"
    )?;
    for row in timeline.collective_skew() {
        writeln!(
            out,
            "{},{},{},{},{},{}",
            row.op.name(),
            row.matched,
            row.entry.mean_us(),
            row.entry.max_us(),
            row.exit.mean_us(),
            row.exit.max_us()
        )?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_comm::World;

    #[test]
    fn profiled_run_exports_parseable_trace_and_csvs() {
        let (_, _, timeline) = World::builder(3).run_profiled(|c| {
            let _g = c.telemetry().phase("work");
            c.barrier();
            let _ = c.allreduce_sum(c.rank() as f64);
        });
        let dir = std::env::temp_dir().join("beatnik_profile_test");
        std::fs::create_dir_all(&dir).unwrap();

        let trace_path = dir.join("trace.json");
        write_chrome_trace(&timeline, &trace_path).unwrap();
        let text = std::fs::read_to_string(&trace_path).unwrap();
        let v = beatnik_json::parse(&text).unwrap();
        let events = v.get("traceEvents").unwrap();
        let beatnik_json::Value::Array(events) = events else {
            panic!("traceEvents must be an array");
        };
        assert!(!events.is_empty());

        let phase_path = dir.join("phases.csv");
        write_phase_csv(&timeline, &phase_path).unwrap();
        let text = std::fs::read_to_string(&phase_path).unwrap();
        assert!(text.starts_with("phase,calls"));
        assert!(text.contains("work"));

        let skew_path = dir.join("skew.csv");
        write_skew_csv(&timeline, &skew_path).unwrap();
        let text = std::fs::read_to_string(&skew_path).unwrap();
        assert!(text.starts_with("op,matched"));
        assert!(text.contains("barrier"));
    }
}
