//! A minimal `f64` complex-number type.
//!
//! Implemented here rather than pulled from a crate so the whole FFT stack
//! is self-contained and the layout (`#[repr(C)]`, two `f64`s) is
//! guaranteed for message payloads.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity.
pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
/// The multiplicative identity.
pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
/// The imaginary unit.
pub const I: Complex = Complex { re: 0.0, im: 1.0 };

impl Complex {
    /// Construct from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely real value.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|` (hypot, overflow-safe).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiply by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Multiplicative inverse.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // divide = multiply by reciprocal
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + ZERO, z);
        assert_eq!(z * ONE, z);
        assert_eq!((z - z), ZERO);
        assert_eq!(-z, Complex::new(-3.0, 4.0));
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn multiplication_matches_i_squared() {
        assert_eq!(I * I, Complex::real(-1.0));
        let z = Complex::new(1.0, 2.0) * Complex::new(3.0, 4.0);
        assert_eq!(z, Complex::new(-5.0, 10.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(2.5, -1.5);
        let b = Complex::new(-0.5, 3.0);
        let c = a * b / b;
        assert!((c - a).abs() < EPS);
        let r = b.recip() * b;
        assert!((r - ONE).abs() < EPS);
    }

    #[test]
    fn magnitude_and_argument() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < EPS);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
        assert!((I.arg() - std::f64::consts::FRAC_PI_2).abs() < EPS);
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::FRAC_PI_8;
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < EPS);
            assert!((z.arg() - theta).abs() < EPS || theta > std::f64::consts::PI);
        }
    }

    #[test]
    fn cis_is_homomorphic() {
        let a = 0.7;
        let b = 1.9;
        let lhs = Complex::cis(a) * Complex::cis(b);
        let rhs = Complex::cis(a + b);
        assert!((lhs - rhs).abs() < EPS);
    }

    #[test]
    fn assign_ops_and_sum() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::new(2.0, -1.0);
        assert_eq!(z, Complex::new(3.0, 0.0));
        z -= Complex::real(1.0);
        assert_eq!(z, Complex::new(2.0, 0.0));
        z *= I;
        assert_eq!(z, Complex::new(0.0, 2.0));
        let s: Complex = [ONE, I, Complex::new(1.0, 1.0)].into_iter().sum();
        assert_eq!(s, Complex::new(2.0, 2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
