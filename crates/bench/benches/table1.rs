//! Table 1: the heFFTe parameter configurations swept by the paper's
//! Section 5.5 evaluation. Regenerates the table row-for-row.

fn main() {
    println!("=== Table 1: heFFTe parameter configurations on the low-order solver ===\n");
    print!("{}", beatnik_bench::table1_text());
    println!("\n(config index = 4*AllToAll + 2*Pencils + Reorder, as in the paper)");
}
