//! Boundary handling for halo cells, matching Beatnik's
//! `BoundaryCondition` class (paper §3.1): most halo data comes from the
//! exchange itself; this pass
//!
//! * **periodic** — corrects *position* components in ghost cells by the
//!   physical period (the exchanged copy holds the wrapped node's
//!   position, which is one period away), and
//! * **free (non-periodic)** — linearly extrapolates position and
//!   vorticity into ghost cells outside the domain.

use crate::field::Field;
use crate::surface::SurfaceMesh;

/// Which treatment the mesh edges get.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundaryCondition {
    /// Both axes periodic with physical periods `[py, px]` added to the
    /// position components `(x, y) = (comp 0, comp 1)` of wrapped ghosts.
    Periodic {
        /// Physical interface periods `[period_y, period_x]`.
        periods: [f64; 2],
    },
    /// Open boundary: ghosts outside the domain are filled by linear
    /// extrapolation of the two nearest cells.
    Free,
}

impl BoundaryCondition {
    /// Apply position corrections / extrapolation to a *position* field
    /// (3 components: x, y, z) after a halo exchange.
    pub fn apply_position(&self, mesh: &SurfaceMesh, z: &mut Field) {
        assert_eq!(z.ncomp(), 3, "position field must have 3 components");
        match self {
            BoundaryCondition::Periodic { periods } => correct_periodic(mesh, z, *periods),
            BoundaryCondition::Free => extrapolate(mesh, z),
        }
    }

    /// Apply boundary handling to a generic *value* field (vorticity
    /// etc.): periodic needs nothing beyond the exchange; free
    /// extrapolates.
    pub fn apply_field(&self, mesh: &SurfaceMesh, f: &mut Field) {
        match self {
            BoundaryCondition::Periodic { .. } => {}
            BoundaryCondition::Free => extrapolate(mesh, f),
        }
    }

    /// Whether this condition is periodic.
    pub fn is_periodic(&self) -> bool {
        matches!(self, BoundaryCondition::Periodic { .. })
    }
}

/// Add ±period offsets to ghost positions that wrapped around the domain.
fn correct_periodic(mesh: &SurfaceMesh, z: &mut Field, periods: [f64; 2]) {
    let [nr, nc] = mesh.global();
    let [lr, lc] = mesh.local_shape();
    for r in 0..lr {
        for c in 0..lc {
            let [gr, gc] = mesh.global_of(r, c);
            // Number of whole periods the logical index lies outside the
            // domain (…, -1, 0, +1, …).
            let kr = gr.div_euclid(nr as i64);
            let kc = gc.div_euclid(nc as i64);
            if kr != 0 {
                z.add(r, c, 1, kr as f64 * periods[0]);
            }
            if kc != 0 {
                z.add(r, c, 0, kc as f64 * periods[1]);
            }
        }
    }
}

/// Linear extrapolation into ghost cells outside the global domain:
/// x halos first (owned rows), then y halos over the full width so corner
/// ghosts chain off the x results.
fn extrapolate(mesh: &SurfaceMesh, f: &mut Field) {
    let [nr, nc] = mesh.global();
    let [lr, lc] = mesh.local_shape();
    let h = mesh.halo();
    let ncomp = f.ncomp();

    let at_left = mesh.own_cols().start == 0;
    let at_right = mesh.own_cols().end == nc;
    let at_top = mesh.own_rows().start == 0;
    let at_bottom = mesh.own_rows().end == nr;

    if (at_left || at_right) && mesh.own_cols().len() < 2 {
        panic!("extrapolation requires at least 2 owned columns at the boundary");
    }
    if (at_top || at_bottom) && mesh.own_rows().len() < 2 {
        panic!("extrapolation requires at least 2 owned rows at the boundary");
    }

    // X direction, *all* rows: interior y-halo rows hold live neighbor
    // data whose x ghosts must be extrapolated too (their senders had not
    // extrapolated yet at exchange time). Rows at a physical y edge get
    // garbage here, but the y pass below overwrites them at full width.
    for r in 0..lr {
        for k in 0..ncomp {
            if at_left {
                let a = f.get(r, h, k);
                let b = f.get(r, h + 1, k);
                for g in 1..=h {
                    f.set(r, h - g, k, a - g as f64 * (b - a));
                }
            }
            if at_right {
                let a = f.get(r, lc - h - 1, k);
                let b = f.get(r, lc - h - 2, k);
                for g in 1..=h {
                    f.set(r, lc - h - 1 + g, k, a - g as f64 * (b - a));
                }
            }
        }
    }

    // Y direction, full width: interior x-halo columns hold live neighbor
    // data and extrapolating *along y* from them is exactly what corner
    // ghosts need.
    for c in 0..lc {
        for k in 0..ncomp {
            if at_top {
                let a = f.get(h, c, k);
                let b = f.get(h + 1, c, k);
                for g in 1..=h {
                    f.set(h - g, c, k, a - g as f64 * (b - a));
                }
            }
            if at_bottom {
                let a = f.get(lr - h - 1, c, k);
                let b = f.get(lr - h - 2, c, k);
                for g in 1..=h {
                    f.set(lr - h - 1 + g, c, k, a - g as f64 * (b - a));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_comm::World;

    #[test]
    fn periodic_position_correction_offsets_ghosts() {
        World::builder(1).run(|comm| {
            let mesh =
                SurfaceMesh::new(&comm, [8, 8], [true, true], 2, [0.0, 0.0], [2.0, 2.0]);
            let mut z = mesh.make_field(3);
            // Position = reference coordinates (flat interface).
            for (lr, lc, gr, gc) in mesh.owned_indices() {
                let c = mesh.coord_of(gr as i64, gc as i64);
                z.set_node(lr, lc, &[c[1], c[0], 0.0]);
            }
            mesh.halo_exchange(&mut z);
            let bc = BoundaryCondition::Periodic { periods: [2.0, 2.0] };
            bc.apply_position(&mesh, &mut z);
            // Every cell (owned or ghost) must now hold its *logical*
            // coordinate: ghost left of 0 has negative x.
            let [lr, lc] = mesh.local_shape();
            for r in 0..lr {
                for c in 0..lc {
                    let [gr, gc] = mesh.global_of(r, c);
                    let want = mesh.coord_of(gr, gc);
                    assert!((z.get(r, c, 0) - want[1]).abs() < 1e-12, "x at ({r},{c})");
                    assert!((z.get(r, c, 1) - want[0]).abs() < 1e-12, "y at ({r},{c})");
                }
            }
        });
    }

    #[test]
    fn periodic_correction_distributed_matches_serial() {
        for p in [2usize, 4] {
            World::builder(p).run(|comm| {
                let mesh =
                    SurfaceMesh::new(&comm, [8, 8], [true, true], 2, [0.0, 0.0], [2.0, 2.0]);
                let mut z = mesh.make_field(3);
                for (lr, lc, gr, gc) in mesh.owned_indices() {
                    let c = mesh.coord_of(gr as i64, gc as i64);
                    z.set_node(lr, lc, &[c[1], c[0], 1.0]);
                }
                mesh.halo_exchange(&mut z);
                BoundaryCondition::Periodic { periods: [2.0, 2.0] }.apply_position(&mesh, &mut z);
                let [lr, lc] = mesh.local_shape();
                for r in 0..lr {
                    for c in 0..lc {
                        let [gr, gc] = mesh.global_of(r, c);
                        let want = mesh.coord_of(gr, gc);
                        assert!((z.get(r, c, 0) - want[1]).abs() < 1e-12);
                        assert!((z.get(r, c, 1) - want[0]).abs() < 1e-12);
                        assert!((z.get(r, c, 2) - 1.0).abs() < 1e-12);
                    }
                }
            });
        }
    }

    #[test]
    fn free_extrapolation_is_exact_for_linear_fields() {
        // Linear fields are reproduced exactly by linear extrapolation,
        // including corners.
        for p in [1usize, 4] {
            World::builder(p).run(|comm| {
                let mesh =
                    SurfaceMesh::new(&comm, [8, 8], [false, false], 2, [0.0, 0.0], [1.0, 1.0]);
                let mut f = mesh.make_field(2);
                let lin = |gr: i64, gc: i64| (3.0 * gr as f64 - 2.0 * gc as f64, gc as f64 + 1.0);
                for (lr, lc, gr, gc) in mesh.owned_indices() {
                    let (a, b) = lin(gr as i64, gc as i64);
                    f.set_node(lr, lc, &[a, b]);
                }
                mesh.halo_exchange(&mut f);
                BoundaryCondition::Free.apply_field(&mesh, &mut f);
                let [lr, lc] = mesh.local_shape();
                for r in 0..lr {
                    for c in 0..lc {
                        let [gr, gc] = mesh.global_of(r, c);
                        let (a, b) = lin(gr, gc);
                        assert!((f.get(r, c, 0) - a).abs() < 1e-9, "comp0 ({r},{c})");
                        assert!((f.get(r, c, 1) - b).abs() < 1e-9, "comp1 ({r},{c})");
                    }
                }
            });
        }
    }

    #[test]
    fn periodic_value_fields_need_no_correction() {
        World::builder(1).run(|comm| {
            let mesh =
                SurfaceMesh::new(&comm, [6, 6], [true, true], 2, [0.0, 0.0], [1.0, 1.0]);
            let mut f = mesh.make_field(1);
            for (lr, lc, gr, gc) in mesh.owned_indices() {
                f.set(lr, lc, 0, (gr * 10 + gc) as f64);
            }
            mesh.halo_exchange(&mut f);
            let snapshot = f.clone();
            BoundaryCondition::Periodic { periods: [1.0, 1.0] }.apply_field(&mesh, &mut f);
            assert_eq!(f, snapshot);
        });
    }
}
