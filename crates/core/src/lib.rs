//! # beatnik-core — the Z-Model solver library
//!
//! The primary contribution of the Beatnik paper: a solver for 3D
//! Rayleigh–Taylor interface instabilities using Pandya & Shkoller's
//! Z-Model, structured so that its three orders exercise distinct global
//! communication patterns:
//!
//! | order | interface velocity | vorticity derivatives | communication |
//! |---|---|---|---|
//! | [`Order::Low`] | linearized Birkhoff–Rott via FFT (Riesz transform) | spectral | distributed-FFT all-to-all |
//! | [`Order::Medium`] | full Birkhoff–Rott via a BR solver | spectral (FFT) | BR solver + all-to-all |
//! | [`Order::High`] | full Birkhoff–Rott via a BR solver | finite-difference stencils | BR solver + halo exchange |
//!
//! Birkhoff–Rott solvers ([`br`]): the O(n²) [`br::ExactBrSolver`]
//! (ring-pass all-pairs) and the scalable [`br::CutoffBrSolver`]
//! (migrate → halo → neighbor-list → force → migrate back).
//!
//! The mesh state lives in a [`ProblemManager`] (positions + vorticity on
//! a `beatnik-mesh` surface mesh); [`TimeIntegrator`] advances it with
//! third-order TVD Runge–Kutta, evaluating the [`ZModel`] derivative
//! three times per step, exactly as the paper describes.
//!
//! ## Model equations
//!
//! Per surface node with position `z(α) ∈ R³` and vorticity `w = (w1, w2)`
//! (sheet strength `ω = w1·∂₁z + w2·∂₂z`, reference cell area `ΔA`):
//!
//! ```text
//! ∂t z  = V
//! ∂t w₁ = +2A·∂₂S + μ·Δw₁        S = g·z₃ − |V|²/8
//! ∂t w₂ = −2A·∂₁S + μ·Δw₂
//! ```
//!
//! with `V` the (desingularized) Birkhoff–Rott velocity
//!
//! ```text
//! V(α) = (1/4π) Σ_{α'} (z(α′) − z(α)) × ω(α′)·ΔA / (|z(α′) − z(α)|² + ε²)^{3/2}
//! ```
//!
//! for high/medium order, or its flat-sheet linearization (the Riesz
//! multiplier `Ŵ₃ = (i/2)(k̂₁ŵ₂ − k̂₂ŵ₁)`, applied along the unit normal)
//! for low order. The rotated pairing in `∂t w` is chosen so that the
//! linearized system reproduces the classic RT dispersion relation
//! `σ = √(A·g·k)` — verified in this crate's growth-rate tests.

pub mod br;
pub mod diagnostics;
pub mod geometry;
pub mod init;
pub mod integrator;
pub mod order;
pub mod par;
pub mod params;
pub mod problem;
pub mod solver;
pub mod zmodel;

pub use br::{
    BalancedCutoffBrSolver, BrPoint, BrSolver, CutoffBrSolver, ExactBrSolver,
    PeriodicExactBrSolver, TreeBrSolver,
};
pub use diagnostics::Diagnostics;
pub use init::InitialCondition;
pub use integrator::TimeIntegrator;
pub use order::Order;
pub use params::Params;
pub use problem::ProblemManager;
pub use solver::{Solver, SolverConfig};
pub use zmodel::ZModel;
