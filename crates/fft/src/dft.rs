//! Naive O(n²) discrete Fourier transform — the correctness oracle for
//! the fast transforms.
//!
//! Convention (matching the fast paths): forward transform uses the
//! negative-exponent kernel and no normalization; the inverse uses the
//! positive exponent and divides by `n`.

use crate::complex::Complex;

/// Forward DFT: `X[k] = Σ_j x[j] · e^{-2πi jk / n}`.
pub fn dft_naive(x: &[Complex]) -> Vec<Complex> {
    transform(x, -1.0, false)
}

/// Inverse DFT: `x[j] = (1/n) Σ_k X[k] · e^{+2πi jk / n}`.
pub fn idft_naive(x: &[Complex]) -> Vec<Complex> {
    transform(x, 1.0, true)
}

fn transform(x: &[Complex], sign: f64, normalize: bool) -> Vec<Complex> {
    let n = x.len();
    let mut out = vec![Complex::default(); n];
    if n == 0 {
        return out;
    }
    let base = sign * 2.0 * std::f64::consts::PI / n as f64;
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::default();
        for (j, &v) in x.iter().enumerate() {
            // j*k can exceed 2^53 only for absurd n; reduce mod n first.
            let phase = base * ((j * k) % n) as f64;
            acc += v * Complex::cis(phase);
        }
        *o = if normalize { acc.scale(1.0 / n as f64) } else { acc };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![Complex::default(); 8];
        x[0] = Complex::real(1.0);
        let spec = dft_naive(&x);
        for s in spec {
            assert!((s - Complex::real(1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn dft_of_constant_is_impulse() {
        let x = vec![Complex::real(2.0); 5];
        let spec = dft_naive(&x);
        assert!((spec[0] - Complex::real(10.0)).abs() < 1e-12);
        for s in &spec[1..] {
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn single_mode_lands_in_single_bin() {
        let n = 16;
        let x: Vec<Complex> = (0..n)
            .map(|j| Complex::cis(2.0 * std::f64::consts::PI * 3.0 * j as f64 / n as f64))
            .collect();
        let spec = dft_naive(&x);
        for (k, s) in spec.iter().enumerate() {
            if k == 3 {
                assert!((s.re - n as f64).abs() < 1e-9);
                assert!(s.im.abs() < 1e-9);
            } else {
                assert!(s.abs() < 1e-9, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn idft_inverts_dft() {
        let x: Vec<Complex> = (0..7)
            .map(|j| Complex::new(j as f64, (j * j) as f64 * 0.1))
            .collect();
        let back = idft_naive(&dft_naive(&x));
        for (a, b) in back.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(dft_naive(&[]).is_empty());
        assert!(idft_naive(&[]).is_empty());
    }
}
