//! Randomized-property tests of the spatial search structures, driven
//! by the workspace's deterministic PRNG (reproducible and hermetic).

use beatnik_prng::Rng;
use beatnik_spatial::neighbors::{brute_force_neighbors, Backend, NeighborList};
use beatnik_spatial::{dist2, Aabb, BhTree};

/// `0..max_n` random points in the `[-10, 10]² × [-2, 2]` box.
fn points(rng: &mut Rng, max_n: usize) -> Vec<[f64; 3]> {
    let n = rng.gen_index(0..max_n);
    (0..n)
        .map(|_| {
            [
                rng.gen_range(-10.0..10.0),
                rng.gen_range(-10.0..10.0),
                rng.gen_range(-2.0..2.0),
            ]
        })
        .collect()
}

const CASES: usize = 48;

#[test]
fn both_backends_equal_brute_force() {
    let mut rng = Rng::seed_from_u64(0x59A_0001);
    for _ in 0..CASES {
        let pts = points(&mut rng, 60);
        let radius = rng.gen_range(0.05..5.0);
        let want = brute_force_neighbors(&pts, &pts, radius);
        for backend in [Backend::Grid, Backend::KdTree] {
            let got = NeighborList::build(&pts, &pts, radius, backend);
            assert_eq!(got, want, "backend {backend:?}, n {}", pts.len());
        }
    }
}

#[test]
fn aabb_contains_its_points() {
    let mut rng = Rng::seed_from_u64(0x59A_0002);
    for _ in 0..CASES {
        let pts = points(&mut rng, 50);
        if pts.is_empty() {
            continue;
        }
        let b = Aabb::bounding(&pts).unwrap();
        for p in &pts {
            assert!(b.contains(*p));
            assert_eq!(b.dist2_to(*p), 0.0);
        }
        // Expanding never loses containment.
        let e = b.expanded(1.5);
        for p in &pts {
            assert!(e.contains(*p));
        }
    }
}

#[test]
fn bhtree_theta_zero_is_exact_summation() {
    let mut rng = Rng::seed_from_u64(0x59A_0003);
    for _ in 0..CASES {
        let pts = points(&mut rng, 80);
        let strengths: Vec<[f64; 3]> = pts
            .iter()
            .map(|p| [p[1] * 0.1, -p[0] * 0.1, 0.05])
            .collect();
        let tree = BhTree::build(pts.clone(), strengths.clone());
        let kernel = |t: [f64; 3], p: [f64; 3], s: [f64; 3]| -> [f64; 3] {
            let r2 = dist2(t, p) + 0.01;
            let inv = 1.0 / (r2 * r2.sqrt());
            [s[0] * inv, s[1] * inv, s[2] * inv]
        };
        let target = [0.3, -0.2, 0.1];
        let got = tree.evaluate(target, 0.0, &kernel);
        let mut want = [0.0f64; 3];
        for (p, s) in pts.iter().zip(&strengths) {
            let u = kernel(target, *p, *s);
            want[0] += u[0];
            want[1] += u[1];
            want[2] += u[2];
        }
        for k in 0..3 {
            assert!((got[k] - want[k]).abs() < 1e-9 * (1.0 + want[k].abs()));
        }
    }
}

#[test]
fn bhtree_interaction_count_monotone_in_theta() {
    let mut rng = Rng::seed_from_u64(0x59A_0004);
    for _ in 0..CASES {
        let pts = points(&mut rng, 120);
        if pts.len() < 20 {
            continue;
        }
        let strengths = vec![[0.1, 0.0, 0.0]; pts.len()];
        let tree = BhTree::build(pts.clone(), strengths);
        let t = pts[0];
        let exact = tree.interaction_count(t, 0.0);
        let mid = tree.interaction_count(t, 0.5);
        let coarse = tree.interaction_count(t, 1.5);
        assert_eq!(exact, pts.len());
        assert!(mid <= exact);
        assert!(coarse <= mid);
    }
}
