//! Legacy-ASCII VTK structured-grid writer.
//!
//! Produces `# vtk DataFile Version 3.0` `STRUCTURED_GRID` files that
//! ParaView and VisIt open directly: points are the interface positions,
//! with vorticity components and vorticity magnitude as point data (the
//! quantity the paper's Figures 1 and 2 color by).

use crate::gather_surface;
use beatnik_core::ProblemManager;
use std::io::Write;
use std::path::Path;

/// Write the interface to `path` (rank 0 writes; other ranks only
/// participate in the gather). Returns whether this rank wrote the file.
/// Collective.
pub fn write_vtk(pm: &ProblemManager, path: impl AsRef<Path>) -> std::io::Result<bool> {
    let Some((nr, nc, pts)) = gather_surface(pm) else {
        return Ok(false);
    };
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    writeln!(out, "# vtk DataFile Version 3.0")?;
    writeln!(out, "Beatnik-RS interface surface")?;
    writeln!(out, "ASCII")?;
    writeln!(out, "DATASET STRUCTURED_GRID")?;
    writeln!(out, "DIMENSIONS {nc} {nr} 1")?;
    writeln!(out, "POINTS {} double", nr * nc)?;
    for (z, _) in &pts {
        writeln!(out, "{} {} {}", z[0], z[1], z[2])?;
    }
    writeln!(out, "POINT_DATA {}", nr * nc)?;
    writeln!(out, "SCALARS vorticity_magnitude double 1")?;
    writeln!(out, "LOOKUP_TABLE default")?;
    for (_, w) in &pts {
        writeln!(out, "{}", (w[0] * w[0] + w[1] * w[1]).sqrt())?;
    }
    writeln!(out, "VECTORS vorticity double")?;
    for (_, w) in &pts {
        writeln!(out, "{} {} 0.0", w[0], w[1])?;
    }
    out.flush()?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_comm::World;
    use beatnik_core::InitialCondition;
    use beatnik_mesh::{BoundaryCondition, SurfaceMesh};

    #[test]
    fn vtk_file_structure_is_valid() {
        World::builder(4).run(|comm| {
            let mesh =
                SurfaceMesh::new(&comm, [6, 8], [true, true], 2, [0.0, 0.0], [1.0, 1.0]);
            let mut pm = ProblemManager::new(
                mesh,
                BoundaryCondition::Periodic { periods: [1.0, 1.0] },
            );
            InitialCondition::MultiMode {
                amplitude: 0.05,
                modes: 2,
                seed: 7,
            }
            .apply(&mut pm);
            let dir = std::env::temp_dir().join("beatnik_vtk_test");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("surface.vtk");
            let wrote = write_vtk(&pm, &path).unwrap();
            assert_eq!(wrote, comm.rank() == 0);
            comm.barrier();
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.starts_with("# vtk DataFile"));
            assert!(text.contains("DIMENSIONS 8 6 1"));
            assert!(text.contains("POINTS 48 double"));
            assert!(text.contains("SCALARS vorticity_magnitude"));
            assert!(text.contains("VECTORS vorticity"));
            // 48 points -> at least 48*3 data lines.
            assert!(text.lines().count() > 150);
        });
    }
}
