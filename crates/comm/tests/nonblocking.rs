//! Integration tests of the nonblocking request API under contention:
//! multi-sender mailbox storms drained through irecv, out-of-order
//! `wait_all` completion at several rank counts, and pool behaviour
//! across repeated exchanges.

use beatnik_comm::{wait_all, World, ANY_SOURCE, ANY_TAG};
use std::time::Duration;

#[test]
fn multi_sender_storm_drains_through_irecv() {
    // Every rank floods rank 0 with messages on many tags; rank 0 posts
    // one irecv per expected message up front (wildcard source) and
    // drains them in whatever order they land.
    let p = 5;
    let per_sender = 40u64;
    World::builder(p).run(move |comm| {
        if comm.rank() == 0 {
            let total = per_sender as usize * (p - 1);
            let reqs: Vec<_> = (0..total)
                .map(|_| comm.irecv::<u64>(ANY_SOURCE, ANY_TAG))
                .collect();
            let payloads = wait_all(reqs);
            assert_eq!(payloads.len(), total);
            let sum: u64 = payloads.iter().map(|v| v[0] % 1_000).sum();
            // Each sender contributed indices 0..per_sender.
            let per: u64 = (0..per_sender).sum();
            assert_eq!(sum, per * (p as u64 - 1));
            assert_eq!(comm.trace().outstanding_requests(), 0);
            assert!(comm.trace().peak_outstanding() >= total as u64 / 2);
        } else {
            let me = comm.rank() as u64;
            for i in 0..per_sender {
                let tag = (me * 131 + i * 7) % 61;
                comm.isend(0, tag, &[me * 1_000 + i]).wait();
            }
        }
    });
}

#[test]
fn interleaved_probe_try_recv_and_irecv() {
    // A posted irecv on a specific (src, tag) coexists with wildcard
    // polling of other traffic: the probe/try_recv path must not steal
    // the message the request is waiting on... because matching is by
    // (src, tag), not arrival order.
    World::builder(3).run(|comm| {
        match comm.rank() {
            0 => {
                let reserved = comm.irecv::<u64>(1, 7);
                // Drain rank 2's noise with wildcard polling first.
                let mut noise = 0;
                while noise < 10 {
                    if let Some(v) = comm.try_recv::<u64>(2, ANY_TAG) {
                        assert_eq!(v[0], 99);
                        noise += 1;
                    }
                }
                assert_eq!(reserved.wait(), vec![42]);
            }
            1 => {
                // Wait until rank 2's noise is fully sent before the
                // reserved message goes out.
                let _: Vec<u8> = comm.recv(2, 0);
                comm.send(0, 7, vec![42u64]);
            }
            2 => {
                for _ in 0..10 {
                    comm.send(0, 3, vec![99u64]);
                }
                comm.send(2 - 1, 0, vec![1u8]);
            }
            _ => unreachable!(),
        }
    });
}

#[test]
fn wait_all_completes_out_of_order_at_several_sizes() {
    // Rank 0 posts irecvs in rank order, but senders complete in
    // *reverse* rank order (staggered sleeps). wait_all must still
    // return results in posted order.
    for p in [2usize, 4, 9] {
        World::builder(p).run(move |comm| {
            if comm.rank() == 0 {
                let reqs: Vec<_> = (1..p).map(|s| comm.irecv::<u64>(s, 5)).collect();
                let got = wait_all(reqs);
                for (i, v) in got.iter().enumerate() {
                    assert_eq!(v, &vec![(i + 1) as u64], "p={p}");
                }
                assert_eq!(comm.trace().outstanding_requests(), 0);
            } else {
                // Higher ranks send sooner: arrival order is reversed.
                std::thread::sleep(Duration::from_millis(
                    3 * (p - comm.rank()) as u64,
                ));
                comm.send(0, 5, vec![comm.rank() as u64]);
            }
        });
    }
}

#[test]
fn pool_reuse_across_repeated_ring_exchanges() {
    // A ring exchange repeated many times: after the first lap every
    // send should find a warm envelope in the pool.
    let p = 4;
    let laps: u64 = 30;
    let (_, trace) = World::builder(p).run_traced(move |comm| {
        let right = (comm.rank() + 1) % p;
        let left = (comm.rank() + p - 1) % p;
        let mut token = vec![comm.rank() as u64; 256];
        for lap in 0..laps {
            let recv = comm.irecv::<u64>(left, lap);
            let send = comm.isend(right, lap, &token);
            token = recv.wait();
            send.wait();
            // Make the returned envelope visible before the next acquire.
            comm.barrier();
        }
        assert_eq!(token.len(), 256);
    });
    for r in 0..p {
        let t = trace.rank(r);
        assert_eq!(t.pool_hits() + t.pool_misses(), laps);
        assert!(
            t.pool_hit_rate() > 0.8,
            "rank {r} hit rate {}",
            t.pool_hit_rate()
        );
        assert_eq!(t.outstanding_requests(), 0);
        assert!(t.peak_outstanding() >= 2);
    }
}

#[test]
fn test_poll_makes_progress_without_blocking() {
    // irecv::test() returns false until the message exists, then
    // completes without ever blocking the receiver.
    World::builder(2).run(|comm| {
        if comm.rank() == 0 {
            let mut req = comm.irecv::<u64>(1, 0);
            let mut polls = 0u64;
            while !req.test() {
                polls += 1;
                if polls > 100_000_000 {
                    panic!("test() never completed");
                }
            }
            assert_eq!(req.wait(), vec![17]);
        } else {
            std::thread::sleep(Duration::from_millis(20));
            comm.send(0, 0, vec![17u64]);
        }
    });
}
