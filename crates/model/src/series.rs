//! Scaling-series containers and formatting shared by the figure
//! harnesses: (rank count, predicted runtime) points plus speedup and
//! parallel-efficiency derivations and an aligned-text table printer.


use beatnik_json::impl_json_struct;

/// One point of a scaling study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Number of ranks (= GPUs in the paper's configuration).
    pub ranks: usize,
    /// Predicted or measured runtime, seconds.
    pub time: f64,
}

impl_json_struct!(ScalingPoint { ranks, time });

/// A named scaling series (one line in a paper figure).
#[derive(Debug, Clone)]
pub struct ScalingSeries {
    /// Legend label.
    pub label: String,
    /// Points ordered by rank count.
    pub points: Vec<ScalingPoint>,
}

impl_json_struct!(ScalingSeries { label, points });

impl ScalingSeries {
    /// Empty series with a label.
    pub fn new(label: impl Into<String>) -> Self {
        ScalingSeries {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, ranks: usize, time: f64) {
        self.points.push(ScalingPoint { ranks, time });
    }

    /// Runtime at a given rank count, if present.
    pub fn time_at(&self, ranks: usize) -> Option<f64> {
        self.points.iter().find(|p| p.ranks == ranks).map(|p| p.time)
    }

    /// Speedup of every point relative to the first.
    pub fn speedups(&self) -> Vec<f64> {
        match self.points.first() {
            Some(base) => self.points.iter().map(|p| base.time / p.time).collect(),
            None => Vec::new(),
        }
    }

    /// The rank count with minimum runtime (the strong-scaling turnover).
    pub fn best_ranks(&self) -> Option<usize> {
        self.points
            .iter()
            .min_by(|a, b| a.time.total_cmp(&b.time))
            .map(|p| p.ranks)
    }
}

/// Strong-scaling speedup going from `(p0, t0)` to `(p1, t1)`.
pub fn speedup(t0: f64, t1: f64) -> f64 {
    t0 / t1
}

/// Parallel efficiency of scaling `p0 → p1`: `speedup / (p1/p0)`.
pub fn efficiency(p0: usize, t0: f64, p1: usize, t1: f64) -> f64 {
    speedup(t0, t1) / (p1 as f64 / p0 as f64)
}

/// Render series as an aligned text table: one row per rank count, one
/// column per series. This is the exact output format of the `fig*`
/// bench targets.
pub fn format_table(series: &[ScalingSeries]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut ranks: Vec<usize> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.ranks))
        .collect();
    ranks.sort_unstable();
    ranks.dedup();
    let _ = write!(out, "{:>8}", "ranks");
    for s in series {
        let _ = write!(out, " {:>18}", s.label);
    }
    let _ = writeln!(out);
    for r in ranks {
        let _ = write!(out, "{r:>8}");
        for s in series {
            match s.time_at(r) {
                Some(t) => {
                    let _ = write!(out, " {t:>18.4}");
                }
                None => {
                    let _ = write!(out, " {:>18}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScalingSeries {
        let mut s = ScalingSeries::new("runtime");
        s.push(4, 100.0);
        s.push(16, 40.0);
        s.push(64, 28.5);
        s.push(256, 35.0);
        s
    }

    #[test]
    fn speedup_and_efficiency_match_paper_arithmetic() {
        // Paper §5.2: "3.5x speedup when moving from 4 to 64 GPUs, a
        // parallel efficiency of only 21%".
        let e = efficiency(4, 100.0, 64, 100.0 / 3.5);
        assert!((e - 3.5 / 16.0).abs() < 1e-12);
        assert!((e - 0.21875).abs() < 1e-3);
    }

    #[test]
    fn series_speedups_relative_to_first() {
        let s = sample();
        let sp = s.speedups();
        assert_eq!(sp.len(), 4);
        assert!((sp[0] - 1.0).abs() < 1e-12);
        assert!((sp[1] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn turnover_detection() {
        assert_eq!(sample().best_ranks(), Some(64));
        assert_eq!(ScalingSeries::new("x").best_ranks(), None);
    }

    #[test]
    fn table_is_aligned_and_complete() {
        let mut a = sample();
        a.label = "low".into();
        let mut b = ScalingSeries::new("high");
        b.push(4, 1.0);
        b.push(1024, 2.0);
        let t = format_table(&[a, b]);
        assert!(t.contains("ranks"));
        assert!(t.contains("low"));
        assert!(t.contains("1024"));
        assert!(t.lines().count() >= 6);
        // Rank 1024 has no "low" point: rendered as '-'.
        let last = t.lines().last().unwrap();
        assert!(last.contains('-'));
    }

    #[test]
    fn json_roundtrip() {
        let s = sample();
        let j = beatnik_json::to_string(&s);
        let back: ScalingSeries = beatnik_json::from_str(&j).unwrap();
        assert_eq!(back.points, s.points);
        assert_eq!(back.label, s.label);
    }
}
