//! The 3D spatial mesh of the cutoff solver.
//!
//! Paper §3.2: the cutoff solver migrates surface points into a 3D
//! spatial domain decomposed over a **2D x/y rank grid** ("to mirror the
//! initial distribution of 2D surface points and reduce load imbalance"),
//! each rank owning an x/y box spanning the full z extent. This struct is
//! pure geometry — ownership and neighborhood queries derived from rank
//! indices — shared by the migration engine and the figure harnesses.


use beatnik_json::impl_json_struct;

/// A 3D axis-aligned domain decomposed over a `[Py, Px]` rank grid in
/// the x/y plane (rank = `iy * Px + ix`, matching `CartComm` row-major
/// ordering).
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialMesh {
    /// Domain lower corner `[x, y, z]`.
    pub lo: [f64; 3],
    /// Domain upper corner `[x, y, z]`.
    pub hi: [f64; 3],
    /// Rank-grid extents `[Py, Px]`.
    pub dims: [usize; 2],
}

impl_json_struct!(SpatialMesh { lo, hi, dims });

impl SpatialMesh {
    /// Create a mesh over `[lo, hi]` decomposed over `dims` ranks.
    pub fn new(lo: [f64; 3], hi: [f64; 3], dims: [usize; 2]) -> Self {
        assert!(dims[0] > 0 && dims[1] > 0, "spatial mesh needs ranks");
        for d in 0..3 {
            assert!(hi[d] > lo[d], "spatial mesh: empty extent in dim {d}");
        }
        SpatialMesh { lo, hi, dims }
    }

    /// Total ranks in the decomposition.
    pub fn ranks(&self) -> usize {
        self.dims[0] * self.dims[1]
    }

    #[inline]
    fn bin(&self, v: f64, axis: usize, parts: usize) -> usize {
        let t = (v - self.lo[axis]) / (self.hi[axis] - self.lo[axis]);
        // Points outside the domain are clamped to the edge bins, so
        // every point always has an owner (the interface can drift
        // slightly outside the nominal box as it evolves).
        ((t * parts as f64).floor() as i64).clamp(0, parts as i64 - 1) as usize
    }

    /// The rank owning a point (by x/y position; z is ignored).
    pub fn rank_of_point(&self, p: [f64; 3]) -> usize {
        let iy = self.bin(p[1], 1, self.dims[0]);
        let ix = self.bin(p[0], 0, self.dims[1]);
        iy * self.dims[1] + ix
    }

    /// The x/y box owned by `rank`: `([x0, y0], [x1, y1])`.
    pub fn region_of(&self, rank: usize) -> ([f64; 2], [f64; 2]) {
        assert!(rank < self.ranks(), "rank out of range");
        let iy = rank / self.dims[1];
        let ix = rank % self.dims[1];
        let wx = (self.hi[0] - self.lo[0]) / self.dims[1] as f64;
        let wy = (self.hi[1] - self.lo[1]) / self.dims[0] as f64;
        (
            [self.lo[0] + ix as f64 * wx, self.lo[1] + iy as f64 * wy],
            [
                self.lo[0] + (ix + 1) as f64 * wx,
                self.lo[1] + (iy + 1) as f64 * wy,
            ],
        )
    }

    /// Every rank whose region intersects the x/y square of half-width
    /// `cutoff` around `p` (including `p`'s own rank). This is the halo
    /// destination set of the cutoff solver.
    pub fn ranks_within(&self, p: [f64; 3], cutoff: f64) -> Vec<usize> {
        assert!(cutoff >= 0.0, "negative cutoff");
        let x0 = self.bin(p[0] - cutoff, 0, self.dims[1]);
        let x1 = self.bin(p[0] + cutoff, 0, self.dims[1]);
        let y0 = self.bin(p[1] - cutoff, 1, self.dims[0]);
        let y1 = self.bin(p[1] + cutoff, 1, self.dims[0]);
        let mut out = Vec::with_capacity((x1 - x0 + 1) * (y1 - y0 + 1));
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                out.push(iy * self.dims[1] + ix);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh4() -> SpatialMesh {
        // Paper's high-order domain: (-3,-3,-3) to (3,3,3).
        SpatialMesh::new([-3.0, -3.0, -3.0], [3.0, 3.0, 3.0], [2, 2])
    }

    #[test]
    fn ownership_covers_quadrants() {
        let m = mesh4();
        assert_eq!(m.rank_of_point([-1.0, -1.0, 0.0]), 0);
        assert_eq!(m.rank_of_point([1.0, -1.0, 2.0]), 1);
        assert_eq!(m.rank_of_point([-1.0, 1.0, -2.0]), 2);
        assert_eq!(m.rank_of_point([1.0, 1.0, 0.0]), 3);
    }

    #[test]
    fn out_of_domain_points_clamp_to_edges() {
        let m = mesh4();
        assert_eq!(m.rank_of_point([-100.0, -100.0, 0.0]), 0);
        assert_eq!(m.rank_of_point([100.0, 100.0, 0.0]), 3);
        assert_eq!(m.rank_of_point([0.0, 100.0, 0.0]), 2 + 1); // y high, x in upper half of split at 0
    }

    #[test]
    fn regions_tile_the_domain() {
        let m = SpatialMesh::new([-3.0, -3.0, -3.0], [3.0, 3.0, 3.0], [3, 4]);
        let mut area = 0.0;
        for r in 0..m.ranks() {
            let (lo, hi) = m.region_of(r);
            area += (hi[0] - lo[0]) * (hi[1] - lo[1]);
            // The region's center must be owned by r.
            let c = [(lo[0] + hi[0]) / 2.0, (lo[1] + hi[1]) / 2.0, 0.0];
            assert_eq!(m.rank_of_point(c), r);
        }
        assert!((area - 36.0).abs() < 1e-9);
    }

    #[test]
    fn ranks_within_cutoff_includes_all_overlapping_regions() {
        let m = mesh4();
        // Point near the center: within 0.5 of all four quadrants.
        let near_center = m.ranks_within([-0.1, -0.1, 0.0], 0.5);
        assert_eq!(near_center, vec![0, 1, 2, 3]);
        // Point deep inside quadrant 0: only its own rank.
        let deep = m.ranks_within([-2.0, -2.0, 0.0], 0.5);
        assert_eq!(deep, vec![0]);
        // Zero cutoff: own rank only.
        assert_eq!(m.ranks_within([-0.1, -0.1, 0.0], 0.0), vec![0]);
    }

    #[test]
    fn ranks_within_is_conservative_vs_brute_force() {
        let m = SpatialMesh::new([-3.0, -3.0, -3.0], [3.0, 3.0, 3.0], [4, 4]);
        let cutoff = 0.7;
        for &p in &[
            [-2.9f64, -2.9, 0.0],
            [0.0, 0.0, 1.0],
            [2.9, -0.3, 0.0],
            [1.4, 1.6, -2.0],
        ] {
            let fast = m.ranks_within(p, cutoff);
            // Brute force: a rank is needed if its region's nearest x/y
            // point to p is within the cutoff square.
            for r in 0..m.ranks() {
                let (lo, hi) = m.region_of(r);
                let dx = (lo[0] - p[0]).max(p[0] - hi[0]).max(0.0);
                let dy = (lo[1] - p[1]).max(p[1] - hi[1]).max(0.0);
                let needed = dx <= cutoff && dy <= cutoff;
                let included = fast.contains(&r);
                if needed {
                    assert!(included, "rank {r} missing for point {p:?}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty extent")]
    fn degenerate_domain_rejected() {
        let _ = SpatialMesh::new([0.0, 0.0, 0.0], [1.0, 0.0, 1.0], [1, 1]);
    }
}
