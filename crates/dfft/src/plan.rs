//! The distributed 2D FFT pipelines.
//!
//! Data lives in a 2D block decomposition over a `Pr × Pc` rank grid
//! (matching the surface mesh decomposition the Z-Model uses). A forward
//! transform runs:
//!
//! * **slab path** (`pencils = false`):
//!   block → row slabs (global reshape) → row FFTs → column slabs
//!   (global reshape) → column FFTs → block (global reshape);
//! * **pencil path** (`pencils = true`):
//!   block → row pencils (reshape *within row subcommunicators*) → row
//!   FFTs → column pencils (global reshape) → column FFTs → block
//!   (reshape *within column subcommunicators*).
//!
//! Both paths perform three reshapes; the pencil path keeps two of them
//! inside `Pc`- and `Pr`-sized groups, trading message count against
//! message size — the tradeoff the paper's Figure 9 explores.

use crate::config::FftConfig;
use crate::layout::{Dist, Rect};
use crate::redistribute::{no_reorder_penalty, redistribute};
use beatnik_comm::{AllToAllAlgo, CartComm, Communicator};
use beatnik_fft::{Complex, Fft};
use std::ops::Range;

/// Split `base` into `parts` balanced sub-ranges and return part `i`.
fn subrange(base: Range<usize>, parts: usize, i: usize) -> Range<usize> {
    let d = Dist::new(base.len(), parts);
    let r = d.range(i);
    base.start + r.start..base.start + r.end
}

/// A planned distributed 2D FFT bound to one rank of a Cartesian grid.
///
/// Construction is collective: every rank of `parent` must construct the
/// plan with identical arguments.
pub struct DistributedFft2d {
    cart: CartComm,
    row_comm: Communicator,
    col_comm: Communicator,
    nr: usize,
    nc: usize,
    config: FftConfig,
    row_plan: Fft,
    col_plan: Fft,
}

impl DistributedFft2d {
    /// Plan transforms of a global `nr × nc` grid over a `proc_dims`
    /// rank grid. `proc_dims[0] × proc_dims[1]` must equal the size of
    /// `parent`.
    pub fn new(
        parent: &Communicator,
        proc_dims: [usize; 2],
        nr: usize,
        nc: usize,
        config: FftConfig,
    ) -> Self {
        let world = parent.duplicate();
        let cart = CartComm::new(world, proc_dims, [false, false])
            .expect("distributed fft: proc grid does not match communicator size");
        let row_comm = cart.row_comm();
        let col_comm = cart.col_comm();
        DistributedFft2d {
            cart,
            row_comm,
            col_comm,
            nr,
            nc,
            config,
            row_plan: Fft::new(nc),
            col_plan: Fft::new(nr),
        }
    }

    /// Global grid shape `(rows, cols)`.
    pub fn global_shape(&self) -> (usize, usize) {
        (self.nr, self.nc)
    }

    /// The tuning configuration.
    pub fn config(&self) -> FftConfig {
        self.config
    }

    fn pr(&self) -> usize {
        self.cart.dims()[0]
    }

    fn pc(&self) -> usize {
        self.cart.dims()[1]
    }

    fn algo(&self) -> AllToAllAlgo {
        if self.config.all_to_all {
            // Collective path: let the transport pick the engine per
            // reshape from the actual exchange volume.
            AllToAllAlgo::Adaptive
        } else {
            AllToAllAlgo::Direct
        }
    }

    /// Block rectangle of a world rank.
    fn block_rect_of(&self, rank: usize) -> Rect {
        let rd = Dist::new(self.nr, self.pr());
        let cd = Dist::new(self.nc, self.pc());
        Rect::new(rd.range(rank / self.pc()), cd.range(rank % self.pc()))
    }

    /// This rank's block rectangle (the caller's buffer layout).
    pub fn local_rect(&self) -> Rect {
        self.block_rect_of(self.cart.comm().rank())
    }

    /// Forward transform: consumes block-layout data, returns the
    /// block-layout spectrum (unnormalized). Collective.
    pub fn forward(&self, block: Vec<Complex>) -> Vec<Complex> {
        let _phase = self.cart.comm().telemetry().phase("dfft-forward");
        self.run(block, true)
    }

    /// Inverse transform: consumes a block-layout spectrum, returns
    /// block-layout data normalized by `1/(nr·nc)`. Collective.
    pub fn inverse(&self, block: Vec<Complex>) -> Vec<Complex> {
        let _phase = self.cart.comm().telemetry().phase("dfft-inverse");
        self.run(block, false)
    }

    /// Forward transform that *stays* in the final intermediate layout
    /// (column slabs / column pencils) instead of reshaping back to
    /// blocks: the layout heFFTe calls "transposed output". A
    /// forward→multiply→inverse roundtrip through
    /// [`DistributedFft2d::inverse_transposed`] saves two of the six
    /// reshapes. Returns the spectrum's rectangle and data.
    pub fn forward_transposed(&self, block: Vec<Complex>) -> (Rect, Vec<Complex>) {
        let _phase = self.cart.comm().telemetry().phase("dfft-forward");
        assert_eq!(
            block.len(),
            self.local_rect().area(),
            "distributed fft: block buffer does not match local rectangle"
        );
        let algo = self.algo();
        if self.config.pencils {
            let [my_pr, _my_pc] = self.cart.coords();
            let pc_n = self.pc();
            let src = |q: usize| self.block_rect_of(my_pr * pc_n + q);
            let dst = |q: usize| self.row_pencil_of(my_pr, q);
            let (rect, mut buf) = redistribute(&self.row_comm, &block, &src, &dst, algo);
            self.fft_rows(&mut buf, &rect, true);
            let src = |w: usize| self.row_pencil_of(w / pc_n, w % pc_n);
            let dst = |w: usize| self.col_pencil_of(w / pc_n, w % pc_n);
            let (rect, mut buf) = redistribute(self.cart.comm(), &buf, &src, &dst, algo);
            self.fft_cols(&mut buf, &rect, true);
            (rect, buf)
        } else {
            let comm = self.cart.comm();
            let p = comm.size();
            let (nr, nc) = (self.nr, self.nc);
            let block_rect = |r: usize| self.block_rect_of(r);
            let row_slab = move |r: usize| Rect::new(Dist::new(nr, p).range(r), 0..nc);
            let col_slab = move |r: usize| Rect::new(0..nr, Dist::new(nc, p).range(r));
            let (rect, mut buf) = redistribute(comm, &block, &block_rect, &row_slab, algo);
            self.fft_rows(&mut buf, &rect, true);
            let (rect, mut buf) = redistribute(comm, &buf, &row_slab, &col_slab, algo);
            self.fft_cols(&mut buf, &rect, true);
            (rect, buf)
        }
    }

    /// Inverse transform starting from the transposed (column slab /
    /// column pencil) spectrum layout produced by
    /// [`DistributedFft2d::forward_transposed`]; returns block-layout data
    /// normalized by `1/(nr·nc)`.
    pub fn inverse_transposed(&self, spectrum: Vec<Complex>) -> Vec<Complex> {
        let _phase = self.cart.comm().telemetry().phase("dfft-inverse");
        let algo = self.algo();
        if self.config.pencils {
            let [my_pr, my_pc] = self.cart.coords();
            let pc_n = self.pc();
            let my_rect = self.col_pencil_of(my_pr, my_pc);
            assert_eq!(spectrum.len(), my_rect.area(), "bad transposed spectrum");
            let mut buf = spectrum;
            self.fft_cols(&mut buf, &my_rect, false);
            // col pencils -> row pencils (global), inverse row FFT, then
            // row pencils -> block (row comm).
            let src = |w: usize| self.col_pencil_of(w / pc_n, w % pc_n);
            let dst = |w: usize| self.row_pencil_of(w / pc_n, w % pc_n);
            let (rect, mut buf) = redistribute(self.cart.comm(), &buf, &src, &dst, algo);
            self.fft_rows(&mut buf, &rect, false);
            let src = |q: usize| self.row_pencil_of(my_pr, q);
            let dst = |q: usize| self.block_rect_of(my_pr * pc_n + q);
            let (_, out) = redistribute(&self.row_comm, &buf, &src, &dst, algo);
            out
        } else {
            let comm = self.cart.comm();
            let p = comm.size();
            let (nr, nc) = (self.nr, self.nc);
            let block_rect = |r: usize| self.block_rect_of(r);
            let row_slab = move |r: usize| Rect::new(Dist::new(nr, p).range(r), 0..nc);
            let col_slab = move |r: usize| Rect::new(0..nr, Dist::new(nc, p).range(r));
            let my_rect = col_slab(comm.rank());
            assert_eq!(spectrum.len(), my_rect.area(), "bad transposed spectrum");
            let mut buf = spectrum;
            self.fft_cols(&mut buf, &my_rect, false);
            let (rect, mut buf) = redistribute(comm, &buf, &col_slab, &row_slab, algo);
            self.fft_rows(&mut buf, &rect, false);
            let (_, out) = redistribute(comm, &buf, &row_slab, &block_rect, algo);
            out
        }
    }

    fn run(&self, block: Vec<Complex>, forward: bool) -> Vec<Complex> {
        assert_eq!(
            block.len(),
            self.local_rect().area(),
            "distributed fft: block buffer does not match local rectangle"
        );
        if self.config.pencils {
            self.run_pencils(block, forward)
        } else {
            self.run_slabs(block, forward)
        }
    }

    fn fft_rows(&self, buf: &mut [Complex], rect: &Rect, forward: bool) {
        if rect.ncols() == 0 {
            return;
        }
        debug_assert_eq!(rect.ncols(), self.nc);
        if !self.config.reorder {
            no_reorder_penalty(buf);
        }
        for row in buf.chunks_exact_mut(self.nc) {
            if forward {
                self.row_plan.forward(row);
            } else {
                self.row_plan.inverse(row);
            }
        }
    }

    fn fft_cols(&self, buf: &mut [Complex], rect: &Rect, forward: bool) {
        debug_assert_eq!(rect.nrows(), self.nr);
        if !self.config.reorder {
            no_reorder_penalty(buf);
        }
        let ncols = rect.ncols();
        if ncols == 0 {
            return;
        }
        // Cache-blocked column transform: gather a tile of COL_TILE
        // columns into contiguous scratch in one row-streaming pass
        // (each source cache line fetched once per tile, not once per
        // column), transform each contiguous column, scatter back.
        use crate::layout::{gather_cols, scatter_cols, COL_TILE};
        let mut scratch = vec![Complex::default(); self.nr * COL_TILE.min(ncols)];
        for c0 in (0..ncols).step_by(COL_TILE) {
            let tc = COL_TILE.min(ncols - c0);
            let tile = &mut scratch[..self.nr * tc];
            gather_cols(buf, ncols, c0, tc, tile);
            for col in tile.chunks_exact_mut(self.nr) {
                if forward {
                    self.col_plan.forward(col);
                } else {
                    self.col_plan.inverse(col);
                }
            }
            scatter_cols(tile, ncols, c0, tc, buf);
        }
    }

    // ------------------------------------------------------------------
    // Slab path
    // ------------------------------------------------------------------

    fn run_slabs(&self, block: Vec<Complex>, forward: bool) -> Vec<Complex> {
        let comm = self.cart.comm();
        let p = comm.size();
        let algo = self.algo();
        let (nr, nc) = (self.nr, self.nc);
        let block_rect = |r: usize| self.block_rect_of(r);
        let row_slab = move |r: usize| Rect::new(Dist::new(nr, p).range(r), 0..nc);
        let col_slab = move |r: usize| Rect::new(0..nr, Dist::new(nc, p).range(r));

        // block -> row slabs
        let (rect, mut buf) = redistribute(comm, &block, &block_rect, &row_slab, algo);
        self.fft_rows(&mut buf, &rect, forward);
        // row slabs -> column slabs
        let (rect, mut buf) = redistribute(comm, &buf, &row_slab, &col_slab, algo);
        self.fft_cols(&mut buf, &rect, forward);
        // column slabs -> block
        let (_, out) = redistribute(comm, &buf, &col_slab, &block_rect, algo);
        out
    }

    // ------------------------------------------------------------------
    // Pencil path
    // ------------------------------------------------------------------

    /// Row-pencil rectangle of world rank `(pr, pc)`: the `pc`-th slice of
    /// block-row `pr`'s rows, full width.
    fn row_pencil_of(&self, pr: usize, pc: usize) -> Rect {
        let rd = Dist::new(self.nr, self.pr());
        Rect::new(subrange(rd.range(pr), self.pc(), pc), 0..self.nc)
    }

    /// Column-pencil rectangle of world rank `(pr, pc)`: the `pr`-th slice
    /// of block-column `pc`'s columns, full height.
    fn col_pencil_of(&self, pr: usize, pc: usize) -> Rect {
        let cd = Dist::new(self.nc, self.pc());
        Rect::new(0..self.nr, subrange(cd.range(pc), self.pr(), pr))
    }

    fn run_pencils(&self, block: Vec<Complex>, forward: bool) -> Vec<Complex> {
        let [my_pr, my_pc] = self.cart.coords();
        let pc_n = self.pc();
        let algo = self.algo();

        // block -> row pencils, within my row subcommunicator: peer q in
        // the row comm is world rank (my_pr, q).
        let src = |q: usize| self.block_rect_of(my_pr * pc_n + q);
        let dst = |q: usize| self.row_pencil_of(my_pr, q);
        let (rect, mut buf) = redistribute(&self.row_comm, &block, &src, &dst, algo);
        self.fft_rows(&mut buf, &rect, forward);

        // row pencils -> column pencils, global.
        let src = |w: usize| self.row_pencil_of(w / pc_n, w % pc_n);
        let dst = |w: usize| self.col_pencil_of(w / pc_n, w % pc_n);
        let (rect, mut buf) = redistribute(self.cart.comm(), &buf, &src, &dst, algo);
        self.fft_cols(&mut buf, &rect, forward);

        // column pencils -> block, within my column subcommunicator: peer
        // q in the column comm is world rank (q, my_pc).
        let src = |q: usize| self.col_pencil_of(q, my_pc);
        let dst = |q: usize| self.block_rect_of(q * pc_n + my_pc);
        let (_, out) = redistribute(&self.col_comm, &buf, &src, &dst, algo);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FftConfig;
    use beatnik_comm::{dims_create, OpKind, World};
    use beatnik_fft::fft2d::Fft2d;

    /// Deterministic test field.
    fn field(r: usize, c: usize) -> Complex {
        Complex::new(
            (r as f64 * 0.7 + c as f64 * 1.3).sin(),
            (r as f64 - 0.2 * c as f64).cos(),
        )
    }

    /// Run a distributed forward FFT and compare every rank's block with
    /// the serial 2D FFT of the full grid.
    fn check_forward(p: usize, nr: usize, nc: usize, config: FftConfig) {
        // Serial reference.
        let mut reference: Vec<Complex> = (0..nr * nc).map(|i| field(i / nc, i % nc)).collect();
        Fft2d::new(nr, nc).forward(&mut reference);

        World::builder(p).run(move |comm| {
            let dims = dims_create(comm.size());
            let plan = DistributedFft2d::new(&comm, dims, nr, nc, config);
            let rect = plan.local_rect();
            let mut block = Vec::with_capacity(rect.area());
            for r in rect.rows.clone() {
                for c in rect.cols.clone() {
                    block.push(field(r, c));
                }
            }
            let spec = plan.forward(block);
            let mut i = 0;
            for r in rect.rows.clone() {
                for c in rect.cols.clone() {
                    let want = reference[r * nc + c];
                    let got = spec[i];
                    assert!(
                        (got - want).abs() < 1e-8 * (nr * nc) as f64,
                        "{config} p={p} ({r},{c}): {got} vs {want}"
                    );
                    i += 1;
                }
            }
        });
    }

    #[test]
    fn all_eight_configs_match_serial_fft() {
        for config in FftConfig::table1() {
            check_forward(4, 8, 8, config);
        }
    }

    #[test]
    fn non_square_grids_and_rank_counts() {
        let cfg = FftConfig::default();
        check_forward(1, 8, 4, cfg);
        check_forward(2, 8, 6, cfg);
        check_forward(6, 12, 8, cfg);
        check_forward(6, 8, 12, FftConfig::from_index(0));
    }

    #[test]
    fn grid_smaller_than_rank_count() {
        // 9 ranks, 4x4 grid: some ranks own nothing in intermediates.
        check_forward(9, 4, 4, FftConfig::default());
        check_forward(9, 4, 4, FftConfig::from_index(2));
    }

    #[test]
    fn forward_inverse_roundtrip_all_configs() {
        for config in FftConfig::table1() {
            World::builder(4).run(move |comm| {
                let dims = dims_create(comm.size());
                let plan = DistributedFft2d::new(&comm, dims, 8, 8, config);
                let rect = plan.local_rect();
                let mut block = Vec::with_capacity(rect.area());
                for r in rect.rows.clone() {
                    for c in rect.cols.clone() {
                        block.push(field(r, c));
                    }
                }
                let orig = block.clone();
                let back = plan.inverse(plan.forward(block));
                for (a, b) in back.iter().zip(&orig) {
                    assert!((*a - *b).abs() < 1e-10, "{config}: {a} vs {b}");
                }
            });
        }
    }

    #[test]
    fn pencil_mode_uses_subcommunicator_reshapes() {
        // With pencils, the first/last reshapes run on Pc/Pr-sized groups:
        // strictly fewer alltoallv messages than three global reshapes.
        let count_msgs = |pencils: bool| {
            let (_, trace) = World::builder(4).run_traced(move |comm| {
                let cfg = FftConfig {
                    all_to_all: true,
                    pencils,
                    reorder: true,
                };
                let plan = DistributedFft2d::new(&comm, [2, 2], 16, 16, cfg);
                let rect = plan.local_rect();
                let block = vec![Complex::default(); rect.area()];
                let _ = plan.forward(block);
            });
            trace.total(OpKind::Alltoallv).messages
        };
        let slab_msgs = count_msgs(false);
        let pencil_msgs = count_msgs(true);
        // Slab: 3 reshapes x 4 ranks x 3 peers = 36 messages. Pencil:
        // 2 reshapes x 4 ranks x 1 peer + 1 global reshape x 4 x 3 = 20.
        assert_eq!(slab_msgs, 36);
        assert_eq!(pencil_msgs, 20);
    }

    #[test]
    fn alltoall_knob_changes_algorithm_not_results() {
        // Covered for results by all_eight_configs; here check that the
        // knob switches the transport: collective alltoallv traffic when
        // on, nonblocking point-to-point (Send/Recv) when off — moving
        // the same payload volume either way.
        let traffic_with = |a2a: bool| {
            let (_, trace) = World::builder(4).run_traced(move |comm| {
                let cfg = FftConfig {
                    all_to_all: a2a,
                    pencils: false,
                    reorder: true,
                };
                let plan = DistributedFft2d::new(&comm, [2, 2], 8, 8, cfg);
                let block = vec![Complex::default(); plan.local_rect().area()];
                let _ = plan.forward(block);
            });
            (
                trace.total(OpKind::Alltoallv).bytes,
                trace.total(OpKind::Send).bytes,
            )
        };
        let (coll_bytes, p2p_when_coll) = traffic_with(true);
        let (coll_when_p2p, p2p_bytes) = traffic_with(false);
        assert_eq!(coll_when_p2p, 0);
        assert_eq!(p2p_when_coll, 0);
        // The p2p path skips empty intersections but every payload byte
        // still travels, so the volumes agree exactly.
        assert_eq!(coll_bytes, p2p_bytes);
        assert!(p2p_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "does not match local rectangle")]
    fn wrong_block_size_panics() {
        World::builder(1).run(|comm| {
            let plan = DistributedFft2d::new(&comm, [1, 1], 4, 4, FftConfig::default());
            let _ = plan.forward(vec![Complex::default(); 3]);
        });
    }
}

#[cfg(test)]
mod transposed_tests {
    use super::*;
    use crate::config::FftConfig;
    use beatnik_comm::{dims_create, OpKind, World};

    fn field(r: usize, c: usize) -> Complex {
        Complex::new((r as f64 * 0.5 + c as f64).sin(), (c as f64 * 0.3).cos())
    }

    #[test]
    fn transposed_roundtrip_matches_plain_roundtrip() {
        for cfg_idx in [0usize, 3, 7] {
            let config = FftConfig::from_index(cfg_idx);
            World::builder(4).run(move |comm| {
                let dims = dims_create(comm.size());
                let plan = DistributedFft2d::new(&comm, dims, 8, 8, config);
                let rect = plan.local_rect();
                let mut block = Vec::with_capacity(rect.area());
                for r in rect.rows.clone() {
                    for c in rect.cols.clone() {
                        block.push(field(r, c));
                    }
                }
                let plain = plan.inverse(plan.forward(block.clone()));
                let (_, spec) = plan.forward_transposed(block);
                let fast = plan.inverse_transposed(spec);
                for (a, b) in plain.iter().zip(&fast) {
                    assert!((*a - *b).abs() < 1e-10, "cfg{cfg_idx}: {a} vs {b}");
                }
            });
        }
    }

    #[test]
    fn transposed_spectrum_values_are_correct() {
        // Values in the transposed layout must equal the plain forward
        // transform's values at the same global indices.
        World::builder(4).run(|comm| {
            let config = FftConfig::default();
            let dims = dims_create(comm.size());
            let plan = DistributedFft2d::new(&comm, dims, 8, 8, config);
            let rect = plan.local_rect();
            let mut block = Vec::with_capacity(rect.area());
            for r in rect.rows.clone() {
                for c in rect.cols.clone() {
                    block.push(field(r, c));
                }
            }
            // Gather the full plain spectrum via allgather of blocks.
            let plain = plan.forward(block.clone());
            let mut tagged: Vec<(u64, u64, Complex)> = Vec::new();
            let mut i = 0;
            for r in rect.rows.clone() {
                for c in rect.cols.clone() {
                    tagged.push((r as u64, c as u64, plain[i]));
                    i += 1;
                }
            }
            let all: Vec<(u64, u64, Complex)> = comm.allgather(&tagged);
            let lookup = |r: usize, c: usize| -> Complex {
                all.iter()
                    .find(|(gr, gc, _)| *gr == r as u64 && *gc == c as u64)
                    .unwrap()
                    .2
            };
            let (trect, tspec) = plan.forward_transposed(block);
            let mut i = 0;
            for r in trect.rows.clone() {
                for c in trect.cols.clone() {
                    let want = lookup(r, c);
                    assert!((tspec[i] - want).abs() < 1e-10, "({r},{c})");
                    i += 1;
                }
            }
        });
    }

    #[test]
    fn transposed_roundtrip_saves_reshapes() {
        let msgs = |transposed: bool| {
            let (_, trace) = World::builder(4).run_traced(move |comm| {
                let config = FftConfig {
                    all_to_all: true,
                    pencils: false,
                    reorder: true,
                };
                let plan = DistributedFft2d::new(&comm, dims_create(4), 16, 16, config);
                let block = vec![Complex::default(); plan.local_rect().area()];
                if transposed {
                    let (_, spec) = plan.forward_transposed(block);
                    let _ = plan.inverse_transposed(spec);
                } else {
                    let _ = plan.inverse(plan.forward(block));
                }
            });
            trace.total(OpKind::Alltoallv).messages
        };
        let plain = msgs(false);
        let fast = msgs(true);
        // Slab path: 6 reshapes -> 4 reshapes.
        assert_eq!(plain, 6 * 4 * 3);
        assert_eq!(fast, 4 * 4 * 3);
    }
}
