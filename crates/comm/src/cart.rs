//! 2D Cartesian process topology (the analogue of `MPI_Cart_create`).
//!
//! Beatnik decomposes its surface mesh over a 2D grid of ranks and its
//! spatial mesh over a 2D x/y grid; pencil FFTs additionally need row and
//! column subcommunicators. [`CartComm`] provides rank↔coordinate maps,
//! neighbor shifts with periodic or open edges, and row/column splits.

use crate::communicator::Communicator;
use crate::error::CommError;

/// Choose a balanced 2D factorization `[rows, cols]` of `p` ranks, the
/// equivalent of `MPI_Dims_create(p, 2)`: the two factors are as close to
/// `sqrt(p)` as possible, with `rows <= cols`.
pub fn dims_create(p: usize) -> [usize; 2] {
    assert!(p > 0, "dims_create: empty world");
    let mut best = [1, p];
    let mut r = 1usize;
    while r * r <= p {
        if p.is_multiple_of(r) {
            best = [r, p / r];
        }
        r += 1;
    }
    best
}

/// A communicator arranged as a `dims[0] × dims[1]` grid (row-major rank
/// order), with per-dimension periodicity.
pub struct CartComm {
    comm: Communicator,
    dims: [usize; 2],
    periods: [bool; 2],
    coords: [usize; 2],
}

impl CartComm {
    /// Arrange `comm` as a Cartesian grid. Collective-free (pure index
    /// math), but every rank must pass identical `dims`/`periods`.
    pub fn new(comm: Communicator, dims: [usize; 2], periods: [bool; 2]) -> Result<Self, CommError> {
        let product = dims[0] * dims[1];
        if product != comm.size() {
            return Err(CommError::BadDims {
                product,
                size: comm.size(),
            });
        }
        let r = comm.rank();
        let coords = [r / dims[1], r % dims[1]];
        Ok(CartComm {
            comm,
            dims,
            periods,
            coords,
        })
    }

    /// The underlying communicator.
    pub fn comm(&self) -> &Communicator {
        &self.comm
    }

    /// Grid extents `[rows, cols]`.
    pub fn dims(&self) -> [usize; 2] {
        self.dims
    }

    /// Per-dimension periodicity.
    pub fn periods(&self) -> [bool; 2] {
        self.periods
    }

    /// This rank's grid coordinates `[row, col]`.
    pub fn coords(&self) -> [usize; 2] {
        self.coords
    }

    /// Rank at grid coordinates, if any. Signed inputs are wrapped for
    /// periodic dimensions; out-of-range coordinates on open dimensions
    /// yield `None`.
    pub fn rank_at(&self, row: i64, col: i64) -> Option<usize> {
        let wrap = |x: i64, n: usize, periodic: bool| -> Option<usize> {
            let n_i = n as i64;
            if periodic {
                Some(x.rem_euclid(n_i) as usize)
            } else if (0..n_i).contains(&x) {
                Some(x as usize)
            } else {
                None
            }
        };
        let r = wrap(row, self.dims[0], self.periods[0])?;
        let c = wrap(col, self.dims[1], self.periods[1])?;
        Some(r * self.dims[1] + c)
    }

    /// Neighbor ranks for a shift of `disp` along `dim` (0 = row, 1 =
    /// col): `(source, destination)` as in `MPI_Cart_shift`. `None` marks
    /// an open boundary.
    pub fn shift(&self, dim: usize, disp: i64) -> (Option<usize>, Option<usize>) {
        assert!(dim < 2, "shift: dim must be 0 or 1");
        let mut up = [self.coords[0] as i64, self.coords[1] as i64];
        let mut down = up;
        up[dim] += disp;
        down[dim] -= disp;
        let dest = self.rank_at(up[0], up[1]);
        let src = self.rank_at(down[0], down[1]);
        (src, dest)
    }

    /// Split into row subcommunicators: ranks in the same grid row,
    /// ordered by column. Collective over the underlying communicator.
    pub fn row_comm(&self) -> Communicator {
        self.comm
            .split(Some(self.coords[0] as u64), self.coords[1] as i64)
            .expect("row_comm split")
    }

    /// Split into column subcommunicators: ranks in the same grid column,
    /// ordered by row. Collective over the underlying communicator.
    pub fn col_comm(&self) -> Communicator {
        self.comm
            .split(Some(self.coords[1] as u64), self.coords[0] as i64)
            .expect("col_comm split")
    }

    /// The eight surrounding neighbors (including diagonals) as
    /// `(d_row, d_col, rank)` triples, skipping open edges. Diagonal
    /// neighbors matter for corner halo regions.
    pub fn neighbors8(&self) -> Vec<(i64, i64, usize)> {
        let mut out = Vec::with_capacity(8);
        for dr in -1..=1i64 {
            for dc in -1..=1i64 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                if let Some(r) =
                    self.rank_at(self.coords[0] as i64 + dr, self.coords[1] as i64 + dc)
                {
                    out.push((dr, dc, r));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn dims_create_prefers_square() {
        assert_eq!(dims_create(1), [1, 1]);
        assert_eq!(dims_create(4), [2, 2]);
        assert_eq!(dims_create(6), [2, 3]);
        assert_eq!(dims_create(7), [1, 7]);
        assert_eq!(dims_create(12), [3, 4]);
        assert_eq!(dims_create(36), [6, 6]);
        assert_eq!(dims_create(1024), [32, 32]);
    }

    #[test]
    fn coords_roundtrip() {
        World::builder(6).run(|c| {
            let r = c.rank();
            let cart = CartComm::new(c, [2, 3], [true, true]).unwrap();
            let [row, col] = cart.coords();
            assert_eq!(cart.rank_at(row as i64, col as i64), Some(r));
        });
    }

    #[test]
    fn bad_dims_rejected() {
        World::builder(5).run(|c| {
            assert!(matches!(
                CartComm::new(c, [2, 2], [false, false]),
                Err(CommError::BadDims { product: 4, size: 5 })
            ));
        });
    }

    #[test]
    fn periodic_shift_wraps_and_open_shift_ends() {
        World::builder(4).run(|c| {
            let r = c.rank();
            let cart = CartComm::new(c, [2, 2], [true, false]).unwrap();
            let (src_row, dst_row) = cart.shift(0, 1);
            // Periodic rows always have both neighbors.
            assert!(src_row.is_some() && dst_row.is_some());
            let (src_col, dst_col) = cart.shift(1, 1);
            let col = r % 2;
            if col == 0 {
                assert!(src_col.is_none());
                assert_eq!(dst_col, Some(r + 1));
            } else {
                assert_eq!(src_col, Some(r - 1));
                assert!(dst_col.is_none());
            }
        });
    }

    #[test]
    fn halo_style_exchange_along_rows() {
        // Shift data right along each row of a 2x3 periodic grid.
        World::builder(6).run(|c| {
            let r = c.rank();
            let cart = CartComm::new(c, [2, 3], [true, true]).unwrap();
            let (src, dst) = cart.shift(1, 1);
            let got = cart
                .comm()
                .sendrecv(dst.unwrap(), vec![r as u64], src.unwrap(), 77);
            let [row, col] = cart.coords();
            let expect_col = (col + 3 - 1) % 3;
            assert_eq!(got[0], (row * 3 + expect_col) as u64);
        });
    }

    #[test]
    fn shift_on_2x3_periodic_wraps_both_dims() {
        // Non-square grid: row shifts wrap over 2, col shifts over 3,
        // and every (src, dst) pair must be exact, not just present.
        World::builder(6).run(|c| {
            let r = c.rank();
            let cart = CartComm::new(c, [2, 3], [true, true]).unwrap();
            let [row, col] = cart.coords();
            let at = |row: usize, col: usize| row * 3 + col;

            let (src, dst) = cart.shift(0, 1);
            assert_eq!(src, Some(at((row + 1) % 2, col)));
            assert_eq!(dst, Some(at((row + 1) % 2, col)));

            let (src, dst) = cart.shift(1, 1);
            assert_eq!(src, Some(at(row, (col + 2) % 3)));
            assert_eq!(dst, Some(at(row, (col + 1) % 3)));

            // A displacement of the full column extent wraps to self.
            let (src, dst) = cart.shift(1, 3);
            assert_eq!(src, Some(r));
            assert_eq!(dst, Some(r));

            // Negative displacement swaps source and destination.
            let (src_n, dst_n) = cart.shift(1, -1);
            let (src_p, dst_p) = cart.shift(1, 1);
            assert_eq!((src_n, dst_n), (dst_p, src_p));
        });
    }

    #[test]
    fn shift_on_1x6_degenerate_row_dimension() {
        // 1x6 grid: the row dimension has extent 1, so a periodic row
        // shift is a self-loop and an open row shift hits both edges.
        World::builder(6).run(|c| {
            let r = c.rank();
            let cart = CartComm::new(c, [1, 6], [true, true]).unwrap();
            assert_eq!(cart.coords(), [0, r]);
            assert_eq!(cart.shift(0, 1), (Some(r), Some(r)));
            let (src, dst) = cart.shift(1, 1);
            assert_eq!(src, Some((r + 5) % 6));
            assert_eq!(dst, Some((r + 1) % 6));
        });
        World::builder(6).run(|c| {
            let r = c.rank();
            let cart = CartComm::new(c, [1, 6], [false, false]).unwrap();
            assert_eq!(cart.shift(0, 1), (None, None));
            let (src, dst) = cart.shift(1, 1);
            assert_eq!(src, if r > 0 { Some(r - 1) } else { None });
            assert_eq!(dst, if r < 5 { Some(r + 1) } else { None });
        });
    }

    #[test]
    fn halo_style_exchange_along_1x6_ring() {
        // Periodic wraparound carries data all the way around the ring.
        World::builder(6).run(|c| {
            let r = c.rank();
            let cart = CartComm::new(c, [1, 6], [true, true]).unwrap();
            let (src, dst) = cart.shift(1, 1);
            let got = cart
                .comm()
                .sendrecv(dst.unwrap(), vec![r as u64], src.unwrap(), 78);
            assert_eq!(got[0], ((r + 5) % 6) as u64);
        });
    }

    #[test]
    fn row_and_col_comms_partition_the_grid() {
        World::builder(6).run(|c| {
            let world_rank = c.rank();
            let cart = CartComm::new(c, [2, 3], [false, false]).unwrap();
            let [row, col] = cart.coords();
            let rc = cart.row_comm();
            assert_eq!(rc.size(), 3);
            assert_eq!(rc.rank(), col);
            let cc = cart.col_comm();
            assert_eq!(cc.size(), 2);
            assert_eq!(cc.rank(), row);
            // Row-sum of world ranks via the row communicator.
            let s = rc.allreduce_sum(world_rank as f64) as usize;
            let expect: usize = (0..3).map(|cc| row * 3 + cc).sum();
            assert_eq!(s, expect);
        });
    }

    #[test]
    fn neighbors8_center_of_3x3_open_grid() {
        World::builder(9).run(|c| {
            let r = c.rank();
            let cart = CartComm::new(c, [3, 3], [false, false]).unwrap();
            let n = cart.neighbors8();
            match r {
                4 => assert_eq!(n.len(), 8),
                0 | 2 | 6 | 8 => assert_eq!(n.len(), 3),
                _ => assert_eq!(n.len(), 5),
            }
        });
    }

    #[test]
    fn neighbors8_periodic_grid_always_eight() {
        World::builder(9).run(|c| {
            let cart = CartComm::new(c, [3, 3], [true, true]).unwrap();
            assert_eq!(cart.neighbors8().len(), 8);
        });
    }
}
