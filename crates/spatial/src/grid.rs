//! Uniform-grid (cell-list) neighbor search.
//!
//! Points are binned into cubic cells whose edge is at least the query
//! radius, so every neighbor of a query point lies in the 3×3×3 block of
//! cells around it. Build is O(n); a query touches only nearby points.

use crate::aabb::Aabb;
use crate::dist2;

/// A cell-list acceleration structure over a fixed point set.
pub struct UniformGrid {
    points: Vec<[f64; 3]>,
    bounds: Aabb,
    /// Cell edge length (≥ the radius the grid was built for).
    cell: f64,
    /// Cells per axis.
    dims: [usize; 3],
    /// CSR cell → point-index lists.
    cell_start: Vec<usize>,
    cell_points: Vec<u32>,
}

impl UniformGrid {
    /// Build over `points` for queries of radius ≤ `radius`.
    ///
    /// # Panics
    /// Panics on a non-positive radius. An empty point set is fine.
    pub fn build(points: Vec<[f64; 3]>, radius: f64) -> Self {
        assert!(radius > 0.0, "uniform grid requires a positive radius");
        let bounds = Aabb::bounding(&points)
            .unwrap_or(Aabb::new([0.0; 3], [0.0; 3]))
            .expanded(radius * 1e-9 + 1e-12); // guard exact-edge binning
        let ext = bounds.extents();
        let cell = radius;
        let dims = [
            ((ext[0] / cell).ceil() as usize).max(1),
            ((ext[1] / cell).ceil() as usize).max(1),
            ((ext[2] / cell).ceil() as usize).max(1),
        ];
        let ncells = dims[0] * dims[1] * dims[2];

        // Counting sort of points into cells.
        let mut counts = vec![0usize; ncells + 1];
        let cell_of = |p: &[f64; 3]| -> usize {
            let mut idx = [0usize; 3];
            for d in 0..3 {
                let t = ((p[d] - bounds.lo[d]) / cell) as usize;
                idx[d] = t.min(dims[d] - 1);
            }
            (idx[2] * dims[1] + idx[1]) * dims[0] + idx[0]
        };
        for p in &points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 1..=ncells {
            counts[i] += counts[i - 1];
        }
        let mut cell_points = vec![0u32; points.len()];
        let mut cursor = counts.clone();
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            cell_points[cursor[c]] = i as u32;
            cursor[c] += 1;
        }

        UniformGrid {
            points,
            bounds,
            cell,
            dims,
            cell_start: counts,
            cell_points,
        }
    }

    /// The indexed points.
    pub fn points(&self) -> &[[f64; 3]] {
        &self.points
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the structure holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of all points within `radius` of `q` (excluding none —
    /// a query point that is itself indexed will appear; callers filter).
    ///
    /// `radius` must not exceed the build radius.
    pub fn query(&self, q: [f64; 3], radius: f64, out: &mut Vec<u32>) {
        out.clear();
        if self.points.is_empty() {
            return;
        }
        assert!(
            radius <= self.cell * (1.0 + 1e-12),
            "query radius {radius} exceeds build radius {}",
            self.cell
        );
        let r2 = radius * radius;
        let mut c0 = [0i64; 3];
        let mut c1 = [0i64; 3];
        for d in 0..3 {
            c0[d] = (((q[d] - radius) - self.bounds.lo[d]) / self.cell).floor() as i64;
            c1[d] = (((q[d] + radius) - self.bounds.lo[d]) / self.cell).floor() as i64;
        }
        for z in c0[2].max(0)..=c1[2].min(self.dims[2] as i64 - 1) {
            for y in c0[1].max(0)..=c1[1].min(self.dims[1] as i64 - 1) {
                for x in c0[0].max(0)..=c1[0].min(self.dims[0] as i64 - 1) {
                    let c = (z as usize * self.dims[1] + y as usize) * self.dims[0] + x as usize;
                    for &pi in &self.cell_points[self.cell_start[c]..self.cell_start[c + 1]] {
                        if dist2(self.points[pi as usize], q) <= r2 {
                            out.push(pi);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize) -> Vec<[f64; 3]> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                [
                    (t * 0.731).fract() * 4.0 - 2.0,
                    (t * 0.317).fract() * 4.0 - 2.0,
                    (t * 0.113).fract() * 2.0 - 1.0,
                ]
            })
            .collect()
    }

    #[test]
    fn query_matches_brute_force() {
        let pts = cloud(300);
        let r = 0.5;
        let grid = UniformGrid::build(pts.clone(), r);
        let mut found = Vec::new();
        for (qi, q) in pts.iter().enumerate().step_by(17) {
            grid.query(*q, r, &mut found);
            let mut got: Vec<u32> = found.clone();
            got.sort_unstable();
            let mut want: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| dist2(**p, *q) <= r * r)
                .map(|(i, _)| i as u32)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "query {qi}");
            assert!(got.contains(&(qi as u32)), "self not found");
        }
    }

    #[test]
    fn smaller_query_radius_is_allowed() {
        let pts = cloud(100);
        let grid = UniformGrid::build(pts.clone(), 1.0);
        let mut a = Vec::new();
        grid.query(pts[0], 0.3, &mut a);
        let want = pts
            .iter()
            .filter(|p| dist2(**p, pts[0]) <= 0.09)
            .count();
        assert_eq!(a.len(), want);
    }

    #[test]
    #[should_panic(expected = "exceeds build radius")]
    fn oversized_query_radius_panics() {
        let grid = UniformGrid::build(cloud(10), 0.5);
        let mut out = Vec::new();
        grid.query([0.0; 3], 1.0, &mut out);
    }

    #[test]
    fn empty_and_singleton_sets() {
        let empty = UniformGrid::build(Vec::new(), 0.5);
        assert!(empty.is_empty());
        let mut out = vec![7u32];
        empty.query([0.0; 3], 0.5, &mut out);
        assert!(out.is_empty());

        let one = UniformGrid::build(vec![[1.0, 1.0, 1.0]], 0.5);
        assert_eq!(one.len(), 1);
        one.query([1.1, 1.0, 1.0], 0.5, &mut out);
        assert_eq!(out, vec![0]);
        one.query([2.0, 2.0, 2.0], 0.5, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn coincident_points_all_found() {
        let pts = vec![[0.5, 0.5, 0.5]; 8];
        let grid = UniformGrid::build(pts, 0.25);
        let mut out = Vec::new();
        grid.query([0.5, 0.5, 0.5], 0.25, &mut out);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn boundary_points_at_exact_radius_are_included() {
        let pts = vec![[0.0, 0.0, 0.0], [0.5, 0.0, 0.0]];
        let grid = UniformGrid::build(pts, 0.5);
        let mut out = Vec::new();
        grid.query([0.0; 3], 0.5, &mut out);
        assert_eq!(out.len(), 2);
    }
}
