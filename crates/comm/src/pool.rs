//! Reusable send-buffer pool.
//!
//! The nonblocking send path ([`crate::Communicator::isend`] and the
//! point-to-point all-to-all engine) copies slice data into a byte
//! envelope instead of moving an owned `Vec` — which would allocate per
//! message. The [`BufferPool`] keeps those byte envelopes on a per-rank
//! free list: a send acquires a buffer (reusing a previous envelope's
//! allocation when one is large enough), the buffer travels to the
//! receiver inside the message, and when the receiver unpacks the payload
//! the buffer returns to the *sender's* pool automatically via
//! [`PooledBuf`]'s `Drop`. After warmup, hot-path sends perform zero heap
//! allocations.
//!
//! Hits and misses are counted both here (for standalone diagnostics) and
//! in the per-rank [`crate::RankTrace`] (for the world-level report).
//!
//! The pool serves only the *eager* copying path. Ownership-transfer
//! sends ([`crate::Communicator::isend_owned`] /
//! [`crate::Communicator::isend_shared`]) bypass it entirely: the
//! caller's own allocation travels in the envelope and is freed by
//! whoever ends up owning it (the receiver, or the last `Arc` holder
//! for shared sends) — nothing is returned here. A workload that
//! switches its large messages to owned sends will therefore see its
//! pool traffic drop to zero along with its copied bytes (DESIGN.md
//! §15).

use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of free buffers a pool retains before dropping returns.
pub const DEFAULT_MAX_POOLED: usize = 64;

/// Counters describing how effective a pool has been.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions served from the free list.
    pub hits: u64,
    /// Acquisitions that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers currently parked on the free list.
    pub free: usize,
    /// Buffers currently checked out (acquired, not yet returned).
    pub in_flight: u64,
    /// High-water mark of simultaneously checked-out buffers — how much
    /// envelope memory the communication pattern actually pins at once.
    pub peak_in_flight: u64,
}

impl PoolStats {
    /// Fraction of acquisitions served without allocating, in `[0, 1]`.
    /// Zero when nothing was ever acquired.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A per-rank free list of reusable byte envelopes.
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    max_pooled: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    in_flight: AtomicU64,
    peak_in_flight: AtomicU64,
}

impl BufferPool {
    /// Pool retaining at most [`DEFAULT_MAX_POOLED`] free buffers.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MAX_POOLED)
    }

    /// Pool retaining at most `max_pooled` free buffers; further returns
    /// are simply dropped (bounding idle memory).
    pub fn with_capacity(max_pooled: usize) -> Self {
        BufferPool {
            free: Mutex::new(Vec::new()),
            max_pooled,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
        }
    }

    /// Acquire a buffer with capacity for at least `bytes`. Returns the
    /// buffer (empty, ready to fill) and whether the acquisition was a
    /// pool hit.
    pub fn acquire(self: &Arc<Self>, bytes: usize) -> (PooledBuf, bool) {
        let reused = {
            let mut free = self.free.lock();
            // First fit: envelopes in a given communication pattern are
            // near-uniform in size, so scanning rarely passes many entries.
            free.iter()
                .position(|b| b.capacity() >= bytes)
                .map(|i| free.swap_remove(i))
        };
        let hit = reused.is_some();
        let mut data = match reused {
            Some(b) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(bytes)
            }
        };
        data.clear();
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_in_flight.fetch_max(now, Ordering::Relaxed);
        (
            PooledBuf {
                data,
                pool: Some(Arc::clone(self)),
            },
            hit,
        )
    }

    fn release(&self, data: Vec<u8>) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        let mut free = self.free.lock();
        if free.len() < self.max_pooled {
            free.push(data);
        }
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            free: self.free.lock().len(),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            peak_in_flight: self.peak_in_flight.load(Ordering::Relaxed),
        }
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BufferPool")
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("free", &s.free)
            .finish()
    }
}

/// A byte buffer checked out of a [`BufferPool`].
///
/// Travels inside a message envelope; dropping it (after the receiver
/// copies the payload out) returns the allocation to its origin pool.
pub struct PooledBuf {
    data: Vec<u8>,
    pool: Option<Arc<BufferPool>>,
}

impl PooledBuf {
    /// A pool-less buffer (dropped normally); used by tests and as a
    /// fallback when no pool is attached.
    pub fn detached(data: Vec<u8>) -> Self {
        PooledBuf { data, pool: None }
    }

    /// The buffered bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Number of buffered bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy `src` into the buffer, replacing any previous contents.
    ///
    /// Raw-pointer copy rather than `extend_from_slice` over a `&[u8]`
    /// view: `T` may contain padding bytes, which must not be observed
    /// through a typed slice, but may be memcpy'd.
    pub fn fill_from<T: Copy>(&mut self, src: &[T]) {
        let bytes = std::mem::size_of_val(src);
        self.data.clear();
        self.data.reserve(bytes);
        // SAFETY: `reserve` guarantees capacity; the regions cannot
        // overlap (freshly reserved heap vs caller slice); `set_len` only
        // covers bytes just written.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr() as *const u8, self.data.as_mut_ptr(), bytes);
            self.data.set_len(bytes);
        }
    }

    /// Copy the buffered bytes out as a `Vec<T>`. The caller must have
    /// established (via type-id matching) that the buffer was filled from
    /// a `&[T]` of the same `T`.
    pub fn copy_out<T: Copy>(&self, count: usize) -> Vec<T> {
        assert_eq!(
            count * std::mem::size_of::<T>(),
            self.data.len(),
            "pooled buffer length does not match element count"
        );
        let mut out = Vec::<T>::with_capacity(count);
        // SAFETY: capacity reserved above; the bytes are a valid [T]
        // because `fill_from` wrote them from one (caller checks T).
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.data.as_ptr(),
                out.as_mut_ptr() as *mut u8,
                self.data.len(),
            );
            out.set_len(count);
        }
        out
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.release(std::mem::take(&mut self.data));
        }
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.data.len())
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_miss_then_hit_after_return() {
        let pool = Arc::new(BufferPool::new());
        let (buf, hit) = pool.acquire(128);
        assert!(!hit);
        drop(buf); // returns to pool
        let (_buf2, hit2) = pool.acquire(64); // smaller fits the returned 128
        assert!(hit2);
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn too_small_free_buffer_is_a_miss() {
        let pool = Arc::new(BufferPool::new());
        let (buf, _) = pool.acquire(16);
        drop(buf);
        let (_big, hit) = pool.acquire(1 << 20);
        assert!(!hit);
    }

    #[test]
    fn pool_capacity_bounds_free_list() {
        let pool = Arc::new(BufferPool::with_capacity(2));
        let bufs: Vec<_> = (0..5).map(|_| pool.acquire(8).0).collect();
        drop(bufs);
        assert_eq!(pool.stats().free, 2);
    }

    #[test]
    fn in_flight_gauge_tracks_checkouts_and_peak() {
        let pool = Arc::new(BufferPool::new());
        let a = pool.acquire(8).0;
        let b = pool.acquire(8).0;
        assert_eq!(pool.stats().in_flight, 2);
        drop(a);
        assert_eq!(pool.stats().in_flight, 1);
        let c = pool.acquire(8).0;
        let d = pool.acquire(8).0;
        assert_eq!(pool.stats().in_flight, 3);
        drop((b, c, d));
        let s = pool.stats();
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.peak_in_flight, 3);
    }

    #[test]
    fn fill_and_copy_out_roundtrip() {
        let pool = Arc::new(BufferPool::new());
        let (mut buf, _) = pool.acquire(0);
        let src: Vec<[f64; 3]> = (0..10).map(|i| [i as f64, 0.5, -1.0]).collect();
        buf.fill_from(&src);
        assert_eq!(buf.len(), 10 * 24);
        let back: Vec<[f64; 3]> = buf.copy_out(10);
        assert_eq!(back, src);
    }

    #[test]
    fn detached_buffers_do_not_return_anywhere() {
        let mut buf = PooledBuf::detached(Vec::new());
        buf.fill_from(&[1u8, 2, 3]);
        assert_eq!(buf.as_slice(), &[1, 2, 3]);
        assert!(!buf.is_empty());
        drop(buf);
    }

    #[test]
    fn zero_sized_fill_is_fine() {
        let pool = Arc::new(BufferPool::new());
        let (mut buf, _) = pool.acquire(0);
        buf.fill_from::<f64>(&[]);
        assert!(buf.is_empty());
        let v: Vec<f64> = buf.copy_out(0);
        assert!(v.is_empty());
    }
}
