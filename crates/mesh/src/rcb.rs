//! Recursive coordinate bisection: a load-balanced spatial decomposition.
//!
//! Splits the x/y domain into `ranks` rectangles so that each holds
//! (nearly) the same number of the *current* points: recursively cut the
//! longest axis at the weighted point quantile. As the interface rolls
//! up, rebuilding the RCB keeps per-rank point counts flat where the
//! paper's uniform grid develops the Figure-7 imbalance — exactly the
//! "load balancing communication steps" the paper's future-work section
//! wants to benchmark.

use crate::decomposition::PointDecomposition;
use beatnik_comm::Communicator;

/// An RCB decomposition: `ranks` axis-aligned x/y rectangles tiling the
/// domain.
#[derive(Debug, Clone)]
pub struct RcbDecomposition {
    /// Leaf rectangles `([x0, y0], [x1, y1])`, indexed by rank.
    regions: Vec<([f64; 2], [f64; 2])>,
}

impl RcbDecomposition {
    /// Build from point x/y positions over the rectangle `lo..hi`.
    /// `ranks` regions are produced even when points are few or
    /// degenerate (empty splits fall back to area bisection).
    pub fn build(points: &[[f64; 3]], ranks: usize, lo: [f64; 2], hi: [f64; 2]) -> Self {
        assert!(ranks > 0, "rcb: need at least one region");
        assert!(hi[0] > lo[0] && hi[1] > lo[1], "rcb: empty domain");
        let mut xy: Vec<[f64; 2]> = points
            .iter()
            .map(|p| {
                [
                    p[0].clamp(lo[0], hi[0]),
                    p[1].clamp(lo[1], hi[1]),
                ]
            })
            .collect();
        let mut regions = Vec::with_capacity(ranks);
        split(&mut xy, ranks, lo, hi, &mut regions);
        debug_assert_eq!(regions.len(), ranks);
        RcbDecomposition { regions }
    }

    /// Collective build: allgather every rank's point positions so all
    /// ranks construct the identical decomposition. (At benchmark scale
    /// the full gather is what the load-balance *communication step*
    /// costs; production codes would sample.)
    pub fn build_distributed(
        comm: &Communicator,
        local_points: &[[f64; 3]],
        ranks: usize,
        lo: [f64; 2],
        hi: [f64; 2],
    ) -> Self {
        let all: Vec<[f64; 3]> = comm.allgather(local_points);
        Self::build(&all, ranks, lo, hi)
    }

    /// The region rectangle of a rank.
    pub fn region_of(&self, rank: usize) -> ([f64; 2], [f64; 2]) {
        self.regions[rank]
    }

    fn dist2_to_region(&self, rank: usize, p: [f64; 3]) -> f64 {
        let (lo, hi) = self.regions[rank];
        let dx = (lo[0] - p[0]).max(p[0] - hi[0]).max(0.0);
        let dy = (lo[1] - p[1]).max(p[1] - hi[1]).max(0.0);
        dx * dx + dy * dy
    }
}

/// Recursive splitter: cut `rect` into `parts` regions balanced over
/// `pts` (which is consumed/partitioned in place).
fn split(
    pts: &mut [[f64; 2]],
    parts: usize,
    lo: [f64; 2],
    hi: [f64; 2],
    out: &mut Vec<([f64; 2], [f64; 2])>,
) {
    if parts == 1 {
        out.push((lo, hi));
        return;
    }
    let left_parts = parts / 2;
    let frac = left_parts as f64 / parts as f64;
    // Cut the longer axis.
    let axis = if hi[0] - lo[0] >= hi[1] - lo[1] { 0 } else { 1 };

    let cut = if pts.is_empty() {
        // No guidance: bisect by area fraction.
        lo[axis] + (hi[axis] - lo[axis]) * frac
    } else {
        let k = ((pts.len() as f64 * frac) as usize).clamp(1, pts.len() - 1).min(pts.len() - 1);
        pts.sort_unstable_by(|a, b| a[axis].total_cmp(&b[axis]));
        // Cut between the k-1th and kth points, clamped strictly inside
        // the rectangle so every region keeps positive area.
        let c = (pts[k - 1][axis] + pts[k][axis]) / 2.0;
        let span = hi[axis] - lo[axis];
        c.clamp(lo[axis] + 1e-9 * span, hi[axis] - 1e-9 * span)
    };

    let idx = pts.partition_point(|p| p[axis] <= cut);
    let (left_pts, right_pts) = pts.split_at_mut(idx);
    let mut l_hi = hi;
    l_hi[axis] = cut;
    let mut r_lo = lo;
    r_lo[axis] = cut;
    split(left_pts, left_parts, lo, l_hi, out);
    split(right_pts, parts - left_parts, r_lo, hi, out);
}

impl PointDecomposition for RcbDecomposition {
    fn ranks(&self) -> usize {
        self.regions.len()
    }

    fn rank_of_point(&self, p: [f64; 3]) -> usize {
        // Nearest region (distance 0 when inside); robust for points that
        // drift outside the nominal domain.
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for r in 0..self.regions.len() {
            let d = self.dist2_to_region(r, p);
            if d < best_d {
                best_d = d;
                best = r;
                if d == 0.0 {
                    break;
                }
            }
        }
        best
    }

    fn ranks_within(&self, p: [f64; 3], cutoff: f64) -> Vec<usize> {
        let c2 = cutoff * cutoff;
        let mut out: Vec<usize> = (0..self.regions.len())
            .filter(|&r| self.dist2_to_region(r, p) <= c2 * 2.0 + 1e-300)
            .collect();
        // The owner must always be present even for cutoff = 0.
        let own = self.rank_of_point(p);
        if !out.contains(&own) {
            out.push(own);
            out.sort_unstable();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered(n: usize) -> Vec<[f64; 3]> {
        // 80% of points in a tight cluster, 20% spread out.
        (0..n)
            .map(|i| {
                let t = i as f64;
                if i % 5 != 0 {
                    [
                        0.5 + (t * 0.173).fract() * 0.4,
                        -0.7 + (t * 0.311).fract() * 0.4,
                        0.0,
                    ]
                } else {
                    [
                        -3.0 + (t * 0.737).fract() * 6.0,
                        -3.0 + (t * 0.419).fract() * 6.0,
                        0.0,
                    ]
                }
            })
            .collect()
    }

    fn counts(d: &RcbDecomposition, pts: &[[f64; 3]]) -> Vec<usize> {
        let mut c = vec![0usize; d.ranks()];
        for p in pts {
            c[d.rank_of_point(*p)] += 1;
        }
        c
    }

    #[test]
    fn regions_tile_the_domain() {
        let pts = clustered(500);
        for ranks in [1usize, 2, 3, 4, 7, 16] {
            let d = RcbDecomposition::build(&pts, ranks, [-3.0, -3.0], [3.0, 3.0]);
            assert_eq!(d.ranks(), ranks);
            let area: f64 = (0..ranks)
                .map(|r| {
                    let (lo, hi) = d.region_of(r);
                    assert!(hi[0] > lo[0] && hi[1] > lo[1], "degenerate region {r}");
                    (hi[0] - lo[0]) * (hi[1] - lo[1])
                })
                .sum();
            assert!((area - 36.0).abs() < 1e-6, "ranks={ranks} area={area}");
        }
    }

    #[test]
    fn balances_clustered_points() {
        let pts = clustered(1000);
        let d = RcbDecomposition::build(&pts, 16, [-3.0, -3.0], [3.0, 3.0]);
        let c = counts(&d, &pts);
        let max = *c.iter().max().unwrap() as f64;
        let mean = 1000.0 / 16.0;
        assert!(
            max / mean < 1.35,
            "rcb imbalance {} too high: {c:?}",
            max / mean
        );

        // The uniform grid on the same points is badly imbalanced.
        let uniform = crate::SpatialMesh::new(
            [-3.0, -3.0, -1.0],
            [3.0, 3.0, 1.0],
            [4, 4],
        );
        let mut uc = vec![0usize; 16];
        for p in &pts {
            uc[crate::decomposition::PointDecomposition::rank_of_point(&uniform, *p)] += 1;
        }
        let umax = *uc.iter().max().unwrap() as f64;
        assert!(umax / mean > 3.0, "uniform should be imbalanced: {uc:?}");
    }

    #[test]
    fn every_point_lands_in_a_region_containing_it() {
        let pts = clustered(300);
        let d = RcbDecomposition::build(&pts, 8, [-3.0, -3.0], [3.0, 3.0]);
        for p in &pts {
            let r = d.rank_of_point(*p);
            assert_eq!(d.dist2_to_region(r, *p), 0.0, "{p:?} not inside its region");
        }
        // Out-of-domain points clamp to the nearest region.
        let far = d.rank_of_point([100.0, 100.0, 0.0]);
        assert!(far < 8);
    }

    #[test]
    fn ranks_within_is_conservative() {
        let pts = clustered(400);
        let d = RcbDecomposition::build(&pts, 9, [-3.0, -3.0], [3.0, 3.0]);
        let cutoff = 0.6;
        for p in pts.iter().step_by(23) {
            let within = d.ranks_within(*p, cutoff);
            assert!(within.contains(&d.rank_of_point(*p)));
            for r in 0..9 {
                if d.dist2_to_region(r, *p).sqrt() <= cutoff {
                    assert!(within.contains(&r), "missing region {r} for {p:?}");
                }
            }
        }
        assert_eq!(d.ranks_within(pts[0], 0.0), vec![d.rank_of_point(pts[0])]);
    }

    #[test]
    fn empty_point_set_falls_back_to_area_bisection() {
        let d = RcbDecomposition::build(&[], 4, [0.0, 0.0], [2.0, 1.0]);
        assert_eq!(d.ranks(), 4);
        // Area-bisected: each region has area 0.5.
        for r in 0..4 {
            let (lo, hi) = d.region_of(r);
            assert!(((hi[0] - lo[0]) * (hi[1] - lo[1]) - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn coincident_points_do_not_break_the_build() {
        let pts = vec![[0.1, 0.1, 0.0]; 64];
        let d = RcbDecomposition::build(&pts, 8, [-1.0, -1.0], [1.0, 1.0]);
        assert_eq!(d.ranks(), 8);
        // All points land somewhere valid.
        let c = counts(&d, &pts);
        assert_eq!(c.iter().sum::<usize>(), 64);
    }
}
