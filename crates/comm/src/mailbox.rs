//! Per-rank indexed mailboxes with MPI-style `(source, tag)` matching.
//!
//! Each `(communicator, rank)` pair owns one mailbox. Senders push
//! envelopes (never blocking — sends are buffered, as with small/eager MPI
//! messages); receivers either consume a queued match immediately or
//! register themselves and sleep until a matching push hands them an
//! envelope directly.
//!
//! Unlike the original linear-scan queue, the mailbox is **indexed**:
//!
//! * Queued envelopes live in per-`(src, tag)` FIFO buckets, so an
//!   exact-selector receive (the overwhelmingly common case — every
//!   collective round uses exact selectors) matches in O(1) instead of
//!   scanning every resident message.
//! * A **wildcard arrival list** records `(seq, src, tag)` in global
//!   arrival order. Wildcard receives (`ANY_SOURCE`/`ANY_TAG`) walk it
//!   front-to-back, so they still match the *oldest* arrival; entries
//!   consumed through the exact path are pruned lazily when encountered
//!   or when the list grows past twice the resident message count.
//! * Blocked receivers and posted nonblocking receives form a FIFO
//!   **consumer registry**, each with its *own* condition variable. A
//!   push that matches a registered consumer deposits the envelope
//!   straight into that consumer's slot and wakes only that thread — a
//!   targeted wakeup, where the old design `notify_all`ed every waiter
//!   on every arrival. A message deposited this way never touches the
//!   queue at all (the in-process analogue of MPI's matched
//!   posted-receive fast path).
//!
//! Every path through the mailbox moves [`crate::message::Envelope`]s
//! **by value** — push, bucket queueing, consumer deposit, and receive
//! all transfer the envelope itself, never its payload bytes. That is
//! what makes the ownership-transfer send path
//! ([`crate::Communicator::isend_owned`]) end-to-end zero-copy: the
//! sender's `Vec` allocation rides inside the envelope untouched until
//! the receiver unwraps it (DESIGN.md §15).
//!
//! Non-overtaking is preserved by construction: a receiver registers
//! only under the same lock where it found no queued match, consumers
//! are matched in registration order, and same-`(src, tag)` envelopes
//! share one FIFO bucket.

use crate::error::CommError;
use crate::message::Envelope;
use crate::sync::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifier for a posted receive slot (see [`Mailbox::post_recv`]).
pub type PostedId = u64;

/// A registered consumer: a blocked `recv` or a posted `irecv`. Matched
/// against arriving envelopes in registration (FIFO) order.
struct Consumer {
    id: u64,
    src: usize,
    tag: u64,
    /// Condvar private to this consumer — pushes wake exactly one thread.
    cond: Arc<Condvar>,
    /// Extra condvar notified on deposit, installed by
    /// [`Mailbox::wait_any_posted`] so one thread can sleep on several
    /// posted slots at once.
    watcher: Option<Arc<Condvar>>,
}

/// A non-consuming waiter (the [`Mailbox::wait_any`] progress primitive):
/// notified when a matching envelope is *queued*, but never handed one.
struct Notifier {
    id: u64,
    sels: Vec<(usize, u64)>,
    cond: Arc<Condvar>,
}

#[derive(Default)]
struct State {
    /// Next arrival sequence number (monotone per mailbox).
    seq: u64,
    /// Resident (queued, unconsumed) envelope count.
    queued: usize,
    /// Per-`(src, tag)` FIFO buckets of `(seq, envelope)`.
    buckets: HashMap<(usize, u64), VecDeque<(u64, Envelope)>>,
    /// Global arrival order `(seq, src, tag)` for wildcard matching.
    /// May contain stale entries (consumed via the exact path); pruned
    /// lazily.
    arrivals: VecDeque<(u64, usize, u64)>,
    /// FIFO registry of blocked receives and posted receive slots.
    consumers: VecDeque<Consumer>,
    /// Envelopes deposited directly into a consumer slot, keyed by
    /// consumer id, tagged with their arrival seq (needed to requeue in
    /// order if the posted receive is cancelled).
    delivered: HashMap<u64, (u64, Envelope)>,
    /// Registered `wait_any` watchers.
    notifiers: Vec<Notifier>,
    next_id: u64,
    /// Bumped by [`Mailbox::interrupt`]; sleeping waiters snapshot it and
    /// return early when it changes, so failure/revocation news reaches
    /// blocked receives without waiting out their timeout slice.
    interrupt_seq: u64,
}

impl State {
    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn is_exact(src: usize, tag: u64) -> bool {
        src != usize::MAX && tag != u64::MAX
    }

    /// Enqueue an envelope into its bucket and the arrival list.
    fn enqueue(&mut self, seq: u64, env: Envelope) {
        self.arrivals.push_back((seq, env.src, env.tag));
        self.buckets
            .entry((env.src, env.tag))
            .or_default()
            .push_back((seq, env));
        self.queued += 1;
        // Exact-selector receives consume from buckets without touching
        // `arrivals`; sweep the stale entries once they dominate.
        if self.arrivals.len() > 32 && self.arrivals.len() > 2 * self.queued {
            let buckets = &self.buckets;
            self.arrivals.retain(|&(s, src, tag)| {
                buckets
                    .get(&(src, tag))
                    .and_then(|b| b.front())
                    .is_some_and(|&(front, _)| front <= s)
            });
        }
    }

    /// Remove and return the oldest queued envelope matching `(src, tag)`,
    /// if any. Wildcards (`usize::MAX`/`u64::MAX`) allowed.
    fn take_match(&mut self, src: usize, tag: u64) -> Option<Envelope> {
        if Self::is_exact(src, tag) {
            let bucket = self.buckets.get_mut(&(src, tag))?;
            let (_, env) = bucket.pop_front()?;
            if bucket.is_empty() {
                self.buckets.remove(&(src, tag));
            }
            self.queued -= 1;
            return Some(env);
        }
        // Wildcard: walk arrivals oldest-first, pruning stale entries for
        // keys this selector covers as we meet them.
        let mut i = 0;
        while i < self.arrivals.len() {
            let (s, esrc, etag) = self.arrivals[i];
            let sel_match =
                (src == usize::MAX || esrc == src) && (tag == u64::MAX || etag == tag);
            if !sel_match {
                i += 1;
                continue;
            }
            let live = self
                .buckets
                .get(&(esrc, etag))
                .and_then(|b| b.front())
                .is_some_and(|&(front, _)| front == s);
            if !live {
                // Consumed through the exact path earlier; drop the entry.
                self.arrivals.remove(i);
                continue;
            }
            self.arrivals.remove(i);
            let bucket = self.buckets.get_mut(&(esrc, etag)).expect("live bucket");
            let (_, env) = bucket.pop_front().expect("live front");
            if bucket.is_empty() {
                self.buckets.remove(&(esrc, etag));
            }
            self.queued -= 1;
            return Some(env);
        }
        None
    }

    /// Whether any queued envelope matches `(src, tag)` (no consuming).
    fn has_match(&self, src: usize, tag: u64) -> bool {
        if Self::is_exact(src, tag) {
            return self.buckets.get(&(src, tag)).is_some_and(|b| !b.is_empty());
        }
        self.buckets.iter().any(|(&(s, t), b)| {
            !b.is_empty() && (src == usize::MAX || s == src) && (tag == u64::MAX || t == tag)
        })
    }

    fn register_consumer(&mut self, src: usize, tag: u64) -> (u64, Arc<Condvar>) {
        let id = self.fresh_id();
        let cond = Arc::new(Condvar::new());
        self.consumers.push_back(Consumer {
            id,
            src,
            tag,
            cond: Arc::clone(&cond),
            watcher: None,
        });
        (id, cond)
    }

    fn remove_consumer(&mut self, id: u64) {
        if let Some(pos) = self.consumers.iter().position(|c| c.id == id) {
            self.consumers.remove(pos);
        }
    }

    fn consumer_cond(&self, id: u64) -> Option<Arc<Condvar>> {
        self.consumers
            .iter()
            .find(|c| c.id == id)
            .map(|c| Arc::clone(&c.cond))
    }

    /// Requeue a delivered-but-unclaimed envelope (cancelled posted
    /// receive) at its original arrival position.
    fn requeue(&mut self, seq: u64, env: Envelope) {
        let key = (env.src, env.tag);
        // Deposits happen before younger same-key envelopes can queue, so
        // this envelope is older than anything resident in its bucket.
        self.buckets.entry(key).or_default().push_front((seq, env));
        let pos = self.arrivals.partition_point(|&(s, _, _)| s < seq);
        self.arrivals.insert(pos, (seq, key.0, key.1));
        self.queued += 1;
    }

    /// Hand an envelope to the oldest matching registered consumer,
    /// waking only that thread. Gives the envelope back if nobody
    /// matches. Shared by [`Mailbox::push`] and [`Mailbox::cancel_post`]
    /// so a requeued envelope re-enters matching exactly like a fresh
    /// arrival.
    fn try_deposit(&mut self, seq: u64, env: Envelope) -> Result<(), Envelope> {
        match self.consumers.iter().position(|c| env.matches(c.src, c.tag)) {
            Some(pos) => {
                let consumer = self.consumers.remove(pos).expect("matched consumer");
                self.delivered.insert(consumer.id, (seq, env));
                consumer.cond.notify_all();
                if let Some(w) = consumer.watcher {
                    w.notify_all();
                }
                Ok(())
            }
            None => Err(env),
        }
    }

    /// Nudge every `wait_any` notifier whose selectors cover `(src, tag)`.
    fn notify_matching(&self, src: usize, tag: u64) {
        for n in &self.notifiers {
            if n.sels
                .iter()
                .any(|&(s, t)| (s == usize::MAX || src == s) && (t == u64::MAX || tag == t))
            {
                n.cond.notify_all();
            }
        }
    }
}

/// A blocking, matching message queue for one rank of one communicator.
#[derive(Default)]
pub struct Mailbox {
    state: Mutex<State>,
}

impl Mailbox {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit an envelope, handing it directly to the oldest matching
    /// registered consumer if one exists (waking only that thread), else
    /// queueing it and nudging any matching [`Mailbox::wait_any`] waiters.
    pub fn push(&self, env: Envelope) {
        let mut st = self.state.lock();
        let seq = st.seq;
        st.seq += 1;
        if let Err(env) = st.try_deposit(seq, env) {
            let (src, tag) = (env.src, env.tag);
            st.enqueue(seq, env);
            st.notify_matching(src, tag);
        }
    }

    /// Wake every waiter — blocked receives, claim waits, `wait_any`
    /// watchers — so they return early and let their callers re-examine
    /// failure state. Called when a rank is marked failed or a
    /// communicator revoked; without it, news of a death would wait out
    /// the full timeout slice of every sleeping receiver.
    pub fn interrupt(&self) {
        let mut st = self.state.lock();
        st.interrupt_seq += 1;
        for c in st.consumers.iter() {
            c.cond.notify_all();
            if let Some(w) = &c.watcher {
                w.notify_all();
            }
        }
        for n in &st.notifiers {
            n.cond.notify_all();
        }
    }

    /// Block until an envelope matching `(src, tag)` is available and
    /// remove it. `usize::MAX`/`u64::MAX` are wildcards.
    pub fn recv_matching(&self, src: usize, tag: u64) -> Envelope {
        let mut st = self.state.lock();
        if let Some(env) = st.take_match(src, tag) {
            return env;
        }
        let (id, cond) = st.register_consumer(src, tag);
        loop {
            cond.wait(&mut st);
            if let Some((_, env)) = st.delivered.remove(&id) {
                return env;
            }
            // Spurious wakeup: still registered, keep waiting.
        }
    }

    /// Like [`Mailbox::recv_matching`] but gives up after `timeout`.
    ///
    /// Used by tests to convert deadlocks into failures instead of hangs.
    pub fn recv_matching_timeout(
        &self,
        rank: usize,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Envelope, CommError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        if let Some(env) = st.take_match(src, tag) {
            return Ok(env);
        }
        let intr = st.interrupt_seq;
        let (id, cond) = st.register_consumer(src, tag);
        loop {
            // A deposit may land between our timeout and reacquiring the
            // lock; always drain the slot before giving up, or the
            // message would be lost.
            if let Some((_, env)) = st.delivered.remove(&id) {
                return Ok(env);
            }
            let now = Instant::now();
            if now >= deadline || st.interrupt_seq != intr {
                st.remove_consumer(id);
                return Err(CommError::Timeout { rank, src, tag });
            }
            // Waking recomputes the remaining window: spurious wakeups
            // must shorten the wait, never restart the full timeout.
            let _ = cond.wait_for(&mut st, deadline - now);
        }
    }

    /// Post a receive slot: future matching pushes deposit their envelope
    /// here (oldest-post-first) without touching the queue. If a match is
    /// already queued it is claimed into the slot immediately. Claim with
    /// [`Mailbox::try_claim`]/[`Mailbox::wait_claim`]; a slot that will
    /// never be claimed must be [`Mailbox::cancel_post`]ed.
    pub fn post_recv(&self, src: usize, tag: u64) -> PostedId {
        let mut st = self.state.lock();
        if let Some(env) = st.take_match(src, tag) {
            let id = st.fresh_id();
            // Seq is only used for requeue ordering; a message claimed
            // from the queue re-enters it with a fresh seq, which is
            // still older than anything arriving after this lock drops.
            let seq = st.seq;
            st.seq += 1;
            st.delivered.insert(id, (seq, env));
            return id;
        }
        st.register_consumer(src, tag).0
    }

    /// Nonblocking claim of a posted receive slot.
    pub fn try_claim(&self, id: PostedId) -> Option<Envelope> {
        self.state.lock().delivered.remove(&id).map(|(_, env)| env)
    }

    /// Block until the posted slot `id` holds an envelope, or `timeout`
    /// elapses. Returns `None` on timeout (the slot stays posted).
    pub fn wait_claim(&self, id: PostedId, timeout: Duration) -> Option<Envelope> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        let intr = st.interrupt_seq;
        loop {
            if let Some((_, env)) = st.delivered.remove(&id) {
                return Some(env);
            }
            let cond = st.consumer_cond(id)?; // cancelled or double-claimed
            let now = Instant::now();
            if now >= deadline || st.interrupt_seq != intr {
                return None;
            }
            let _ = cond.wait_for(&mut st, deadline - now);
        }
    }

    /// Cancel a posted receive. An envelope already deposited in the slot
    /// re-enters matching exactly as a fresh arrival would: it is handed
    /// to the oldest registered consumer if one matches (the receiver may
    /// have registered while the envelope sat in the cancelled slot —
    /// this is the cancel-after-rendezvous-handshake hang), else queued
    /// at its original arrival position with `wait_any` waiters nudged.
    pub fn cancel_post(&self, id: PostedId) {
        let mut st = self.state.lock();
        st.remove_consumer(id);
        if let Some((seq, env)) = st.delivered.remove(&id) {
            if let Err(env) = st.try_deposit(seq, env) {
                let (src, tag) = (env.src, env.tag);
                st.requeue(seq, env);
                st.notify_matching(src, tag);
            }
        }
    }

    /// Block until one of several posted slots holds an envelope, or
    /// `timeout` elapses. Returns the index into `ids` of a ready slot
    /// without claiming it. This is the progress primitive behind
    /// [`crate::request::wait_all`]: one watcher condvar is attached to
    /// every listed slot, so the caller sleeps once and wakes on the
    /// first deposit.
    pub fn wait_any_posted(&self, ids: &[PostedId], timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        let intr = st.interrupt_seq;
        let watcher = Arc::new(Condvar::new());
        let result = loop {
            if let Some(i) = ids.iter().position(|id| st.delivered.contains_key(id)) {
                break Some(i);
            }
            let now = Instant::now();
            if now >= deadline || st.interrupt_seq != intr {
                break None;
            }
            for c in st.consumers.iter_mut() {
                if ids.contains(&c.id) {
                    c.watcher = Some(Arc::clone(&watcher));
                }
            }
            let _ = watcher.wait_for(&mut st, deadline - now);
        };
        for c in st.consumers.iter_mut() {
            if ids.contains(&c.id) {
                c.watcher = None;
            }
        }
        result
    }

    /// Block until some queued envelope matches one of `selectors`
    /// (`(src, tag)` pairs, wildcards allowed), or until `timeout`
    /// elapses. Returns the index of the first selector with a waiting
    /// match, without consuming the envelope.
    ///
    /// Checking the selectors and sleeping happen under one lock, so a
    /// message that arrives between the two cannot be missed. Note this
    /// only observes *queued* envelopes — messages deposited into posted
    /// receive slots are invisible here, exactly as `MPI_Probe` never
    /// sees messages matched to posted receives.
    pub fn wait_any(&self, selectors: &[(usize, u64)], timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        let intr = st.interrupt_seq;
        let mut reg: Option<(u64, Arc<Condvar>)> = None;
        let result = loop {
            if let Some(i) = selectors
                .iter()
                .position(|&(s, t)| st.has_match(s, t))
            {
                break Some(i);
            }
            let now = Instant::now();
            if now >= deadline || st.interrupt_seq != intr {
                break None;
            }
            if reg.is_none() {
                let id = st.fresh_id();
                let cond = Arc::new(Condvar::new());
                st.notifiers.push(Notifier {
                    id,
                    sels: selectors.to_vec(),
                    cond: Arc::clone(&cond),
                });
                reg = Some((id, cond));
            }
            let cond = Arc::clone(&reg.as_ref().expect("registered").1);
            let _ = cond.wait_for(&mut st, deadline - now);
        };
        if let Some((id, _)) = reg {
            st.notifiers.retain(|n| n.id != id);
        }
        result
    }

    /// Non-blocking probe: does any queued envelope match `(src, tag)`?
    pub fn probe(&self, src: usize, tag: u64) -> bool {
        self.state.lock().has_match(src, tag)
    }

    /// Number of queued envelopes (any selector). Envelopes deposited in
    /// posted receive slots are already matched and not counted.
    pub fn len(&self) -> usize {
        self.state.lock().queued
    }

    /// Whether the mailbox has no pending envelopes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Depth of the posted-receive registry: consumers currently waiting
    /// for a match (blocked receives and posted `irecv` slots) plus
    /// matched envelopes delivered to a slot but not yet claimed by
    /// `RecvRequest::wait`.
    pub fn posted_len(&self) -> usize {
        let st = self.state.lock();
        st.consumers.len() + st.delivered.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Envelope;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn push_then_recv_same_thread() {
        let mb = Mailbox::new();
        mb.push(Envelope::new(0, 1, vec![42i32]));
        let env = mb.recv_matching(0, 1);
        assert_eq!(env.into_data::<i32>(), vec![42]);
    }

    #[test]
    fn matching_skips_non_matching_messages() {
        let mb = Mailbox::new();
        mb.push(Envelope::new(0, 1, vec![1i32]));
        mb.push(Envelope::new(0, 2, vec![2i32]));
        let env = mb.recv_matching(0, 2);
        assert_eq!(env.into_data::<i32>(), vec![2]);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn non_overtaking_order_for_same_selector() {
        let mb = Mailbox::new();
        mb.push(Envelope::new(3, 9, vec![1u8]));
        mb.push(Envelope::new(3, 9, vec![2u8]));
        assert_eq!(mb.recv_matching(3, 9).into_data::<u8>(), vec![1]);
        assert_eq!(mb.recv_matching(3, 9).into_data::<u8>(), vec![2]);
    }

    #[test]
    fn wildcard_recv_takes_oldest_arrival_across_buckets() {
        let mb = Mailbox::new();
        mb.push(Envelope::new(2, 7, vec![1u8]));
        mb.push(Envelope::new(0, 3, vec![2u8]));
        mb.push(Envelope::new(2, 7, vec![3u8]));
        // ANY_SOURCE/ANY_TAG must see global arrival order, not bucket
        // order.
        assert_eq!(
            mb.recv_matching(usize::MAX, u64::MAX).into_data::<u8>(),
            vec![1]
        );
        assert_eq!(
            mb.recv_matching(usize::MAX, u64::MAX).into_data::<u8>(),
            vec![2]
        );
        assert_eq!(
            mb.recv_matching(usize::MAX, u64::MAX).into_data::<u8>(),
            vec![3]
        );
    }

    #[test]
    fn wildcard_skips_entries_consumed_through_exact_path() {
        let mb = Mailbox::new();
        mb.push(Envelope::new(0, 1, vec![1u8]));
        mb.push(Envelope::new(1, 1, vec![2u8]));
        // Exact receive drains the older bucket; its arrival entry goes
        // stale and the wildcard must fall through to the younger one.
        assert_eq!(mb.recv_matching(0, 1).into_data::<u8>(), vec![1]);
        assert_eq!(
            mb.recv_matching(usize::MAX, u64::MAX).into_data::<u8>(),
            vec![2]
        );
        assert!(mb.is_empty());
    }

    #[test]
    fn blocking_recv_wakes_on_cross_thread_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || mb2.recv_matching(5, 5).into_data::<u64>());
        std::thread::sleep(Duration::from_millis(20));
        mb.push(Envelope::new(5, 5, vec![99u64]));
        assert_eq!(handle.join().unwrap(), vec![99]);
    }

    #[test]
    fn timeout_fires_when_nothing_arrives() {
        let mb = Mailbox::new();
        let err = mb
            .recv_matching_timeout(7, 0, 0, Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(
            err,
            CommError::Timeout {
                rank: 7,
                src: 0,
                tag: 0
            }
        );
    }

    #[test]
    fn timeout_deadline_survives_spurious_wakeups() {
        // Regression: a steady stream of *non-matching* messages used to
        // wake the receiver over and over under the shared-condvar
        // design; with per-consumer condvars they no longer even wake it,
        // but the deadline must still hold against genuinely spurious
        // wakeups, so the scenario stays.
        let mb = Arc::new(Mailbox::new());
        let feeder = {
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || {
                for _ in 0..60 {
                    mb.push(Envelope::new(1, 1, vec![0u8]));
                    std::thread::sleep(Duration::from_millis(10));
                }
            })
        };
        let t0 = std::time::Instant::now();
        let err = mb
            .recv_matching_timeout(0, 2, 2, Duration::from_millis(100))
            .unwrap_err();
        let elapsed = t0.elapsed();
        assert!(matches!(err, CommError::Timeout { .. }));
        // 60 wakeups x 10 ms would stretch a restarting implementation to
        // ~600 ms; the fixed one stays near the 100 ms deadline.
        assert!(
            elapsed < Duration::from_millis(400),
            "deadline restarted on spurious wakeups: {elapsed:?}"
        );
        feeder.join().unwrap();
    }

    #[test]
    fn deposit_during_timeout_race_is_not_lost() {
        // A push that matches a timed receiver exactly at its deadline
        // must end up either received or queued — never dropped.
        for _ in 0..50 {
            let mb = Arc::new(Mailbox::new());
            let mb2 = Arc::clone(&mb);
            let recv = std::thread::spawn(move || {
                mb2.recv_matching_timeout(0, 1, 1, Duration::from_millis(2)).ok()
            });
            std::thread::sleep(Duration::from_millis(2));
            mb.push(Envelope::new(1, 1, vec![7u8]));
            let got = recv.join().unwrap();
            match got {
                Some(env) => assert_eq!(env.into_data::<u8>(), vec![7]),
                None => assert_eq!(mb.len(), 1),
            }
        }
    }

    #[test]
    fn wait_any_reports_first_matching_selector() {
        let mb = Arc::new(Mailbox::new());
        // Nothing queued: times out.
        assert_eq!(
            mb.wait_any(&[(0, 0), (1, 1)], Duration::from_millis(10)),
            None
        );
        mb.push(Envelope::new(1, 1, vec![0u8]));
        // Selector 1 matches; the envelope is not consumed.
        assert_eq!(
            mb.wait_any(&[(0, 0), (1, 1)], Duration::from_millis(10)),
            Some(1)
        );
        assert_eq!(mb.len(), 1);
        // Cross-thread wakeup.
        let mb2 = Arc::clone(&mb);
        let waiter = std::thread::spawn(move || {
            mb2.wait_any(&[(7, 7)], Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.push(Envelope::new(7, 7, vec![1u8]));
        assert_eq!(waiter.join().unwrap(), Some(0));
    }

    #[test]
    fn probe_reports_matches_without_consuming() {
        let mb = Mailbox::new();
        assert!(!mb.probe(usize::MAX, u64::MAX));
        mb.push(Envelope::new(1, 4, vec![0f32]));
        assert!(mb.probe(1, 4));
        assert!(mb.probe(usize::MAX, u64::MAX));
        assert!(!mb.probe(2, 4));
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn posted_recv_claims_queued_then_future_messages() {
        let mb = Mailbox::new();
        mb.push(Envelope::new(0, 9, vec![1u16]));
        let first = mb.post_recv(0, 9);
        // The queued message moved into the slot: invisible to probe.
        assert!(!mb.probe(0, 9));
        assert_eq!(mb.try_claim(first).unwrap().into_data::<u16>(), vec![1]);
        assert!(mb.try_claim(first).is_none());
        // A slot posted before the message arrives gets the deposit.
        let second = mb.post_recv(0, 9);
        assert!(mb.try_claim(second).is_none());
        mb.push(Envelope::new(0, 9, vec![2u16]));
        assert!(!mb.probe(0, 9));
        assert_eq!(mb.try_claim(second).unwrap().into_data::<u16>(), vec![2]);
    }

    #[test]
    fn posted_slots_match_in_post_order() {
        let mb = Mailbox::new();
        let a = mb.post_recv(3, 1);
        let b = mb.post_recv(3, 1);
        mb.push(Envelope::new(3, 1, vec![10u8]));
        mb.push(Envelope::new(3, 1, vec![20u8]));
        assert_eq!(mb.try_claim(a).unwrap().into_data::<u8>(), vec![10]);
        assert_eq!(mb.try_claim(b).unwrap().into_data::<u8>(), vec![20]);
    }

    #[test]
    fn cancelled_post_requeues_deposit_in_arrival_order() {
        let mb = Mailbox::new();
        let slot = mb.post_recv(2, 2);
        mb.push(Envelope::new(2, 2, vec![1u8]));
        mb.push(Envelope::new(2, 2, vec![2u8]));
        mb.cancel_post(slot);
        // The deposited message went back in *front* of the younger one.
        assert_eq!(mb.len(), 2);
        assert_eq!(mb.recv_matching(2, 2).into_data::<u8>(), vec![1]);
        assert_eq!(mb.recv_matching(2, 2).into_data::<u8>(), vec![2]);
    }

    #[test]
    fn cancelled_post_hands_deposit_to_blocked_receiver() {
        // Regression (cancel-after-rendezvous-handshake hang): a receiver
        // that registers while the envelope sits in a posted slot must be
        // woken when the slot is cancelled, not sleep until timeout.
        let mb = Arc::new(Mailbox::new());
        let slot = mb.post_recv(2, 2);
        mb.push(Envelope::new(2, 2, vec![9u8]));
        let mb2 = Arc::clone(&mb);
        let blocked = std::thread::spawn(move || {
            mb2.recv_matching_timeout(0, 2, 2, Duration::from_secs(5))
                .map(|e| e.into_data::<u8>())
        });
        // Give the receiver time to register as a consumer.
        std::thread::sleep(Duration::from_millis(30));
        let t0 = std::time::Instant::now();
        mb.cancel_post(slot);
        let got = blocked.join().unwrap();
        assert_eq!(got.unwrap(), vec![9]);
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "receiver slept through the cancel handoff"
        );
    }

    #[test]
    fn cancelled_post_nudges_wait_any_watchers() {
        let mb = Arc::new(Mailbox::new());
        let slot = mb.post_recv(3, 3);
        mb.push(Envelope::new(3, 3, vec![1u8]));
        let mb2 = Arc::clone(&mb);
        let waiter =
            std::thread::spawn(move || mb2.wait_any(&[(3, 3)], Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        mb.cancel_post(slot);
        assert_eq!(waiter.join().unwrap(), Some(0));
    }

    #[test]
    fn interrupt_wakes_blocked_receivers_early() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let blocked = std::thread::spawn(move || {
            mb2.recv_matching_timeout(0, 1, 1, Duration::from_secs(30))
        });
        std::thread::sleep(Duration::from_millis(30));
        let t0 = std::time::Instant::now();
        mb.interrupt();
        let got = blocked.join().unwrap();
        assert!(matches!(got, Err(CommError::Timeout { .. })));
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "interrupt did not cut the wait short"
        );
    }

    #[test]
    fn interrupt_wakes_claim_and_watcher_waits() {
        let mb = Arc::new(Mailbox::new());
        let slot = mb.post_recv(0, 7);
        let mb2 = Arc::clone(&mb);
        let claim =
            std::thread::spawn(move || mb2.wait_claim(slot, Duration::from_secs(30)));
        let mb3 = Arc::clone(&mb);
        let any = std::thread::spawn(move || {
            mb3.wait_any_posted(&[slot], Duration::from_secs(30))
        });
        std::thread::sleep(Duration::from_millis(30));
        mb.interrupt();
        assert!(claim.join().unwrap().is_none());
        assert!(any.join().unwrap().is_none());
        // The slot itself stays posted — only the waits were cut short.
        mb.push(Envelope::new(0, 7, vec![1u8]));
        assert!(mb.try_claim(slot).is_some());
    }

    #[test]
    fn wait_claim_wakes_on_deposit() {
        let mb = Arc::new(Mailbox::new());
        let slot = mb.post_recv(4, 4);
        let mb2 = Arc::clone(&mb);
        let waiter = std::thread::spawn(move || {
            mb2.wait_claim(slot, Duration::from_secs(5))
                .map(|e| e.into_data::<u32>())
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.push(Envelope::new(4, 4, vec![77u32]));
        assert_eq!(waiter.join().unwrap(), Some(vec![77]));
    }

    #[test]
    fn wait_any_posted_wakes_on_any_deposit() {
        let mb = Arc::new(Mailbox::new());
        let a = mb.post_recv(0, 1);
        let b = mb.post_recv(0, 2);
        assert_eq!(mb.wait_any_posted(&[a, b], Duration::from_millis(10)), None);
        let mb2 = Arc::clone(&mb);
        let waiter = std::thread::spawn(move || {
            mb2.wait_any_posted(&[a, b], Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.push(Envelope::new(0, 2, vec![5u8]));
        assert_eq!(waiter.join().unwrap(), Some(1));
        // The ready slot is reported, not claimed.
        assert_eq!(mb.try_claim(b).unwrap().into_data::<u8>(), vec![5]);
        mb.cancel_post(a);
    }

    #[test]
    fn blocked_receiver_beats_younger_posted_slot() {
        // Consumer matching is FIFO across blocked receives and posted
        // slots: the older blocked receive gets the first message.
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let blocked = std::thread::spawn(move || mb2.recv_matching(6, 6).into_data::<u8>());
        // Give the blocked receive time to register.
        std::thread::sleep(Duration::from_millis(20));
        let slot = mb.post_recv(6, 6);
        mb.push(Envelope::new(6, 6, vec![1u8]));
        mb.push(Envelope::new(6, 6, vec![2u8]));
        assert_eq!(blocked.join().unwrap(), vec![1]);
        assert_eq!(mb.try_claim(slot).unwrap().into_data::<u8>(), vec![2]);
    }
}
