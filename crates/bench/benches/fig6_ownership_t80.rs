//! Figure 6: particles owned by each of 256 (virtual) spatial ranks
//! early in the single-mode run — the paper's timestep 80, before
//! rollup: "the load is evenly distributed, with all processes owning
//! slightly under 0.4% of all points" (1/256 = 0.391%).
//!
//! This harness runs the *real* scaled single-mode cutoff simulation on
//! thread-ranks and bins actual point positions into 256 spatial regions.

use beatnik_bench::{ownership_report, singlemode_reference};

fn main() {
    println!("=== Figure 6: Particles Owned by Each of 256 Ranks, early (paper t=80) ===\n");
    println!("running the scaled single-mode cutoff simulation (48^2 mesh, 4 ranks)...\n");
    let reference = singlemode_reference(48, 40, 41);
    print!("{}", ownership_report("early-time ownership", &reference.early256));
    let max = reference.early256.iter().cloned().fold(0.0f64, f64::max) * 100.0;
    println!(
        "\nshape check: every region owns ~{max:.3}% of points \
         (paper: all slightly under 0.4%; uniform = 0.391%)."
    );
}
