//! Collective communication algorithms.
//!
//! Each collective is implemented with the point-to-point algorithms real
//! MPI libraries use, because Beatnik's purpose is to exercise — and its
//! instrumentation to count — realistic message patterns:
//!
//! | collective | algorithm | messages per rank |
//! |---|---|---|
//! | barrier | dissemination | ⌈log₂P⌉ |
//! | broadcast | binomial tree | ≤ ⌈log₂P⌉ |
//! | reduce | binomial tree | ≤ ⌈log₂P⌉ |
//! | allreduce | recursive doubling (P = 2ᵏ) or reduce+bcast | ⌈log₂P⌉ / 2⌈log₂P⌉ |
//! | gather / scatter | direct to/from root | P−1 at root |
//! | allgather | ring | P−1 |
//! | alltoall | pairwise exchange or direct | P−1 |
//! | alltoallv | pairwise exchange | P−1 |
//! | scan / exscan | recursive doubling (+shift) | ⌈log₂P⌉ |
//! | reduce_scatter | pairwise exchange + fold | P−1 |

pub mod alltoall;
pub mod barrier;
pub mod broadcast;
pub mod gather;
pub mod reduce;
pub mod scan;
pub mod scatter;
