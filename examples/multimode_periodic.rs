//! The paper's Figure-1 workload: a multi-mode periodic rocket-rig run on
//! the low-order solver, 4 ranks, with a VTK dump of the interface at
//! timestep 20 (colored by vorticity magnitude when opened in ParaView).
//!
//! Also prints per-step diagnostics and the communication summary, which
//! shows the all-to-all traffic the distributed FFT generates — the
//! pattern this test case exists to exercise.
//!
//! Run with: `cargo run --release --example multimode_periodic`

use beatnik_comm::World;
use beatnik_io::stats::RunLog;
use beatnik_rocketrig::{run_rig, BenchCase};

fn main() {
    let ranks = 4; // the paper's Figure-1 GPU count
    let mut cfg = BenchCase::LowOrderWeak.config(64, 20);
    cfg.params.dt = 2e-3;
    cfg.params.mu = 0.5;
    cfg.vtk_every = 20;
    cfg.out_dir = std::path::PathBuf::from("target/multimode-out");
    cfg.diag_every = 2;

    println!(
        "multi-mode periodic deck, low-order solver, {0}x{0} mesh, {1} ranks",
        cfg.mesh_n, ranks
    );

    let cfg2 = cfg.clone();
    let (logs, trace) = World::builder(ranks).run_traced(move |comm| run_rig(&comm, &cfg2));
    let log: RunLog = logs.into_iter().next().unwrap();

    println!("\n{:>6} {:>10} {:>14} {:>14}", "step", "time", "amplitude", "enstrophy");
    for rec in &log.steps {
        println!(
            "{:>6} {:>10.4} {:>14.6e} {:>14.6e}",
            rec.step, rec.time, rec.diagnostics.amplitude, rec.diagnostics.enstrophy
        );
    }

    println!("\ncommunication profile (dominated by FFT alltoallv):");
    println!("{}", trace.summary());
    println!(
        "VTK snapshot written to target/multimode-out/surface_00020.vtk \
         (open in ParaView, color by vorticity_magnitude)"
    );
}
