//! The HTTP control plane: a `TcpListener` accept loop routing onto a
//! shared [`Scheduler`].
//!
//! | Route                | Behavior                                      |
//! |----------------------|-----------------------------------------------|
//! | `GET /healthz`       | liveness probe                                |
//! | `GET /metrics`       | OpenMetrics text exposition                   |
//! | `GET /jobs`          | summary list of every job                     |
//! | `POST /jobs`         | submit a spec: 201, 400 invalid, 429 saturated|
//! | `GET /jobs/{id}`     | full record: spec, timeline, result           |
//! | `DELETE /jobs/{id}`  | cancel: 200, 404 unknown, 409 already terminal|
//!
//! Connections are handled one thread each (the control plane sees
//! tens of requests per second, not thousands), every response is
//! `Connection: close`, and protocol errors get a 400 before the
//! socket drops.

use crate::http::{read_request, write_json, write_response, Request};
use crate::job::JobState;
use crate::scheduler::{CancelOutcome, Scheduler, SubmitError};
use beatnik_json::{to_string, Value};
use beatnik_telemetry::metrics::openmetrics_text;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Content type for `GET /metrics`.
pub const METRICS_CONTENT_TYPE: &str =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

fn error_body(msg: &str) -> String {
    to_string(&Value::Object(vec![(
        "error".to_string(),
        Value::Str(msg.to_string()),
    )]))
}

/// A running server: the bound address plus the shutdown switch.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    scheduler: Arc<Scheduler>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scheduler behind the routes.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// Stop accepting, drain the scheduler (cancel queued, checkpoint
    /// running), and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop_accepting();
        self.scheduler.shutdown(Duration::from_secs(60));
    }

    fn stop_accepting(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

/// Bind `addr` and serve `scheduler` until [`ServerHandle::shutdown`].
pub fn serve(addr: impl ToSocketAddrs, scheduler: Arc<Scheduler>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let stop = Arc::clone(&stop);
        let scheduler = Arc::clone(&scheduler);
        std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(&listener, &stop, &scheduler))
            .expect("spawn accept loop")
    };
    Ok(ServerHandle {
        addr,
        stop,
        accept: Some(accept),
        scheduler,
    })
}

fn accept_loop(listener: &TcpListener, stop: &Arc<AtomicBool>, scheduler: &Arc<Scheduler>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = conn else { continue };
        let scheduler = Arc::clone(scheduler);
        let _ = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || {
                let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
                match read_request(&mut stream) {
                    Ok(req) => handle(&mut stream, &req, &scheduler),
                    Err(e) => {
                        let _ = write_json(&mut stream, 400, &error_body(&e.to_string()));
                    }
                }
            });
    }
}

fn handle(stream: &mut TcpStream, req: &Request, scheduler: &Scheduler) {
    let path = req.path.trim_end_matches('/');
    let path = if path.is_empty() { "/" } else { path };
    let _ = match (req.method.as_str(), path) {
        ("GET", "/healthz") => write_json(stream, 200, "{\"ok\":true}"),
        ("GET", "/metrics") => {
            let text = openmetrics_text(&scheduler.metrics().registry.snapshot());
            write_response(stream, 200, METRICS_CONTENT_TYPE, &text)
        }
        ("GET", "/jobs") => {
            let jobs: Vec<Value> = scheduler.jobs().iter().map(|r| r.summary_json()).collect();
            let doc = Value::Object(vec![("jobs".to_string(), Value::Array(jobs))]);
            write_json(stream, 200, &to_string(&doc))
        }
        ("POST", "/jobs") => post_job(stream, req, scheduler),
        (method, p) if p.starts_with("/jobs/") => {
            match p["/jobs/".len()..].parse::<u64>() {
                Err(_) => write_json(stream, 404, &error_body("bad job id")),
                Ok(id) => match method {
                    "GET" => match scheduler.job(id) {
                        Some(rec) => write_json(stream, 200, &to_string(&rec.detail_json())),
                        None => write_json(stream, 404, &error_body("no such job")),
                    },
                    "DELETE" => delete_job(stream, scheduler, id),
                    _ => write_json(stream, 405, &error_body("method not allowed")),
                },
            }
        }
        ("GET", _) => write_json(stream, 404, &error_body("no such route")),
        _ => write_json(stream, 405, &error_body("method not allowed")),
    };
}

fn post_job(stream: &mut TcpStream, req: &Request, scheduler: &Scheduler) -> std::io::Result<()> {
    let spec = match beatnik_json::from_str::<crate::job::JobSpec>(&req.body) {
        Ok(spec) => spec,
        Err(e) => {
            return write_json(stream, 400, &error_body(&format!("invalid job spec: {e}")));
        }
    };
    match scheduler.submit(spec) {
        Ok(id) => {
            let body = format!("{{\"id\":{id},\"state\":\"queued\"}}");
            write_json(stream, 201, &body)
        }
        Err(SubmitError::Invalid(msg)) => {
            write_json(stream, 400, &error_body(&format!("invalid job spec: {msg}")))
        }
        Err(e @ SubmitError::QueueFull { .. }) => {
            write_json(stream, 429, &error_body(&e.to_string()))
        }
    }
}

fn delete_job(stream: &mut TcpStream, scheduler: &Scheduler, id: u64) -> std::io::Result<()> {
    match scheduler.cancel(id) {
        CancelOutcome::Canceled => {
            let body = format!(
                "{{\"id\":{id},\"state\":\"{}\"}}",
                JobState::Canceled.name()
            );
            write_json(stream, 200, &body)
        }
        CancelOutcome::CancelRequested => {
            let body = format!("{{\"id\":{id},\"state\":\"running\",\"cancel_requested\":true}}");
            write_json(stream, 200, &body)
        }
        CancelOutcome::NotFound => write_json(stream, 404, &error_body("no such job")),
        CancelOutcome::AlreadyTerminal => {
            write_json(stream, 409, &error_body("job already terminal"))
        }
    }
}
