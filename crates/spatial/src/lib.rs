//! # beatnik-spatial — geometric neighbor search (the ArborX substitute)
//!
//! The paper's cutoff solver uses ArborX to build fixed-radius neighbor
//! lists over the points each rank owns plus its halo ghosts. This crate
//! implements that capability from scratch with two interchangeable
//! backends:
//!
//! * [`UniformGrid`] — bin points into cells of edge ≥ radius, then scan
//!   the 3×3×3 cell neighborhood per query (what ArborX effectively does
//!   for uniform point densities; O(n) build, O(k) query);
//! * [`KdTree`] — a median-split k-d tree with pruned radius queries
//!   (robust under highly non-uniform densities, e.g. rolled-up
//!   interfaces).
//!
//! Both produce [`NeighborList`]s in CSR form; property tests pin them to
//! each other and to the O(n²) brute-force reference.

pub mod aabb;
pub mod bhtree;
pub mod grid;
pub mod kdtree;
pub mod neighbors;

pub use aabb::Aabb;
pub use bhtree::BhTree;
pub use grid::UniformGrid;
pub use kdtree::KdTree;
pub use neighbors::{brute_force_neighbors, NeighborList};

/// Squared Euclidean distance between two points.
#[inline]
pub fn dist2(a: [f64; 3], b: [f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    dx * dx + dy * dy + dz * dz
}

#[cfg(test)]
mod tests {
    use super::dist2;

    #[test]
    fn dist2_basics() {
        assert_eq!(dist2([0.0; 3], [0.0; 3]), 0.0);
        assert_eq!(dist2([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]), 0.0);
        assert_eq!(dist2([0.0; 3], [3.0, 4.0, 0.0]), 25.0);
        assert_eq!(dist2([1.0, 1.0, 1.0], [2.0, 2.0, 2.0]), 3.0);
    }
}
