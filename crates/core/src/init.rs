//! Initial interface conditions for the rocket-rig problem (paper §4).
//!
//! The interface starts as `z = (x, y, h(x, y))` with zero vorticity;
//! Rayleigh–Taylor forcing then generates vorticity baroclinically. Two
//! paper workloads:
//!
//! * **multi-mode** (periodic): a deterministic random superposition of
//!   modes — even point distribution, limited load imbalance;
//! * **single-mode** (periodic or open): one long-wavelength mode whose
//!   nonlinear rollup creates the load imbalance studied in Figures 6–8.

use crate::problem::ProblemManager;
use beatnik_json::{field, FromJson, JsonError, ToJson, Value};
use beatnik_prng::Rng;
use std::f64::consts::PI;

/// Initial interface shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitialCondition {
    /// Perfectly flat interface (numerical no-op baseline).
    Flat,
    /// One cosine mode per axis: `h = a·cos(2π·mₓ·x̃)·cos(2π·m_y·ỹ)` on
    /// periodic meshes, `h = a·cos(π·mₓ·x̃)·cos(π·m_y·ỹ)` on open meshes
    /// (so the slope vanishes at the boundary). `x̃, ỹ ∈ [0, 1]`.
    SingleMode {
        /// Peak height.
        amplitude: f64,
        /// Mode counts `[m_x, m_y]`.
        modes: [f64; 2],
    },
    /// Superposition of `modes²` random cosine modes with random phases,
    /// seeded deterministically: every rank (and every rank count)
    /// generates the identical global surface.
    MultiMode {
        /// RMS-ish amplitude of the superposition.
        amplitude: f64,
        /// Maximum mode number per axis.
        modes: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl ToJson for InitialCondition {
    fn to_json(&self) -> Value {
        // Externally tagged, matching serde's derive layout.
        match *self {
            InitialCondition::Flat => Value::Str("Flat".to_string()),
            InitialCondition::SingleMode { amplitude, modes } => Value::Object(vec![(
                "SingleMode".to_string(),
                Value::Object(vec![
                    ("amplitude".to_string(), amplitude.to_json()),
                    ("modes".to_string(), modes.to_json()),
                ]),
            )]),
            InitialCondition::MultiMode {
                amplitude,
                modes,
                seed,
            } => Value::Object(vec![(
                "MultiMode".to_string(),
                Value::Object(vec![
                    ("amplitude".to_string(), amplitude.to_json()),
                    ("modes".to_string(), modes.to_json()),
                    ("seed".to_string(), seed.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for InitialCondition {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Str(s) if s == "Flat" => Ok(InitialCondition::Flat),
            Value::Object(pairs) if pairs.len() == 1 => {
                let (tag, body) = &pairs[0];
                match tag.as_str() {
                    "SingleMode" => Ok(InitialCondition::SingleMode {
                        amplitude: field(body, "amplitude")?,
                        modes: field(body, "modes")?,
                    }),
                    "MultiMode" => Ok(InitialCondition::MultiMode {
                        amplitude: field(body, "amplitude")?,
                        modes: field(body, "modes")?,
                        seed: field(body, "seed")?,
                    }),
                    other => Err(JsonError::new(format!(
                        "unknown InitialCondition variant '{other}'"
                    ))),
                }
            }
            other => Err(JsonError::new(format!(
                "expected InitialCondition, got {}",
                other.kind()
            ))),
        }
    }
}

impl InitialCondition {
    /// Fill `pm`'s position field (and zero its vorticity).
    pub fn apply(&self, pm: &mut ProblemManager) {
        let mesh = pm.mesh();
        let [ly, lx] = mesh.lengths();
        let [lo_y, lo_x] = [mesh.coord_of(0, 0)[0], mesh.coord_of(0, 0)[1]];
        let periodic = mesh.periodic()[0] && mesh.periodic()[1];
        let height: Box<dyn Fn(f64, f64) -> f64> = match *self {
            InitialCondition::Flat => Box::new(|_, _| 0.0),
            InitialCondition::SingleMode { amplitude, modes } => {
                let base = if periodic { 2.0 * PI } else { PI };
                Box::new(move |xt: f64, yt: f64| {
                    amplitude * (base * modes[0] * xt).cos() * (base * modes[1] * yt).cos()
                })
            }
            InitialCondition::MultiMode {
                amplitude,
                modes,
                seed,
            } => {
                // Deterministic mode table, identical on every rank.
                let mut rng = Rng::seed_from_u64(seed);
                let mut table = Vec::with_capacity(modes * modes);
                for mx in 1..=modes {
                    for my in 1..=modes {
                        let amp: f64 = rng.gen_range(-1.0..1.0);
                        let phase_x: f64 = rng.gen_range(0.0..2.0 * PI);
                        let phase_y: f64 = rng.gen_range(0.0..2.0 * PI);
                        table.push((mx as f64, my as f64, amp, phase_x, phase_y));
                    }
                }
                let norm = amplitude / (modes as f64);
                Box::new(move |xt: f64, yt: f64| {
                    table
                        .iter()
                        .map(|&(mx, my, amp, px, py)| {
                            amp * (2.0 * PI * mx * xt + px).cos()
                                * (2.0 * PI * my * yt + py).cos()
                        })
                        .sum::<f64>()
                        * norm
                })
            }
        };

        let coords: Vec<_> = mesh.owned_indices().collect();
        let (lx, ly) = (lx, ly);
        for (lr, lc, gr, gc) in coords {
            let c = pm.mesh().coord_of(gr as i64, gc as i64);
            let (x, y) = (c[1], c[0]);
            let xt = (x - lo_x) / lx;
            let yt = (y - lo_y) / ly;
            let h = height(xt, yt);
            pm.z_mut().set_node(lr, lc, &[x, y, h]);
            pm.w_mut().set_node(lr, lc, &[0.0, 0.0]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_comm::World;
    use beatnik_mesh::{BoundaryCondition, SurfaceMesh};

    fn pm_with(
        comm: &beatnik_comm::Communicator,
        periodic: bool,
        n: usize,
    ) -> ProblemManager {
        let per = [periodic; 2];
        let mesh = SurfaceMesh::new(comm, [n, n], per, 2, [-1.0, -1.0], [1.0, 1.0]);
        let bc = if periodic {
            BoundaryCondition::Periodic { periods: [2.0, 2.0] }
        } else {
            BoundaryCondition::Free
        };
        ProblemManager::new(mesh, bc)
    }

    #[test]
    fn flat_interface_is_reference_plane() {
        World::builder(1).run(|comm| {
            let mut pm = pm_with(&comm, true, 8);
            InitialCondition::Flat.apply(&mut pm);
            for (lr, lc, gr, gc) in pm.mesh().owned_indices() {
                let c = pm.mesh().coord_of(gr as i64, gc as i64);
                assert_eq!(pm.z().node(lr, lc), &[c[1], c[0], 0.0]);
                assert_eq!(pm.w().node(lr, lc), &[0.0, 0.0]);
            }
        });
    }

    #[test]
    fn single_mode_peaks_at_amplitude() {
        World::builder(1).run(|comm| {
            let mut pm = pm_with(&comm, true, 16);
            InitialCondition::SingleMode {
                amplitude: 0.05,
                modes: [1.0, 1.0],
            }
            .apply(&mut pm);
            let max = pm
                .mesh()
                .owned_indices()
                .map(|(lr, lc, _, _)| pm.z().get(lr, lc, 2))
                .fold(f64::MIN, f64::max);
            assert!((max - 0.05).abs() < 1e-12);
        });
    }

    #[test]
    fn single_mode_open_boundary_has_zero_slope_at_edges() {
        World::builder(1).run(|comm| {
            let mut pm = pm_with(&comm, false, 17);
            InitialCondition::SingleMode {
                amplitude: 0.1,
                modes: [1.0, 1.0],
            }
            .apply(&mut pm);
            // cos(π·x̃) has extrema (zero slope) at x̃ = 0 and 1: compare
            // edge and adjacent interior values.
            let h = pm.mesh().halo();
            let edge = pm.z().get(h + 8, h, 2);
            let inner = pm.z().get(h + 8, h + 1, 2);
            // slope between first two columns is O(dx²) of the mode.
            assert!((edge - inner).abs() < 0.1 * 0.05);
        });
    }

    #[test]
    fn multimode_is_identical_across_rank_counts() {
        let ic = InitialCondition::MultiMode {
            amplitude: 0.02,
            modes: 4,
            seed: 42,
        };
        let gather = |p: usize| -> Vec<(usize, usize, f64)> {
            let out = World::builder(p).run(move |comm| {
                let mut pm = pm_with(&comm, true, 12);
                ic.apply(&mut pm);
                let rows: Vec<(usize, usize, f64)> = pm
                    .mesh()
                    .owned_indices()
                    .map(|(lr, lc, gr, gc)| (gr, gc, pm.z().get(lr, lc, 2)))
                    .collect();
                comm.allgather(&rows)
            });
            let mut all: Vec<(usize, usize, f64)> = out.into_iter().next().unwrap();
            all.sort_by_key(|a| (a.0, a.1));
            all.dedup_by(|a, b| (a.0, a.1) == (b.0, b.1));
            all
        };
        let s1 = gather(1);
        let s4 = gather(4);
        assert_eq!(s1.len(), 144);
        assert_eq!(s1, s4);
    }

    #[test]
    fn different_seeds_differ() {
        World::builder(1).run(|comm| {
            let sample = |seed: u64| {
                let mut pm = pm_with(&comm, true, 8);
                InitialCondition::MultiMode {
                    amplitude: 0.02,
                    modes: 3,
                    seed,
                }
                .apply(&mut pm);
                pm.z().get(4, 4, 2)
            };
            assert_ne!(sample(1), sample(2));
        });
    }
}
