//! The job scheduler: admission control, priority + deadline ordering,
//! gang dispatch onto a shared [`RankPool`], and elastic preemption.
//!
//! ## Dispatch policy
//!
//! A dispatcher thread scans the queue in (priority desc, absolute
//! deadline asc, id asc) order and dispatches the first job whose gang
//! fits the pool. Grants are *elastic*: a job asking for `ranks` slots
//! runs with `min(ranks, available)` as long as that is at least its
//! `min_ranks`, so a wide job can start narrow instead of waiting for
//! the whole pool.
//!
//! ## Preemption protocol
//!
//! When the best-ranked queued job cannot get even `min_ranks` and
//! strictly lower-priority jobs are running, the scheduler flags enough
//! victims (lowest priority first) and places a **reservation**: until
//! the reserved job dispatches, no other job may take freed slots, so
//! backfill cannot livelock the high-priority job out of its claim.
//! Victims observe the flag at their next step boundary, write a
//! checkpoint, and return [`JobOutcome::Preempted`]; the scheduler
//! requeues them, and a later dispatch resumes from the checkpoint —
//! possibly with a smaller gang (the checkpoint format is rank-count
//! independent). Jobs running under a fault plan use the
//! fault-tolerant driver, which has its own recovery collectives mid
//! step; they are not preemptible.
//!
//! The scheduler is runner-agnostic: the actual physics lives behind
//! [`JobRunner`] (implemented by `beatnik-rocketrig`'s serve driver),
//! which keeps this crate free of a dependency cycle.

use crate::job::{JobLimits, JobRecord, JobResult, JobSpec, JobState};
use crate::metrics::ServeMetrics;
use beatnik_comm::RankPool;
use beatnik_telemetry::metrics::MetricsRegistry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a job's execution ended, as reported by the runner.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Ran to the spec's final step.
    Completed {
        /// Total steps executed (across all dispatch epochs).
        steps: usize,
        /// Final interface amplitude.
        amplitude: f64,
        /// Final enstrophy.
        enstrophy: f64,
        /// Critical-path summary when profiling was requested.
        critical_path: Option<String>,
    },
    /// Observed the preempt flag, checkpointed, and stopped.
    Preempted {
        /// Steps completed when the checkpoint was written.
        at_step: usize,
    },
    /// Observed the cancel flag and stopped (no checkpoint kept).
    Canceled {
        /// Steps completed at cancellation.
        at_step: usize,
    },
}

/// Everything a [`JobRunner`] needs to execute one dispatch epoch of a
/// job.
#[derive(Debug, Clone)]
pub struct JobContext {
    /// Server-assigned job id.
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Gang size granted for this epoch (`min_ranks ..= spec.ranks`).
    pub ranks: usize,
    /// Steps already completed by earlier epochs (0 on first dispatch).
    pub steps_done: usize,
    /// Whether a checkpoint from a previous epoch exists at
    /// `ckpt_path` and should be restored.
    pub resume: bool,
    /// Job-private checkpoint file path.
    pub ckpt_path: PathBuf,
    /// Registry to label per-job world metrics into.
    pub registry: Arc<MetricsRegistry>,
    /// Set by the scheduler when this job must checkpoint and yield at
    /// the next step boundary.
    pub preempt: Arc<AtomicBool>,
    /// Set by `DELETE /jobs/{id}` (and shutdown) to stop the job at
    /// the next step boundary without keeping a checkpoint.
    pub cancel: Arc<AtomicBool>,
}

impl JobContext {
    /// A standalone context for driving a runner outside a scheduler
    /// (tests and benchmarks).
    pub fn standalone(spec: JobSpec, ranks: usize, ckpt_path: PathBuf) -> Self {
        JobContext {
            id: 0,
            spec,
            ranks,
            steps_done: 0,
            resume: false,
            ckpt_path,
            registry: Arc::new(MetricsRegistry::new()),
            preempt: Arc::new(AtomicBool::new(false)),
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Whether the scheduler asked this job to checkpoint and yield.
    pub fn preempt_requested(&self) -> bool {
        self.preempt.load(Ordering::Relaxed)
    }

    /// Whether this job was canceled.
    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

/// Executes one dispatch epoch of a job. Implementations build a world
/// of `ctx.ranks` ranks, restore the checkpoint when `ctx.resume`, poll
/// the context flags at step boundaries, and report how the epoch
/// ended.
pub trait JobRunner: Send + Sync + 'static {
    /// Run (an epoch of) the job described by `ctx`.
    fn run(&self, ctx: &JobContext) -> Result<JobOutcome, String>;
}

impl<F> JobRunner for F
where
    F: Fn(&JobContext) -> Result<JobOutcome, String> + Send + Sync + 'static,
{
    fn run(&self, ctx: &JobContext) -> Result<JobOutcome, String> {
        self(ctx)
    }
}

/// Admission error for [`Scheduler::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Spec failed validation (HTTP 400).
    Invalid(String),
    /// Queue is at capacity (HTTP 429).
    QueueFull {
        /// The configured queue limit.
        limit: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(msg) => write!(f, "{msg}"),
            SubmitError::QueueFull { limit } => {
                write!(f, "queue full ({limit} jobs waiting)")
            }
        }
    }
}

/// Result of a cancel request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// Job was waiting and is now terminally canceled.
    Canceled,
    /// Job is running; the cancel flag is set and it will stop at the
    /// next step boundary.
    CancelRequested,
    /// No such job.
    NotFound,
    /// Job already reached a terminal state.
    AlreadyTerminal,
}

/// Scheduler deployment knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Rank slots in the shared pool.
    pub pool_ranks: usize,
    /// Maximum jobs waiting in the queue before `submit` returns
    /// [`SubmitError::QueueFull`].
    pub max_queue: usize,
    /// Admission limits (`pool_ranks` is overwritten from this config).
    pub limits: JobLimits,
    /// Directory for per-job checkpoint files.
    pub ckpt_dir: PathBuf,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            pool_ranks: 8,
            max_queue: 256,
            limits: JobLimits::default(),
            ckpt_dir: std::env::temp_dir().join("beatnik-serve"),
        }
    }
}

/// Per-running-job bookkeeping the dispatcher consults for preemption.
struct RunningJob {
    preempt: Arc<AtomicBool>,
    cancel: Arc<AtomicBool>,
    ranks: usize,
    priority: u8,
    /// Fault-plan jobs cannot be preempted (their driver owns the
    /// mid-step recovery collectives).
    preemptible: bool,
}

#[derive(Default)]
struct SchedState {
    records: Vec<JobRecord>,
    /// Ids waiting for a gang (order is irrelevant; selection sorts).
    queue: Vec<u64>,
    running: HashMap<u64, RunningJob>,
    /// Reservation: only this job may dispatch while set.
    reserved: Option<u64>,
    /// When each queued id was last enqueued (ms since epoch).
    enqueued_ms: HashMap<u64, u64>,
    next_id: u64,
    shutdown: bool,
}

impl SchedState {
    fn record_mut(&mut self, id: u64) -> Option<&mut JobRecord> {
        self.records.iter_mut().find(|r| r.id == id)
    }

    fn record(&self, id: u64) -> Option<&JobRecord> {
        self.records.iter().find(|r| r.id == id)
    }
}

struct Shared {
    state: Mutex<SchedState>,
    cv: Condvar,
    pool: RankPool,
    cfg: SchedulerConfig,
    metrics: ServeMetrics,
    runner: Arc<dyn JobRunner>,
    epoch: Instant,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn set_state(&self, rec: &mut JobRecord, state: JobState) {
        rec.state = state;
        self.metrics.job_state(rec.id).set(state.code());
    }
}

/// The multi-tenant job scheduler. One instance owns the rank pool,
/// the dispatcher thread, and every job record.
pub struct Scheduler {
    shared: Arc<Shared>,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Build a scheduler over a fresh `cfg.pool_ranks`-slot pool and
    /// start its dispatcher thread.
    pub fn new(
        cfg: SchedulerConfig,
        registry: Arc<MetricsRegistry>,
        runner: Arc<dyn JobRunner>,
    ) -> Self {
        let _ = std::fs::create_dir_all(&cfg.ckpt_dir);
        let metrics = ServeMetrics::new(registry, cfg.pool_ranks);
        let mut cfg = cfg;
        cfg.limits.pool_ranks = cfg.pool_ranks;
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                next_id: 1,
                ..SchedState::default()
            }),
            cv: Condvar::new(),
            pool: RankPool::new(cfg.pool_ranks),
            cfg,
            metrics,
            runner,
            epoch: Instant::now(),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-dispatch".into())
                .spawn(move || dispatch_loop(&shared))
                .expect("spawn dispatcher")
        };
        Scheduler {
            shared,
            dispatcher: Mutex::new(Some(dispatcher)),
        }
    }

    /// The service metrics handles (shared with the HTTP layer).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Milliseconds since the scheduler started (the timeline epoch).
    pub fn now_ms(&self) -> u64 {
        self.shared.now_ms()
    }

    /// Admit a job: validate, check queue capacity, enqueue. Returns
    /// the assigned id.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        if let Err(msg) = spec.validate(&self.shared.cfg.limits) {
            self.shared.metrics.jobs_rejected_invalid.inc();
            return Err(SubmitError::Invalid(msg));
        }
        let mut st = lock(&self.shared.state);
        if st.shutdown {
            self.shared.metrics.jobs_rejected_invalid.inc();
            return Err(SubmitError::Invalid("server is shutting down".into()));
        }
        if st.queue.len() >= self.shared.cfg.max_queue {
            self.shared.metrics.jobs_rejected_queue_full.inc();
            return Err(SubmitError::QueueFull {
                limit: self.shared.cfg.max_queue,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        let now = self.shared.now_ms();
        st.records.push(JobRecord::new(id, spec, now));
        st.queue.push(id);
        st.enqueued_ms.insert(id, now);
        self.shared.metrics.jobs_submitted.inc();
        self.shared.metrics.queue_depth.set(st.queue.len() as u64);
        self.shared.metrics.job_state(id).set(JobState::Queued.code());
        drop(st);
        self.shared.cv.notify_all();
        Ok(id)
    }

    /// Cancel a job by id.
    pub fn cancel(&self, id: u64) -> CancelOutcome {
        let mut st = lock(&self.shared.state);
        let now = self.shared.now_ms();
        let Some(state) = st.record(id).map(|r| r.state) else {
            return CancelOutcome::NotFound;
        };
        if state.is_terminal() {
            return CancelOutcome::AlreadyTerminal;
        }
        if let Some(run) = st.running.get(&id) {
            run.cancel.store(true, Ordering::Relaxed);
            return CancelOutcome::CancelRequested;
        }
        // Queued (or preempted-and-requeued): remove and finish now.
        st.queue.retain(|&q| q != id);
        if st.reserved == Some(id) {
            st.reserved = None;
        }
        let wait = st.enqueued_ms.remove(&id).map(|t| now.saturating_sub(t));
        let shared = &self.shared;
        let rec = st.record_mut(id).expect("record exists");
        if let Some(w) = wait {
            rec.queue_wait_ms += w;
        }
        rec.finished_ms = Some(now);
        shared.set_state(rec, JobState::Canceled);
        let latency = rec.latency_ms().unwrap_or(0);
        shared.metrics.jobs_canceled.inc();
        shared.metrics.job_latency_ms.observe(latency);
        shared.metrics.queue_depth.set(st.queue.len() as u64);
        drop(st);
        self.shared.cv.notify_all();
        CancelOutcome::Canceled
    }

    /// Snapshot of one job's record.
    pub fn job(&self, id: u64) -> Option<JobRecord> {
        lock(&self.shared.state).record(id).cloned()
    }

    /// Snapshot of every job record, in submission order.
    pub fn jobs(&self) -> Vec<JobRecord> {
        lock(&self.shared.state).records.clone()
    }

    /// Block until no job is queued or running (or `timeout` expires).
    /// Returns `true` when idle was reached.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.shared.state);
        loop {
            if st.queue.is_empty() && st.running.is_empty() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }

    /// Graceful shutdown: cancel queued jobs, ask running jobs to
    /// checkpoint and yield, wait (bounded) for them to drain, and stop
    /// the dispatcher. Preempted jobs keep their checkpoints on disk.
    pub fn shutdown(&self, drain_timeout: Duration) {
        {
            let mut st = lock(&self.shared.state);
            if st.shutdown {
                return;
            }
            st.shutdown = true;
            let now = self.shared.now_ms();
            let queued: Vec<u64> = st.queue.drain(..).collect();
            st.reserved = None;
            for id in queued {
                let wait = st.enqueued_ms.remove(&id).map(|t| now.saturating_sub(t));
                let shared = &self.shared;
                if let Some(rec) = st.record_mut(id) {
                    if let Some(w) = wait {
                        rec.queue_wait_ms += w;
                    }
                    rec.finished_ms = Some(now);
                    shared.set_state(rec, JobState::Canceled);
                    shared.metrics.jobs_canceled.inc();
                }
            }
            self.shared.metrics.queue_depth.set(0);
            for run in st.running.values() {
                if run.preemptible {
                    run.preempt.store(true, Ordering::Relaxed);
                } else {
                    run.cancel.store(true, Ordering::Relaxed);
                }
            }
        }
        self.shared.cv.notify_all();
        // Drain: wait until no worker holds a lease.
        let deadline = Instant::now() + drain_timeout;
        let mut st = lock(&self.shared.state);
        while !st.running.is_empty() && Instant::now() < deadline {
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
        drop(st);
        if let Some(h) = lock(&self.dispatcher).take() {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown(Duration::from_secs(30));
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Absolute deadline for queue ordering (`u64::MAX` when none).
fn deadline_key(rec: &JobRecord) -> u64 {
    match rec.spec.deadline_ms {
        Some(d) => rec.submitted_ms.saturating_add(d),
        None => u64::MAX,
    }
}

/// The dispatcher: repeatedly pick the best dispatchable job, grant it
/// a gang (elastically), or arrange a preemption for it.
fn dispatch_loop(shared: &Arc<Shared>) {
    let mut st = lock(&shared.state);
    loop {
        if st.shutdown {
            return;
        }
        match pick_and_grant(shared, &mut st) {
            Some((id, lease)) => {
                start_job(shared, &mut st, id, lease);
                // Immediately look for more dispatchable work.
                continue;
            }
            None => {
                let (guard, _) = shared
                    .cv
                    .wait_timeout(st, Duration::from_millis(25))
                    .unwrap_or_else(|p| p.into_inner());
                st = guard;
            }
        }
    }
}

/// Choose a job and acquire its gang. On failure for the top choice,
/// try to arrange a preemption (reservation + victim flags), then fall
/// back to backfilling a smaller job.
fn pick_and_grant(
    shared: &Arc<Shared>,
    st: &mut SchedState,
) -> Option<(u64, beatnik_comm::RankLease)> {
    if st.queue.is_empty() {
        return None;
    }
    // Queue order: priority desc, absolute deadline asc, id asc.
    let mut order: Vec<u64> = st.queue.clone();
    order.sort_by_key(|&id| {
        let rec = st.record(id).expect("queued record exists");
        (std::cmp::Reverse(rec.spec.priority), deadline_key(rec), rec.id)
    });

    // An active reservation pins dispatch to the reserved job so
    // backfill cannot steal the slots its victims are releasing.
    if let Some(rid) = st.reserved {
        let rec = st.record(rid)?;
        let lease = try_elastic(shared, &rec.spec)?;
        st.reserved = None;
        return Some((rid, lease));
    }

    for (i, &id) in order.iter().enumerate() {
        let rec = st.record(id).expect("queued record exists");
        let spec = rec.spec.clone();
        if let Some(lease) = try_elastic(shared, &spec) {
            return Some((id, lease));
        }
        // Only the head of the queue may trigger preemption; jobs
        // further back wait their turn (or backfill if they fit).
        if i == 0 && arrange_preemption(shared, st, id, &spec) {
            return None;
        }
    }
    None
}

/// Try to acquire an elastic gang for `spec`: full width if available,
/// otherwise whatever is free as long as it meets `min_ranks`.
fn try_elastic(shared: &Shared, spec: &JobSpec) -> Option<beatnik_comm::RankLease> {
    let want = spec.ranks.min(shared.pool.capacity());
    if let Some(lease) = shared.pool.try_acquire(want) {
        return Some(lease);
    }
    let avail = shared.pool.available();
    if avail >= spec.min_ranks && avail < want {
        return shared.pool.try_acquire(avail);
    }
    None
}

/// If strictly lower-priority preemptible jobs hold enough slots to
/// seat `spec`, flag them and reserve the pool for job `id`. Returns
/// whether a reservation was placed.
fn arrange_preemption(shared: &Shared, st: &mut SchedState, id: u64, spec: &JobSpec) -> bool {
    let want = spec.ranks.min(shared.pool.capacity());
    let avail = shared.pool.available();
    let mut victims: Vec<(u64, u8, usize)> = st
        .running
        .iter()
        .filter(|(_, r)| r.preemptible && r.priority < spec.priority)
        .filter(|(_, r)| !r.preempt.load(Ordering::Relaxed))
        .map(|(&vid, r)| (vid, r.priority, r.ranks))
        .collect();
    // Take the cheapest victims first: lowest priority, then smallest
    // gang (less wasted work), until the job is fully seated.
    victims.sort_by_key(|&(vid, prio, ranks)| (prio, ranks, vid));
    let mut freed = avail;
    let mut chosen = Vec::new();
    for (vid, _, ranks) in victims {
        if freed >= want {
            break;
        }
        freed += ranks;
        chosen.push(vid);
    }
    if freed < spec.min_ranks || chosen.is_empty() {
        return false;
    }
    for vid in chosen {
        if let Some(run) = st.running.get(&vid) {
            run.preempt.store(true, Ordering::Relaxed);
        }
    }
    st.reserved = Some(id);
    true
}

/// Move job `id` from the queue to running on `lease`, and spawn its
/// worker thread.
fn start_job(shared: &Arc<Shared>, st: &mut SchedState, id: u64, lease: beatnik_comm::RankLease) {
    let now = shared.now_ms();
    st.queue.retain(|&q| q != id);
    shared.metrics.queue_depth.set(st.queue.len() as u64);
    let wait = st.enqueued_ms.remove(&id).map(|t| now.saturating_sub(t));
    let granted = lease.ranks();
    let preempt = Arc::new(AtomicBool::new(false));
    let cancel = Arc::new(AtomicBool::new(false));
    let (spec, steps_done, resume) = {
        let rec = st.record_mut(id).expect("dispatched record exists");
        if let Some(w) = wait {
            rec.queue_wait_ms += w;
            shared.metrics.queue_wait_ms.observe(w);
        }
        if rec.started_ms.is_none() {
            rec.started_ms = Some(now);
        }
        rec.ranks_history.push(granted);
        shared.set_state(rec, JobState::Running);
        (rec.spec.clone(), rec.steps_done, rec.preemptions > 0)
    };
    st.running.insert(
        id,
        RunningJob {
            preempt: Arc::clone(&preempt),
            cancel: Arc::clone(&cancel),
            ranks: granted,
            priority: spec.priority,
            preemptible: spec.faults.is_none(),
        },
    );
    shared.metrics.ranks_busy.add(granted as u64);

    let ctx = JobContext {
        id,
        spec,
        ranks: granted,
        steps_done,
        resume,
        ckpt_path: shared.cfg.ckpt_dir.join(format!("job-{id}.ckpt.json")),
        registry: Arc::clone(&shared.metrics.registry),
        preempt,
        cancel,
    };
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("serve-job-{id}"))
        .spawn(move || {
            let started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| shared.runner.run(&ctx)))
                .unwrap_or_else(|p| Err(panic_message(&p)));
            finish_job(&shared, &ctx, outcome, started.elapsed());
            drop(lease);
            shared.cv.notify_all();
        })
        .expect("spawn job worker");
}

/// Record a worker's outcome and update every derived metric.
fn finish_job(
    shared: &Shared,
    ctx: &JobContext,
    outcome: Result<JobOutcome, String>,
    ran_for: Duration,
) {
    let mut st = lock(&shared.state);
    let now = shared.now_ms();
    st.running.remove(&ctx.id);
    shared.metrics.ranks_busy.sub(ctx.ranks as u64);
    let shutting_down = st.shutdown;
    let mut requeue = false;
    {
        let rec = st.record_mut(ctx.id).expect("finished record exists");
        rec.run_ms += ran_for.as_millis() as u64;
        match outcome {
            Ok(JobOutcome::Completed {
                steps,
                amplitude,
                enstrophy,
                critical_path,
            }) => {
                rec.steps_done = steps;
                rec.result = Some(JobResult {
                    steps,
                    amplitude,
                    enstrophy,
                });
                rec.critical_path = critical_path;
                rec.finished_ms = Some(now);
                shared.set_state(rec, JobState::Completed);
                shared.metrics.jobs_completed.inc();
                shared
                    .metrics
                    .job_latency_ms
                    .observe(rec.latency_ms().unwrap_or(0));
                let _ = std::fs::remove_file(&ctx.ckpt_path);
            }
            Ok(JobOutcome::Preempted { at_step }) => {
                rec.steps_done = at_step;
                rec.preemptions += 1;
                shared.metrics.preemptions.inc();
                shared.set_state(rec, JobState::Preempted);
                // During shutdown the checkpoint stays on disk but the
                // job is not requeued; a future server run could adopt
                // it.
                requeue = !shutting_down;
            }
            Ok(JobOutcome::Canceled { at_step }) => {
                rec.steps_done = at_step;
                rec.finished_ms = Some(now);
                shared.set_state(rec, JobState::Canceled);
                shared.metrics.jobs_canceled.inc();
                shared
                    .metrics
                    .job_latency_ms
                    .observe(rec.latency_ms().unwrap_or(0));
                let _ = std::fs::remove_file(&ctx.ckpt_path);
            }
            Err(msg) => {
                rec.error = Some(msg);
                rec.finished_ms = Some(now);
                shared.set_state(rec, JobState::Failed);
                shared.metrics.jobs_failed.inc();
                shared
                    .metrics
                    .job_latency_ms
                    .observe(rec.latency_ms().unwrap_or(0));
                let _ = std::fs::remove_file(&ctx.ckpt_path);
            }
        }
        // Per-job step counter mirrors steps_done for scrapers.
        let c = shared.metrics.job_steps(ctx.id);
        let done = rec.steps_done as u64;
        if done > c.get() {
            c.add(done - c.get());
        }
    }
    if requeue {
        st.queue.push(ctx.id);
        st.enqueued_ms.insert(ctx.id, now);
        shared.metrics.queue_depth.set(st.queue.len() as u64);
    }
}

fn panic_message(p: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("job panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("job panicked: {s}")
    } else {
        "job panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake runner: one "step" is a 1 ms sleep; honors the preempt
    /// and cancel flags at step boundaries and fakes checkpointing via
    /// `ctx.steps_done`.
    struct StubRunner {
        step_ms: u64,
    }

    impl JobRunner for StubRunner {
        fn run(&self, ctx: &JobContext) -> Result<JobOutcome, String> {
            let mut step = ctx.steps_done;
            while step < ctx.spec.steps {
                if ctx.cancel_requested() {
                    return Ok(JobOutcome::Canceled { at_step: step });
                }
                if ctx.preempt_requested() {
                    return Ok(JobOutcome::Preempted { at_step: step });
                }
                std::thread::sleep(Duration::from_millis(self.step_ms));
                step += 1;
            }
            Ok(JobOutcome::Completed {
                steps: step,
                amplitude: 1.0,
                enstrophy: 2.0,
                critical_path: None,
            })
        }
    }

    fn sched(pool: usize, max_queue: usize, step_ms: u64) -> Scheduler {
        let cfg = SchedulerConfig {
            pool_ranks: pool,
            max_queue,
            ckpt_dir: std::env::temp_dir().join(format!(
                "beatnik-serve-test-{}-{pool}",
                std::process::id()
            )),
            ..SchedulerConfig::default()
        };
        Scheduler::new(
            cfg,
            Arc::new(MetricsRegistry::new()),
            Arc::new(StubRunner { step_ms }),
        )
    }

    fn spec(ranks: usize, priority: u8, steps: usize) -> JobSpec {
        JobSpec {
            ranks,
            priority,
            steps,
            ..JobSpec::default()
        }
    }

    #[test]
    fn jobs_run_to_completion() {
        let s = sched(4, 16, 1);
        let ids: Vec<u64> = (0..6)
            .map(|i| s.submit(spec(1 + (i % 3), 4, 3)).unwrap())
            .collect();
        assert!(s.wait_idle(Duration::from_secs(30)));
        for id in ids {
            let rec = s.job(id).unwrap();
            assert_eq!(rec.state, JobState::Completed, "job {id}: {rec:?}");
            assert_eq!(rec.result.unwrap().steps, 3);
            assert!(rec.latency_ms().is_some());
        }
        assert_eq!(s.metrics().jobs_completed.get(), 6);
    }

    #[test]
    fn invalid_and_overflow_submissions_are_rejected() {
        let s = sched(2, 1, 50);
        assert!(matches!(
            s.submit(spec(0, 4, 3)),
            Err(SubmitError::Invalid(_))
        ));
        // Fill the pool, then the 1-deep queue, then overflow.
        let _a = s.submit(spec(2, 4, 40)).unwrap();
        // Give the dispatcher a moment to seat the first job so the
        // queue-depth check below sees exactly one waiter.
        let deadline = Instant::now() + Duration::from_secs(10);
        while s.metrics().ranks_busy.get() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let _b = s.submit(spec(2, 4, 1)).unwrap();
        match s.submit(spec(1, 4, 1)) {
            Err(SubmitError::QueueFull { limit }) => assert_eq!(limit, 1),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(s.metrics().jobs_rejected_queue_full.get(), 1);
    }

    #[test]
    fn cancel_queued_and_running() {
        let s = sched(1, 16, 20);
        let running = s.submit(spec(1, 9, 200)).unwrap();
        let queued = s.submit(spec(1, 0, 200)).unwrap();
        // The queued job cancels instantly.
        let deadline = Instant::now() + Duration::from_secs(10);
        while s.job(queued).unwrap().state != JobState::Queued && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(s.cancel(queued), CancelOutcome::Canceled);
        assert_eq!(s.job(queued).unwrap().state, JobState::Canceled);
        // The running job stops at its next step boundary.
        while s.job(running).unwrap().state == JobState::Queued && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(s.cancel(running), CancelOutcome::CancelRequested);
        assert!(s.wait_idle(Duration::from_secs(30)));
        let rec = s.job(running).unwrap();
        assert_eq!(rec.state, JobState::Canceled);
        assert!(rec.steps_done < 200);
        assert_eq!(s.cancel(running), CancelOutcome::AlreadyTerminal);
        assert_eq!(s.cancel(999), CancelOutcome::NotFound);
    }

    #[test]
    fn high_priority_preempts_and_victim_resumes() {
        let s = sched(2, 16, 5);
        // Victim fills the pool and runs long enough to be caught.
        let victim = s.submit(spec(2, 0, 100)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while s.job(victim).unwrap().state != JobState::Running && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Urgent job needs the whole pool: the victim must yield.
        let urgent = s.submit(JobSpec { min_ranks: 2, ..spec(2, 9, 3) }).unwrap();
        assert!(s.wait_idle(Duration::from_secs(60)));
        let v = s.job(victim).unwrap();
        let u = s.job(urgent).unwrap();
        assert_eq!(u.state, JobState::Completed);
        assert_eq!(v.state, JobState::Completed);
        assert!(v.preemptions >= 1, "victim was never preempted: {v:?}");
        assert!(v.ranks_history.len() >= 2, "victim never resumed: {v:?}");
        assert_eq!(v.result.unwrap().steps, 100);
        // The urgent job must have started before the victim's final
        // epoch finished (it did not just wait for the victim to end).
        assert!(s.metrics().preemptions.get() >= 1);
    }

    #[test]
    fn shutdown_cancels_queued_and_preempts_running() {
        let s = sched(1, 16, 20);
        let running = s.submit(spec(1, 4, 500)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while s.job(running).unwrap().state != JobState::Running && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let queued = s.submit(spec(1, 4, 500)).unwrap();
        s.shutdown(Duration::from_secs(30));
        assert_eq!(s.job(queued).unwrap().state, JobState::Canceled);
        let r = s.job(running).unwrap();
        assert_eq!(r.state, JobState::Preempted, "{r:?}");
        assert!(matches!(
            s.submit(spec(1, 4, 1)),
            Err(SubmitError::Invalid(_))
        ));
    }
}
