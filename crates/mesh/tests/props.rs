//! Property-based tests of the mesh layer: partitions, halo-exchange
//! correctness on random fields, RCB balance, and migration conservation.

use beatnik_comm::World;
use beatnik_mesh::{
    split_even, Partition2d, PointDecomposition, RcbDecomposition, SpatialMesh, SurfaceMesh,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn split_even_partitions_exactly(n in 0usize..100_000, parts in 1usize..256) {
        let mut end = 0;
        for i in 0..parts {
            let r = split_even(n, parts, i);
            prop_assert_eq!(r.start, end);
            end = r.end;
            prop_assert!(r.len() <= n / parts + 1);
        }
        prop_assert_eq!(end, n);
    }

    #[test]
    fn partition_owner_is_consistent(
        nr in 4usize..200, nc in 4usize..200,
        pr in 1usize..8, pc in 1usize..8,
        gr_frac in 0.0f64..1.0, gc_frac in 0.0f64..1.0,
    ) {
        let p = Partition2d::with_dims([nr, nc], [pr, pc]);
        let gr = ((nr as f64 * gr_frac) as usize).min(nr - 1);
        let gc = ((nc as f64 * gc_frac) as usize).min(nc - 1);
        let [opr, opc] = p.owner_of(gr, gc);
        prop_assert!(p.rows_of(opr).contains(&gr));
        prop_assert!(p.cols_of(opc).contains(&gc));
    }

    #[test]
    fn spatial_mesh_ranks_within_includes_owner(
        x in -5.0f64..5.0, y in -5.0f64..5.0,
        cutoff in 0.0f64..3.0,
        py in 1usize..6, px in 1usize..6,
    ) {
        let m = SpatialMesh::new([-3.0, -3.0, -1.0], [3.0, 3.0, 1.0], [py, px]);
        let p = [x, y, 0.0];
        let own = m.rank_of_point(p);
        let within = m.ranks_within(p, cutoff);
        prop_assert!(within.contains(&own), "{own} not in {within:?}");
        prop_assert!(within.iter().all(|&r| r < m.ranks()));
    }

    #[test]
    fn rcb_regions_balance_any_cloud(
        seeds in prop::collection::vec((-3.0f64..3.0, -3.0f64..3.0), 32..200),
        ranks in 2usize..17,
    ) {
        let pts: Vec<[f64; 3]> = seeds.iter().map(|&(x, y)| [x, y, 0.0]).collect();
        let d = RcbDecomposition::build(&pts, ranks, [-3.0, -3.0], [3.0, 3.0]);
        let mut counts = vec![0usize; ranks];
        for p in &pts {
            counts[d.rank_of_point(*p)] += 1;
        }
        prop_assert_eq!(counts.iter().sum::<usize>(), pts.len());
        // Median splits keep every region within a small additive band of
        // the ideal share (ties on duplicate coordinates can shift a few
        // points).
        let ideal = pts.len() as f64 / ranks as f64;
        let max = *counts.iter().max().unwrap() as f64;
        prop_assert!(max <= 2.0 * ideal + 4.0, "counts {counts:?}");
    }
}

proptest! {
    // World-spawning cases are costlier.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn halo_exchange_delivers_wrapped_values(seed in 0u64..1000) {
        World::run(4, move |comm| {
            let mesh = SurfaceMesh::new(
                &comm,
                [10, 10],
                [true, true],
                2,
                [0.0, 0.0],
                [1.0, 1.0],
            );
            let mut f = mesh.make_field(1);
            let value = |gr: usize, gc: usize| -> f64 {
                ((gr as u64 * 131 + gc as u64 * 17 + seed) % 1000) as f64
            };
            for (lr, lc, gr, gc) in mesh.owned_indices() {
                f.set(lr, lc, 0, value(gr, gc));
            }
            mesh.halo_exchange(&mut f);
            let [lr_n, lc_n] = mesh.local_shape();
            for r in 0..lr_n {
                for c in 0..lc_n {
                    let [gr, gc] = mesh.global_of(r, c);
                    let wr = gr.rem_euclid(10) as usize;
                    let wc = gc.rem_euclid(10) as usize;
                    assert_eq!(f.get(r, c, 0), value(wr, wc), "({r},{c})");
                }
            }
        });
    }
}
