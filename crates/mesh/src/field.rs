//! Node-centered multi-component field storage.
//!
//! A [`Field`] covers one rank's local block of the surface mesh —
//! owned nodes plus halo frame — in row-major, component-interleaved
//! layout (`(row, col, comp)`, comp fastest). This is the unit that halo
//! exchange, boundary conditions, and stencils operate on.

/// Dense `rows × cols × ncomp` array of `f64` (rows/cols include halos).
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
    ncomp: usize,
}

impl Field {
    /// Zero-initialized field.
    pub fn zeros(rows: usize, cols: usize, ncomp: usize) -> Self {
        assert!(ncomp > 0, "field needs at least one component");
        Field {
            data: vec![0.0; rows * cols * ncomp],
            rows,
            cols,
            ncomp,
        }
    }

    /// Local rows (including halo frame).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Local columns (including halo frame).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Components per node.
    #[inline]
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }

    #[inline]
    fn idx(&self, r: usize, c: usize, k: usize) -> usize {
        debug_assert!(r < self.rows && c < self.cols && k < self.ncomp);
        (r * self.cols + c) * self.ncomp + k
    }

    /// Read one component at a local node.
    #[inline]
    pub fn get(&self, r: usize, c: usize, k: usize) -> f64 {
        self.data[self.idx(r, c, k)]
    }

    /// Write one component at a local node.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, k: usize, v: f64) {
        let i = self.idx(r, c, k);
        self.data[i] = v;
    }

    /// Add to one component at a local node.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, k: usize, v: f64) {
        let i = self.idx(r, c, k);
        self.data[i] += v;
    }

    /// All components at a node as a small vector copy.
    #[inline]
    pub fn node(&self, r: usize, c: usize) -> &[f64] {
        let i = self.idx(r, c, 0);
        &self.data[i..i + self.ncomp]
    }

    /// Overwrite all components at a node.
    #[inline]
    pub fn set_node(&mut self, r: usize, c: usize, vals: &[f64]) {
        assert_eq!(vals.len(), self.ncomp);
        let i = self.idx(r, c, 0);
        self.data[i..i + self.ncomp].copy_from_slice(vals);
    }

    /// Raw storage (row-major, component-interleaved).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fill every entry (including halos) with a value.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Pack the sub-rectangle `r0..r1 × c0..c1` (all components,
    /// row-major) into a flat vector.
    pub fn pack(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Vec<f64> {
        debug_assert!(r1 <= self.rows && c1 <= self.cols && r0 <= r1 && c0 <= c1);
        let mut out = Vec::with_capacity((r1 - r0) * (c1 - c0) * self.ncomp);
        if c1 == c0 {
            return out;
        }
        let width = (c1 - c0) * self.ncomp;
        for r in r0..r1 {
            let start = self.idx(r, c0, 0);
            out.extend_from_slice(&self.data[start..start + width]);
        }
        out
    }

    /// Unpack a flat vector produced by [`Field::pack`] into the
    /// sub-rectangle `r0..r1 × c0..c1`.
    pub fn unpack(&mut self, r0: usize, r1: usize, c0: usize, c1: usize, data: &[f64]) {
        debug_assert_eq!(data.len(), (r1 - r0) * (c1 - c0) * self.ncomp);
        let width = (c1 - c0) * self.ncomp;
        for (i, r) in (r0..r1).enumerate() {
            let dst = self.idx(r, c0, 0);
            self.data[dst..dst + width].copy_from_slice(&data[i * width..(i + 1) * width]);
        }
    }

    /// Elementwise `self = self * a + other * b` (used by RK stages).
    pub fn axpby(&mut self, a: f64, other: &Field, b: f64) {
        assert_eq!(self.data.len(), other.data.len(), "axpby: shape mismatch");
        for (x, y) in self.data.iter_mut().zip(&other.data) {
            *x = *x * a + *y * b;
        }
    }

    /// Maximum absolute value over all entries (diagnostics).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip_with_components() {
        let mut f = Field::zeros(3, 4, 2);
        f.set(1, 2, 0, 5.0);
        f.set(1, 2, 1, -7.0);
        assert_eq!(f.get(1, 2, 0), 5.0);
        assert_eq!(f.get(1, 2, 1), -7.0);
        assert_eq!(f.node(1, 2), &[5.0, -7.0]);
        assert_eq!(f.get(0, 0, 0), 0.0);
        f.add(1, 2, 0, 1.5);
        assert_eq!(f.get(1, 2, 0), 6.5);
    }

    #[test]
    fn pack_unpack_subrect() {
        let mut f = Field::zeros(4, 4, 2);
        for r in 0..4 {
            for c in 0..4 {
                f.set(r, c, 0, (r * 10 + c) as f64);
                f.set(r, c, 1, -((r * 10 + c) as f64));
            }
        }
        let packed = f.pack(1, 3, 2, 4);
        assert_eq!(packed.len(), 2 * 2 * 2);
        assert_eq!(packed[0], 12.0);
        assert_eq!(packed[1], -12.0);
        let mut g = Field::zeros(4, 4, 2);
        g.unpack(1, 3, 2, 4, &packed);
        assert_eq!(g.get(2, 3, 0), 23.0);
        assert_eq!(g.get(2, 3, 1), -23.0);
        assert_eq!(g.get(0, 0, 0), 0.0);
    }

    #[test]
    fn pack_empty_rect_is_empty() {
        let f = Field::zeros(4, 4, 1);
        assert!(f.pack(2, 2, 0, 4).is_empty());
        assert!(f.pack(0, 4, 3, 3).is_empty());
    }

    #[test]
    fn axpby_combines_fields() {
        let mut a = Field::zeros(2, 2, 1);
        a.fill(2.0);
        let mut b = Field::zeros(2, 2, 1);
        b.fill(3.0);
        a.axpby(0.5, &b, 2.0);
        assert_eq!(a.get(1, 1, 0), 7.0);
    }

    #[test]
    fn set_node_and_max_abs() {
        let mut f = Field::zeros(2, 2, 3);
        f.set_node(0, 1, &[1.0, -9.0, 2.0]);
        assert_eq!(f.max_abs(), 9.0);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn zero_components_rejected() {
        let _ = Field::zeros(2, 2, 0);
    }
}
