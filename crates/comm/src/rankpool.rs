//! Shared rank-slot pool: the comm-layer hook multi-world schedulers
//! (the `beatnik-serve` gang scheduler) use to share a fixed budget of
//! thread-ranks between concurrent [`crate::World`] launches.
//!
//! A [`RankPool`] is a counting semaphore over *rank slots*, acquired
//! all-or-nothing: a job that needs `n` ranks either gets all `n` (a
//! [`RankLease`]) or none — the gang-scheduling invariant that keeps a
//! half-granted world from deadlocking against another half-granted
//! world. Leases release their slots on drop, so a panicking world can
//! never leak pool capacity.

use crate::sync::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct PoolInner {
    capacity: usize,
    free: Mutex<usize>,
    freed: Condvar,
}

/// A fixed budget of rank slots shared between worlds. Cloning shares
/// the pool.
#[derive(Clone)]
pub struct RankPool {
    inner: Arc<PoolInner>,
}

impl RankPool {
    /// A pool of `capacity` rank slots.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a pool no world can ever run on.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "rank pool needs at least one slot");
        RankPool {
            inner: Arc::new(PoolInner {
                capacity,
                free: Mutex::new(capacity),
                freed: Condvar::new(),
            }),
        }
    }

    /// Total slots in the pool.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Slots currently unleased. Advisory: another thread may acquire
    /// between this read and a follow-up [`RankPool::try_acquire`].
    pub fn available(&self) -> usize {
        *self.inner.free.lock()
    }

    /// Acquire `n` slots if all are free right now; `None` otherwise.
    ///
    /// # Panics
    /// Panics if `n` is zero or exceeds the pool capacity (such a gang
    /// could never be granted — waiting on it would hang forever).
    pub fn try_acquire(&self, n: usize) -> Option<RankLease> {
        self.check_demand(n);
        let mut free = self.inner.free.lock();
        if *free >= n {
            *free -= n;
            Some(self.lease(n))
        } else {
            None
        }
    }

    /// Acquire `n` slots, waiting up to `timeout` for enough releases;
    /// `None` on timeout.
    ///
    /// # Panics
    /// Panics if `n` is zero or exceeds the pool capacity.
    pub fn acquire_timeout(&self, n: usize, timeout: Duration) -> Option<RankLease> {
        self.check_demand(n);
        let deadline = Instant::now() + timeout;
        let mut free = self.inner.free.lock();
        loop {
            if *free >= n {
                *free -= n;
                return Some(self.lease(n));
            }
            if Instant::now() >= deadline {
                return None;
            }
            self.inner.freed.wait_until(&mut free, deadline);
        }
    }

    fn check_demand(&self, n: usize) {
        assert!(n > 0, "cannot lease zero ranks");
        assert!(
            n <= self.inner.capacity,
            "gang of {n} ranks can never fit a {}-slot pool",
            self.inner.capacity
        );
    }

    fn lease(&self, n: usize) -> RankLease {
        RankLease {
            pool: Arc::clone(&self.inner),
            n,
        }
    }
}

impl std::fmt::Debug for RankPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankPool")
            .field("capacity", &self.capacity())
            .field("available", &self.available())
            .finish()
    }
}

/// An exclusive grant of `n` rank slots; slots return to the pool on
/// drop (including via panic unwind).
pub struct RankLease {
    pool: Arc<PoolInner>,
    n: usize,
}

impl RankLease {
    /// Number of slots this lease holds.
    pub fn ranks(&self) -> usize {
        self.n
    }
}

impl Drop for RankLease {
    fn drop(&mut self) {
        let mut free = self.pool.free.lock();
        *free += self.n;
        self.pool.freed.notify_all();
    }
}

impl std::fmt::Debug for RankLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankLease").field("ranks", &self.n).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gang_acquire_is_all_or_nothing() {
        let pool = RankPool::new(8);
        let a = pool.try_acquire(5).expect("5 of 8 fits");
        assert_eq!(pool.available(), 3);
        assert!(pool.try_acquire(4).is_none(), "4 > 3 free: no partial grant");
        assert_eq!(pool.available(), 3, "failed acquire must not consume slots");
        let b = pool.try_acquire(3).expect("exactly the remainder fits");
        assert_eq!(pool.available(), 0);
        drop(a);
        assert_eq!(pool.available(), 5);
        drop(b);
        assert_eq!(pool.available(), 8);
    }

    #[test]
    fn release_wakes_a_waiter() {
        let pool = RankPool::new(4);
        let lease = pool.try_acquire(4).unwrap();
        let p2 = pool.clone();
        let waiter = std::thread::spawn(move || {
            p2.acquire_timeout(2, Duration::from_secs(30)).is_some()
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(lease);
        assert!(waiter.join().unwrap(), "waiter must be granted after release");
    }

    #[test]
    fn acquire_timeout_expires() {
        let pool = RankPool::new(2);
        let _held = pool.try_acquire(2).unwrap();
        let start = Instant::now();
        assert!(pool.acquire_timeout(1, Duration::from_millis(30)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn lease_released_on_panic_unwind() {
        let pool = RankPool::new(2);
        let p2 = pool.clone();
        let _ = std::panic::catch_unwind(move || {
            let _lease = p2.try_acquire(2).unwrap();
            panic!("world exploded");
        });
        assert_eq!(pool.available(), 2, "unwind must return the slots");
    }

    #[test]
    #[should_panic(expected = "can never fit")]
    fn oversized_gang_is_rejected() {
        let _ = RankPool::new(4).try_acquire(5);
    }
}
