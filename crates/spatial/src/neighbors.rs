//! CSR neighbor lists — the product the cutoff BR solver consumes.
//!
//! For each *target* point, the list holds the indices of all *source*
//! points within the cutoff radius. Targets are typically a rank's owned
//! points; sources are owned + ghost points delivered by the halo.

use crate::grid::UniformGrid;
use crate::kdtree::KdTree;
use crate::dist2;

/// Which acceleration structure builds the list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Cell-list binning (ArborX-style default).
    #[default]
    Grid,
    /// k-d tree (robust under extreme clustering).
    KdTree,
}

/// Compressed sparse-row neighbor lists: neighbors of target `t` are
/// `indices[offsets[t]..offsets[t+1]]`, indexing the *source* set.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborList {
    /// CSR row offsets, length `targets + 1`.
    pub offsets: Vec<usize>,
    /// Concatenated neighbor indices into the source set.
    pub indices: Vec<u32>,
}

impl NeighborList {
    /// Build with the chosen backend.
    pub fn build(
        targets: &[[f64; 3]],
        sources: &[[f64; 3]],
        radius: f64,
        backend: Backend,
    ) -> Self {
        match backend {
            Backend::Grid => {
                let grid = UniformGrid::build(sources.to_vec(), radius);
                Self::from_queries(targets, |q, out| grid.query(q, radius, out))
            }
            Backend::KdTree => {
                let tree = KdTree::build(sources.to_vec());
                Self::from_queries(targets, |q, out| tree.query(q, radius, out))
            }
        }
    }

    fn from_queries(
        targets: &[[f64; 3]],
        mut query: impl FnMut([f64; 3], &mut Vec<u32>),
    ) -> Self {
        let mut offsets = Vec::with_capacity(targets.len() + 1);
        offsets.push(0);
        let mut indices = Vec::new();
        let mut scratch = Vec::new();
        for &t in targets {
            query(t, &mut scratch);
            // Deterministic ordering regardless of backend traversal.
            scratch.sort_unstable();
            indices.extend_from_slice(&scratch);
            offsets.push(indices.len());
        }
        NeighborList { offsets, indices }
    }

    /// Number of target points.
    pub fn num_targets(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Neighbor indices of target `t`.
    pub fn neighbors(&self, t: usize) -> &[u32] {
        &self.indices[self.offsets[t]..self.offsets[t + 1]]
    }

    /// Total neighbor pairs (the cutoff solver's work measure).
    pub fn total_pairs(&self) -> usize {
        self.indices.len()
    }

    /// Maximum neighbors over targets (load-imbalance indicator).
    pub fn max_degree(&self) -> usize {
        (0..self.num_targets())
            .map(|t| self.neighbors(t).len())
            .max()
            .unwrap_or(0)
    }
}

/// O(targets × sources) reference implementation.
pub fn brute_force_neighbors(
    targets: &[[f64; 3]],
    sources: &[[f64; 3]],
    radius: f64,
) -> NeighborList {
    let r2 = radius * radius;
    let mut offsets = Vec::with_capacity(targets.len() + 1);
    offsets.push(0);
    let mut indices = Vec::new();
    for &t in targets {
        for (i, &s) in sources.iter().enumerate() {
            if dist2(t, s) <= r2 {
                indices.push(i as u32);
            }
        }
        offsets.push(indices.len());
    }
    NeighborList { offsets, indices }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, seed: f64) -> Vec<[f64; 3]> {
        (0..n)
            .map(|i| {
                let t = i as f64 + seed;
                [
                    (t * 0.437).fract() * 4.0 - 2.0,
                    (t * 0.911).fract() * 4.0 - 2.0,
                    (t * 0.269).fract() * 1.0 - 0.5,
                ]
            })
            .collect()
    }

    #[test]
    fn backends_match_brute_force() {
        let targets = cloud(80, 0.0);
        let sources = cloud(150, 100.0);
        let r = 0.6;
        let want = brute_force_neighbors(&targets, &sources, r);
        for backend in [Backend::Grid, Backend::KdTree] {
            let got = NeighborList::build(&targets, &sources, r, backend);
            assert_eq!(got, want, "{backend:?}");
        }
    }

    #[test]
    fn csr_shape_invariants() {
        let targets = cloud(50, 3.0);
        let sources = cloud(70, 7.0);
        let nl = NeighborList::build(&targets, &sources, 0.5, Backend::Grid);
        assert_eq!(nl.num_targets(), 50);
        assert_eq!(*nl.offsets.last().unwrap(), nl.indices.len());
        assert!(nl.offsets.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(nl.total_pairs(), nl.indices.len());
        assert!(nl.max_degree() <= 70);
    }

    #[test]
    fn identical_target_source_sets_include_self() {
        let pts = cloud(40, 0.0);
        let nl = NeighborList::build(&pts, &pts, 0.4, Backend::KdTree);
        for t in 0..pts.len() {
            assert!(nl.neighbors(t).contains(&(t as u32)), "target {t}");
        }
    }

    #[test]
    fn empty_sets() {
        let pts = cloud(5, 0.0);
        let no_targets = NeighborList::build(&[], &pts, 0.5, Backend::Grid);
        assert_eq!(no_targets.num_targets(), 0);
        assert_eq!(no_targets.max_degree(), 0);
        let no_sources = NeighborList::build(&pts, &[], 0.5, Backend::Grid);
        assert_eq!(no_sources.num_targets(), 5);
        assert_eq!(no_sources.total_pairs(), 0);
    }
}
