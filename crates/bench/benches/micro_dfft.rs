//! Criterion microbenchmarks of the distributed FFT: the eight Table-1
//! configurations at a fixed grid and rank count (real thread-rank
//! execution; the Figure-9 target extrapolates these patterns to scale).

use beatnik_comm::{dims_create, World};
use beatnik_dfft::{DistributedFft2d, FftConfig};
use beatnik_fft::Complex;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_configs(c: &mut Criterion) {
    let mut g = c.benchmark_group("dfft_configs");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    let n = 128;
    let ranks = 4;
    for config in FftConfig::table1() {
        g.bench_with_input(
            BenchmarkId::new("forward_128x128_4ranks", config.index()),
            &config,
            |b, &config| {
                b.iter(|| {
                    World::builder(ranks).run(move |comm| {
                        let dims = dims_create(comm.size());
                        let plan = DistributedFft2d::new(&comm, dims, n, n, config);
                        let rect = plan.local_rect();
                        let block: Vec<Complex> = (0..rect.area())
                            .map(|i| Complex::new(i as f64, -(i as f64)))
                            .collect();
                        plan.forward(block).len()
                    })
                })
            },
        );
    }
    g.finish();
}

fn bench_rank_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("dfft_ranks");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    let n = 128;
    for ranks in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("forward_128x128", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                World::builder(ranks).run(move |comm| {
                    let dims = dims_create(comm.size());
                    let plan =
                        DistributedFft2d::new(&comm, dims, n, n, FftConfig::default());
                    let rect = plan.local_rect();
                    let block: Vec<Complex> = (0..rect.area())
                        .map(|i| Complex::new(i as f64, 0.5))
                        .collect();
                    plan.forward(block).len()
                })
            })
        });
    }
    g.finish();
}

fn bench_redistribution_transport(c: &mut Criterion) {
    // Blocking collective (Pairwise alltoallv) vs nonblocking p2p
    // (Direct: irecvs posted up front, isends drained out of order) for
    // the same reshape volume — the transport half of the Table-1 knob.
    let mut g = c.benchmark_group("dfft_redistribution");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    let n = 128;
    let ranks = 4;
    for (name, all_to_all) in [
        ("collective_blocking", true),
        ("p2p_nonblocking", false),
    ] {
        g.bench_with_input(
            BenchmarkId::new(name, format!("{n}x{n}x{ranks}")),
            &all_to_all,
            |b, &all_to_all| {
                b.iter(|| {
                    World::builder(ranks).run(move |comm| {
                        let config = FftConfig {
                            all_to_all,
                            ..FftConfig::default()
                        };
                        let dims = dims_create(comm.size());
                        let plan = DistributedFft2d::new(&comm, dims, n, n, config);
                        let rect = plan.local_rect();
                        let block: Vec<Complex> = (0..rect.area())
                            .map(|i| Complex::new(i as f64, 0.25))
                            .collect();
                        plan.forward(block).len()
                    })
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_configs, bench_rank_counts, bench_redistribution_transport);
criterion_main!(benches);
