//! Figure 5: high-order cutoff solver weak scaling, 4 → 1024 GPUs
//! (multi-mode deck, 768² points/GPU, cutoff 0.2).
//!
//! Paper result: "only modest (approximately 20%) increases in runtime"
//! over a 256× problem-size growth, because communication is dominated by
//! neighbor halos and the balanced multi-mode case develops little load
//! imbalance.

use beatnik_bench::fig5_series;
use beatnik_model::{format_table, Machine};

fn main() {
    let series = fig5_series(&Machine::lassen());
    println!("=== Figure 5: Cutoff Solver Weak Scaling (Lassen model, 768^2 points/GPU) ===\n");
    print!("{}", format_table(std::slice::from_ref(&series)));
    let growth = series.time_at(1024).unwrap() / series.time_at(4).unwrap();
    println!(
        "\nruntime growth 4 -> 1024 GPUs: {:.1}% (paper: ~20%) over a 256x problem growth",
        (growth - 1.0) * 100.0
    );
}
