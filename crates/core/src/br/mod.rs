//! Birkhoff–Rott far-field solvers (paper §3.2).
//!
//! A BR solver computes, for every surface point a rank owns, the
//! desingularized Birkhoff–Rott velocity induced by *all* points of the
//! global surface. Two strategies are implemented, as in the paper:
//!
//! * [`ExactBrSolver`] — O(n²) all-pairs with a ring-pass exchange
//!   (regular communication, compute bound; the accuracy oracle);
//! * [`CutoffBrSolver`] — only pairs within a cutoff distance, via the
//!   spatial-mesh migrate → halo → neighbor-list → force → return cycle
//!   (dynamic, irregular communication; the scalable solver);
//! * [`TreeBrSolver`] — Barnes–Hut tree code over a ring-allgathered
//!   global surface (the paper's §6 fast-multipole-style future work);
//! * [`BalancedCutoffBrSolver`] — the cutoff cycle over a per-evaluation
//!   recursive-coordinate-bisection decomposition (the paper's §6
//!   load-balancing future work).

pub mod balanced;
pub mod cutoff;
pub mod exact;
pub mod kernel;
pub mod periodic;
pub mod tree;

pub use balanced::BalancedCutoffBrSolver;
pub use cutoff::CutoffBrSolver;
pub use exact::ExactBrSolver;
pub use periodic::PeriodicExactBrSolver;
pub use tree::TreeBrSolver;

use beatnik_comm::Communicator;

/// One surface point as the BR solvers see it: position plus the
/// pre-integrated sheet strength `ω·ΔA`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrPoint {
    /// Physical position.
    pub pos: [f64; 3],
    /// Sheet-strength vector already scaled by the reference cell area.
    pub strength: [f64; 3],
}

/// A distributed far-field solver for the Birkhoff–Rott integral.
pub trait BrSolver: Send + Sync {
    /// Compute the desingularized BR velocity at each of this rank's
    /// `points` (velocities are returned in the same order). Collective
    /// over `comm`: every rank must call with its own points.
    fn velocities(&self, comm: &Communicator, points: &[BrPoint], epsilon: f64)
        -> Vec<[f64; 3]>;

    /// Solver name for logs and reports.
    fn name(&self) -> &'static str;
}
