//! # beatnik-model — analytic machine & network performance model
//!
//! The paper evaluates Beatnik on Lassen (IBM Power9, 4×V100 per node,
//! EDR InfiniBand) at 4–1024 GPUs. That hardware is not available to this
//! reproduction, so the figure harnesses combine two ingredients:
//!
//! 1. **Measured structure** — per-rank point counts, message counts and
//!    byte volumes taken from real (thread-rank) executions of the
//!    distributed algorithms in this repository, via `beatnik-comm`'s
//!    instrumentation; and
//! 2. **This crate** — closed-form cost models mapping that structure to
//!    time on a Lassen-like machine: an alpha–beta (latency/bandwidth)
//!    network with per-node injection sharing and congestion terms, plus a
//!    roofline compute model for GPU kernels.
//!
//! The models are deliberately simple and fully documented; the paper's
//! results are *shapes* (scaling trends, crossovers, turnover points), and
//! those shapes are driven by the structural counts, not by exact
//! constants.
//!
//! ## Example
//!
//! ```
//! use beatnik_model::{Machine, NetworkModel};
//!
//! let m = Machine::lassen();
//! let net = NetworkModel::new(&m, 64); // 64 ranks
//! // One 1-MiB message between ranks on different nodes:
//! let t = net.p2p_time(1 << 20);
//! assert!(t > 0.0 && t < 1.0);
//! ```

pub mod collectives;
pub mod compute;
pub mod machine;
pub mod network;
pub mod series;

pub use collectives::{AllToAllCost, CollectiveCosts};
pub use compute::ComputeModel;
pub use machine::Machine;
pub use network::NetworkModel;
pub use series::{efficiency, format_table, speedup, ScalingPoint, ScalingSeries};
