//! The shared routing table mapping `(communicator id, rank)` to mailboxes.
//!
//! A [`Registry`] is created per [`crate::World`] and shared (via `Arc`) by
//! every rank thread. Mailboxes are created lazily on first use so that
//! communicators produced by `split` need no global setup phase: the first
//! send to — or receive on — a `(comm, rank)` address materializes its
//! mailbox.

use crate::mailbox::Mailbox;
use crate::sync::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a communicator within one `World`.
pub type CommId = u64;

/// The id of the world communicator every rank starts with.
pub const WORLD_COMM_ID: CommId = 0;

/// Routing table shared by all ranks of a world.
pub struct Registry {
    mailboxes: RwLock<HashMap<(CommId, usize), Arc<Mailbox>>>,
    next_comm_id: AtomicU64,
    /// Set when any rank panics, so ranks blocked in receives fail fast
    /// instead of waiting out their full timeout.
    abort: AtomicBool,
}

impl Registry {
    /// Create a registry with the world communicator id reserved.
    pub fn new() -> Self {
        Registry {
            mailboxes: RwLock::new(HashMap::new()),
            next_comm_id: AtomicU64::new(WORLD_COMM_ID + 1),
            abort: AtomicBool::new(false),
        }
    }

    /// Mark the world as aborting (a rank panicked).
    pub fn signal_abort(&self) {
        self.abort.store(true, Ordering::SeqCst);
    }

    /// Whether a rank has panicked and the world is tearing down.
    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    /// Fetch the mailbox for `(comm, rank)`, creating it if needed.
    pub fn mailbox(&self, comm: CommId, rank: usize) -> Arc<Mailbox> {
        if let Some(mb) = self.mailboxes.read().get(&(comm, rank)) {
            return Arc::clone(mb);
        }
        let mut w = self.mailboxes.write();
        Arc::clone(
            w.entry((comm, rank))
                .or_insert_with(|| Arc::new(Mailbox::new())),
        )
    }

    /// Allocate a contiguous block of `n` fresh communicator ids and return
    /// the first. Used by `split`, where rank 0 of the parent allocates one
    /// id per color group and broadcasts the base so every member of each
    /// group deterministically agrees on its new communicator id.
    pub fn allocate_comm_ids(&self, n: u64) -> CommId {
        self.next_comm_id.fetch_add(n, Ordering::Relaxed)
    }

    /// Number of mailboxes currently materialized (diagnostics only).
    pub fn mailbox_count(&self) -> usize {
        self.mailboxes.read().len()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mailboxes_are_created_lazily_and_shared() {
        let reg = Registry::new();
        assert_eq!(reg.mailbox_count(), 0);
        let a = reg.mailbox(0, 1);
        let b = reg.mailbox(0, 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.mailbox_count(), 1);
        let _c = reg.mailbox(3, 1);
        assert_eq!(reg.mailbox_count(), 2);
    }

    #[test]
    fn comm_id_blocks_are_disjoint_and_never_world() {
        let reg = Registry::new();
        let a = reg.allocate_comm_ids(4);
        let b = reg.allocate_comm_ids(2);
        assert!(a > WORLD_COMM_ID);
        assert!(b >= a + 4);
    }
}
