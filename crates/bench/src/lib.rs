//! # beatnik-bench — the paper's evaluation harness
//!
//! One bench target per table/figure of the paper's Section 5. Each
//! harness combines:
//!
//! * **measured structure** from real (thread-rank) executions of this
//!   repository's distributed algorithms — point distributions, message
//!   counts, per-rank work; with
//! * **the analytic Lassen-like machine model** (`beatnik-model`) to map
//!   that structure onto the paper's 4–1024 GPU scales.
//!
//! The models here count exactly what the implementation does: the
//! low-order solver performs 8 distributed 2D transforms per derivative
//! evaluation and 3 evaluations per RK3 step, each transform performing
//! 3 data reshapes; the cutoff solver performs 3 `alltoallv` migration
//! rounds per evaluation plus neighbor-list construction and pair forces.
//!
//! Absolute times are model outputs (the authors' Lassen is not
//! available); the assertions in this crate's tests — and the
//! paper-comparison tables in EXPERIMENTS.md — are about *shape*:
//! who wins, by what factor, where curves turn over.

use beatnik_model::{AllToAllCost, CollectiveCosts, ComputeModel, Machine, NetworkModel};

pub mod figures;
pub mod gate;
pub mod lowmodel;
pub mod cutoffmodel;

pub use figures::*;
pub use gate::{gate_comm, gate_compute, gate_fault, gate_serve, GatePolicy, GateReport};
pub use lowmodel::LowOrderModel;
pub use cutoffmodel::CutoffModel;

/// The GPU counts the paper sweeps (4 → 1024 in powers of 4, plus the
/// intermediate powers of 2 used in its plots).
pub fn paper_rank_sweep() -> Vec<usize> {
    vec![4, 8, 16, 32, 64, 128, 256, 512, 1024]
}

/// Fabric contention multiplier for bulk all-to-all traffic, calibrated
/// to the paper's observed weak-scaling growth: effective bandwidth
/// degrades with node count (adaptive-routing losses, hop count, PFC
/// backpressure), quickly up to ~64 nodes and more gently beyond — the
/// slope change the paper reports between 196 and 256 GPUs.
pub fn fabric_contention(machine: &Machine, ranks: usize) -> f64 {
    let nodes = machine.nodes_for(ranks) as f64;
    if nodes <= 1.0 {
        return 1.0;
    }
    let l = nodes.log2();
    let fast = l.min(6.0); // up to 64 nodes
    let slow = (l - 6.0).max(0.0); // beyond
    1.0 + 0.28 * fast + 0.12 * slow
}

/// Cost of one distributed-FFT data reshape at scale: a (possibly
/// subcommunicator) all-to-all of `volume_per_rank` bytes, split into
/// `group` blocks, under fabric contention for the *global* job size.
pub fn reshape_time(
    machine: &Machine,
    job_ranks: usize,
    group_ranks: usize,
    volume_per_rank: f64,
    algo: AllToAllCost,
) -> f64 {
    if group_ranks <= 1 {
        return 0.0;
    }
    let net = NetworkModel::new(machine, job_ranks);
    let costs = CollectiveCosts::new(&net);
    // CollectiveCosts is sized for the whole job; rescale the round count
    // to the participating group.
    let block = (volume_per_rank / group_ranks as f64).max(0.0) as usize;
    let full = costs.alltoall(block, algo);
    let rounds_ratio = (group_ranks - 1) as f64 / (job_ranks.max(2) - 1) as f64;
    full * rounds_ratio * fabric_contention(machine, job_ranks)
}

/// Shared helper: machine models for the paper runs.
pub fn lassen() -> (Machine, ComputeModel) {
    let m = Machine::lassen();
    let c = ComputeModel::new(&m);
    (m, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_paper_range() {
        let s = paper_rank_sweep();
        assert_eq!(*s.first().unwrap(), 4);
        assert_eq!(*s.last().unwrap(), 1024);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn contention_grows_then_flattens() {
        let m = Machine::lassen();
        let c4 = fabric_contention(&m, 4); // single node
        let c64 = fabric_contention(&m, 64);
        let c256 = fabric_contention(&m, 256);
        let c1024 = fabric_contention(&m, 1024);
        assert_eq!(c4, 1.0);
        assert!(c64 > 1.5);
        // Slope change: growth per doubling shrinks past 256 GPUs.
        let early_slope = c256 - c64;
        let late_slope = c1024 - c256;
        assert!(late_slope < early_slope, "{early_slope} vs {late_slope}");
    }

    #[test]
    fn reshape_time_scales_with_volume_and_group() {
        let m = Machine::lassen();
        let small = reshape_time(&m, 64, 64, 1e6, AllToAllCost::Pairwise);
        let big = reshape_time(&m, 64, 64, 1e8, AllToAllCost::Pairwise);
        assert!(big > 10.0 * small);
        // A subcommunicator reshape of the same volume costs less.
        let sub = reshape_time(&m, 64, 8, 1e6, AllToAllCost::Pairwise);
        assert!(sub < small);
        assert_eq!(reshape_time(&m, 64, 1, 1e6, AllToAllCost::Pairwise), 0.0);
    }
}
