//! Figure 3: low-order (FFT) solver weak scaling, 4 → 1024 GPUs.
//!
//! Paper result: per-step runtime *increases* despite constant per-GPU
//! work, approximately linearly up to ~196 GPUs and with a smaller slope
//! from 256 to 1024, because large-scale FFT all-to-alls saturate the
//! fabric. This harness prints the modeled Lassen-scale series (per-GPU
//! base mesh 4864², heFFTe-default tuning) built from the implementation's
//! exact per-step transform and reshape counts.

use beatnik_bench::{fig3_series, paper_rank_sweep, LowOrderModel};
use beatnik_model::{format_table, Machine};

fn main() {
    let machine = Machine::lassen();
    let series = fig3_series(&machine);
    println!("=== Figure 3: Low-Order Weak Scaling (Lassen model, 4864^2 points/GPU) ===\n");
    print!("{}", format_table(std::slice::from_ref(&series)));

    let model = LowOrderModel::new(&machine);
    println!("\nper-doubling growth and fabric contention:");
    let sweep = paper_rank_sweep();
    for w in sweep.windows(2) {
        let (a, b) = (w[0], w[1]);
        let ta = series.time_at(a).unwrap();
        let tb = series.time_at(b).unwrap();
        println!(
            "  {a:>5} -> {b:<5} growth {:>5.2}x   contention {:.2} -> {:.2}",
            tb / ta,
            model.contention(a),
            model.contention(b)
        );
    }
    let growth = series.time_at(1024).unwrap() / series.time_at(8).unwrap();
    println!(
        "\nshape check: off-node runtime grows {growth:.2}x from 8 to 1024 GPUs \
         with decreasing slope past 256 (paper: linear growth, slope change past 256)."
    );
}
