//! Time integration (paper §3.1, `TimeIntegrator`): third-order
//! TVD (Shu–Osher) Runge–Kutta. Being a three-stage method, it evaluates
//! the Z-Model derivative three times per step — the paper calls this out
//! explicitly because it sets the communication rate per timestep.

use crate::problem::ProblemManager;
use crate::zmodel::ZModel;
use beatnik_mesh::Field;

/// RK3 integrator owning its stage scratch fields.
pub struct TimeIntegrator {
    zdot: Field,
    wdot: Field,
    z0: Field,
    w0: Field,
}

impl TimeIntegrator {
    /// Allocate stage storage for a problem.
    pub fn new(pm: &ProblemManager) -> Self {
        TimeIntegrator {
            zdot: pm.mesh().make_field(3),
            wdot: pm.mesh().make_field(2),
            z0: pm.mesh().make_field(3),
            w0: pm.mesh().make_field(2),
        }
    }

    /// Advance the state one step of size `dt` with TVD RK3:
    ///
    /// ```text
    /// u⁽¹⁾   = uⁿ + Δt·L(uⁿ)
    /// u⁽²⁾   = ¾uⁿ + ¼u⁽¹⁾ + ¼Δt·L(u⁽¹⁾)
    /// uⁿ⁺¹  = ⅓uⁿ + ⅔u⁽²⁾ + ⅔Δt·L(u⁽²⁾)
    /// ```
    ///
    /// Collective (each `L` evaluation communicates).
    pub fn step(&mut self, zmodel: &ZModel, pm: &mut ProblemManager, dt: f64) {
        // Save uⁿ.
        self.z0.clone_from(pm.z());
        self.w0.clone_from(pm.w());

        // Stage 1: u¹ = u⁰ + dt·L(u⁰).
        zmodel.derivatives(pm, &mut self.zdot, &mut self.wdot);
        {
            let (z, w) = pm.state_mut();
            z.axpby(1.0, &self.zdot, dt);
            w.axpby(1.0, &self.wdot, dt);
        }

        // Stage 2: u² = 3/4·u⁰ + 1/4·u¹ + 1/4·dt·L(u¹).
        zmodel.derivatives(pm, &mut self.zdot, &mut self.wdot);
        {
            let (z, w) = pm.state_mut();
            z.axpby(0.25, &self.z0, 0.75);
            z.axpby(1.0, &self.zdot, 0.25 * dt);
            w.axpby(0.25, &self.w0, 0.75);
            w.axpby(1.0, &self.wdot, 0.25 * dt);
        }

        // Stage 3: uⁿ⁺¹ = 1/3·u⁰ + 2/3·u² + 2/3·dt·L(u²).
        zmodel.derivatives(pm, &mut self.zdot, &mut self.wdot);
        {
            let (z, w) = pm.state_mut();
            z.axpby(2.0 / 3.0, &self.z0, 1.0 / 3.0);
            z.axpby(1.0, &self.zdot, 2.0 / 3.0 * dt);
            w.axpby(2.0 / 3.0, &self.w0, 1.0 / 3.0);
            w.axpby(1.0, &self.wdot, 2.0 / 3.0 * dt);
        }
    }

    /// Forward-Euler step (first order) — kept for convergence testing
    /// against RK3.
    pub fn step_euler(&mut self, zmodel: &ZModel, pm: &mut ProblemManager, dt: f64) {
        zmodel.derivatives(pm, &mut self.zdot, &mut self.wdot);
        let (z, w) = pm.state_mut();
        z.axpby(1.0, &self.zdot, dt);
        w.axpby(1.0, &self.wdot, dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::InitialCondition;
    use crate::order::Order;
    use crate::params::Params;
    use crate::zmodel::ZModel;
    use beatnik_comm::World;
    use beatnik_dfft::FftConfig;
    use beatnik_mesh::{BoundaryCondition, SurfaceMesh};
    use std::f64::consts::PI;

    /// Small single-mode periodic problem on the low-order solver.
    fn setup(comm: &beatnik_comm::Communicator, n: usize) -> (ProblemManager, ZModel) {
        let l = 2.0 * PI;
        let mesh = SurfaceMesh::new(comm, [n, n], [true, true], 2, [0.0, 0.0], [l, l]);
        let mut pm =
            ProblemManager::new(mesh, BoundaryCondition::Periodic { periods: [l, l] });
        InitialCondition::SingleMode {
            amplitude: 1e-4,
            modes: [1.0, 1.0],
        }
        .apply(&mut pm);
        let params = Params {
            atwood: 0.5,
            gravity: 2.0,
            mu: 0.0,
            ..Params::default()
        };
        let zm = ZModel::new(&pm, Order::Low, params, None, FftConfig::default());
        (pm, zm)
    }

    /// Amplitude of the interface: max |z₃| over the global mesh.
    fn amplitude(pm: &ProblemManager) -> f64 {
        let local = pm
            .mesh()
            .owned_indices()
            .map(|(lr, lc, _, _)| pm.z().get(lr, lc, 2).abs())
            .fold(0.0f64, f64::max);
        pm.mesh().comm().allreduce_max(local)
    }

    #[test]
    fn rk3_is_higher_order_than_euler() {
        World::builder(1).run(|comm| {
            // Evolve the same problem with RK3 and Euler at a deliberately
            // large dt; RK3 at dt must beat Euler at dt against the
            // fine-step reference.
            let t_end = 0.4;
            let run = |steps: usize, euler: bool| -> f64 {
                let (mut pm, zm) = setup(&comm, 16);
                let mut ti = TimeIntegrator::new(&pm);
                let dt = t_end / steps as f64;
                for _ in 0..steps {
                    if euler {
                        ti.step_euler(&zm, &mut pm, dt);
                    } else {
                        ti.step(&zm, &mut pm, dt);
                    }
                }
                amplitude(&pm)
            };
            let reference = run(512, false);
            let rk3_err = (run(8, false) - reference).abs();
            let euler_err = (run(8, true) - reference).abs();
            assert!(
                rk3_err < euler_err / 10.0,
                "rk3 {rk3_err} vs euler {euler_err}"
            );
        });
    }

    #[test]
    fn rk3_convergence_order() {
        World::builder(1).run(|comm| {
            let t_end = 0.4;
            let run = |steps: usize| -> f64 {
                let (mut pm, zm) = setup(&comm, 16);
                let mut ti = TimeIntegrator::new(&pm);
                let dt = t_end / steps as f64;
                for _ in 0..steps {
                    ti.step(&zm, &mut pm, dt);
                }
                amplitude(&pm)
            };
            let reference = run(512);
            let e1 = (run(4) - reference).abs();
            let e2 = (run(8) - reference).abs();
            // Third order: halving dt shrinks error ~8x (allow slack).
            assert!(e1 / e2 > 5.0, "convergence ratio {}", e1 / e2);
        });
    }

    #[test]
    fn step_is_deterministic_across_rank_counts() {
        // The FFT path is exact: P=1 and P=4 runs must agree to FP noise.
        let amp_at = |p: usize| -> f64 {
            let out = World::builder(p).run(|comm| {
                let (mut pm, zm) = setup(&comm, 16);
                let mut ti = TimeIntegrator::new(&pm);
                for _ in 0..5 {
                    ti.step(&zm, &mut pm, 1e-2);
                }
                amplitude(&pm)
            });
            out[0]
        };
        let a1 = amp_at(1);
        let a4 = amp_at(4);
        assert!((a1 - a4).abs() < 1e-12 * a1.max(1.0), "{a1} vs {a4}");
    }
}
