//! Cutoff-based approximate Birkhoff–Rott solver (paper §3.2,
//! `CutoffBRSolver`) — the scalable far-field solver whose dynamic,
//! irregular communication the benchmark exists to exercise.
//!
//! Per evaluation, exactly the paper's five steps:
//! 1. migrate surface points into the 3D spatial mesh (x/y decomposition);
//! 2. halo points within the cutoff distance between spatial blocks;
//! 3. build local neighbor lists (beatnik-spatial, the ArborX stand-in);
//! 4. accumulate forces from each point's neighbor list;
//! 5. migrate results back to the surface decomposition.

use super::kernel::br_pair_velocity;
use super::{BrPoint, BrSolver};
use beatnik_comm::Communicator;
use beatnik_mesh::migrate::{
    halo_exchange_points, migrate_results_home, migrate_to_spatial,
};
use beatnik_mesh::{PointResult, SpatialMesh, SurfacePoint};
use beatnik_spatial::neighbors::{Backend, NeighborList};
use crate::par::prelude::*;

/// The scalable cutoff solver.
pub struct CutoffBrSolver {
    smesh: SpatialMesh,
    cutoff: f64,
    backend: Backend,
}

impl CutoffBrSolver {
    /// Create a solver over the given spatial mesh with a cutoff radius.
    /// The spatial mesh's rank count must equal the communicator size the
    /// solver will be used with.
    pub fn new(smesh: SpatialMesh, cutoff: f64, backend: Backend) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive");
        CutoffBrSolver {
            smesh,
            cutoff,
            backend,
        }
    }

    /// The cutoff radius.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// The spatial mesh used for migration.
    pub fn spatial_mesh(&self) -> &SpatialMesh {
        &self.smesh
    }
}

impl BrSolver for CutoffBrSolver {
    fn velocities(
        &self,
        comm: &Communicator,
        points: &[BrPoint],
        epsilon: f64,
    ) -> Vec<[f64; 3]> {
        let _phase = comm.telemetry().phase("br-cutoff");
        let eps2 = epsilon * epsilon;
        let me = comm.rank() as u32;

        // Step 1: migrate into the spatial decomposition.
        let outgoing: Vec<SurfacePoint> = points
            .iter()
            .enumerate()
            .map(|(i, b)| SurfacePoint {
                pos: b.pos,
                payload: b.strength,
                home_rank: me,
                home_idx: i as u32,
            })
            .collect();
        let owned = migrate_to_spatial(comm, &self.smesh, outgoing);

        // Step 2: halo ghosts within the cutoff.
        let ghosts = halo_exchange_points(comm, &self.smesh, &owned, self.cutoff);

        // Step 3: neighbor lists over owned + ghost sources.
        let targets: Vec<[f64; 3]> = owned.iter().map(|p| p.pos).collect();
        let mut sources: Vec<[f64; 3]> = targets.clone();
        sources.extend(ghosts.iter().map(|p| p.pos));
        let mut strengths: Vec<[f64; 3]> = owned.iter().map(|p| p.payload).collect();
        strengths.extend(ghosts.iter().map(|p| p.payload));
        let nlist = NeighborList::build(&targets, &sources, self.cutoff, self.backend);

        // Step 4: force accumulation over neighbor lists (node-parallel).
        let velocities: Vec<[f64; 3]> = (0..targets.len())
            .into_par_iter()
            .map(|t| {
                let mut acc = [0.0f64; 3];
                for &s in nlist.neighbors(t) {
                    let u = br_pair_velocity(
                        targets[t],
                        sources[s as usize],
                        strengths[s as usize],
                        eps2,
                    );
                    acc[0] += u[0];
                    acc[1] += u[1];
                    acc[2] += u[2];
                }
                acc
            })
            .collect();

        // Step 5: return results to home ranks.
        let results: Vec<(usize, PointResult)> = owned
            .iter()
            .zip(&velocities)
            .map(|(pt, v)| {
                (
                    pt.home_rank as usize,
                    PointResult {
                        home_idx: pt.home_idx,
                        value: *v,
                    },
                )
            })
            .collect();
        migrate_results_home(comm, results, points.len())
    }

    fn name(&self) -> &'static str {
        "cutoff"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::br::exact::ExactBrSolver;
    use beatnik_comm::{dims_create, OpKind, World};

    fn global_points(n: usize) -> Vec<BrPoint> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                BrPoint {
                    pos: [
                        (t * 0.37).fract() * 4.0 - 2.0,
                        (t * 0.71).fract() * 4.0 - 2.0,
                        (t * 0.13).fract() - 0.5,
                    ],
                    strength: [(t * 0.29).fract() - 0.5, (t * 0.53).fract() - 0.5, 0.1],
                }
            })
            .collect()
    }

    fn smesh(ranks: usize) -> SpatialMesh {
        SpatialMesh::new([-3.0, -3.0, -3.0], [3.0, 3.0, 3.0], dims_create(ranks))
    }

    #[test]
    fn huge_cutoff_matches_exact_solver() {
        // With a cutoff covering the whole domain the approximation is
        // exact: same pairs, same kernel.
        let n = 48;
        let eps = 0.1;
        for p in [1usize, 2, 4] {
            World::builder(p).run(move |comm| {
                let all = global_points(n);
                let chunk = n / comm.size();
                let lo = comm.rank() * chunk;
                let hi = if comm.rank() + 1 == comm.size() { n } else { lo + chunk };
                let mine = &all[lo..hi];
                let exact = ExactBrSolver.velocities(&comm, mine, eps);
                let solver = CutoffBrSolver::new(smesh(p), 20.0, Backend::Grid);
                let cut = solver.velocities(&comm, mine, eps);
                for (e, c) in exact.iter().zip(&cut) {
                    for k in 0..3 {
                        assert!((e[k] - c[k]).abs() < 1e-11, "p={p}: {e:?} vs {c:?}");
                    }
                }
            });
        }
    }

    #[test]
    fn cutoff_error_decreases_with_radius() {
        World::builder(2).run(|comm| {
            let all = global_points(60);
            let chunk = 30;
            let lo = comm.rank() * chunk;
            let mine = &all[lo..lo + chunk];
            let eps = 0.1;
            let exact = ExactBrSolver.velocities(&comm, mine, eps);
            let err = |cutoff: f64| {
                let s = CutoffBrSolver::new(smesh(2), cutoff, Backend::Grid);
                let got = s.velocities(&comm, mine, eps);
                got.iter()
                    .zip(&exact)
                    .map(|(g, e)| {
                        (0..3).map(|k| (g[k] - e[k]).powi(2)).sum::<f64>().sqrt()
                    })
                    .fold(0.0f64, f64::max)
            };
            let e1 = err(1.0);
            let e3 = err(3.0);
            let e8 = err(8.0);
            assert!(e3 < e1, "larger cutoff must reduce error: {e1} vs {e3}");
            assert!(e8 < e3 * 0.5, "{e3} vs {e8}");
        });
    }

    #[test]
    fn backends_agree() {
        World::builder(2).run(|comm| {
            let all = global_points(40);
            let mine = &all[comm.rank() * 20..comm.rank() * 20 + 20];
            let g = CutoffBrSolver::new(smesh(2), 1.5, Backend::Grid).velocities(&comm, mine, 0.1);
            let k =
                CutoffBrSolver::new(smesh(2), 1.5, Backend::KdTree).velocities(&comm, mine, 0.1);
            // Same pair sets (sorted identically), so bitwise-equal sums.
            assert_eq!(g, k);
        });
    }

    #[test]
    fn communication_is_migration_shaped() {
        let (_, trace) = World::builder(4).run_traced(|comm| {
            let all = global_points(80);
            let mine = &all[comm.rank() * 20..comm.rank() * 20 + 20];
            let s = CutoffBrSolver::new(smesh(4), 0.8, Backend::Grid);
            let _ = s.velocities(&comm, mine, 0.1);
        });
        // 3 alltoallv rounds (migrate, halo, return) x 4 ranks.
        assert_eq!(trace.total(OpKind::Alltoallv).calls, 12);
    }

    #[test]
    #[should_panic(expected = "cutoff must be positive")]
    fn zero_cutoff_rejected() {
        let _ = CutoffBrSolver::new(smesh(1), 0.0, Backend::Grid);
    }
}
