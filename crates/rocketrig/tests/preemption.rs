//! Preemption correctness: a job that is checkpointed mid-flight and
//! resumed — even on a *smaller* gang — must land on the same physics
//! as an uninterrupted run, to 1e-8.

use beatnik_comm::telemetry::metrics::MetricsRegistry;
use beatnik_rocketrig::RigRunner;
use beatnik_serve::{
    JobContext, JobOutcome, JobRunner, JobSpec, JobState, Scheduler, SchedulerConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOL: f64 = 1e-8;

fn spec(name: &str, steps: usize, ranks: usize) -> JobSpec {
    JobSpec {
        name: name.into(),
        mesh_n: 16,
        steps,
        ranks,
        min_ranks: 1,
        ..JobSpec::default()
    }
}

fn assert_close(name: &str, got: f64, want: f64) {
    let limit = TOL + TOL * want.abs();
    assert!(
        (got - want).abs() <= limit,
        "{name} diverged after preemption: {got:e} vs {want:e} (|diff| {:e} > {limit:e})",
        (got - want).abs()
    );
}

fn completed(outcome: JobOutcome) -> (f64, f64) {
    match outcome {
        JobOutcome::Completed {
            amplitude,
            enstrophy,
            ..
        } => (amplitude, enstrophy),
        other => panic!("expected completion, got {other:?}"),
    }
}

/// Runner-level: preempt a 4-rank job mid-run (after its first cadence
/// checkpoint lands), resume it on 2 ranks, and compare against an
/// uninterrupted 4-rank run.
#[test]
fn preempted_job_resumed_on_fewer_ranks_matches_uninterrupted_run() {
    let dir = std::env::temp_dir().join("beatnik-preempt-runner");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("job.ckpt.json");

    let mut preempt_spec = spec("victim", 60, 4);
    preempt_spec.checkpoint_every = 2;

    // Epoch 1 on 4 ranks: a watcher flips the preempt flag as soon as
    // the first cadence checkpoint appears on disk, so the yield lands
    // mid-run (step >= 2) with ~58 steps still to go.
    let ctx = JobContext::standalone(preempt_spec.clone(), 4, ckpt.clone());
    let flag = ctx.preempt.clone();
    let watcher = {
        let ckpt = ckpt.clone();
        std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(60);
            while !ckpt.exists() {
                assert!(Instant::now() < deadline, "no cadence checkpoint appeared");
                std::thread::sleep(Duration::from_millis(1));
            }
            flag.store(true, std::sync::atomic::Ordering::Relaxed);
        })
    };
    let outcome = RigRunner::new().run(&ctx).expect("epoch 1 failed");
    watcher.join().unwrap();
    let at_step = match outcome {
        JobOutcome::Preempted { at_step } => at_step,
        other => panic!("job was not preempted (finished too fast?): {other:?}"),
    };
    assert!(
        (1..60).contains(&at_step),
        "yield should land mid-run, got step {at_step}"
    );
    assert!(ckpt.exists(), "yield must leave a checkpoint behind");

    // Epoch 2: resume the same job on HALF the gang.
    let mut ctx = JobContext::standalone(preempt_spec, 2, ckpt);
    ctx.resume = true;
    let (amp, ens) = completed(RigRunner::new().run(&ctx).expect("resume failed"));

    // Reference: same spec straight through on 4 ranks.
    let ref_ctx = JobContext::standalone(spec("ref", 60, 4), 4, dir.join("ref.ckpt.json"));
    let (ref_amp, ref_ens) = completed(RigRunner::new().run(&ref_ctx).expect("reference failed"));

    assert_close("amplitude", amp, ref_amp);
    assert_close("enstrophy", ens, ref_ens);
}

/// Scheduler-level: a priority-9 gang the width of the pool preempts a
/// running priority-0 job; the victim resumes and still matches the
/// uninterrupted reference.
#[test]
fn scheduler_preempts_and_resumed_victim_matches_reference() {
    let dir = std::env::temp_dir().join("beatnik-preempt-sched");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = SchedulerConfig {
        pool_ranks: 4,
        ckpt_dir: dir.clone(),
        ..SchedulerConfig::default()
    };
    let scheduler = Scheduler::new(
        cfg,
        Arc::new(MetricsRegistry::new()),
        Arc::new(RigRunner::new()),
    );

    let mut victim_spec = spec("victim", 40, 4);
    victim_spec.priority = 0;
    victim_spec.min_ranks = 2;
    let victim = scheduler.submit(victim_spec.clone()).expect("submit victim");

    // Wait until the victim holds the pool.
    let deadline = Instant::now() + Duration::from_secs(60);
    while scheduler.job(victim).unwrap().state != JobState::Running {
        assert!(Instant::now() < deadline, "victim never started");
        std::thread::sleep(Duration::from_millis(2));
    }

    let mut hp = spec("preemptor", 4, 4);
    hp.priority = 9;
    let preemptor = scheduler.submit(hp).expect("submit preemptor");

    assert!(
        scheduler.wait_idle(Duration::from_secs(120)),
        "jobs did not drain"
    );
    let p = scheduler.job(preemptor).unwrap();
    assert_eq!(p.state, JobState::Completed, "preemptor: {:?}", p.error);
    let v = scheduler.job(victim).unwrap();
    assert_eq!(v.state, JobState::Completed, "victim: {:?}", v.error);
    assert!(v.preemptions >= 1, "victim was never preempted");
    assert!(
        v.ranks_history.len() >= 2,
        "victim should have been granted ranks more than once: {:?}",
        v.ranks_history
    );

    let result = v.result.expect("victim has no result");
    let ref_ctx = JobContext::standalone(victim_spec, 4, dir.join("ref.ckpt.json"));
    let (ref_amp, ref_ens) = completed(RigRunner::new().run(&ref_ctx).expect("reference failed"));
    assert_close("amplitude", result.amplitude, ref_amp);
    assert_close("enstrophy", result.enstrophy, ref_ens);
}
