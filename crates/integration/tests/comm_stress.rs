//! Communication stress tests: randomized message storms, nested
//! communicator splits, and polling receives under load — the misuse-
//! adjacent patterns a message-passing runtime must survive.

use beatnik_comm::{World, ANY_SOURCE, ANY_TAG};

#[test]
fn many_tags_many_sources_storm() {
    // Every rank sends 50 messages with pseudo-random tags to every other
    // rank; receivers drain with wildcards and verify totals.
    let p = 4;
    let per_pair = 50u64;
    World::builder(p).run(move |comm| {
        let me = comm.rank() as u64;
        for dst in 0..p {
            if dst == comm.rank() {
                continue;
            }
            for i in 0..per_pair {
                let tag = (me * 1009 + i * 31) % 97;
                comm.send(dst, tag, vec![me * 1_000_000 + i]);
            }
        }
        let expect = per_pair * (p as u64 - 1);
        let mut seen = 0u64;
        let mut sum = 0u64;
        while seen < expect {
            let (v, src, _tag) = comm.recv_any::<u64>(ANY_SOURCE, ANY_TAG);
            assert_ne!(src, comm.rank());
            sum += v[0] % 1_000_000;
            seen += 1;
        }
        // Each sender contributed 0..50 payload indices.
        let per_sender: u64 = (0..per_pair).sum();
        assert_eq!(sum, per_sender * (p as u64 - 1));
    });
}

#[test]
fn nested_splits_three_deep() {
    World::builder(8).run(|comm| {
        // 8 -> two groups of 4 -> two groups of 2 -> singletons.
        let g1 = comm.split(Some((comm.rank() / 4) as u64), comm.rank() as i64).unwrap();
        assert_eq!(g1.size(), 4);
        let g2 = g1.split(Some((g1.rank() / 2) as u64), g1.rank() as i64).unwrap();
        assert_eq!(g2.size(), 2);
        let g3 = g2.split(Some(g2.rank() as u64), 0).unwrap();
        assert_eq!(g3.size(), 1);
        // Each layer still functions collectively.
        let s1 = g1.allreduce_sum(comm.rank() as f64);
        let base = (comm.rank() / 4) * 4;
        let expect: usize = (base..base + 4).sum();
        assert_eq!(s1 as usize, expect);
        let s2 = g2.allreduce_sum(1.0);
        assert_eq!(s2, 2.0);
    });
}

#[test]
fn try_recv_polling_loop() {
    World::builder(3).run(|comm| {
        if comm.rank() == 0 {
            // Poll until both workers report, doing "useful work" between
            // polls.
            let mut got = 0;
            let mut spins = 0u64;
            while got < 2 {
                if let Some(v) = comm.try_recv::<u64>(ANY_SOURCE, 42) {
                    assert_eq!(v[0], 7);
                    got += 1;
                }
                spins += 1;
                if spins > 50_000_000 {
                    panic!("polling loop never completed");
                }
            }
            // Nothing left afterwards.
            assert!(comm.try_recv::<u64>(ANY_SOURCE, ANY_TAG).is_none());
        } else {
            comm.send(0, 42, vec![7u64]);
        }
    });
}

#[test]
fn interleaved_collectives_and_p2p() {
    // Collectives on the shadow channel must never capture user p2p
    // traffic even when tags collide with internal round numbers.
    World::builder(4).run(|comm| {
        for round in 0..10u64 {
            if comm.rank() == 0 {
                comm.send(1, round, vec![round]);
            }
            let s = comm.allreduce_sum(1.0);
            assert_eq!(s, 4.0);
            comm.barrier();
            if comm.rank() == 1 {
                assert_eq!(comm.recv_one::<u64>(0, round), round);
            }
            let g = comm.allgather(&[comm.rank() as u64]);
            assert_eq!(g.len(), 4);
        }
    });
}

#[test]
fn large_message_volume() {
    // 8 MiB buffers through the ring: exercises buffered transfer of big
    // payloads (moved, not copied).
    World::builder(2).run(|comm| {
        let big: Vec<f64> = (0..1_048_576).map(|i| i as f64).collect();
        if comm.rank() == 0 {
            comm.send(1, 0, big.clone());
            let back: Vec<f64> = comm.recv(1, 1);
            assert_eq!(back.len(), 1_048_576);
            assert_eq!(back[12345], big[12345] * 2.0);
        } else {
            let mut data: Vec<f64> = comm.recv(0, 0);
            for v in &mut data {
                *v *= 2.0;
            }
            comm.send(0, 1, data);
        }
    });
}

#[test]
fn reduction_tree_shapes_agree_with_serial_fold() {
    // Non-power-of-two sizes exercise the reduce+broadcast fallback; all
    // must agree with a serial fold to FP-reassociation tolerance.
    for p in [3usize, 5, 6, 7, 9, 12] {
        let out = World::builder(p).run(move |comm| {
            let v = 1.0 / (comm.rank() + 1) as f64;
            comm.allreduce_sum(v)
        });
        let expect: f64 = (1..=p).map(|r| 1.0 / r as f64).sum();
        for r in out {
            assert!((r - expect).abs() < 1e-12, "p={p}: {r} vs {expect}");
        }
    }
}
