//! Particle migration between the surface and spatial decompositions —
//! the `HaloComm` analogue (paper §3.2, derived from CabanaPD).
//!
//! The cutoff solver's communication cycle per derivative evaluation:
//!
//! 1. [`migrate_to_spatial`] — move each surface point to the rank owning
//!    its x/y spatial region (irregular `alltoallv`, volume driven by how
//!    far the interface has deformed);
//! 2. [`halo_exchange_points`] — send copies of owned points to every
//!    rank whose region lies within the cutoff distance (irregular,
//!    duplicating points near region boundaries);
//! 3. compute forces locally (see `beatnik-spatial` / `beatnik-core`);
//! 4. [`migrate_results_home`] — return one result vector per point to
//!    its home (surface-decomposition) rank and slot.
//!
//! Every point carries its home rank and home index so step 4 needs no
//! lookup tables.

use crate::decomposition::PointDecomposition;
use beatnik_comm::{AllToAllAlgo, Communicator};

/// A surface-mesh point traveling through the spatial decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfacePoint {
    /// Physical position (x, y, z).
    pub pos: [f64; 3],
    /// Per-point payload carried through migration (the cutoff solver
    /// sends the desingularized sheet-strength vector `ω·ΔA`).
    pub payload: [f64; 3],
    /// Rank that owns this point in the surface decomposition.
    pub home_rank: u32,
    /// Index within the home rank's local point ordering.
    pub home_idx: u32,
}

/// A computed value traveling back to a point's home rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointResult {
    /// Index within the home rank's local point ordering.
    pub home_idx: u32,
    /// Computed vector (the Birkhoff–Rott velocity).
    pub value: [f64; 3],
}

/// Step 1: move points to their spatial owners. Returns the points this
/// rank now owns in the spatial decomposition (in arrival order).
pub fn migrate_to_spatial<D: PointDecomposition + ?Sized>(
    comm: &Communicator,
    smesh: &D,
    points: Vec<SurfacePoint>,
) -> Vec<SurfacePoint> {
    assert_eq!(
        smesh.ranks(),
        comm.size(),
        "spatial mesh decomposition must match communicator size"
    );
    let _phase = comm.telemetry().phase("migrate-to-spatial");
    let p = comm.size();
    let mut blocks: Vec<Vec<SurfacePoint>> = (0..p).map(|_| Vec::new()).collect();
    for pt in points {
        blocks[smesh.rank_of_point(pt.pos)].push(pt);
    }
    let counts: Vec<usize> = blocks.iter().map(Vec::len).collect();
    comm.alltoallv_with(&blocks.concat(), &counts, AllToAllAlgo::Adaptive)
        .0
}

/// Step 2: halo points within `cutoff` of neighboring regions. Returns
/// the *ghost* points received from other ranks (owned points are not
/// duplicated into the result).
pub fn halo_exchange_points<D: PointDecomposition + ?Sized>(
    comm: &Communicator,
    smesh: &D,
    owned: &[SurfacePoint],
    cutoff: f64,
) -> Vec<SurfacePoint> {
    let _phase = comm.telemetry().phase("halo-points");
    let p = comm.size();
    let me = comm.rank();
    let mut blocks: Vec<Vec<SurfacePoint>> = (0..p).map(|_| Vec::new()).collect();
    for pt in owned {
        for dest in smesh.ranks_within(pt.pos, cutoff) {
            if dest != me {
                blocks[dest].push(*pt);
            }
        }
    }
    let counts: Vec<usize> = blocks.iter().map(Vec::len).collect();
    comm.alltoallv_with(&blocks.concat(), &counts, AllToAllAlgo::Adaptive)
        .0
}

/// Step 4: return per-point results to home ranks. `results` pairs each
/// computed value with its destination (the point's `home_rank`);
/// `n_local` is the number of points this rank owns in the *surface*
/// decomposition. Returns the dense result array indexed by home index.
///
/// # Panics
/// Panics if any incoming result's `home_idx` is out of range or
/// duplicated — either indicates a corrupted migration cycle.
pub fn migrate_results_home(
    comm: &Communicator,
    results: Vec<(usize, PointResult)>,
    n_local: usize,
) -> Vec<[f64; 3]> {
    let _phase = comm.telemetry().phase("migrate-home");
    let p = comm.size();
    let mut blocks: Vec<Vec<PointResult>> = (0..p).map(|_| Vec::new()).collect();
    for (dest, r) in results {
        blocks[dest].push(r);
    }
    let counts: Vec<usize> = blocks.iter().map(Vec::len).collect();
    let (incoming, _) = comm.alltoallv_with(&blocks.concat(), &counts, AllToAllAlgo::Adaptive);
    let mut out = vec![[f64::NAN; 3]; n_local];
    let mut seen = vec![false; n_local];
    for r in incoming {
        let i = r.home_idx as usize;
        assert!(i < n_local, "migrate_results_home: index {i} out of range");
        assert!(!seen[i], "migrate_results_home: duplicate result for {i}");
        seen[i] = true;
        out[i] = r.value;
    }
    assert!(
        seen.iter().all(|&s| s),
        "migrate_results_home: missing results for some points"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial_mesh::SpatialMesh;
    use beatnik_comm::{OpKind, World};

    fn smesh(ranks: usize) -> SpatialMesh {
        let dims = beatnik_comm::dims_create(ranks);
        SpatialMesh::new([-3.0, -3.0, -3.0], [3.0, 3.0, 3.0], dims)
    }

    /// Deterministic cloud of points spread over the domain, tagged with
    /// their producing rank.
    fn cloud(rank: usize, n: usize) -> Vec<SurfacePoint> {
        (0..n)
            .map(|i| {
                let t = (rank * n + i) as f64;
                SurfacePoint {
                    pos: [
                        -2.9 + (t * 0.761).fract() * 5.8,
                        -2.9 + (t * 0.377).fract() * 5.8,
                        (t * 0.211).fract() - 0.5,
                    ],
                    payload: [t, -t, 0.0],
                    home_rank: rank as u32,
                    home_idx: i as u32,
                }
            })
            .collect()
    }

    #[test]
    fn migration_conserves_points_and_routes_correctly() {
        for p in [1usize, 2, 4] {
            World::builder(p).run(move |comm| {
                let sm = smesh(p);
                let mine = cloud(comm.rank(), 40);
                let owned = migrate_to_spatial(&comm, &sm, mine);
                // Every point I received belongs in my region.
                for pt in &owned {
                    assert_eq!(sm.rank_of_point(pt.pos), comm.rank());
                }
                // Point count is conserved globally.
                let total = comm.allreduce_sum(owned.len() as f64) as usize;
                assert_eq!(total, 40 * p);
            });
        }
    }

    #[test]
    fn halo_contains_every_foreign_point_within_cutoff() {
        let p = 4;
        let cutoff = 0.8;
        World::builder(p).run(move |comm| {
            let sm = smesh(p);
            let owned = migrate_to_spatial(&comm, &sm, cloud(comm.rank(), 30));
            let ghosts = halo_exchange_points(&comm, &sm, &owned, cutoff);
            // Gather all points everywhere for a brute-force check.
            let all: Vec<SurfacePoint> = comm.allgather(&owned);
            for a in &all {
                if sm.rank_of_point(a.pos) == comm.rank() {
                    continue; // my own point, not a ghost
                }
                // If a foreign point is within `cutoff` (3D) of any of my
                // owned points, the x/y-box halo must have delivered it.
                let needed = owned.iter().any(|m| {
                    let d2: f64 = m
                        .pos
                        .iter()
                        .zip(&a.pos)
                        .map(|(u, v)| (u - v) * (u - v))
                        .sum();
                    d2.sqrt() <= cutoff
                });
                if needed {
                    assert!(
                        ghosts
                            .iter()
                            .any(|g| g.home_rank == a.home_rank && g.home_idx == a.home_idx),
                        "missing ghost for {a:?}"
                    );
                }
            }
        });
    }

    #[test]
    fn results_return_to_correct_home_slots() {
        let p = 4;
        World::builder(p).run(move |comm| {
            let sm = smesh(p);
            let n = 25;
            let mine = cloud(comm.rank(), n);
            let owned = migrate_to_spatial(&comm, &sm, mine);
            // "Compute" a recognizable value per point.
            let results: Vec<(usize, PointResult)> = owned
                .iter()
                .map(|pt| {
                    let v = (pt.home_rank * 1000 + pt.home_idx) as f64;
                    (
                        pt.home_rank as usize,
                        PointResult {
                            home_idx: pt.home_idx,
                            value: [v, -v, 0.5 * v],
                        },
                    )
                })
                .collect();
            let back = migrate_results_home(&comm, results, n);
            assert_eq!(back.len(), n);
            for (i, v) in back.iter().enumerate() {
                let want = (comm.rank() * 1000 + i) as f64;
                assert_eq!(v[0], want);
                assert_eq!(v[1], -want);
            }
        });
    }

    #[test]
    fn migration_uses_irregular_alltoallv() {
        let (_, trace) = World::builder(4).run_traced(|comm| {
            let sm = smesh(4);
            let owned = migrate_to_spatial(&comm, &sm, cloud(comm.rank(), 10));
            let _ = halo_exchange_points(&comm, &sm, &owned, 0.5);
        });
        let s = trace.total(OpKind::Alltoallv);
        assert_eq!(s.calls, 8); // 2 collective calls x 4 ranks
        assert!(s.bytes > 0);
    }

    #[test]
    #[should_panic(expected = "missing results")]
    fn lost_results_are_detected() {
        World::builder(1).run(|comm| {
            // Claim 3 local points but return results for only 1.
            let results = vec![(
                0usize,
                PointResult {
                    home_idx: 0,
                    value: [0.0; 3],
                },
            )];
            let _ = migrate_results_home(&comm, results, 3);
        });
    }
}
