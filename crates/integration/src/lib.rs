//! Integration test host crate; see `tests/` for cross-crate tests.
