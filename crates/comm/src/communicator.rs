//! The rank-local communicator handle: point-to-point messaging, probes,
//! splitting, and entry points to the collective algorithms.

use crate::collectives;
use crate::error::CommError;
use crate::fault::{CollectiveFailed, FaultInjector, Injection, RankKilled};
use crate::mailbox::{Mailbox, PostedId};
use crate::message::{CommData, Envelope};
use crate::pool::BufferPool;
use crate::reduce_op::ReduceOp;
use crate::registry::{CommId, Registry};
use crate::request::{RecvRequest, SendRequest};
use crate::trace::{OpKind, RankTrace};
use crate::transport::Route;
use beatnik_telemetry::{CommOp, SpanKind, SpanRecorder};
use std::panic::panic_any;
use std::sync::Arc;
use std::time::Duration;

/// Message tag type (MPI uses `int`; we use the full `u64` space).
pub type Tag = u64;

/// Gatherv payload: the flat concatenation plus per-source element
/// counts on the root, `None` elsewhere.
pub type GathervResult<T> = Option<(Vec<T>, Vec<usize>)>;

/// Wildcard source selector for [`Communicator::recv_any`].
pub const ANY_SOURCE: usize = usize::MAX;
/// Wildcard tag selector for [`Communicator::recv_any`].
pub const ANY_TAG: Tag = u64::MAX;

/// Collective traffic travels on a shadow channel so user receives with
/// wildcard selectors can never steal a collective's internal messages.
const COLLECTIVE_CHANNEL: CommId = 1 << 63;

/// A rank's handle to one communication group.
///
/// Cloning is intentionally not provided: like an `MPI_Comm`, a
/// `Communicator` is a per-rank resource that methods take `&self` on;
/// derived groups are created with [`Communicator::split`].
pub struct Communicator {
    registry: Arc<Registry>,
    comm_id: CommId,
    rank: usize,
    size: usize,
    /// Map from comm-local rank to world rank (identity for the world
    /// communicator), used to attribute traffic in the communication
    /// matrix.
    world_of: Arc<Vec<usize>>,
    trace: Arc<RankTrace>,
    /// Per-rank span recorder (disabled unless the world was launched
    /// with profiling); shared with derived communicators, which run on
    /// the same rank thread — the recorder's single-writer invariant.
    telemetry: Arc<SpanRecorder>,
    /// Per-rank pool of reusable send buffers backing
    /// [`Communicator::isend`]; shared with communicators derived via
    /// [`Communicator::split`] (same thread, same pool).
    pool: Arc<BufferPool>,
    /// Receives panic after this long without a matching message. This
    /// converts distributed deadlocks (a bug class this runtime exists to
    /// help find) into loud failures rather than silent hangs.
    recv_timeout: Duration,
    /// Eager/rendezvous crossover for slice sends, in payload bytes:
    /// at or below, the payload is copied into a pooled envelope (two
    /// copies total); above, it is materialised once into an owned
    /// buffer that travels by pointer (one copy total). See
    /// [`crate::transport`].
    eager_limit: usize,
    /// Fault injector for this rank, present only in worlds launched via
    /// [`crate::WorldBuilder::run_ft`] with a plan targeting this rank. Shared
    /// with derived communicators so the op count is per-rank, not
    /// per-communicator.
    fault: Option<Arc<FaultInjector>>,
    /// Registry revoke epoch at construction. Any revocation issued after
    /// this communicator was built counts as revoking it too, so ranks
    /// blocked on derived sub-communicators (whose groups may not contain
    /// the failed rank) unblock as soon as any survivor revokes, instead
    /// of waiting out their full receive deadline.
    born_epoch: u64,
}

impl Communicator {
    /// Construct a communicator handle. Crate-internal: users obtain
    /// communicators from [`crate::WorldBuilder::run`] or
    /// [`Communicator::split`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        registry: Arc<Registry>,
        comm_id: CommId,
        rank: usize,
        size: usize,
        world_of: Arc<Vec<usize>>,
        trace: Arc<RankTrace>,
        telemetry: Arc<SpanRecorder>,
        pool: Arc<BufferPool>,
        recv_timeout: Duration,
        eager_limit: usize,
    ) -> Self {
        let born_epoch = registry.revoke_epoch();
        Communicator {
            registry,
            comm_id,
            rank,
            size,
            world_of,
            trace,
            telemetry,
            pool,
            recv_timeout,
            eager_limit,
            fault: None,
            born_epoch,
        }
    }

    /// Attach (or clear) this rank's fault injector. Crate-internal:
    /// called once per rank by [`crate::WorldBuilder::run_ft`] and propagated to
    /// derived communicators by [`Communicator::split`].
    pub(crate) fn with_fault(mut self, fault: Option<Arc<FaultInjector>>) -> Self {
        self.fault = fault;
        self
    }

    /// A handle to the same communicator (same group, same mailboxes)
    /// with a different blocking-receive deadline. Lets fault-tolerant
    /// phases scope a short detection deadline without reconfiguring the
    /// whole world.
    pub fn with_recv_timeout(&self, recv_timeout: Duration) -> Communicator {
        Communicator {
            registry: Arc::clone(&self.registry),
            comm_id: self.comm_id,
            rank: self.rank,
            size: self.size,
            world_of: Arc::clone(&self.world_of),
            trace: Arc::clone(&self.trace),
            telemetry: Arc::clone(&self.telemetry),
            pool: Arc::clone(&self.pool),
            recv_timeout,
            eager_limit: self.eager_limit,
            fault: self.fault.clone(),
            born_epoch: self.born_epoch,
        }
    }

    /// The world rank of a comm-local rank.
    pub fn world_rank_of(&self, local: usize) -> usize {
        self.world_of[local]
    }

    /// This rank's index within the communicator, in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The per-world-rank instrumentation shared by this communicator and
    /// all communicators derived from it.
    pub fn trace(&self) -> &Arc<RankTrace> {
        &self.trace
    }

    /// This rank's span recorder. Disabled (a no-op recorder) unless
    /// the world was launched with [`crate::WorldBuilder::run_profiled`];
    /// solver layers use it to record algorithmic phase spans, e.g.
    /// `let _g = comm.telemetry().phase("halo");`.
    pub fn telemetry(&self) -> &Arc<SpanRecorder> {
        &self.telemetry
    }

    /// Identifier of this communicator within its world (diagnostics).
    pub fn id(&self) -> CommId {
        self.comm_id
    }

    /// The send-buffer pool backing [`Communicator::isend`] on this rank.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The eager/rendezvous crossover for slice sends, in payload bytes
    /// (see [`crate::transport`]).
    pub fn eager_limit(&self) -> usize {
        self.eager_limit
    }

    /// A live snapshot of the world's metrics plane: every registered
    /// counter/gauge/histogram plus the synthesized per-phase comm
    /// matrix and phase-entry families. `None` when the communicator
    /// was built outside a `World` runner. Any rank may call this
    /// mid-run (rank 0 typically flushes it on a step cadence).
    pub fn metrics_snapshot(&self) -> Option<beatnik_telemetry::metrics::MetricsSnapshot> {
        self.registry
            .metrics_plane()
            .map(|p| p.snapshot(&self.registry))
    }

    /// This rank's own user-channel mailbox (where peers' messages land).
    pub(crate) fn user_mailbox(&self) -> Arc<Mailbox> {
        self.mailbox_for(0, self.rank)
    }

    /// Whether a peer rank has failed and the world is tearing down.
    pub(crate) fn world_aborted(&self) -> bool {
        self.registry.aborted()
    }

    /// The configured deadlock-detection window for blocking receives.
    pub(crate) fn recv_timeout(&self) -> Duration {
        self.recv_timeout
    }

    /// Blocking claim of a posted receive slot for
    /// [`crate::request::RecvRequest::wait`]. The blocked interval
    /// records as a `wait` span.
    pub(crate) fn blocking_user_claim(
        &self,
        posted: PostedId,
        src: usize,
        tag: Tag,
        ctx: &'static str,
    ) -> Envelope {
        let mut g = self.telemetry.op(CommOp::Wait);
        let env = self.blocking_claim(posted, src, tag, ctx);
        g.peer(env.src);
        g.tag(env.tag);
        g.bytes(env.bytes as u64);
        env
    }

    /// Claim from a posted slot, waking early on world abort and
    /// panicking on the receive timeout — the posted-slot analogue of
    /// [`Communicator::blocking_recv`]. Peer failure and revocation
    /// escalate through [`Communicator::escalate`].
    fn blocking_claim(
        &self,
        posted: PostedId,
        src: usize,
        tag: Tag,
        ctx: &'static str,
    ) -> Envelope {
        match self.ft_claim(posted, src, tag, ctx) {
            Ok(env) => env,
            Err(e) => self.escalate(ctx, e),
        }
    }

    /// Fallible claim from a posted slot: drains the slot first, then
    /// surfaces peer failure, revocation, or the deadline as a
    /// `CommError` instead of hanging.
    pub(crate) fn ft_claim(
        &self,
        posted: PostedId,
        src: usize,
        tag: Tag,
        ctx: &'static str,
    ) -> Result<Envelope, CommError> {
        let mb = self.user_mailbox();
        let deadline = std::time::Instant::now() + self.recv_timeout;
        let slice = Duration::from_millis(100).min(self.recv_timeout);
        loop {
            if let Some(env) = mb.wait_claim(posted, slice) {
                return Ok(env);
            }
            if self.registry.aborted() {
                panic!(
                    "rank {} aborting during {ctx}: a peer rank failed",
                    self.rank
                );
            }
            if self.is_revoked() {
                return Err(CommError::Revoked { rank: self.rank });
            }
            if let Some(failed) = self.relevant_failure(src) {
                return Err(CommError::RankFailed {
                    rank: self.rank,
                    failed,
                });
            }
            if std::time::Instant::now() >= deadline {
                return Err(CommError::Timeout {
                    rank: self.rank,
                    src,
                    tag,
                });
            }
        }
    }

    /// Convert a `CommError` from a blocking (non-`try`) op into the
    /// panic the panicking API promises: timeouts keep the historical
    /// "deadlock" message; peer failure and revocation carry a
    /// [`CollectiveFailed`] payload so recovery drivers can catch and
    /// downcast them; local argument errors keep the plain "op: error"
    /// string panic they have always had.
    pub(crate) fn escalate(&self, op: &'static str, e: CommError) -> ! {
        match e {
            CommError::Timeout { .. } => {
                panic!("{op} deadlock on rank {}: {e}", self.rank)
            }
            error @ (CommError::RankFailed { .. } | CommError::Revoked { .. }) => {
                panic_any(CollectiveFailed { op, error })
            }
            e => panic!("{op}: {e}"),
        }
    }

    /// The world rank of a failed peer this receive cares about, if any:
    /// a specific `src` watches only that rank, wildcard receives (and
    /// collectives, via [`Communicator::check_group_alive`]) watch the
    /// whole group.
    fn relevant_failure(&self, src: usize) -> Option<usize> {
        if !self.registry.any_failed() {
            return None;
        }
        if src == ANY_SOURCE {
            self.world_of
                .iter()
                .copied()
                .find(|&w| self.registry.is_failed(w))
        } else {
            let w = self.world_of[src];
            self.registry.is_failed(w).then_some(w)
        }
    }

    /// Collective entry/progress check: `Err(Revoked)` if this
    /// communicator was revoked, `Err(RankFailed)` naming the
    /// lowest-numbered dead member if any member died. The ULFM-style
    /// recovery ops ([`Communicator::agree`], [`Communicator::shrink`])
    /// deliberately bypass this — they must make progress *despite*
    /// failures.
    pub(crate) fn check_group_alive(&self) -> Result<(), CommError> {
        match self.group_error(ANY_SOURCE) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The error a blocking wait on `src` should fail with right now, if
    /// any: revocation of this communicator, or a relevant peer failure.
    pub(crate) fn group_error(&self, src: usize) -> Option<CommError> {
        if self.is_revoked() {
            return Some(CommError::Revoked { rank: self.rank });
        }
        self.relevant_failure(src).map(|failed| CommError::RankFailed {
            rank: self.rank,
            failed,
        })
    }

    fn check_rank(&self, r: usize) -> Result<(), CommError> {
        if r >= self.size {
            Err(CommError::InvalidRank {
                rank: r,
                size: self.size,
            })
        } else {
            Ok(())
        }
    }

    fn mailbox_for(&self, channel: CommId, rank: usize) -> Arc<Mailbox> {
        self.registry.mailbox(self.comm_id | channel, rank)
    }

    /// Send one envelope toward `dest` through the world's transport
    /// (direct mailbox push when none is installed). This is the single
    /// choke point where comm-local addressing is translated to a world
    /// [`Route`], so every backend sees the same traffic shape.
    fn deliver(&self, channel: CommId, dest: usize, env: Envelope) {
        self.registry.deliver(
            Route {
                comm: self.comm_id | channel,
                dst_local: dest,
                src_world: self.world_of[self.rank],
                dst_world: self.world_of[dest],
            },
            env,
        );
    }

    /// Blocking receive that wakes early when the world aborts (a peer
    /// rank panicked), so failures surface immediately instead of after a
    /// full receive timeout. Peer failure and revocation escalate through
    /// [`Communicator::escalate`].
    fn blocking_recv(&self, channel: CommId, src: usize, tag: Tag, ctx: &'static str) -> Envelope {
        match self.ft_recv(channel, src, tag, ctx) {
            Ok(env) => env,
            Err(e) => self.escalate(ctx, e),
        }
    }

    /// The failure-aware receive core every blocking path funnels
    /// through: drains queued messages first (a message sent before the
    /// peer died must still be delivered — ULFM allows non-uniform
    /// completion), then surfaces revocation, relevant rank death, or the
    /// configured deadline as a `CommError` instead of hanging.
    fn ft_recv(
        &self,
        channel: CommId,
        src: usize,
        tag: Tag,
        ctx: &'static str,
    ) -> Result<Envelope, CommError> {
        let mb = self.mailbox_for(channel, self.rank);
        let deadline = std::time::Instant::now() + self.recv_timeout;
        // Poll in short slices purely to observe the abort flag and the
        // failure ledger; messages and interrupts wake the condvar
        // directly, so latency is unaffected.
        let slice = Duration::from_millis(100).min(self.recv_timeout);
        loop {
            match mb.recv_matching_timeout(self.rank, src, tag, slice) {
                Ok(env) => return Ok(env),
                Err(e) => {
                    if self.registry.aborted() {
                        panic!(
                            "rank {} aborting during {ctx}: a peer rank failed",
                            self.rank
                        );
                    }
                    if self.is_revoked() {
                        return Err(CommError::Revoked { rank: self.rank });
                    }
                    let watched = if channel == COLLECTIVE_CHANNEL {
                        ANY_SOURCE // a collective depends on the whole group
                    } else {
                        src
                    };
                    if let Some(failed) = self.relevant_failure(watched) {
                        return Err(CommError::RankFailed {
                            rank: self.rank,
                            failed,
                        });
                    }
                    if std::time::Instant::now() >= deadline {
                        return Err(e);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point, user channel
    // ------------------------------------------------------------------

    /// Record one message to comm-local `dest` in the communication
    /// matrix, attributed to the innermost open solver phase and the
    /// collective algorithm currently in force (both tracked by the
    /// rank's [`SpanRecorder`] even when span recording is disabled).
    #[inline]
    fn record_peer_traffic(&self, dest: usize, bytes: u64) {
        self.trace.record_peer_ctx(
            self.world_of[dest],
            bytes,
            self.telemetry.current_phase(),
            self.telemetry.current_algo(),
        );
    }

    /// Buffered send of an owned buffer to `dest`. Never blocks.
    ///
    /// The buffer moves to the receiver without copying, mirroring an MPI
    /// eager-protocol send at intra-process speed.
    pub fn send<T: CommData>(&self, dest: usize, tag: Tag, data: Vec<T>) {
        self.check_rank(dest).expect("send: invalid destination");
        let deliver = self.fault_point();
        let t = self.telemetry.begin();
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        self.trace.record_handoff(bytes);
        self.trace.record(OpKind::Send, 1, bytes);
        self.trace.record_message(OpKind::Send, bytes);
        self.record_peer_traffic(dest, bytes);
        if deliver {
            self.deliver(0, dest, Envelope::new(self.rank, tag, data));
        }
        self.telemetry
            .end(t, SpanKind::Op(CommOp::Send), dest as i64, tag, bytes);
    }

    /// Fault-injection hook on every send-side op. Returns `false` when
    /// the message must be dropped; delays sleep in place; kills mark
    /// this world rank failed, stamp a telemetry instant, and panic with
    /// a [`RankKilled`] payload. A no-op (`true`) without a fault plan.
    fn fault_point(&self) -> bool {
        let Some(inj) = &self.fault else { return true };
        match inj.on_op() {
            Injection::Proceed => true,
            Injection::Drop => {
                self.telemetry.instant(
                    SpanKind::Phase(crate::fault::FAULT_DROP_PHASE),
                    self.world_of[self.rank] as i64,
                    inj.op_count(),
                    0,
                );
                false
            }
            Injection::Delay(d) => {
                let t = self.telemetry.begin();
                std::thread::sleep(d);
                self.telemetry.end(
                    t,
                    SpanKind::Phase(crate::fault::FAULT_DELAY_PHASE),
                    self.world_of[self.rank] as i64,
                    inj.op_count(),
                    0,
                );
                true
            }
            Injection::Kill => self.die(inj, None),
        }
    }

    /// Carry out an injected kill: mark this world rank failed (which
    /// interrupts every mailbox so peers detect the death promptly),
    /// stamp the telemetry instant, and panic with a [`RankKilled`]
    /// payload that [`crate::WorldBuilder::run_ft`] recognizes.
    fn die(&self, inj: &FaultInjector, step: Option<u64>) -> ! {
        let world_rank = self.world_of[self.rank];
        self.telemetry.instant(
            SpanKind::Phase(crate::fault::FAULT_KILL_PHASE),
            world_rank as i64,
            inj.op_count(),
            0,
        );
        self.registry.mark_failed(world_rank);
        panic_any(RankKilled {
            world_rank,
            step,
            op: inj.op_count(),
        })
    }

    /// Driver hook: report the start of solver step `step` to the fault
    /// engine, firing any step-triggered kill configured for this rank.
    /// A no-op without a fault plan.
    pub fn fault_step(&self, step: u64) {
        if let Some(inj) = &self.fault {
            if inj.on_step(step) == Injection::Kill {
                self.die(inj, Some(step));
            }
        }
    }

    /// The faults this rank has injected so far (fault-plan worlds only).
    pub fn fault_events(&self) -> Vec<crate::fault::FaultEvent> {
        self.fault.as_ref().map(|i| i.events()).unwrap_or_default()
    }

    /// How long ago the failure of `world_rank` was first detected, if it
    /// has been. The reference point for detection-latency measurements.
    pub fn failure_age(&self, world_rank: usize) -> Option<Duration> {
        self.registry.failed_at(world_rank).map(|t| t.elapsed())
    }

    /// World ranks of this communicator's members that have failed.
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.world_of
            .iter()
            .copied()
            .filter(|&w| self.registry.is_failed(w))
            .collect()
    }

    /// Convenience: send a single value.
    pub fn send_one<T: CommData>(&self, dest: usize, tag: Tag, value: T) {
        self.send(dest, tag, vec![value]);
    }

    /// Blocking receive of a buffer matching exactly `(src, tag)`.
    ///
    /// # Panics
    /// Panics if no matching message arrives within the configured receive
    /// timeout, or if the message's element type differs from `T`.
    pub fn recv<T: CommData>(&self, src: usize, tag: Tag) -> Vec<T> {
        self.check_rank(src).expect("recv: invalid source");
        self.recv_selected(src, tag)
    }

    /// Blocking receive allowing [`ANY_SOURCE`] / [`ANY_TAG`] wildcards.
    /// Returns the payload together with the actual source and tag.
    pub fn recv_any<T: CommData>(&self, src: usize, tag: Tag) -> (Vec<T>, usize, Tag) {
        let mut g = self.telemetry.op(CommOp::Recv);
        let env = self.blocking_recv(0, src, tag, "recv_any");
        self.trace.record(OpKind::Recv, 0, 0);
        g.peer(env.src);
        g.tag(env.tag);
        g.bytes(env.bytes as u64);
        drop(g);
        let (s, t) = (env.src, env.tag);
        (env.into_data(), s, t)
    }

    fn recv_selected<T: CommData>(&self, src: usize, tag: Tag) -> Vec<T> {
        let mut g = self.telemetry.op(CommOp::Recv);
        let env = self.blocking_recv(0, src, tag, "recv");
        self.trace.record(OpKind::Recv, 0, 0);
        g.peer(env.src);
        g.tag(env.tag);
        g.bytes(env.bytes as u64);
        drop(g);
        env.into_data()
    }

    /// Receive exactly one value.
    pub fn recv_one<T: CommData>(&self, src: usize, tag: Tag) -> T {
        let mut v = self.recv::<T>(src, tag);
        assert_eq!(v.len(), 1, "recv_one: expected exactly one element");
        v.pop().unwrap()
    }

    /// Combined send-then-receive (deadlock-free because sends are
    /// buffered); the workhorse of ring and pairwise exchange algorithms.
    pub fn sendrecv<T: CommData>(
        &self,
        dest: usize,
        send_data: Vec<T>,
        src: usize,
        tag: Tag,
    ) -> Vec<T> {
        self.send(dest, tag, send_data);
        self.recv(src, tag)
    }

    /// Non-blocking check whether a matching message is waiting.
    pub fn probe(&self, src: usize, tag: Tag) -> bool {
        self.mailbox_for(0, self.rank).probe(src, tag)
    }

    /// Non-blocking receive: returns the payload if a matching message is
    /// already queued, `None` otherwise (never blocks). Supports the same
    /// wildcards as [`Communicator::recv_any`].
    pub fn try_recv<T: CommData>(&self, src: usize, tag: Tag) -> Option<Vec<T>> {
        let mb = self.mailbox_for(0, self.rank);
        if !mb.probe(src, tag) {
            return None;
        }
        // A matching message exists and nothing else drains this mailbox
        // (one receiver per rank), so this cannot block.
        let t = self.telemetry.begin();
        let env = mb.recv_matching(src, tag);
        self.trace.record(OpKind::Recv, 0, 0);
        self.telemetry.end(
            t,
            SpanKind::Op(CommOp::Recv),
            env.src as i64,
            env.tag,
            env.bytes as u64,
        );
        Some(env.into_data())
    }

    /// Fallible blocking receive bounded by `timeout`: returns
    /// `Err(CommError::Timeout)` instead of panicking when no matching
    /// message arrives in time. Wildcards are allowed.
    pub fn recv_within<T: CommData>(
        &self,
        src: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Vec<T>, CommError> {
        Ok(self.bounded_recv(src, tag, timeout)?.into_data())
    }

    /// Like [`Communicator::recv_within`], also reporting the actual
    /// source and tag (the fallible analogue of [`Communicator::recv_any`]).
    pub fn recv_any_within<T: CommData>(
        &self,
        src: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<(Vec<T>, usize, Tag), CommError> {
        let env = self.bounded_recv(src, tag, timeout)?;
        let (s, t) = (env.src, env.tag);
        Ok((env.into_data(), s, t))
    }

    fn bounded_recv(&self, src: usize, tag: Tag, timeout: Duration) -> Result<Envelope, CommError> {
        if src != ANY_SOURCE {
            self.check_rank(src)?;
        }
        let mb = self.mailbox_for(0, self.rank);
        let t = self.telemetry.begin();
        let deadline = std::time::Instant::now() + timeout;
        // Short slices so an abort by a peer rank still surfaces promptly.
        let slice = Duration::from_millis(100).min(timeout);
        loop {
            match mb.recv_matching_timeout(self.rank, src, tag, slice) {
                Ok(env) => {
                    self.trace.record(OpKind::Recv, 0, 0);
                    self.telemetry.end(
                        t,
                        SpanKind::Op(CommOp::Recv),
                        env.src as i64,
                        env.tag,
                        env.bytes as u64,
                    );
                    return Ok(env);
                }
                Err(e) => {
                    if self.registry.aborted() {
                        panic!(
                            "rank {} aborting during recv_within: a peer rank failed",
                            self.rank
                        );
                    }
                    if std::time::Instant::now() >= deadline {
                        // The timed-out wait still burned real blocked
                        // time; keep it on the timeline.
                        let peer = if src == ANY_SOURCE { -1 } else { src as i64 };
                        self.telemetry
                            .end(t, SpanKind::Op(CommOp::Recv), peer, tag, 0);
                        return Err(e);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Nonblocking point-to-point (request-based)
    // ------------------------------------------------------------------

    /// Nonblocking send of a slice to `dest`.
    ///
    /// Below the [eager limit](Communicator::eager_limit) the payload is
    /// copied into a reusable byte envelope from this rank's
    /// [`BufferPool`] (copied out again at the receiver: two copies,
    /// allocation-free after warmup). Above it the send takes the
    /// rendezvous path: the payload is materialised once into an owned
    /// buffer that travels by pointer and — when the receiver posted an
    /// [`Communicator::irecv`] — deposits directly into that slot, for
    /// one copy total. Either way the send is buffered and completes
    /// immediately; the returned [`SendRequest`] completes via
    /// [`SendRequest::wait`]/[`SendRequest::test`] or on drop.
    pub fn isend<T: CommData + Copy>(&self, dest: usize, tag: Tag, data: &[T]) -> SendRequest<'_> {
        self.check_rank(dest).expect("isend: invalid destination");
        let deliver = self.fault_point();
        let t = self.telemetry.begin();
        let bytes = std::mem::size_of_val(data);
        let env = if bytes > self.eager_limit {
            // Rendezvous: one copy here, then the Vec moves by pointer.
            self.trace.record_copied(bytes as u64);
            Envelope::new(self.rank, tag, data.to_vec())
        } else {
            // Eager: copy into a pooled envelope now, out of it at the
            // receiver.
            let (buf, hit) = self.pool.acquire(bytes);
            self.trace.record_pool(hit);
            self.trace.record_copied(2 * bytes as u64);
            Envelope::from_slice(self.rank, tag, data, buf)
        };
        self.trace.record(OpKind::Send, 1, bytes as u64);
        self.trace.record_message(OpKind::Send, bytes as u64);
        self.record_peer_traffic(dest, bytes as u64);
        self.trace.request_posted();
        if deliver {
            self.deliver(0, dest, env);
        }
        self.telemetry
            .end(t, SpanKind::Op(CommOp::Isend), dest as i64, tag, bytes as u64);
        SendRequest::new(self)
    }

    /// Nonblocking **ownership-transfer** send: the caller gives up the
    /// buffer and the allocation moves to the receiver by pointer — zero
    /// payload bytes copied, at any size, on any backend (charged to the
    /// `handoff` counter, never to `copied`). This is the rendezvous
    /// protocol the way the hardware wants it: on the thread backend the
    /// `Vec` itself crosses; on shmem loopback large envelopes ride the
    /// in-process handoff slab (a token frame keeps ring FIFO order)
    /// instead of being serialized; wire backends that must serialize do
    /// so transport-internally, which the protocol accounting never
    /// charges (see DESIGN.md §15).
    ///
    /// Prefer this over [`Communicator::isend`] whenever the payload is
    /// already an owned `Vec` you do not need afterwards — packing loops
    /// that build per-destination buffers get large-message sends for
    /// free.
    pub fn isend_owned<T: CommData>(&self, dest: usize, tag: Tag, data: Vec<T>) -> SendRequest<'_> {
        self.check_rank(dest).expect("isend_owned: invalid destination");
        let deliver = self.fault_point();
        let t = self.telemetry.begin();
        let bytes = std::mem::size_of_val(data.as_slice());
        self.trace.record_handoff(bytes as u64);
        self.trace.record(OpKind::Send, 1, bytes as u64);
        self.trace.record_message(OpKind::Send, bytes as u64);
        self.record_peer_traffic(dest, bytes as u64);
        self.trace.request_posted();
        if deliver {
            self.deliver(0, dest, Envelope::new(self.rank, tag, data));
        }
        self.telemetry
            .end(t, SpanKind::Op(CommOp::Isend), dest as i64, tag, bytes as u64);
        SendRequest::new(self)
    }

    /// Nonblocking **shared-buffer** send: one `Arc<Vec<T>>` fanned out
    /// to many destinations without the sender ever copying payload
    /// bytes. Each destination's envelope holds an `Arc` clone; the last
    /// receiver to claim the buffer takes the allocation itself, earlier
    /// ones clone on receipt (`T: Clone` exists for exactly that
    /// fallback). Send-side copy accounting is zero, like
    /// [`Communicator::isend_owned`].
    pub fn isend_shared<T: CommData + Clone + Sync>(
        &self,
        dest: usize,
        tag: Tag,
        data: &std::sync::Arc<Vec<T>>,
    ) -> SendRequest<'_> {
        self.check_rank(dest).expect("isend_shared: invalid destination");
        let deliver = self.fault_point();
        let t = self.telemetry.begin();
        let bytes = std::mem::size_of_val(data.as_slice());
        self.trace.record_handoff(bytes as u64);
        self.trace.record(OpKind::Send, 1, bytes as u64);
        self.trace.record_message(OpKind::Send, bytes as u64);
        self.record_peer_traffic(dest, bytes as u64);
        self.trace.request_posted();
        if deliver {
            self.deliver(
                0,
                dest,
                Envelope::from_shared(self.rank, tag, std::sync::Arc::clone(data)),
            );
        }
        self.telemetry
            .end(t, SpanKind::Op(CommOp::Isend), dest as i64, tag, bytes as u64);
        SendRequest::new(self)
    }

    /// Whether envelopes to `dest` move by pointer end to end on the
    /// installed transport (ownership handoff), rather than being
    /// serialized through a wire. True for the thread backend and for
    /// shmem when `dest` is hosted in this process; false across real
    /// process or machine boundaries.
    pub fn transport_handoff(&self, dest: usize) -> bool {
        self.check_rank(dest)
            .expect("transport_handoff: invalid destination");
        let dst_world = self.world_of[dest];
        match self.registry.transport() {
            Some(t) => t.pointer_handoff(dst_world),
            // No transport installed: direct mailbox pushes, by pointer.
            None => true,
        }
    }

    /// Post a nonblocking receive for a message matching `(src, tag)`
    /// (wildcards allowed). Complete it with [`RecvRequest::wait`],
    /// poll with [`RecvRequest::test`], or batch with
    /// [`crate::wait_all`]. Posting receives *before* independent
    /// computation is how solvers overlap communication with compute —
    /// and it publishes a destination slot that rendezvous sends
    /// deposit into directly, skipping the shared queue.
    pub fn irecv<T: CommData>(&self, src: usize, tag: Tag) -> RecvRequest<'_, T> {
        if src != ANY_SOURCE {
            self.check_rank(src).expect("irecv: invalid source");
        }
        let posted = self.user_mailbox().post_recv(src, tag);
        self.trace.request_posted();
        let peer = if src == ANY_SOURCE { -1 } else { src as i64 };
        self.telemetry
            .instant(SpanKind::Op(CommOp::Irecv), peer, tag, 0);
        RecvRequest::new(self, src, tag, posted)
    }

    /// Blocking slice send through the pooled path: `isend` + `wait`.
    /// Prefer this over [`Communicator::send`] when the caller keeps
    /// ownership of the buffer.
    pub fn send_slice<T: CommData + Copy>(&self, dest: usize, tag: Tag, data: &[T]) {
        self.isend(dest, tag, data).wait();
    }

    // ------------------------------------------------------------------
    // Point-to-point, collective shadow channel (crate-internal)
    // ------------------------------------------------------------------

    /// Send on the collective channel, attributing traffic to `kind`.
    pub(crate) fn coll_send<T: CommData>(&self, dest: usize, tag: Tag, data: Vec<T>, kind: OpKind) {
        debug_assert!(dest < self.size);
        let deliver = self.fault_point();
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        self.trace.record_handoff(bytes);
        self.trace.add_traffic(kind, 1, bytes);
        self.trace.record_message(kind, bytes);
        self.record_peer_traffic(dest, bytes);
        if deliver {
            self.deliver(COLLECTIVE_CHANNEL, dest, Envelope::new(self.rank, tag, data));
        }
    }

    /// Shared-buffer send on the collective channel: one `Arc<Vec<T>>`
    /// fanned out without sender-side clones (see
    /// [`Communicator::isend_shared`] for the claim semantics).
    pub(crate) fn coll_send_shared<T: CommData + Clone + Sync>(
        &self,
        dest: usize,
        tag: Tag,
        data: &std::sync::Arc<Vec<T>>,
        kind: OpKind,
    ) {
        debug_assert!(dest < self.size);
        let deliver = self.fault_point();
        let bytes = std::mem::size_of_val(data.as_slice()) as u64;
        self.trace.record_handoff(bytes);
        self.trace.add_traffic(kind, 1, bytes);
        self.trace.record_message(kind, bytes);
        self.record_peer_traffic(dest, bytes);
        if deliver {
            self.deliver(
                COLLECTIVE_CHANNEL,
                dest,
                Envelope::from_shared(self.rank, tag, std::sync::Arc::clone(data)),
            );
        }
    }

    /// Send a borrowed slice on the collective channel, attributing
    /// traffic to `kind`. Size-adaptive like [`Communicator::isend`]:
    /// pooled below the eager limit, one owned copy above it. Lets
    /// collective rounds forward partial results without cloning a
    /// `Vec` per round.
    pub(crate) fn coll_send_slice<T: CommData + Copy>(
        &self,
        dest: usize,
        tag: Tag,
        data: &[T],
        kind: OpKind,
    ) {
        debug_assert!(dest < self.size);
        let deliver = self.fault_point();
        let bytes = std::mem::size_of_val(data);
        let env = if bytes > self.eager_limit {
            self.trace.record_copied(bytes as u64);
            Envelope::new(self.rank, tag, data.to_vec())
        } else {
            let (buf, hit) = self.pool.acquire(bytes);
            self.trace.record_pool(hit);
            self.trace.record_copied(2 * bytes as u64);
            Envelope::from_slice(self.rank, tag, data, buf)
        };
        self.trace.add_traffic(kind, 1, bytes as u64);
        self.trace.record_message(kind, bytes as u64);
        self.record_peer_traffic(dest, bytes as u64);
        if deliver {
            self.deliver(COLLECTIVE_CHANNEL, dest, env);
        }
    }

    /// Fallible receive on the collective channel: `Err(RankFailed)` when
    /// any group member dies mid-collective, `Err(Revoked)` after
    /// revocation, `Err(Timeout)` past the deadline — never a hang.
    pub(crate) fn try_coll_recv<T: CommData>(
        &self,
        src: usize,
        tag: Tag,
        ctx: &'static str,
    ) -> Result<Vec<T>, CommError> {
        self.ft_recv(COLLECTIVE_CHANNEL, src, tag, ctx)?.try_into_data()
    }

    /// Record that a collective of `kind` was invoked once on this rank.
    pub(crate) fn coll_begin(&self, kind: OpKind) {
        self.trace.record(kind, 0, 0);
    }

    // ------------------------------------------------------------------
    // Collectives (delegating to `collectives::*`)
    // ------------------------------------------------------------------

    /// Block until every rank of the communicator has entered the barrier.
    pub fn barrier(&self) {
        if let Err(e) = collectives::barrier::barrier(self) {
            self.escalate("barrier", e)
        }
    }

    /// Fallible [`Communicator::barrier`]: `Err(RankFailed)` / `Err(Revoked)`
    /// / `Err(Timeout)` instead of panicking when the group cannot complete.
    pub fn try_barrier(&self) -> Result<(), CommError> {
        collectives::barrier::barrier(self)
    }

    /// Broadcast `root`'s buffer to every rank (binomial tree).
    pub fn broadcast<T: CommData + Clone + Sync>(&self, root: usize, data: Option<Vec<T>>) -> Vec<T> {
        self.try_broadcast(root, data)
            .unwrap_or_else(|e| self.escalate("broadcast", e))
    }

    /// Reduce values to `root` with `op` (binomial tree). Non-roots get `None`.
    pub fn reduce<T: CommData + Clone, O: ReduceOp<T>>(
        &self,
        root: usize,
        value: T,
        op: &O,
    ) -> Option<T> {
        self.try_reduce(root, value, op)
            .unwrap_or_else(|e| self.escalate("reduce", e))
    }

    /// Reduce element-wise over vectors to `root`.
    pub fn reduce_vec<T: CommData + Clone, O: ReduceOp<T>>(
        &self,
        root: usize,
        value: Vec<T>,
        op: &O,
    ) -> Option<Vec<T>> {
        self.try_reduce_vec(root, value, op)
            .unwrap_or_else(|e| self.escalate("reduce_vec", e))
    }

    /// Fallible [`Communicator::reduce_vec`].
    pub fn try_reduce_vec<T: CommData + Clone, O: ReduceOp<T>>(
        &self,
        root: usize,
        value: Vec<T>,
        op: &O,
    ) -> Result<Option<Vec<T>>, CommError> {
        self.check_rank(root)?;
        collectives::reduce::reduce_vec(self, root, value, op)
    }

    /// Allreduce a single value (recursive doubling / reduce+broadcast).
    pub fn allreduce<T: CommData + Clone + Sync, O: ReduceOp<T>>(&self, value: T, op: &O) -> T {
        self.try_allreduce(value, op)
            .unwrap_or_else(|e| self.escalate("allreduce", e))
    }

    /// Fallible [`Communicator::allreduce`].
    pub fn try_allreduce<T: CommData + Clone + Sync, O: ReduceOp<T>>(
        &self,
        value: T,
        op: &O,
    ) -> Result<T, CommError> {
        collectives::reduce::allreduce(self, value, op)
    }

    /// Element-wise allreduce over vectors.
    pub fn allreduce_vec<T: CommData + Clone + Sync, O: ReduceOp<T>>(&self, value: Vec<T>, op: &O) -> Vec<T> {
        self.try_allreduce_vec(value, op)
            .unwrap_or_else(|e| self.escalate("allreduce_vec", e))
    }

    /// Fallible [`Communicator::allreduce_vec`].
    pub fn try_allreduce_vec<T: CommData + Clone + Sync, O: ReduceOp<T>>(
        &self,
        value: Vec<T>,
        op: &O,
    ) -> Result<Vec<T>, CommError> {
        collectives::reduce::allreduce_vec(self, value, op)
    }

    /// Sum an `f64` across all ranks.
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        self.allreduce(value, &crate::reduce_op::SumOp)
    }

    /// Maximum of an `f64` across all ranks.
    pub fn allreduce_max(&self, value: f64) -> f64 {
        self.allreduce(value, &crate::reduce_op::MaxOp)
    }

    /// Minimum of an `f64` across all ranks.
    pub fn allreduce_min(&self, value: f64) -> f64 {
        self.allreduce(value, &crate::reduce_op::MinOp)
    }

    /// Gather every rank's slice to `root`, concatenated in rank order
    /// (non-roots get `None`). Per-rank lengths may differ; use
    /// [`Communicator::gatherv`] to recover the boundaries.
    pub fn gather<T: CommData + Clone>(&self, root: usize, data: &[T]) -> Option<Vec<T>> {
        self.try_gather(root, data)
            .unwrap_or_else(|e| self.escalate("gather", e))
    }

    /// Fallible [`Communicator::gather`]: `Err` on an out-of-range root.
    pub fn try_gather<T: CommData + Clone>(
        &self,
        root: usize,
        data: &[T],
    ) -> Result<Option<Vec<T>>, CommError> {
        Ok(self
            .try_gatherv(root, data)?
            .map(|(flat, _counts)| flat))
    }

    /// Like [`Communicator::gather`], also returning each rank's element
    /// count so the concatenation can be split per source.
    pub fn gatherv<T: CommData + Clone>(
        &self,
        root: usize,
        data: &[T],
    ) -> Option<(Vec<T>, Vec<usize>)> {
        self.try_gatherv(root, data)
            .unwrap_or_else(|e| self.escalate("gatherv", e))
    }

    /// Fallible [`Communicator::gatherv`].
    pub fn try_gatherv<T: CommData + Clone>(
        &self,
        root: usize,
        data: &[T],
    ) -> Result<GathervResult<T>, CommError> {
        self.check_rank(root)?;
        Ok(collectives::gather::gather(self, root, data.to_vec())?.map(|blocks| {
            let counts: Vec<usize> = blocks.iter().map(Vec::len).collect();
            (blocks.into_iter().flatten().collect(), counts)
        }))
    }

    /// Gather every rank's slice to every rank (ring algorithm),
    /// concatenated in rank order. Per-rank lengths may differ; use
    /// [`Communicator::allgatherv`] to recover the boundaries.
    pub fn allgather<T: CommData + Clone>(&self, data: &[T]) -> Vec<T> {
        self.try_allgather(data)
            .unwrap_or_else(|e| self.escalate("allgather", e))
    }

    /// Fallible [`Communicator::allgather`].
    pub fn try_allgather<T: CommData + Clone>(&self, data: &[T]) -> Result<Vec<T>, CommError> {
        Ok(collectives::gather::allgather(self, data.to_vec())?
            .into_iter()
            .flatten()
            .collect())
    }

    /// Like [`Communicator::allgather`], also returning each rank's
    /// element count.
    pub fn allgatherv<T: CommData + Clone>(&self, data: &[T]) -> (Vec<T>, Vec<usize>) {
        self.try_allgatherv(data)
            .unwrap_or_else(|e| self.escalate("allgatherv", e))
    }

    /// Fallible [`Communicator::allgatherv`].
    pub fn try_allgatherv<T: CommData + Clone>(
        &self,
        data: &[T],
    ) -> Result<(Vec<T>, Vec<usize>), CommError> {
        let blocks = collectives::gather::allgather(self, data.to_vec())?;
        let counts: Vec<usize> = blocks.iter().map(Vec::len).collect();
        Ok((blocks.into_iter().flatten().collect(), counts))
    }

    /// Scatter equal chunks of `root`'s flat buffer: rank `r` receives
    /// elements `r*n/P .. (r+1)*n/P`. The buffer length must divide
    /// evenly by the communicator size. Non-roots pass `None`.
    pub fn scatter<T: CommData + Clone>(&self, root: usize, data: Option<&[T]>) -> Vec<T> {
        self.try_scatter(root, data)
            .unwrap_or_else(|e| self.escalate("scatter", e))
    }

    /// Fallible [`Communicator::scatter`]: `Err` on an out-of-range root
    /// or a root buffer not divisible by the communicator size.
    pub fn try_scatter<T: CommData + Clone>(
        &self,
        root: usize,
        data: Option<&[T]>,
    ) -> Result<Vec<T>, CommError> {
        self.check_rank(root)?;
        let blocks = match (self.rank == root, data) {
            (true, Some(d)) => {
                if d.len() % self.size != 0 {
                    return Err(CommError::SizeMismatch {
                        what: "scatter buffer length (must divide by comm size)",
                        expected: d.len().next_multiple_of(self.size.max(1)),
                        got: d.len(),
                    });
                }
                let chunk = d.len() / self.size;
                if chunk == 0 {
                    Some(vec![Vec::new(); self.size])
                } else {
                    Some(d.chunks(chunk).map(<[T]>::to_vec).collect())
                }
            }
            (true, None) => {
                return Err(CommError::SizeMismatch {
                    what: "scatter root buffer (root must supply data)",
                    expected: self.size,
                    got: 0,
                })
            }
            (false, _) => None,
        };
        collectives::scatter::scatter(self, root, blocks)
    }

    /// Scatter variable-length chunks: `counts[r]` elements go to rank
    /// `r`, and `counts` must sum to the buffer length. Non-roots pass
    /// `None`.
    pub fn scatterv<T: CommData + Clone>(
        &self,
        root: usize,
        data: Option<(&[T], &[usize])>,
    ) -> Vec<T> {
        self.try_scatterv(root, data)
            .unwrap_or_else(|e| self.escalate("scatterv", e))
    }

    /// Fallible [`Communicator::scatterv`].
    pub fn try_scatterv<T: CommData + Clone>(
        &self,
        root: usize,
        data: Option<(&[T], &[usize])>,
    ) -> Result<Vec<T>, CommError> {
        self.check_rank(root)?;
        let blocks = match (self.rank == root, data) {
            (true, Some((d, counts))) => {
                if counts.len() != self.size {
                    return Err(CommError::SizeMismatch {
                        what: "scatterv counts length",
                        expected: self.size,
                        got: counts.len(),
                    });
                }
                let total: usize = counts.iter().sum();
                if total != d.len() {
                    return Err(CommError::SizeMismatch {
                        what: "scatterv counts sum",
                        expected: d.len(),
                        got: total,
                    });
                }
                let mut rest = d;
                Some(
                    counts
                        .iter()
                        .map(|&c| {
                            let (head, tail) = rest.split_at(c);
                            rest = tail;
                            head.to_vec()
                        })
                        .collect(),
                )
            }
            (true, None) => {
                return Err(CommError::SizeMismatch {
                    what: "scatterv root buffer (root must supply data)",
                    expected: self.size,
                    got: 0,
                })
            }
            (false, _) => None,
        };
        collectives::scatter::scatter(self, root, blocks)
    }

    /// Regular all-to-all over a flat buffer with the default
    /// (pairwise-exchange) algorithm: elements `d*n/P .. (d+1)*n/P` of
    /// `send` go to rank `d`, and the result holds rank `s`'s chunk at
    /// `s*n/P .. (s+1)*n/P`. The buffer length must divide evenly by the
    /// communicator size.
    pub fn alltoall<T: CommData + Clone>(&self, send: &[T]) -> Vec<T> {
        self.try_alltoall(send)
            .unwrap_or_else(|e| self.escalate("alltoall", e))
    }

    /// Fallible [`Communicator::alltoall`].
    pub fn try_alltoall<T: CommData + Clone>(&self, send: &[T]) -> Result<Vec<T>, CommError> {
        self.try_alltoall_with(send, collectives::alltoall::AllToAllAlgo::Pairwise)
    }

    /// Regular all-to-all with an explicit algorithm choice.
    pub fn alltoall_with<T: CommData + Clone>(
        &self,
        send: &[T],
        algo: collectives::alltoall::AllToAllAlgo,
    ) -> Vec<T> {
        self.try_alltoall_with(send, algo)
            .unwrap_or_else(|e| self.escalate("alltoall", e))
    }

    /// Fallible [`Communicator::alltoall_with`].
    pub fn try_alltoall_with<T: CommData + Clone>(
        &self,
        send: &[T],
        algo: collectives::alltoall::AllToAllAlgo,
    ) -> Result<Vec<T>, CommError> {
        if !send.len().is_multiple_of(self.size) {
            return Err(CommError::SizeMismatch {
                what: "alltoall send length (must divide by comm size)",
                expected: send.len().next_multiple_of(self.size),
                got: send.len(),
            });
        }
        let chunk = send.len() / self.size;
        let blocks = if chunk == 0 {
            vec![Vec::new(); self.size]
        } else {
            send.chunks(chunk).map(<[T]>::to_vec).collect()
        };
        Ok(collectives::alltoall::alltoall(self, blocks, algo)?
            .into_iter()
            .flatten()
            .collect())
    }

    /// Irregular all-to-all over a flat buffer: `counts[d]` elements go
    /// to rank `d` (counts may be zero and must sum to the buffer
    /// length). Returns the received elements concatenated in source-rank
    /// order, plus the per-source counts.
    pub fn alltoallv<T: CommData + Clone>(
        &self,
        send: &[T],
        counts: &[usize],
    ) -> (Vec<T>, Vec<usize>) {
        self.try_alltoallv(send, counts)
            .unwrap_or_else(|e| self.escalate("alltoallv", e))
    }

    /// Fallible [`Communicator::alltoallv`].
    pub fn try_alltoallv<T: CommData + Clone>(
        &self,
        send: &[T],
        counts: &[usize],
    ) -> Result<(Vec<T>, Vec<usize>), CommError> {
        self.try_alltoallv_with(send, counts, collectives::alltoall::AllToAllAlgo::Pairwise)
    }

    /// Irregular all-to-all with an explicit algorithm choice.
    pub fn alltoallv_with<T: CommData + Clone>(
        &self,
        send: &[T],
        counts: &[usize],
        algo: collectives::alltoall::AllToAllAlgo,
    ) -> (Vec<T>, Vec<usize>) {
        self.try_alltoallv_with(send, counts, algo)
            .unwrap_or_else(|e| self.escalate("alltoallv", e))
    }

    /// Fallible [`Communicator::alltoallv_with`].
    pub fn try_alltoallv_with<T: CommData + Clone>(
        &self,
        send: &[T],
        counts: &[usize],
        algo: collectives::alltoall::AllToAllAlgo,
    ) -> Result<(Vec<T>, Vec<usize>), CommError> {
        if counts.len() != self.size {
            return Err(CommError::SizeMismatch {
                what: "alltoallv counts length",
                expected: self.size,
                got: counts.len(),
            });
        }
        let total: usize = counts.iter().sum();
        if total != send.len() {
            return Err(CommError::SizeMismatch {
                what: "alltoallv counts sum",
                expected: send.len(),
                got: total,
            });
        }
        let mut rest = send;
        let blocks: Vec<Vec<T>> = counts
            .iter()
            .map(|&c| {
                let (head, tail) = rest.split_at(c);
                rest = tail;
                head.to_vec()
            })
            .collect();
        let recv = collectives::alltoall::alltoallv_with(self, blocks, algo)?;
        let recv_counts: Vec<usize> = recv.iter().map(Vec::len).collect();
        Ok((recv.into_iter().flatten().collect(), recv_counts))
    }

    /// Inclusive prefix reduction: rank r gets `v_0 ⊕ … ⊕ v_r`.
    pub fn scan<T: CommData + Copy, O: ReduceOp<T>>(&self, value: T, op: &O) -> T {
        self.try_scan(value, op)
            .unwrap_or_else(|e| self.escalate("scan", e))
    }

    /// Fallible [`Communicator::scan`].
    pub fn try_scan<T: CommData + Copy, O: ReduceOp<T>>(
        &self,
        value: T,
        op: &O,
    ) -> Result<T, CommError> {
        collectives::scan::scan(self, value, op)
    }

    /// Exclusive prefix reduction (`None` on rank 0).
    pub fn exscan<T: CommData + Copy, O: ReduceOp<T>>(&self, value: T, op: &O) -> Option<T> {
        self.try_exscan(value, op)
            .unwrap_or_else(|e| self.escalate("exscan", e))
    }

    /// Fallible [`Communicator::exscan`].
    pub fn try_exscan<T: CommData + Copy, O: ReduceOp<T>>(
        &self,
        value: T,
        op: &O,
    ) -> Result<Option<T>, CommError> {
        collectives::scan::exscan(self, value, op)
    }

    /// Reduce-scatter over a flat buffer: chunk `d*n/P .. (d+1)*n/P` is
    /// this rank's contribution toward destination `d`; the returned
    /// block is the element-wise reduction of every rank's chunk for this
    /// destination.
    pub fn reduce_scatter<T: CommData + Copy, O: ReduceOp<T>>(
        &self,
        contributions: &[T],
        op: &O,
    ) -> Vec<T> {
        self.try_reduce_scatter(contributions, op)
            .unwrap_or_else(|e| self.escalate("reduce_scatter", e))
    }

    /// Fallible [`Communicator::reduce_scatter`].
    pub fn try_reduce_scatter<T: CommData + Copy, O: ReduceOp<T>>(
        &self,
        contributions: &[T],
        op: &O,
    ) -> Result<Vec<T>, CommError> {
        if !contributions.len().is_multiple_of(self.size) {
            return Err(CommError::SizeMismatch {
                what: "reduce_scatter buffer length (must divide by comm size)",
                expected: contributions.len().next_multiple_of(self.size),
                got: contributions.len(),
            });
        }
        let chunk = contributions.len() / self.size;
        let blocks = if chunk == 0 {
            vec![Vec::new(); self.size]
        } else {
            contributions.chunks(chunk).map(<[T]>::to_vec).collect()
        };
        collectives::scan::reduce_scatter(self, blocks, op)
    }

    /// Fallible [`Communicator::broadcast`]: `Err` on an out-of-range
    /// root or a root that supplies no buffer.
    pub fn try_broadcast<T: CommData + Clone + Sync>(
        &self,
        root: usize,
        data: Option<Vec<T>>,
    ) -> Result<Vec<T>, CommError> {
        self.check_rank(root)?;
        if self.rank == root && data.is_none() {
            return Err(CommError::SizeMismatch {
                what: "broadcast root buffer (root must supply data)",
                expected: 1,
                got: 0,
            });
        }
        collectives::broadcast::broadcast(self, root, data)
    }

    /// Fallible [`Communicator::reduce`]: `Err` on an out-of-range root.
    pub fn try_reduce<T: CommData + Clone, O: ReduceOp<T>>(
        &self,
        root: usize,
        value: T,
        op: &O,
    ) -> Result<Option<T>, CommError> {
        self.check_rank(root)?;
        collectives::reduce::reduce(self, root, value, op)
    }

    // ------------------------------------------------------------------
    // ULFM-style recovery operations
    // ------------------------------------------------------------------

    /// Revoke this communicator (ULFM's `MPI_Comm_revoke`): every pending
    /// and future operation on it — on every rank — errors with
    /// [`CommError::Revoked`]. The first step of recovery: one rank
    /// observes a failure, revokes, and all ranks converge on the error
    /// path instead of some completing and some hanging.
    pub fn revoke(&self) {
        self.telemetry.instant(
            SpanKind::Phase(crate::fault::REVOKE_PHASE),
            self.rank as i64,
            self.comm_id,
            0,
        );
        self.registry.revoke(self.comm_id);
    }

    /// Whether this communicator counts as revoked: either its id was
    /// revoked directly, or *any* revocation was issued after it was
    /// built. The epoch clause is how revocation reaches derived
    /// sub-communicators — a rank blocked in a pencil-FFT row exchange
    /// whose group excludes the failed rank still unblocks the moment a
    /// survivor revokes the parent. Communicators built after the
    /// revocation (the child of a [`Communicator::shrink`]) are clean.
    pub fn is_revoked(&self) -> bool {
        self.registry.is_revoked(self.comm_id) || self.registry.revoke_epoch() > self.born_epoch
    }

    /// Fault-tolerant agreement on the surviving group (ULFM's
    /// `MPI_Comm_agree`, specialised to the failure ledger): returns the
    /// world ranks of this communicator's live members, in comm-rank
    /// order. Works on revoked communicators and *despite* failures: the
    /// survivors run a dissemination barrier among themselves, tagged by
    /// a hash of the observed failed set, and restart with fresh tags
    /// whenever a new failure lands mid-agreement. Because the failed set
    /// only grows, every restart uses tags no earlier attempt used, so
    /// stale tokens from an interrupted attempt can never satisfy a later
    /// one.
    pub fn agree(&self) -> Result<Vec<usize>, CommError> {
        let deadline = std::time::Instant::now() + self.recv_timeout;
        let mb = self.mailbox_for(COLLECTIVE_CHANNEL, self.rank);
        'attempt: loop {
            let snap = self.registry.failed_snapshot();
            let survivors: Vec<usize> = (0..self.size)
                .filter(|&r| !snap.contains(&self.world_of[r]))
                .collect();
            let me = survivors
                .iter()
                .position(|&r| r == self.rank)
                .expect("agree: calling rank is marked failed");
            let p = survivors.len();
            let tagbase = agree_tagbase(&snap);
            let mut dist = 1usize;
            let mut round = 0u64;
            while dist < p {
                let dst = survivors[(me + dist) % p];
                let src = survivors[(me + p - dist) % p];
                self.coll_send::<u8>(dst, tagbase + round, Vec::new(), OpKind::Barrier);
                let slice = Duration::from_millis(50).min(self.recv_timeout);
                loop {
                    match mb.recv_matching_timeout(self.rank, src, tagbase + round, slice) {
                        Ok(_) => break,
                        Err(e) => {
                            if self.registry.aborted() {
                                panic!(
                                    "rank {} aborting during agree: a peer rank failed",
                                    self.rank
                                );
                            }
                            if self.registry.failed_snapshot() != snap {
                                continue 'attempt; // new failure: fresh tags
                            }
                            if std::time::Instant::now() >= deadline {
                                return Err(e);
                            }
                        }
                    }
                }
                dist *= 2;
                round += 1;
            }
            if self.registry.failed_snapshot() != snap {
                continue 'attempt;
            }
            return Ok(survivors.iter().map(|&r| self.world_of[r]).collect());
        }
    }

    /// Build a new communicator containing only the surviving ranks
    /// (ULFM's `MPI_Comm_shrink`). Survivors keep their relative order;
    /// the new communicator gets a fresh id (fresh mailboxes, so stale
    /// messages from before the failure cannot pollute recovery). If a
    /// further failure strikes during the shrink itself, the closing
    /// barrier errors and the caller retries `shrink()` on the parent.
    pub fn shrink(&self) -> Result<Communicator, CommError> {
        let survivors_world = self.agree()?;
        let me_world = self.world_of[self.rank];
        let new_rank = survivors_world
            .iter()
            .position(|&w| w == me_world)
            .expect("shrink: calling rank is marked failed");
        let size = survivors_world.len();
        let new_id = self.registry.shrink_id(self.comm_id, &survivors_world);
        self.telemetry.instant(
            SpanKind::Phase(crate::fault::SHRINK_PHASE),
            new_rank as i64,
            size as u64,
            0,
        );
        let child = Communicator::new(
            Arc::clone(&self.registry),
            new_id,
            new_rank,
            size,
            Arc::new(survivors_world),
            Arc::clone(&self.trace),
            Arc::clone(&self.telemetry),
            Arc::clone(&self.pool),
            self.recv_timeout,
            self.eager_limit,
        )
        .with_fault(self.fault.clone());
        // Confirm every survivor reached the same group. If agreement was
        // broken by a failure racing the barrier above, ranks land in
        // different child communicators and this times out quickly (short
        // deadline) — a retryable error, not a hang.
        child
            .with_recv_timeout(self.recv_timeout.min(Duration::from_secs(5)))
            .try_barrier()?;
        Ok(child)
    }

    // ------------------------------------------------------------------
    // Group management
    // ------------------------------------------------------------------

    /// Partition the communicator into disjoint groups, one per distinct
    /// `color`; within a group ranks are ordered by `(key, old rank)`.
    /// Ranks passing `color = None` (MPI's `MPI_UNDEFINED`) get `None`
    /// back. Collective over the communicator.
    pub fn split(&self, color: Option<u64>, key: i64) -> Option<Communicator> {
        // Exchange (color?, key, old_rank) triples; encode None as u64::MAX
        // (reserved — asserted below).
        if let Some(c) = color {
            assert_ne!(c, u64::MAX, "split: color u64::MAX is reserved");
        }
        let triple = (color.unwrap_or(u64::MAX), key, self.rank);
        let mut entries: Vec<(u64, i64, usize)> = self.allgather(&[triple]);
        entries.sort_unstable();

        // Enumerate color groups in sorted color order.
        let mut colors: Vec<u64> = entries
            .iter()
            .map(|e| e.0)
            .filter(|&c| c != u64::MAX)
            .collect();
        colors.dedup();
        let num_groups = colors.len() as u64;

        // Rank 0 of the parent allocates a contiguous id block; everyone
        // then derives the same per-group id deterministically.
        let base = if self.rank == 0 {
            let b = self.registry.allocate_comm_ids(num_groups.max(1));
            self.broadcast(0, Some(vec![b]))[0]
        } else {
            self.broadcast::<u64>(0, None)[0]
        };

        let my_color = color?;
        let group_index = colors.iter().position(|&c| c == my_color).unwrap() as u64;
        let members: Vec<(u64, i64, usize)> = entries
            .iter()
            .copied()
            .filter(|e| e.0 == my_color)
            .collect();
        // `entries` is sorted by (color, key, old_rank), so `members` is
        // already in new-rank order.
        let new_rank = members
            .iter()
            .position(|&(_, _, old)| old == self.rank)
            .unwrap();
        let world_of: Arc<Vec<usize>> = Arc::new(
            members
                .iter()
                .map(|&(_, _, old)| self.world_of[old])
                .collect(),
        );
        Some(
            Communicator::new(
                Arc::clone(&self.registry),
                base + group_index,
                new_rank,
                members.len(),
                world_of,
                Arc::clone(&self.trace),
                Arc::clone(&self.telemetry),
                Arc::clone(&self.pool),
                self.recv_timeout,
                self.eager_limit,
            )
            .with_fault(self.fault.clone()),
        )
    }

    /// Duplicate the communicator into an independent message space with
    /// the same group (like `MPI_Comm_dup`). Collective.
    pub fn duplicate(&self) -> Communicator {
        self.split(Some(0), self.rank as i64)
            .expect("duplicate: split returned None")
    }
}

/// Tag base for one `agree` attempt: an FNV-1a hash of the observed
/// failed set, shifted into a high tag region so agreement tokens can
/// never collide with ordinary collective tags on the shadow channel.
/// The failed set is monotone, so each distinct set — and therefore each
/// restarted attempt — gets tags no earlier attempt used.
fn agree_tagbase(snap: &[usize]) -> Tag {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &r in snap {
        h ^= r as u64 + 1;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (0xA9EE_u64 << 48) | ((h & 0xFFFF_FFFF) << 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn rank_and_size_are_consistent() {
        let sizes = World::builder(5).run(|c| {
            assert!(c.rank() < c.size());
            c.size()
        });
        assert_eq!(sizes, vec![5; 5]);
    }

    #[test]
    fn p2p_roundtrip_between_two_ranks() {
        World::builder(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1.5f64, 2.5]);
                let back: Vec<f64> = c.recv(1, 8);
                assert_eq!(back, vec![4.0]);
            } else {
                let v: Vec<f64> = c.recv(0, 7);
                assert_eq!(v, vec![1.5, 2.5]);
                c.send(0, 8, vec![v.iter().sum::<f64>()]);
            }
        });
    }

    #[test]
    fn wildcard_recv_reports_actual_source_and_tag() {
        World::builder(3).run(|c| {
            if c.rank() == 0 {
                let mut seen = vec![];
                for _ in 0..2 {
                    let (v, src, tag) = c.recv_any::<u32>(ANY_SOURCE, ANY_TAG);
                    seen.push((v[0], src, tag));
                }
                seen.sort_unstable();
                assert_eq!(seen, vec![(10, 1, 100), (20, 2, 200)]);
            } else if c.rank() == 1 {
                c.send(0, 100, vec![10u32]);
            } else {
                c.send(0, 200, vec![20u32]);
            }
        });
    }

    #[test]
    fn sendrecv_ring_shifts_values() {
        let out = World::builder(4).run(|c| {
            let right = (c.rank() + 1) % 4;
            let left = (c.rank() + 3) % 4;
            let got = c.sendrecv(right, vec![c.rank() as u64], left, 3);
            got[0]
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn probe_sees_pending_message() {
        World::builder(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 9, vec![1u8]);
                c.barrier();
            } else {
                c.barrier();
                assert!(c.probe(0, 9));
                assert!(!c.probe(0, 10));
                let _ = c.recv::<u8>(0, 9);
                assert!(!c.probe(0, 9));
            }
        });
    }

    #[test]
    fn messages_with_same_selector_do_not_overtake() {
        World::builder(2).run(|c| {
            if c.rank() == 0 {
                for i in 0..50u32 {
                    c.send(1, 1, vec![i]);
                }
            } else {
                for i in 0..50u32 {
                    assert_eq!(c.recv_one::<u32>(0, 1), i);
                }
            }
        });
    }

    #[test]
    fn split_groups_by_parity() {
        World::builder(6).run(|c| {
            let color = (c.rank() % 2) as u64;
            let sub = c.split(Some(color), c.rank() as i64).unwrap();
            assert_eq!(sub.size(), 3);
            assert_eq!(sub.rank(), c.rank() / 2);
            // Sum world ranks within the subgroup.
            let s = sub.allreduce_sum(c.rank() as f64);
            if color == 0 {
                assert_eq!(s, 0.0 + 2.0 + 4.0);
            } else {
                assert_eq!(s, 1.0 + 3.0 + 5.0);
            }
        });
    }

    #[test]
    fn split_with_undefined_color_returns_none() {
        World::builder(4).run(|c| {
            let sub = if c.rank() == 0 {
                c.split(None, 0)
            } else {
                c.split(Some(1), c.rank() as i64)
            };
            if c.rank() == 0 {
                assert!(sub.is_none());
            } else {
                let sub = sub.unwrap();
                assert_eq!(sub.size(), 3);
            }
        });
    }

    #[test]
    fn split_key_reverses_rank_order() {
        World::builder(4).run(|c| {
            let sub = c.split(Some(0), -(c.rank() as i64)).unwrap();
            assert_eq!(sub.rank(), 3 - c.rank());
        });
    }

    #[test]
    fn duplicated_comm_is_an_independent_message_space() {
        World::builder(2).run(|c| {
            let dup = c.duplicate();
            assert_eq!(dup.size(), 2);
            if c.rank() == 0 {
                c.send(1, 5, vec![1u8]);
                dup.send(1, 5, vec![2u8]);
            } else {
                // Receive from the duplicate first: must not see the
                // message sent on the parent.
                assert_eq!(dup.recv_one::<u8>(0, 5), 2);
                assert_eq!(c.recv_one::<u8>(0, 5), 1);
            }
        });
    }

    #[test]
    #[should_panic(expected = "invalid destination")]
    fn send_to_out_of_range_rank_panics() {
        World::builder(1).run(|c| {
            c.send(5, 0, vec![0u8]);
        });
    }

    #[test]
    fn trace_counts_p2p_bytes() {
        let (_, trace) = World::builder(2).run_traced(|c| {
            if c.rank() == 0 {
                c.send(1, 0, vec![0u64; 16]); // 128 bytes
            } else {
                let _ = c.recv::<u64>(0, 0);
            }
        });
        let s = trace.rank(0).get(OpKind::Send);
        assert_eq!(s.calls, 1);
        assert_eq!(s.messages, 1);
        assert_eq!(s.bytes, 128);
        assert_eq!(trace.rank(1).get(OpKind::Recv).calls, 1);
    }

    #[test]
    fn flat_gather_concatenates_in_rank_order() {
        World::builder(3).run(|c| {
            let mine = vec![c.rank() as u32 * 10, c.rank() as u32 * 10 + 1];
            let got = c.gather(1, &mine);
            if c.rank() == 1 {
                assert_eq!(got.unwrap(), vec![0, 1, 10, 11, 20, 21]);
            } else {
                assert!(got.is_none());
            }
        });
    }

    #[test]
    fn gatherv_reports_ragged_counts() {
        World::builder(3).run(|c| {
            // Rank r contributes r elements.
            let mine = vec![c.rank() as u64; c.rank()];
            if let Some((flat, counts)) = c.gatherv(0, &mine) {
                assert_eq!(counts, vec![0, 1, 2]);
                assert_eq!(flat, vec![1, 2, 2]);
            }
        });
    }

    #[test]
    fn flat_allgather_and_allgatherv() {
        World::builder(4).run(|c| {
            let got = c.allgather(&[c.rank() as u8]);
            assert_eq!(got, vec![0, 1, 2, 3]);
            let mine = vec![c.rank() as u8; c.rank() % 2 + 1];
            let (flat, counts) = c.allgatherv(&mine);
            assert_eq!(counts, vec![1, 2, 1, 2]);
            assert_eq!(flat, vec![0, 1, 1, 2, 3, 3]);
        });
    }

    #[test]
    fn flat_scatter_deals_equal_chunks() {
        World::builder(3).run(|c| {
            let data: Vec<u32> = (0..6).collect();
            let mine = if c.rank() == 0 {
                c.scatter(0, Some(&data))
            } else {
                c.scatter::<u32>(0, None)
            };
            let r = c.rank() as u32;
            assert_eq!(mine, vec![2 * r, 2 * r + 1]);
        });
    }

    #[test]
    fn scatterv_deals_by_counts() {
        World::builder(3).run(|c| {
            let data: Vec<u32> = (0..6).collect();
            let counts = [3usize, 0, 3];
            let mine = if c.rank() == 0 {
                c.scatterv(0, Some((&data[..], &counts[..])))
            } else {
                c.scatterv::<u32>(0, None)
            };
            match c.rank() {
                0 => assert_eq!(mine, vec![0, 1, 2]),
                1 => assert!(mine.is_empty()),
                _ => assert_eq!(mine, vec![3, 4, 5]),
            }
        });
    }

    #[test]
    fn flat_alltoall_transposes_chunks() {
        World::builder(3).run(|c| {
            let me = c.rank() as u64;
            // Chunk for destination d is [me*10 + d].
            let send: Vec<u64> = (0..3).map(|d| me * 10 + d).collect();
            let got = c.alltoall(&send);
            let want: Vec<u64> = (0..3).map(|s| s * 10 + me).collect();
            assert_eq!(got, want);
        });
    }

    #[test]
    fn flat_alltoallv_returns_counts() {
        World::builder(3).run(|c| {
            let me = c.rank();
            // Rank r sends r+1 copies of its rank to every destination.
            let counts = vec![me + 1; 3];
            let send = vec![me as u64; 3 * (me + 1)];
            let (flat, rcounts) = c.alltoallv(&send, &counts);
            assert_eq!(rcounts, vec![1, 2, 3]);
            assert_eq!(flat, vec![0, 1, 1, 2, 2, 2]);
        });
    }

    #[test]
    fn flat_reduce_scatter_sums_chunks() {
        World::builder(2).run(|c| {
            let contributions = vec![c.rank() as f64 + 1.0; 4];
            let mine = c.reduce_scatter(&contributions, &crate::reduce_op::SumOp);
            assert_eq!(mine, vec![3.0, 3.0]);
        });
    }

    #[test]
    fn try_variants_reject_bad_arguments_locally() {
        World::builder(2).run(|c| {
            assert!(matches!(
                c.try_gather(5, &[0u8]),
                Err(CommError::InvalidRank { rank: 5, size: 2 })
            ));
            assert!(matches!(
                c.try_alltoall(&[0u8; 3]),
                Err(CommError::SizeMismatch { got: 3, .. })
            ));
            assert!(matches!(
                c.try_alltoallv(&[0u8; 4], &[1, 2]),
                Err(CommError::SizeMismatch { got: 3, .. })
            ));
            assert!(matches!(
                c.try_alltoallv(&[0u8; 4], &[1]),
                Err(CommError::SizeMismatch { expected: 2, got: 1, .. })
            ));
            assert!(matches!(
                c.try_reduce_scatter(&[0.5f64; 3], &crate::reduce_op::SumOp),
                Err(CommError::SizeMismatch { got: 3, .. })
            ));
            if c.rank() == 0 {
                assert!(matches!(
                    c.try_scatter::<u8>(0, None),
                    Err(CommError::SizeMismatch { .. })
                ));
                assert!(matches!(
                    c.try_broadcast::<u8>(0, None),
                    Err(CommError::SizeMismatch { .. })
                ));
            }
            assert!(matches!(
                c.try_reduce(9, 1.0, &crate::reduce_op::SumOp),
                Err(CommError::InvalidRank { rank: 9, size: 2 })
            ));
            // Errors above are local: no rank entered a collective, so the
            // group is still consistent for a real one.
            assert_eq!(c.allreduce_sum(1.0), 2.0);
        });
    }

    #[test]
    fn recv_within_times_out_instead_of_panicking() {
        World::builder(2).run(|c| {
            if c.rank() == 0 {
                // Tag 99 is never sent: this must time out even though a
                // non-matching message (tag 4) may already be queued.
                let err = c
                    .recv_within::<u8>(1, 99, Duration::from_millis(30))
                    .unwrap_err();
                assert!(matches!(err, CommError::Timeout { rank: 0, .. }));
                c.barrier();
                // After the sender's barrier the message is guaranteed queued.
                let (v, src, tag) = c
                    .recv_any_within::<u8>(ANY_SOURCE, ANY_TAG, Duration::from_secs(5))
                    .unwrap();
                assert_eq!((v, src, tag), (vec![9], 1, 4));
            } else {
                c.send(0, 4, vec![9u8]);
                c.barrier();
            }
        });
    }

    #[test]
    fn send_slice_keeps_caller_ownership() {
        World::builder(2).run(|c| {
            let data = vec![1.0f32, 2.0, 3.0];
            if c.rank() == 0 {
                c.send_slice(1, 2, &data);
                assert_eq!(data.len(), 3); // still ours
            } else {
                assert_eq!(c.recv::<f32>(0, 2), vec![1.0, 2.0, 3.0]);
            }
        });
    }
}
