//! Abstraction over spatial ownership schemes.
//!
//! The paper's cutoff solver decomposes 3D space with a *uniform* 2D x/y
//! grid ([`crate::SpatialMesh`]) and notes (§6) that load-balancing
//! decompositions would add communication patterns worth benchmarking.
//! This trait lets the migration engine work with any ownership scheme;
//! [`crate::rcb::RcbDecomposition`] provides the balanced alternative.

use crate::spatial_mesh::SpatialMesh;

/// An assignment of 3D points to ranks by x/y position.
pub trait PointDecomposition: Send + Sync {
    /// Number of ranks/regions.
    fn ranks(&self) -> usize;
    /// The rank owning a point (out-of-domain points clamp to the
    /// nearest region).
    fn rank_of_point(&self, p: [f64; 3]) -> usize;
    /// All ranks whose region lies within the x/y square of half-width
    /// `cutoff` around `p` (including `p`'s own rank).
    fn ranks_within(&self, p: [f64; 3], cutoff: f64) -> Vec<usize>;
}

impl PointDecomposition for SpatialMesh {
    fn ranks(&self) -> usize {
        SpatialMesh::ranks(self)
    }

    fn rank_of_point(&self, p: [f64; 3]) -> usize {
        SpatialMesh::rank_of_point(self, p)
    }

    fn ranks_within(&self, p: [f64; 3], cutoff: f64) -> Vec<usize> {
        SpatialMesh::ranks_within(self, p, cutoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_mesh_satisfies_the_trait() {
        let m = SpatialMesh::new([-1.0, -1.0, -1.0], [1.0, 1.0, 1.0], [2, 2]);
        let d: &dyn PointDecomposition = &m;
        assert_eq!(d.ranks(), 4);
        assert_eq!(d.rank_of_point([-0.5, -0.5, 0.0]), 0);
        assert_eq!(d.ranks_within([0.0, 0.0, 0.0], 0.5).len(), 4);
    }
}
