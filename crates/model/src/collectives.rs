//! Cost formulas for the collective algorithms `beatnik-comm` implements.
//!
//! Every formula is per-*call* wall time for the whole collective (the
//! slowest participant), built from the point-to-point model. The two
//! all-to-all variants reproduce the behaviour the paper measures in its
//! heFFTe study (Section 5.5 / Figure 9): a custom direct exchange wins at
//! small scale (fewer synchronization rounds), the scheduled pairwise
//! `MPI_Alltoall` wins at large scale (no fabric congestion).

use crate::network::NetworkModel;

/// Which all-to-all implementation to cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllToAllCost {
    /// Scheduled pairwise exchange (`MPI_Alltoall`-style): P−1 rounds,
    /// each a synchronized sendrecv; no congestion but per-round latency.
    Pairwise,
    /// Unscheduled direct exchange (custom p2p): one burst of P−1
    /// messages, overlapping but congesting the fabric at scale.
    Direct,
}

/// Collective cost calculator bound to a job size.
#[derive(Debug, Clone)]
pub struct CollectiveCosts<'a> {
    net: &'a NetworkModel,
}

impl<'a> CollectiveCosts<'a> {
    /// Wrap a network model.
    pub fn new(net: &'a NetworkModel) -> Self {
        CollectiveCosts { net }
    }

    fn p(&self) -> usize {
        self.net.ranks()
    }

    fn log2p(&self) -> f64 {
        (self.p() as f64).log2().ceil().max(0.0)
    }

    /// Dissemination barrier: ⌈log₂P⌉ zero-byte rounds.
    pub fn barrier(&self) -> f64 {
        self.log2p() * (self.net.latency() + self.net.overhead())
    }

    /// Binomial broadcast of `bytes`.
    pub fn broadcast(&self, bytes: usize) -> f64 {
        self.log2p() * self.net.p2p_time(bytes)
    }

    /// Recursive-doubling allreduce of `bytes` (both directions count).
    pub fn allreduce(&self, bytes: usize) -> f64 {
        self.log2p() * self.net.p2p_time(bytes)
    }

    /// Ring allgather where each rank contributes `bytes`.
    pub fn allgather(&self, bytes: usize) -> f64 {
        (self.p().saturating_sub(1)) as f64 * self.net.p2p_time(bytes)
    }

    /// All-to-all with per-pair blocks of `block_bytes`.
    pub fn alltoall(&self, block_bytes: usize, algo: AllToAllCost) -> f64 {
        let p = self.p();
        if p <= 1 {
            return 0.0;
        }
        let rounds = (p - 1) as f64;
        match algo {
            AllToAllCost::Pairwise => {
                // Each round is a synchronized exchange: pay latency +
                // overhead + transfer per round; a straggler handshake tax
                // grows slowly with P (observed in all MPI pairwise
                // implementations as skew accumulates over rounds).
                let skew = 1.0 + 0.02 * self.log2p();
                rounds
                    * (self.net.latency() * 2.0
                        + self.net.overhead()
                        + block_bytes as f64 / self.net.effective_bandwidth())
                    * skew
            }
            AllToAllCost::Direct => {
                // One latency, P−1 overheads, and the full volume pushed
                // through a congested fabric.
                let congestion = self.net.congestion_factor(p - 1);
                self.net.latency()
                    + rounds * self.net.overhead()
                    + rounds * block_bytes as f64 * congestion / self.net.effective_bandwidth()
            }
        }
    }

    /// Irregular all-to-all: `per_dest_bytes[d]` from this rank to rank
    /// `d`; costed as a pairwise exchange of the maximum block (the
    /// schedule is lock-stepped on the largest transfer in each round).
    pub fn alltoallv(&self, per_dest_bytes: &[usize]) -> f64 {
        let max_block = per_dest_bytes.iter().copied().max().unwrap_or(0);
        self.alltoall(max_block, AllToAllCost::Pairwise)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::network::NetworkModel;

    fn costs_at(ranks: usize) -> (NetworkModel, Machine) {
        let m = Machine::lassen();
        (NetworkModel::new(&m, ranks), m)
    }

    #[test]
    fn barrier_scales_logarithmically() {
        let (n8, _) = costs_at(8);
        let (n1024, _) = costs_at(1024);
        let b8 = CollectiveCosts::new(&n8).barrier();
        let b1024 = CollectiveCosts::new(&n1024).barrier();
        assert!(b1024 > b8);
        assert!(b1024 < b8 * 8.0); // log, not linear
    }

    #[test]
    fn alltoall_direct_beats_pairwise_at_small_scale() {
        // The Figure-9 crossover: custom exchange wins small…
        let (net, _) = costs_at(8);
        let c = CollectiveCosts::new(&net);
        let block = 64 * 1024;
        assert!(c.alltoall(block, AllToAllCost::Direct) < c.alltoall(block, AllToAllCost::Pairwise));
    }

    #[test]
    fn alltoall_pairwise_beats_direct_at_large_scale() {
        // …and MPI_Alltoall wins at scale.
        let (net, _) = costs_at(1024);
        let c = CollectiveCosts::new(&net);
        let block = 64 * 1024;
        assert!(c.alltoall(block, AllToAllCost::Pairwise) < c.alltoall(block, AllToAllCost::Direct));
    }

    #[test]
    fn alltoall_is_zero_for_single_rank() {
        let (net, _) = costs_at(1);
        let c = CollectiveCosts::new(&net);
        assert_eq!(c.alltoall(1024, AllToAllCost::Pairwise), 0.0);
        assert_eq!(c.alltoall(1024, AllToAllCost::Direct), 0.0);
    }

    #[test]
    fn alltoallv_lockstep_on_largest_block() {
        let (net, _) = costs_at(16);
        let c = CollectiveCosts::new(&net);
        let uniform = c.alltoall(4096, AllToAllCost::Pairwise);
        let ragged = c.alltoallv(&[0, 100, 4096, 10]);
        assert!((ragged - uniform).abs() < 1e-12);
    }

    #[test]
    fn collective_costs_increase_with_bytes() {
        let (net, _) = costs_at(64);
        let c = CollectiveCosts::new(&net);
        assert!(c.broadcast(1 << 20) > c.broadcast(1 << 10));
        assert!(c.allreduce(1 << 20) > c.allreduce(1 << 10));
        assert!(c.allgather(1 << 20) > c.allgather(1 << 10));
    }
}
