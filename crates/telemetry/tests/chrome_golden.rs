//! Golden-file check of the Chrome Trace Event export: a synthetic
//! two-rank timeline with fixed timestamps must serialize byte-for-byte
//! to `tests/golden/chrome_trace.json`. Any change to the event shape
//! (field order, metadata records, µs conversion, the `beatnik` footer)
//! shows up as a diff here and must update the fixture deliberately —
//! the format is consumed by chrome://tracing, Perfetto, and
//! `profile_check`, none of which we control.

use beatnik_telemetry::{
    chrome_trace, CommOp, RankTimeline, Span, SpanKind, WorldTimeline,
};

const GOLDEN: &str = include_str!("golden/chrome_trace.json");

fn synthetic_timeline() -> WorldTimeline {
    WorldTimeline::new(vec![
        RankTimeline {
            rank: 0,
            spans: vec![
                Span {
                    kind: SpanKind::Phase("step"),
                    peer: -1,
                    tag: 0,
                    bytes: 0,
                    start_ns: 0,
                    end_ns: 5000,
                    ..Span::default()
                },
                Span {
                    kind: SpanKind::Op(CommOp::Send),
                    peer: 1,
                    tag: 7,
                    bytes: 64,
                    start_ns: 1000,
                    end_ns: 2500,
                    ..Span::default()
                },
            ],
            dropped: 0,
        },
        RankTimeline {
            rank: 1,
            spans: vec![Span {
                kind: SpanKind::Op(CommOp::Recv),
                peer: 0,
                tag: 7,
                bytes: 64,
                start_ns: 1500,
                end_ns: 3000,
                ..Span::default()
            }],
            dropped: 3,
        },
    ])
}

#[test]
fn chrome_trace_matches_golden_file() {
    let text = beatnik_json::to_string(&chrome_trace(&synthetic_timeline()));
    assert_eq!(
        text,
        GOLDEN.trim_end(),
        "Chrome trace shape drifted from tests/golden/chrome_trace.json"
    );
}

#[test]
fn golden_file_is_valid_json_with_expected_shape() {
    // The fixture itself must stay loadable: parse it back and check the
    // invariants profile_check relies on.
    let v = beatnik_json::parse(GOLDEN).unwrap();
    let beatnik_json::Value::Array(events) = v.get("traceEvents").unwrap() else {
        panic!("traceEvents not an array");
    };
    assert_eq!(events.len(), 5);
    let metas = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .count();
    let spans = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .count();
    assert_eq!((metas, spans), (2, 3));
    assert_eq!(
        v.get("beatnik").unwrap().get("ranks").unwrap().as_u64(),
        Some(2)
    );
}
