//! Criterion microbenchmarks of the Birkhoff–Rott solvers: exact
//! ring-pass vs cutoff (migrate/halo/neighbor/force/return), at matched
//! point counts — the compute-vs-communication tradeoff at the heart of
//! the benchmark.

use beatnik_comm::{dims_create, World};
use beatnik_core::br::{BrPoint, BrSolver, CutoffBrSolver, ExactBrSolver};
use beatnik_mesh::SpatialMesh;
use beatnik_spatial::neighbors::Backend;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn points(n: usize) -> Vec<BrPoint> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            BrPoint {
                pos: [
                    (t * 0.37).fract() * 5.0 - 2.5,
                    (t * 0.71).fract() * 5.0 - 2.5,
                    (t * 0.13).fract() - 0.5,
                ],
                strength: [(t * 0.29).fract() - 0.5, (t * 0.53).fract() - 0.5, 0.0],
            }
        })
        .collect()
}

fn bench_br(c: &mut Criterion) {
    let mut g = c.benchmark_group("br_solvers");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    let ranks = 4;
    for n in [1024usize, 4096] {
        let all = points(n);
        let chunk = n / ranks;
        let all_e = all.clone();
        g.bench_with_input(BenchmarkId::new("exact_ring", n), &n, |b, _| {
            b.iter(|| {
                let all = all_e.clone();
                World::builder(ranks).run(move |comm| {
                    let lo = comm.rank() * chunk;
                    ExactBrSolver
                        .velocities(&comm, &all[lo..lo + chunk], 0.05)
                        .len()
                })
            })
        });
        // Old blocking sendrecv schedule, for comparison against the
        // pipelined isend/irecv default above.
        let all_b = all.clone();
        g.bench_with_input(BenchmarkId::new("exact_ring_blocking", n), &n, |b, _| {
            b.iter(|| {
                let all = all_b.clone();
                World::builder(ranks).run(move |comm| {
                    let lo = comm.rank() * chunk;
                    ExactBrSolver
                        .velocities_blocking(&comm, &all[lo..lo + chunk], 0.05)
                        .len()
                })
            })
        });
        for cutoff in [0.5f64, 1.0] {
            let all_c = all.clone();
            g.bench_with_input(
                BenchmarkId::new(format!("cutoff_{cutoff}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let all = all_c.clone();
                        World::builder(ranks).run(move |comm| {
                            let smesh = SpatialMesh::new(
                                [-3.0, -3.0, -3.0],
                                [3.0, 3.0, 3.0],
                                dims_create(comm.size()),
                            );
                            let solver = CutoffBrSolver::new(smesh, cutoff, Backend::Grid);
                            let lo = comm.rank() * chunk;
                            solver.velocities(&comm, &all[lo..lo + chunk], 0.05).len()
                        })
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_br);
criterion_main!(benches);
