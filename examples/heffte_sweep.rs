//! A live (measured, not modeled) sweep of the eight heFFTe-style FFT
//! configurations of Table 1, running the real distributed transform on
//! thread-ranks and reporting wall time plus message counts per config.
//!
//! This is the laptop-scale companion of the Figure-9 harness (which
//! extrapolates these configurations to 1024 GPUs with the machine
//! model): it demonstrates that the three knobs change the communication
//! *pattern* while leaving results bit-identical.
//!
//! Run with: `cargo run --release --example heffte_sweep`

use beatnik_comm::{dims_create, OpKind, World};
use beatnik_dfft::{DistributedFft2d, FftConfig};
use beatnik_fft::Complex;
use std::time::Instant;

fn main() {
    let ranks = 4;
    let n = 256; // global grid: n x n complex values
    let reps = 5;

    println!("distributed 2D FFT sweep: {n}x{n} grid, {ranks} ranks, {reps} transforms each\n");
    println!(
        "{:>5} {:>9} {:>9} {:>9} {:>12} {:>12} {:>12}",
        "cfg", "alltoall", "pencils", "reorder", "time (ms)", "messages", "bytes"
    );

    let mut results = Vec::new();
    for config in FftConfig::table1() {
        let (out, trace) = World::builder(ranks).run_traced(move |comm| {
            let dims = dims_create(comm.size());
            let plan = DistributedFft2d::new(&comm, dims, n, n, config);
            let rect = plan.local_rect();
            let mut block: Vec<Complex> = (0..rect.area())
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            comm.barrier();
            let start = Instant::now();
            for _ in 0..reps {
                block = plan.inverse(plan.forward(block));
            }
            comm.barrier();
            let elapsed = start.elapsed().as_secs_f64();
            // Checksum so the work cannot be optimized away and so all
            // configs can be verified to agree.
            let checksum: f64 = block.iter().map(|z| z.re + z.im).sum();
            (elapsed, checksum)
        });
        let time_ms = out.iter().map(|r| r.0).fold(0.0f64, f64::max) * 1e3;
        let checksum = out[0].1;
        let msgs = trace.total(OpKind::Alltoallv).messages;
        let bytes = trace.total(OpKind::Alltoallv).bytes;
        println!(
            "{:>5} {:>9} {:>9} {:>9} {:>12.2} {:>12} {:>12}",
            config.index(),
            config.all_to_all,
            config.pencils,
            config.reorder,
            time_ms,
            msgs,
            bytes
        );
        results.push((config.index(), checksum));
    }

    // All eight configurations must produce identical data.
    let base = results[0].1;
    for (idx, sum) in &results {
        assert!(
            (sum - base).abs() < 1e-6 * base.abs().max(1.0),
            "config {idx} diverged from config 0"
        );
    }
    println!("\nall 8 configurations produced identical transforms (checksum {base:.6})");
    println!("pencil configs exchange fewer, larger-count messages in subcommunicators;");
    println!("reorder=false pays extra local memory passes instead of packed layouts.");
}
