//! Surface geometry kernels: tangents, normals, and sheet strength,
//! computed from the position field with 4th-order width-2 stencils
//! (the "surface normals and Laplacians along the surface" of paper §3.1).

use beatnik_mesh::stencil::{ddx4, ddy4};
use beatnik_mesh::Field;

/// 3-vector cross product.
#[inline]
pub fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

/// 3-vector dot product.
#[inline]
pub fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// Euclidean norm.
#[inline]
pub fn norm(a: [f64; 3]) -> f64 {
    dot(a, a).sqrt()
}

/// Surface tangent vectors `(∂₁z, ∂₂z)` at a local node (halo must be
/// valid). `∂₁` is along columns/x, `∂₂` along rows/y.
#[inline]
pub fn tangents(z: &Field, r: usize, c: usize, dy: f64, dx: f64) -> ([f64; 3], [f64; 3]) {
    let t1 = [
        ddx4(z, r, c, 0, dx),
        ddx4(z, r, c, 1, dx),
        ddx4(z, r, c, 2, dx),
    ];
    let t2 = [
        ddy4(z, r, c, 0, dy),
        ddy4(z, r, c, 1, dy),
        ddy4(z, r, c, 2, dy),
    ];
    (t1, t2)
}

/// Non-unit surface normal `n = ∂₁z × ∂₂z` and its magnitude (the area
/// element `|n| = √det g`).
#[inline]
pub fn normal(z: &Field, r: usize, c: usize, dy: f64, dx: f64) -> ([f64; 3], f64) {
    let (t1, t2) = tangents(z, r, c, dy, dx);
    let n = cross(t1, t2);
    let mag = norm(n);
    (n, mag)
}

/// Unit surface normal (guards the degenerate-mesh case).
#[inline]
pub fn unit_normal(z: &Field, r: usize, c: usize, dy: f64, dx: f64) -> [f64; 3] {
    let (n, mag) = normal(z, r, c, dy, dx);
    if mag < 1e-300 {
        [0.0, 0.0, 1.0]
    } else {
        [n[0] / mag, n[1] / mag, n[2] / mag]
    }
}

/// Vortex-sheet strength vector `ω = w1·∂₁z + w2·∂₂z`.
#[inline]
pub fn sheet_strength(
    z: &Field,
    w: &Field,
    r: usize,
    c: usize,
    dy: f64,
    dx: f64,
) -> [f64; 3] {
    let (t1, t2) = tangents(z, r, c, dy, dx);
    let w1 = w.get(r, c, 0);
    let w2 = w.get(r, c, 1);
    [
        w1 * t1[0] + w2 * t2[0],
        w1 * t1[1] + w2 * t2[1],
        w1 * t1[2] + w2 * t2[2],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_mesh::Field;

    /// Field sampling z = (x, y, h(x,y)) at spacing `h` with indices as
    /// coordinates; includes enough frame for width-2 stencils.
    fn surface(n: usize, d: f64, h: impl Fn(f64, f64) -> f64) -> Field {
        let mut z = Field::zeros(n, n, 3);
        for r in 0..n {
            for c in 0..n {
                let (x, y) = (c as f64 * d, r as f64 * d);
                z.set_node(r, c, &[x, y, h(x, y)]);
            }
        }
        z
    }

    #[test]
    fn vector_ops() {
        assert_eq!(cross([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]), [0.0, 0.0, 1.0]);
        assert_eq!(cross([0.0, 1.0, 0.0], [1.0, 0.0, 0.0]), [0.0, 0.0, -1.0]);
        assert_eq!(dot([1.0, 2.0, 3.0], [4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm([3.0, 4.0, 0.0]), 5.0);
    }

    #[test]
    fn flat_surface_normal_is_z_with_unit_area() {
        let z = surface(8, 0.1, |_, _| 2.0);
        let (n, mag) = normal(&z, 4, 4, 0.1, 0.1);
        assert!((n[0]).abs() < 1e-12 && (n[1]).abs() < 1e-12);
        assert!((n[2] - 1.0).abs() < 1e-12);
        assert!((mag - 1.0).abs() < 1e-12);
        assert_eq!(unit_normal(&z, 4, 4, 0.1, 0.1), [0.0, 0.0, 1.0]);
    }

    #[test]
    fn tilted_plane_normal_matches_analytic() {
        // h = a x + b y: normal ∝ (-a, -b, 1).
        let (a, b) = (0.3, -0.7);
        let z = surface(8, 0.05, |x, y| a * x + b * y);
        let n = unit_normal(&z, 4, 4, 0.05, 0.05);
        let scale = 1.0 / (1.0 + a * a + b * b).sqrt();
        assert!((n[0] + a * scale).abs() < 1e-10);
        assert!((n[1] + b * scale).abs() < 1e-10);
        assert!((n[2] - scale).abs() < 1e-10);
    }

    #[test]
    fn sinusoidal_surface_normal_converges() {
        // Finite-difference normal approaches the analytic one as the
        // mesh refines (4th order).
        let errs: Vec<f64> = [0.04, 0.02]
            .iter()
            .map(|&d| {
                let z = surface(12, d, |x, _| (3.0 * x).sin() * 0.2);
                let c = 6;
                let x = c as f64 * d;
                let hx = 0.6 * (3.0 * x).cos();
                let scale = 1.0 / (1.0 + hx * hx).sqrt();
                let n = unit_normal(&z, 6, c, d, d);
                ((n[0] + hx * scale).powi(2) + (n[2] - scale).powi(2)).sqrt()
            })
            .collect();
        assert!(errs[1] < errs[0] / 8.0, "errors {errs:?}");
    }

    #[test]
    fn sheet_strength_combines_tangents() {
        let z = surface(8, 0.1, |_, _| 0.0); // flat: t1 = x̂, t2 = ŷ
        let mut w = Field::zeros(8, 8, 2);
        w.set_node(4, 4, &[2.0, -3.0]);
        let s = sheet_strength(&z, &w, 4, 4, 0.1, 0.1);
        assert!((s[0] - 2.0).abs() < 1e-12);
        assert!((s[1] + 3.0).abs() < 1e-12);
        assert!(s[2].abs() < 1e-12);
    }
}
