//! Nonblocking request handles — the `MPI_Isend`/`MPI_Irecv` analogue.
//!
//! [`crate::Communicator::isend`] copies a slice into a pooled byte
//! envelope and delivers it immediately (sends are buffered, as in MPI's
//! eager protocol), returning a [`SendRequest`] that exists for API
//! symmetry and instrumentation. [`crate::Communicator::irecv`] posts a
//! receive *intent* and returns a [`RecvRequest`] that the caller
//! completes later with [`RecvRequest::wait`] (blocking) or polls with
//! [`RecvRequest::test`] — the window between post and wait is where
//! communication overlaps computation.
//!
//! [`wait_all`] retires a batch of receive requests in *arrival* order
//! (whichever message lands first is absorbed first), while returning
//! payloads in posted order — the semantics of `MPI_Waitall`.
//!
//! Every post/retire is counted in the per-rank [`crate::RankTrace`]
//! (`request_posted`/`request_completed`), so traces report how deeply a
//! communication pattern pipelines (`peak_outstanding`).

use crate::communicator::{Communicator, Tag};
use crate::mailbox::PostedId;
use crate::message::{CommData, Envelope};
use crate::trace::OpKind;
use beatnik_telemetry::CommOp;
use std::time::Duration;

/// Handle for a posted nonblocking send.
///
/// The payload is already buffered at the destination when `isend`
/// returns, so completion never blocks; the handle's job is to mark the
/// point where the program *would* have to wait on a real network, and to
/// retire the request in the instrumentation. Dropping the handle retires
/// it implicitly.
#[must_use = "complete the send with wait() (or let the handle drop to retire it)"]
pub struct SendRequest<'c> {
    comm: &'c Communicator,
    retired: bool,
}

impl<'c> SendRequest<'c> {
    pub(crate) fn new(comm: &'c Communicator) -> Self {
        SendRequest {
            comm,
            retired: false,
        }
    }

    fn retire(&mut self) {
        if !self.retired {
            self.retired = true;
            self.comm.trace().request_completed();
        }
    }

    /// Poll for completion. Buffered sends complete instantly, so this
    /// always returns `true` (and retires the request).
    pub fn test(&mut self) -> bool {
        self.retire();
        true
    }

    /// Complete the send.
    pub fn wait(mut self) {
        self.retire();
    }
}

impl Drop for SendRequest<'_> {
    fn drop(&mut self) {
        self.retire();
    }
}

/// Handle for a posted nonblocking receive of a `Vec<T>` payload.
///
/// Completed by [`RecvRequest::wait`] (blocking, returns the payload),
/// [`RecvRequest::test`] (nonblocking poll), or [`wait_all`] over a
/// batch. Dropping an incomplete request cancels it (the message, if it
/// ever arrives, stays in the mailbox for a later receive).
#[must_use = "complete the receive with wait(), test(), or wait_all()"]
pub struct RecvRequest<'c, T: CommData> {
    comm: &'c Communicator,
    src: usize,
    tag: Tag,
    /// Posted slot in the mailbox's receive registry. Rendezvous sends
    /// matching `(src, tag)` deposit their payload directly here.
    posted: PostedId,
    data: Option<Vec<T>>,
    /// Actual `(source, tag)` once completed (resolves wildcards).
    meta: Option<(usize, Tag)>,
    retired: bool,
}

impl<'c, T: CommData> RecvRequest<'c, T> {
    pub(crate) fn new(comm: &'c Communicator, src: usize, tag: Tag, posted: PostedId) -> Self {
        RecvRequest {
            comm,
            src,
            tag,
            posted,
            data: None,
            meta: None,
            retired: false,
        }
    }

    /// The source selector this receive was posted with (may be
    /// [`crate::ANY_SOURCE`]).
    pub fn source_selector(&self) -> usize {
        self.src
    }

    /// The tag selector this receive was posted with (may be
    /// [`crate::ANY_TAG`]).
    pub fn tag_selector(&self) -> Tag {
        self.tag
    }

    /// Whether the payload has already been absorbed.
    pub fn is_complete(&self) -> bool {
        self.data.is_some()
    }

    /// The actual source rank, once complete (resolves wildcard posts).
    pub fn source(&self) -> Option<usize> {
        self.meta.map(|(s, _)| s)
    }

    fn absorb(&mut self, env: Envelope) {
        self.comm.trace().record(OpKind::Recv, 0, 0);
        self.comm.trace().request_completed();
        self.retired = true;
        self.meta = Some((env.src, env.tag));
        self.data = Some(env.into_data());
    }

    /// Nonblocking poll: absorb the message if it has been delivered to
    /// this request's posted slot. Returns whether the request is
    /// complete.
    pub fn test(&mut self) -> bool {
        if self.data.is_some() {
            return true;
        }
        let mb = self.comm.user_mailbox();
        if let Some(env) = mb.try_claim(self.posted) {
            self.absorb(env);
            true
        } else {
            false
        }
    }

    /// Block until the message arrives and return the payload.
    ///
    /// # Panics
    /// Panics on receive timeout (a deadlock converted into a loud
    /// failure) or if a peer rank fails while we wait — the same policy
    /// as the blocking [`crate::Communicator::recv`].
    pub fn wait(mut self) -> Vec<T> {
        self.wait_ref();
        self.data.take().expect("wait: completed without payload")
    }

    /// Block until the message arrives and return `(payload, source,
    /// tag)` — the wildcard-resolving form of [`RecvRequest::wait`].
    pub fn wait_with_meta(mut self) -> (Vec<T>, usize, Tag) {
        self.wait_ref();
        let (s, t) = self.meta.expect("wait: completed without metadata");
        (
            self.data.take().expect("wait: completed without payload"),
            s,
            t,
        )
    }

    fn wait_ref(&mut self) {
        if self.data.is_some() {
            return;
        }
        let env = self
            .comm
            .blocking_user_claim(self.posted, self.src, self.tag, "irecv wait");
        self.absorb(env);
    }

    /// Fallible completion: like [`RecvRequest::wait`], but peer failure,
    /// revocation, and the receive deadline come back as a [`CommError`]
    /// instead of a panic. On error the request is consumed (its posted
    /// slot is withdrawn on drop), so the message — if it ever arrives —
    /// stays in the mailbox for a later receive.
    pub fn try_wait(mut self) -> Result<Vec<T>, crate::error::CommError> {
        if self.data.is_none() {
            let mut span = self.comm.telemetry().op(CommOp::Wait);
            let env = self
                .comm
                .ft_claim(self.posted, self.src, self.tag, "irecv wait")?;
            span.peer(env.src);
            span.tag(env.tag);
            span.bytes(env.bytes as u64);
            self.comm.trace().record(OpKind::Recv, 0, 0);
            self.comm.trace().request_completed();
            self.retired = true;
            self.meta = Some((env.src, env.tag));
            self.data = Some(env.try_into_data()?);
        }
        Ok(self.data.take().expect("try_wait: completed without payload"))
    }
}

impl<T: CommData> Drop for RecvRequest<'_, T> {
    fn drop(&mut self) {
        // Cancelled (never completed) requests withdraw their posted
        // slot — an already-deposited message is requeued at its
        // original position for a later receive — and still retire in
        // the outstanding-depth gauge so it balances back to zero.
        if !self.retired {
            self.retired = true;
            self.comm.user_mailbox().cancel_post(self.posted);
            self.comm.trace().request_completed();
        }
    }
}

/// Complete a batch of receive requests, absorbing messages in whatever
/// order they arrive, and return their payloads in *posted* order — the
/// semantics of `MPI_Waitall`.
///
/// All requests must come from the same communicator (they share one
/// mailbox). An empty batch returns immediately.
///
/// # Panics
/// Panics on receive timeout or peer failure, like blocking receives.
pub fn wait_all<T: CommData>(mut requests: Vec<RecvRequest<'_, T>>) -> Vec<Vec<T>> {
    if requests.is_empty() {
        return Vec::new();
    }
    let comm = requests[0].comm;
    debug_assert!(
        requests.iter().all(|r| std::ptr::eq(r.comm, comm)),
        "wait_all: requests from different communicators"
    );
    let mut span = comm.telemetry().op(CommOp::WaitAll);
    let mb = comm.user_mailbox();
    let deadline = std::time::Instant::now() + comm.recv_timeout();
    // Poll in short slices purely to observe the abort flag; arrivals
    // wake the mailbox condvar directly, so latency is unaffected.
    let slice = Duration::from_millis(100).min(comm.recv_timeout());
    loop {
        let mut pending: Vec<PostedId> = Vec::new();
        for r in requests.iter_mut() {
            if !r.test() {
                pending.push(r.posted);
            }
        }
        if pending.is_empty() {
            break;
        }
        if comm.world_aborted() {
            panic!(
                "rank {} aborting during wait_all: a peer rank failed",
                comm.rank()
            );
        }
        if std::time::Instant::now() >= deadline {
            panic!(
                "wait_all deadlock on rank {}: {} receive(s) never matched",
                comm.rank(),
                pending.len()
            );
        }
        let _ = mb.wait_any_posted(&pending, slice);
    }
    let out: Vec<Vec<T>> = requests
        .into_iter()
        .map(|mut r| r.data.take().expect("wait_all: incomplete request"))
        .collect();
    let bytes: usize = out.iter().map(|v| std::mem::size_of_val(v.as_slice())).sum();
    span.bytes(bytes as u64);
    out
}

/// Fallible [`wait_all`]: peer failure, revocation, and the receive
/// deadline come back as a [`crate::CommError`] instead of a panic. On
/// error the incomplete requests are dropped (cancelling their posted
/// slots); completed payloads absorbed before the failure are discarded
/// with them, matching MPI's non-uniform-completion semantics.
pub fn try_wait_all<T: CommData>(
    mut requests: Vec<RecvRequest<'_, T>>,
) -> Result<Vec<Vec<T>>, crate::error::CommError> {
    if requests.is_empty() {
        return Ok(Vec::new());
    }
    let comm = requests[0].comm;
    debug_assert!(
        requests.iter().all(|r| std::ptr::eq(r.comm, comm)),
        "try_wait_all: requests from different communicators"
    );
    let mut span = comm.telemetry().op(CommOp::WaitAll);
    let mb = comm.user_mailbox();
    let deadline = std::time::Instant::now() + comm.recv_timeout();
    let slice = Duration::from_millis(100).min(comm.recv_timeout());
    loop {
        let mut pending: Vec<PostedId> = Vec::new();
        let mut watched_src = None;
        for r in requests.iter_mut() {
            if !r.test() {
                pending.push(r.posted);
                watched_src = Some(r.src);
            }
        }
        let Some(watched) = watched_src else { break };
        if comm.world_aborted() {
            panic!(
                "rank {} aborting during try_wait_all: a peer rank failed",
                comm.rank()
            );
        }
        if let Some(e) = comm.group_error(watched) {
            return Err(e);
        }
        if std::time::Instant::now() >= deadline {
            return Err(crate::error::CommError::Timeout {
                rank: comm.rank(),
                src: watched,
                tag: requests
                    .iter()
                    .find(|r| !r.is_complete())
                    .map(|r| r.tag)
                    .unwrap_or(0),
            });
        }
        let _ = mb.wait_any_posted(&pending, slice);
    }
    let out: Vec<Vec<T>> = requests
        .into_iter()
        .map(|mut r| r.data.take().expect("try_wait_all: incomplete request"))
        .collect();
    let bytes: usize = out.iter().map(|v| std::mem::size_of_val(v.as_slice())).sum();
    span.bytes(bytes as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::communicator::{ANY_SOURCE as ANY_SRC, ANY_TAG};
    use crate::request::wait_all;
    use crate::world::World;

    #[test]
    fn isend_irecv_roundtrip() {
        World::builder(2).run(|c| {
            if c.rank() == 0 {
                let req = c.isend(1, 3, &[1.5f64, 2.5, 3.5]);
                req.wait();
            } else {
                let req = c.irecv::<f64>(0, 3);
                assert_eq!(req.wait(), vec![1.5, 2.5, 3.5]);
            }
        });
    }

    #[test]
    fn irecv_test_polls_without_blocking() {
        World::builder(2).run(|c| {
            if c.rank() == 0 {
                c.barrier();
                c.isend(1, 9, &[42u32]).wait();
            } else {
                let mut req = c.irecv::<u32>(0, 9);
                // Nothing sent yet: poll must not block or complete.
                assert!(!req.test());
                c.barrier();
                while !req.test() {
                    std::hint::spin_loop();
                }
                assert_eq!(req.wait(), vec![42]);
            }
        });
    }

    #[test]
    fn irecv_wildcards_resolve_on_completion() {
        World::builder(2).run(|c| {
            if c.rank() == 0 {
                c.isend(1, 77, &[5u8]).wait();
            } else {
                let req = c.irecv::<u8>(ANY_SRC, ANY_TAG);
                let (data, src, tag) = req.wait_with_meta();
                assert_eq!(data, vec![5]);
                assert_eq!(src, 0);
                assert_eq!(tag, 77);
            }
        });
    }

    #[test]
    fn wait_all_returns_in_posted_order() {
        World::builder(4).run(|c| {
            if c.rank() == 0 {
                let reqs: Vec<_> = (1..4).map(|s| c.irecv::<u64>(s, 1)).collect();
                let got = wait_all(reqs);
                assert_eq!(got, vec![vec![100], vec![200], vec![300]]);
            } else {
                c.isend(0, 1, &[c.rank() as u64 * 100]).wait();
            }
        });
    }

    #[test]
    fn dropped_incomplete_request_balances_the_gauge() {
        let (_, trace) = World::builder(2).run_traced(|c| {
            if c.rank() == 1 {
                let req = c.irecv::<u8>(0, 5);
                drop(req); // cancelled: rank 0 never sends on tag 5
            }
            c.barrier();
        });
        assert_eq!(trace.rank(1).outstanding_requests(), 0);
        assert_eq!(trace.rank(1).peak_outstanding(), 1);
    }

    #[test]
    fn pooled_sends_hit_after_warmup() {
        let (_, trace) = World::builder(2).run_traced(|c| {
            for i in 0..50u64 {
                if c.rank() == 0 {
                    c.isend(1, i, &[i; 64]).wait();
                } else {
                    let _ = c.irecv::<u64>(0, i).wait();
                }
                // The pooled envelope returns to rank 0's pool when rank 1
                // unpacks it; barrier so the next isend sees it free.
                c.barrier();
            }
        });
        let t = trace.rank(0);
        assert_eq!(t.pool_hits() + t.pool_misses(), 50);
        assert!(
            t.pool_hit_rate() > 0.9,
            "hit rate {:.2} (hits {} misses {})",
            t.pool_hit_rate(),
            t.pool_hits(),
            t.pool_misses()
        );
    }
}
