//! Performance model of the low-order (FFT) solver at paper scale,
//! counting exactly what `beatnik_core::ZModel` does per timestep.

use crate::{fabric_contention, reshape_time};
use beatnik_model::{AllToAllCost, ComputeModel, Machine, NetworkModel};

/// Bytes of one complex grid value.
const COMPLEX_BYTES: f64 = 16.0;
/// Distributed 2D transforms per derivative evaluation (w1, w2 forward;
/// Riesz inverse; S forward; ∂S/∂x, ∂S/∂y inverse; Δw1, Δw2 inverse).
const TRANSFORMS_PER_EVAL: f64 = 8.0;
/// Derivative evaluations per RK3 step.
const EVALS_PER_STEP: f64 = 3.0;
/// Reshapes per distributed 2D transform: the implementation uses
/// transposed-output spectra (block→rows→cols on the way in, cols→rows→
/// block on the way out), i.e. 2 reshapes per transform instead of 3.
const RESHAPES_PER_TRANSFORM: f64 = 2.0;
/// Global-memory passes a large GPU FFT makes over its data
/// (multi-kernel Stockham stages plus load/store).
const FFT_MEM_PASSES: f64 = 6.0;
/// Stencil/geometry field sweeps per derivative evaluation (tangents,
/// normals, sheet quantities, S assembly, updates).
const FIELD_SWEEPS_PER_EVAL: f64 = 12.0;

/// Low-order solver cost model.
pub struct LowOrderModel {
    machine: Machine,
    compute: ComputeModel,
    /// heFFTe-style exchange selection.
    pub algo: AllToAllCost,
    /// Whether reshapes run in pencil subcommunicators.
    pub pencils: bool,
    /// Whether intermediates are packed contiguous (reorder).
    pub reorder: bool,
}

impl LowOrderModel {
    /// Model with heFFTe-default tuning (alltoall + pencils + reorder).
    pub fn new(machine: &Machine) -> Self {
        LowOrderModel {
            machine: machine.clone(),
            compute: ComputeModel::new(machine),
            algo: AllToAllCost::Pairwise,
            pencils: true,
            reorder: true,
        }
    }

    /// Per-step compute time for `local_points` grid points per rank of a
    /// `global_side`² global mesh.
    pub fn compute_time(&self, local_points: f64, global_side: f64) -> f64 {
        // Local FFT work: 5·n·log2(N) flops per transform over local n.
        let log_n = (global_side * global_side).log2().max(1.0);
        let fft_flops = 5.0 * local_points * log_n * TRANSFORMS_PER_EVAL * EVALS_PER_STEP;
        let fft_bytes = FFT_MEM_PASSES
            * COMPLEX_BYTES
            * local_points
            * TRANSFORMS_PER_EVAL
            * EVALS_PER_STEP;
        let fft = self.compute.kernel_time(fft_flops, fft_bytes);
        // Geometry/stencil sweeps (8 B/field value, read+write).
        let sweep_bytes = FIELD_SWEEPS_PER_EVAL * EVALS_PER_STEP * 16.0 * local_points;
        let sweeps = self.compute.kernel_time(30.0 * local_points * EVALS_PER_STEP, sweep_bytes);
        // Pack/unpack staging around each reshape; skipping reorder trades
        // packing for strided transform passes (~1.5x transform traffic).
        let reshapes = RESHAPES_PER_TRANSFORM * TRANSFORMS_PER_EVAL * EVALS_PER_STEP;
        let staging = if self.reorder {
            reshapes * self.compute.pack_time(COMPLEX_BYTES * local_points)
        } else {
            0.5 * fft // strided access penalty on every transform pass
        };
        fft + sweeps + staging
    }

    /// Per-step communication time at `ranks` ranks with `local_points`
    /// per rank.
    pub fn comm_time(&self, local_points: f64, ranks: usize) -> f64 {
        let volume = COMPLEX_BYTES * local_points;
        let reshapes_per_step = RESHAPES_PER_TRANSFORM * TRANSFORMS_PER_EVAL * EVALS_PER_STEP;
        let t_one = if self.pencils {
            // First/last reshapes inside sqrt(P)-sized groups, middle
            // reshape global.
            let side = (ranks as f64).sqrt().round().max(1.0) as usize;
            let sub = reshape_time(&self.machine, ranks, side, volume, self.algo);
            let global = reshape_time(&self.machine, ranks, ranks, volume, self.algo);
            (2.0 * sub + global) / 3.0
        } else {
            reshape_time(&self.machine, ranks, ranks, volume, self.algo)
        };
        // Halo exchanges for the geometry stencils: 4 neighbor messages of
        // 2-deep rows/cols of 5 fields per evaluation.
        let net = NetworkModel::new(&self.machine, ranks);
        let side_pts = local_points.sqrt();
        let halo_bytes = 2.0 * side_pts * 5.0 * 8.0;
        let halos = EVALS_PER_STEP * 4.0 * net.p2p_time(halo_bytes as usize);
        reshapes_per_step * t_one + halos
    }

    /// Total per-step time.
    pub fn step_time(&self, local_points: f64, global_side: f64, ranks: usize) -> f64 {
        self.compute_time(local_points, global_side) + self.comm_time(local_points, ranks)
    }

    /// Figure-3 configuration: weak scaling with the paper's per-GPU base
    /// mesh (4864² points per GPU).
    pub fn weak_step_time(&self, ranks: usize) -> f64 {
        let per_gpu = 4864.0 * 4864.0;
        let global_side = 4864.0 * (ranks as f64).sqrt();
        self.step_time(per_gpu, global_side, ranks)
    }

    /// Figure-4 configuration: strong scaling of a fixed 4864² mesh.
    pub fn strong_step_time(&self, ranks: usize) -> f64 {
        let total = 4864.0 * 4864.0;
        self.step_time(total / ranks as f64, 4864.0, ranks)
    }

    /// Fabric contention at a rank count (exposed for reporting).
    pub fn contention(&self, ranks: usize) -> f64 {
        fabric_contention(&self.machine, ranks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_model::Machine;

    fn model() -> LowOrderModel {
        LowOrderModel::new(&Machine::lassen())
    }

    #[test]
    fn weak_scaling_runtime_grows_monotonically_offnode() {
        let m = model();
        let mut last = m.weak_step_time(8);
        for p in [16, 32, 64, 128, 256, 512, 1024] {
            let t = m.weak_step_time(p);
            assert!(t > last, "weak time must grow at {p}: {t} vs {last}");
            last = t;
        }
    }

    #[test]
    fn weak_scaling_slope_decreases_past_256() {
        // Paper: "runtime increases approximately linearly between 4 and
        // 196 and between 256 and 1024 but with a smaller slope".
        let m = model();
        let early = m.weak_step_time(256) - m.weak_step_time(64);
        let late = m.weak_step_time(1024) - m.weak_step_time(256);
        // Same 4x rank growth on a log axis; the later increment is
        // smaller.
        assert!(late < early, "late {late} vs early {early}");
    }

    #[test]
    fn strong_scaling_speedup_matches_paper_band() {
        // Paper §5.2: 3.5x speedup from 4 to 64 GPUs (21% efficiency),
        // then performance "turns over and begins to decrease".
        let m = model();
        let t4 = m.strong_step_time(4);
        let t64 = m.strong_step_time(64);
        let speedup = t4 / t64;
        assert!(
            speedup > 2.0 && speedup < 6.0,
            "4->64 speedup {speedup} outside the paper-like band"
        );
        // Turnover: 1024 GPUs are slower than 64.
        assert!(m.strong_step_time(1024) > t64);
    }

    #[test]
    fn compute_scales_linearly_with_points() {
        let m = model();
        let c1 = m.compute_time(1e6, 4864.0);
        let c4 = m.compute_time(4e6, 4864.0);
        assert!((c4 / c1 - 4.0).abs() < 0.3);
    }
}
