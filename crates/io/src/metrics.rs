//! Metrics-plane exports: OpenMetrics text exposition, JSON snapshots,
//! the per-phase communication matrix as CSV, and the critical-path
//! analysis as JSON.
//!
//! The text exposition is the scrape format Prometheus-compatible
//! collectors ingest; `rocketrig --metrics <path>` rewrites it every N
//! steps so a file-tailing exporter (or a human with `watch cat`) sees
//! the run live. The JSON snapshot carries the same families for
//! scripted analysis without an OpenMetrics parser.

use beatnik_comm::telemetry::metrics::{
    openmetrics_text, MetricKind, MetricValue, MetricsSnapshot,
};
use beatnik_comm::telemetry::{algos, sizebins, CriticalPath};
use beatnik_comm::WorldTrace;
use beatnik_json::Value;
use std::io::Write;
use std::path::Path;

/// Write a snapshot as OpenMetrics / Prometheus text exposition.
pub fn write_openmetrics(snap: &MetricsSnapshot, path: impl AsRef<Path>) -> std::io::Result<()> {
    let text = openmetrics_text(snap);
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    out.write_all(text.as_bytes())?;
    out.flush()
}

/// The JSON form of a metrics snapshot (stable family/sample order —
/// registration order, synthesized families last).
pub fn metrics_json(snap: &MetricsSnapshot) -> Value {
    let families: Vec<Value> = snap
        .families
        .iter()
        .map(|fam| {
            let kind = match fam.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            let samples: Vec<Value> = fam
                .samples
                .iter()
                .map(|s| {
                    let labels = Value::Object(
                        s.labels
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                            .collect(),
                    );
                    let mut obj = vec![("labels".to_string(), labels)];
                    match &s.value {
                        MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                            obj.push(("value".to_string(), Value::UInt(*v)));
                        }
                        MetricValue::Histogram { buckets, count, sum } => {
                            // Only occupied buckets, labelled by the
                            // canonical sizebin edge, to keep files small.
                            let b: Vec<Value> = buckets
                                .iter()
                                .enumerate()
                                .filter(|(_, &c)| c > 0)
                                .map(|(i, &c)| {
                                    Value::Object(vec![
                                        ("le".to_string(), Value::Str(sizebins::label(i))),
                                        ("count".to_string(), Value::UInt(c)),
                                    ])
                                })
                                .collect();
                            obj.push(("buckets".to_string(), Value::Array(b)));
                            obj.push(("count".to_string(), Value::UInt(*count)));
                            obj.push(("sum".to_string(), Value::UInt(*sum)));
                        }
                    }
                    Value::Object(obj)
                })
                .collect();
            Value::Object(vec![
                ("name".to_string(), Value::Str(fam.name.clone())),
                ("kind".to_string(), Value::Str(kind.to_string())),
                ("help".to_string(), Value::Str(fam.help.clone())),
                ("samples".to_string(), Value::Array(samples)),
            ])
        })
        .collect();
    Value::Object(vec![("families".to_string(), Value::Array(families))])
}

/// Write a snapshot as JSON.
pub fn write_metrics_json(snap: &MetricsSnapshot, path: impl AsRef<Path>) -> std::io::Result<()> {
    let json = beatnik_json::to_string_pretty(&metrics_json(snap));
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    out.write_all(json.as_bytes())?;
    out.flush()
}

/// Write the per-phase P×P communication matrix as CSV, one row per
/// `(src, dst, phase, algo)` cell with message and byte totals.
pub fn write_comm_matrix_csv(trace: &WorldTrace, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    writeln!(out, "src,dst,phase,algo,messages,bytes")?;
    for cell in trace.phased_matrix() {
        writeln!(
            out,
            "{},{},{},{},{},{}",
            cell.src,
            cell.dst,
            cell.phase,
            algos::name(cell.algo).unwrap_or(""),
            cell.messages,
            cell.bytes
        )?;
    }
    out.flush()
}

/// The JSON form of a critical-path analysis.
pub fn critical_path_json(cp: &CriticalPath) -> Value {
    let steps: Vec<Value> = cp
        .steps
        .iter()
        .map(|s| {
            let segments: Vec<Value> = s
                .segments
                .iter()
                .map(|seg| {
                    Value::Object(vec![
                        ("phase".to_string(), Value::Str(seg.phase.clone())),
                        ("dur_s".to_string(), Value::Float(seg.dur_s)),
                        ("wait_s".to_string(), Value::Float(seg.wait_s)),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("step".to_string(), Value::UInt(s.step as u64)),
                ("critical_rank".to_string(), Value::UInt(s.critical_rank as u64)),
                ("dur_s".to_string(), Value::Float(s.dur_s)),
                ("segments".to_string(), Value::Array(segments)),
                (
                    "slack_s".to_string(),
                    Value::Array(s.slack_s.iter().map(|&x| Value::Float(x)).collect()),
                ),
            ])
        })
        .collect();
    let bound_by: Vec<Value> = cp
        .bound_by
        .iter()
        .map(|(phase, secs)| {
            Value::Object(vec![
                ("phase".to_string(), Value::Str(phase.clone())),
                ("time_s".to_string(), Value::Float(*secs)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("steps".to_string(), Value::Array(steps)),
        ("total_s".to_string(), Value::Float(cp.total_s)),
        ("bound_by".to_string(), Value::Array(bound_by)),
        (
            "mean_slack_s".to_string(),
            Value::Array(cp.mean_slack_s.iter().map(|&x| Value::Float(x)).collect()),
        ),
    ])
}

/// Write a critical-path analysis as JSON (`critical-path.json`).
pub fn write_critical_path_json(cp: &CriticalPath, path: impl AsRef<Path>) -> std::io::Result<()> {
    let json = beatnik_json::to_string_pretty(&critical_path_json(cp));
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    out.write_all(json.as_bytes())?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_comm::World;

    #[test]
    fn metrics_exports_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("beatnik_metrics_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap_slot: std::sync::Mutex<Option<MetricsSnapshot>> = std::sync::Mutex::new(None);
        let (_, trace, timeline) = World::builder(2).run_profiled(|c| {
            {
                let _p = c.telemetry().phase("step");
                let _h = c.telemetry().phase("halo");
                if c.rank() == 0 {
                    c.send(1, 9, vec![1u8, 2, 3]);
                } else {
                    let _ = c.recv::<u8>(0, 9);
                }
            }
            c.barrier();
            if c.rank() == 0 {
                *snap_slot.lock().unwrap() = c.metrics_snapshot();
            }
        });
        let snap = snap_slot.into_inner().unwrap().unwrap();

        let om = dir.join("metrics.om");
        write_openmetrics(&snap, &om).unwrap();
        let text = std::fs::read_to_string(&om).unwrap();
        assert!(text.contains("# TYPE beatnik_comm_bytes counter"), "{text}");
        assert!(text.contains("beatnik_comm_matrix_bytes_total{"), "{text}");
        assert!(text.ends_with("# EOF\n"));

        let js = dir.join("metrics.json");
        write_metrics_json(&snap, &js).unwrap();
        let v = beatnik_json::parse(&std::fs::read_to_string(&js).unwrap()).unwrap();
        let Value::Array(fams) = v.get("families").unwrap() else {
            panic!("families must be an array");
        };
        assert!(fams.iter().any(|f| {
            matches!(f.get("name"), Some(Value::Str(n)) if n == "beatnik_comm_messages_total")
        }));

        let csv = dir.join("matrix.csv");
        write_comm_matrix_csv(&trace, &csv).unwrap();
        let text = std::fs::read_to_string(&csv).unwrap();
        assert!(text.starts_with("src,dst,phase,algo,messages,bytes"));
        assert!(text.contains("0,1,halo,,1,3"), "{text}");

        let cp = timeline.critical_path("step");
        let cpj = dir.join("critical-path.json");
        write_critical_path_json(&cp, &cpj).unwrap();
        let v = beatnik_json::parse(&std::fs::read_to_string(&cpj).unwrap()).unwrap();
        assert!(matches!(v.get("steps"), Some(Value::Array(_))));
        assert!(v.get("total_s").is_some());
    }
}
