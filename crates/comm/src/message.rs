//! Message envelopes moved between rank mailboxes.
//!
//! A message is a typed `Vec<T>` boxed as `dyn Any` so the mailbox can be
//! type-agnostic while transfers stay zero-copy (the vector's heap buffer
//! moves between threads untouched). The envelope carries the metadata MPI
//! would put on the wire: source rank, tag, and the payload size in bytes
//! (used by the instrumentation layer).

use std::any::Any;

/// Marker trait for element types that can travel in a message.
///
/// Blanket-implemented for every `Send + 'static` type; the bound exists so
/// signatures read as intent ("this is message data") and so a future
/// serializing transport could narrow it.
pub trait CommData: Send + 'static {}
impl<T: Send + 'static> CommData for T {}

/// A typed message in flight between two ranks of one communicator.
pub struct Envelope {
    // NOTE: `payload` is `dyn Any`, so Debug is implemented manually below.
    /// Rank of the sender *within the communicator the message was sent on*.
    pub src: usize,
    /// User-chosen matching tag.
    pub tag: u64,
    /// Payload: a `Vec<T>` boxed as `Any`.
    pub payload: Box<dyn Any + Send>,
    /// Payload size in bytes (`len * size_of::<T>()`), for tracing.
    pub bytes: usize,
    /// Number of elements in the payload vector.
    pub count: usize,
    /// Name of the element type, for diagnostics on mismatched receives.
    pub type_name: &'static str,
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("src", &self.src)
            .field("tag", &self.tag)
            .field("bytes", &self.bytes)
            .field("count", &self.count)
            .field("type_name", &self.type_name)
            .finish_non_exhaustive()
    }
}

impl Envelope {
    /// Wrap a typed buffer into an envelope.
    pub fn new<T: CommData>(src: usize, tag: u64, data: Vec<T>) -> Self {
        let count = data.len();
        let bytes = count * std::mem::size_of::<T>();
        Envelope {
            src,
            tag,
            payload: Box::new(data),
            bytes,
            count,
            type_name: std::any::type_name::<T>(),
        }
    }

    /// Recover the typed buffer, panicking with context on a type mismatch.
    ///
    /// A mismatch is a protocol error between sender and receiver — the
    /// moral equivalent of an MPI datatype mismatch — so, like MPI, we
    /// treat it as fatal.
    pub fn into_data<T: CommData>(self) -> Vec<T> {
        match self.payload.downcast::<Vec<T>>() {
            Ok(v) => *v,
            Err(_) => panic!(
                "message type mismatch: received {} from rank {} (tag {}) but tried to \
                 receive as Vec<{}>",
                self.type_name,
                self.src,
                self.tag,
                std::any::type_name::<T>()
            ),
        }
    }

    /// Whether this envelope matches a `(src, tag)` selector pair.
    /// `usize::MAX` / `u64::MAX` act as wildcards (ANY_SOURCE / ANY_TAG).
    #[inline]
    pub fn matches(&self, src: usize, tag: u64) -> bool {
        (src == usize::MAX || self.src == src) && (tag == u64::MAX || self.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_data_and_metadata() {
        let env = Envelope::new(2, 17, vec![1.0f64, 2.0, 3.0]);
        assert_eq!(env.src, 2);
        assert_eq!(env.tag, 17);
        assert_eq!(env.count, 3);
        assert_eq!(env.bytes, 24);
        let v: Vec<f64> = env.into_data();
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matching_with_wildcards() {
        let env = Envelope::new(1, 5, vec![0u8]);
        assert!(env.matches(1, 5));
        assert!(env.matches(usize::MAX, 5));
        assert!(env.matches(1, u64::MAX));
        assert!(env.matches(usize::MAX, u64::MAX));
        assert!(!env.matches(2, 5));
        assert!(!env.matches(1, 6));
    }

    #[test]
    #[should_panic(expected = "message type mismatch")]
    fn type_mismatch_panics_with_context() {
        let env = Envelope::new(0, 0, vec![1u32, 2]);
        let _: Vec<f32> = env.into_data();
    }

    #[test]
    fn zero_sized_payloads_are_fine() {
        let env = Envelope::new(0, 0, Vec::<f64>::new());
        assert_eq!(env.bytes, 0);
        assert_eq!(env.count, 0);
        let v: Vec<f64> = env.into_data();
        assert!(v.is_empty());
    }
}
