//! Lane-parallel radix-2 butterfly kernels.
//!
//! One stage of the iterative Cooley–Tukey transform applies, to every
//! block of `width = 2 * half` elements, the `half` butterflies
//! `(a, b) → (a + w·b, a − w·b)` with the stage's twiddles `w` read at
//! unit stride (the plan stores them stage-contiguously; see
//! [`crate::Fft`]). This module owns how those butterflies are executed:
//!
//! * [`stage_scalar`] — the lane-serial reference. Every other kernel is
//!   required to be **bit-for-bit identical** to it, which pins the
//!   whole FFT's output regardless of dispatch.
//! * `stage_sse2` — one complex per `__m128d`. Always available on
//!   x86_64 (SSE2 is baseline).
//! * `stage_avx` — two complexes per `__m256d`, used when the CPU
//!   reports AVX at runtime and the stage has at least two butterflies
//!   per block.
//!
//! Bit-exactness holds because each vector lane performs literally the
//! same IEEE-754 operations as the scalar butterfly, in the same order:
//! the complex product is `(br·wr − bi·wi, br·wi + bi·wr)`, where the
//! vector form computes the subtraction as `br·wr + (−(bi·wi))` — and
//! `a + (−b) ≡ a − b` exactly in IEEE arithmetic. The inverse
//! transform's conjugation is a sign flip of `wi` before the product in
//! both forms. The first stage (`half == 1`, `w = 1`) skips the product
//! entirely in *all* paths, so it too is shared bit-for-bit.
//!
//! Non-x86_64 targets compile only the scalar path; the dispatcher
//! degrades to it with no behavioural difference.

use crate::complex::Complex;

/// Apply one butterfly stage with automatic kernel selection.
///
/// `tw` must hold exactly `half` forward twiddles for this stage
/// (`w_k = e^{−2πik/width}`); `conj` selects the inverse transform's
/// conjugated twiddles. `data.len()` must be a multiple of `2 * half`.
#[inline]
pub(crate) fn stage(data: &mut [Complex], half: usize, tw: &[Complex], conj: bool) {
    debug_assert_eq!(tw.len(), half);
    debug_assert_eq!(data.len() % (2 * half), 0);
    if half == 1 {
        stage_half1(data);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if half >= 2 && std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX support was just verified at runtime.
            unsafe { x86::stage_avx(data, half, tw, conj) };
            return;
        }
        // SSE2 is part of the x86_64 baseline.
        unsafe { x86::stage_sse2(data, half, tw, conj) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    stage_scalar(data, half, tw, conj);
}

/// Lane-serial reference stage: the arithmetic every SIMD kernel must
/// reproduce bit-for-bit. Public to the crate so plans can offer a
/// forced-scalar transform for equivalence tests and benchmarks.
pub(crate) fn stage_scalar(data: &mut [Complex], half: usize, tw: &[Complex], conj: bool) {
    if half == 1 {
        stage_half1(data);
        return;
    }
    let width = 2 * half;
    for block in data.chunks_exact_mut(width) {
        let (lo, hi) = block.split_at_mut(half);
        for k in 0..half {
            let w = if conj { tw[k].conj() } else { tw[k] };
            let a = lo[k];
            let b = hi[k] * w;
            lo[k] = a + b;
            hi[k] = a - b;
        }
    }
}

/// First stage: `w = 1`, so the butterfly is a plain sum/difference of
/// adjacent elements. Shared by every dispatch path (multiplying by the
/// exact constant `1 − 0i` could still flip signed zeros, so skipping
/// the product *uniformly* is what keeps all paths bit-identical).
fn stage_half1(data: &mut [Complex]) {
    for pair in data.chunks_exact_mut(2) {
        let a = pair[0];
        let b = pair[1];
        pair[0] = a + b;
        pair[1] = a - b;
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::Complex;
    use core::arch::x86_64::*;

    /// One complex per 128-bit vector: lane 0 = re, lane 1 = im.
    ///
    /// # Safety
    /// Caller guarantees SSE2 (x86_64 baseline) and the slice-shape
    /// invariants of [`super::stage`].
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn stage_sse2(data: &mut [Complex], half: usize, tw: &[Complex], conj: bool) {
        let width = 2 * half;
        // Sign masks: negate the low (real) lane of the cross product,
        // or the high (imaginary) lane of the twiddle for conjugation.
        let neg_lo = _mm_set_pd(0.0, -0.0);
        let neg_hi = _mm_set_pd(-0.0, 0.0);
        for block in data.chunks_exact_mut(width) {
            let (lo, hi) = block.split_at_mut(half);
            for k in 0..half {
                let mut w = _mm_loadu_pd(&tw[k].re); // [wr, wi]
                if conj {
                    w = _mm_xor_pd(w, neg_hi); // [wr, −wi]
                }
                let a = _mm_loadu_pd(&lo[k].re);
                let b = _mm_loadu_pd(&hi[k].re); // [br, bi]
                // b·w = (br·wr − bi·wi, br·wi + bi·wr), the subtraction
                // realised as an add of the sign-flipped product — IEEE
                // identical to the scalar butterfly.
                let br = _mm_unpacklo_pd(b, b); // [br, br]
                let bi = _mm_unpackhi_pd(b, b); // [bi, bi]
                let wsw = _mm_shuffle_pd(w, w, 0b01); // [wi, wr]
                let t = _mm_add_pd(
                    _mm_mul_pd(br, w),
                    _mm_xor_pd(_mm_mul_pd(bi, wsw), neg_lo),
                );
                _mm_storeu_pd(&mut lo[k].re, _mm_add_pd(a, t));
                _mm_storeu_pd(&mut hi[k].re, _mm_sub_pd(a, t));
            }
        }
    }

    /// Two complexes per 256-bit vector; the unpack/shuffle recipe of
    /// the SSE2 kernel applied per 128-bit sublane.
    ///
    /// # Safety
    /// Caller guarantees AVX support (runtime-detected), `half >= 2`,
    /// and the slice-shape invariants of [`super::stage`].
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn stage_avx(data: &mut [Complex], half: usize, tw: &[Complex], conj: bool) {
        debug_assert!(half >= 2 && half.is_multiple_of(2));
        let width = 2 * half;
        let neg_re = _mm256_set_pd(0.0, -0.0, 0.0, -0.0); // flip both real lanes
        let neg_im = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0); // flip both imag lanes
        for block in data.chunks_exact_mut(width) {
            let (lo, hi) = block.split_at_mut(half);
            for k in (0..half).step_by(2) {
                let mut w = _mm256_loadu_pd(&tw[k].re); // [wr0, wi0, wr1, wi1]
                if conj {
                    w = _mm256_xor_pd(w, neg_im);
                }
                let a = _mm256_loadu_pd(&lo[k].re);
                let b = _mm256_loadu_pd(&hi[k].re);
                // In-lane unpacks broadcast each complex's re/im within
                // its own 128-bit sublane.
                let br = _mm256_unpacklo_pd(b, b); // [br0, br0, br1, br1]
                let bi = _mm256_unpackhi_pd(b, b); // [bi0, bi0, bi1, bi1]
                let wsw = _mm256_shuffle_pd(w, w, 0b0101); // [wi0, wr0, wi1, wr1]
                let t = _mm256_add_pd(
                    _mm256_mul_pd(br, w),
                    _mm256_xor_pd(_mm256_mul_pd(bi, wsw), neg_re),
                );
                _mm256_storeu_pd(&mut lo[k].re, _mm256_add_pd(a, t));
                _mm256_storeu_pd(&mut hi[k].re, _mm256_sub_pd(a, t));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, seed: u64) -> Vec<Complex> {
        // Small xorshift so the kernels see full-entropy mantissas, not
        // just smooth ramps.
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (0..n).map(|_| Complex::new(next(), next())).collect()
    }

    fn twiddles_for(half: usize) -> Vec<Complex> {
        let width = 2 * half;
        (0..half)
            .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / width as f64))
            .collect()
    }

    #[test]
    fn dispatched_stages_match_scalar_bit_for_bit() {
        for half in [1usize, 2, 4, 8, 16, 64, 256] {
            let tw = twiddles_for(half);
            for blocks in [1usize, 2, 3] {
                for conj in [false, true] {
                    let input = noise(2 * half * blocks, 0x9E37_79B9 + half as u64);
                    let mut fast = input.clone();
                    let mut slow = input;
                    stage(&mut fast, half, &tw, conj);
                    stage_scalar(&mut slow, half, &tw, conj);
                    for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
                        assert_eq!(
                            (f.re.to_bits(), f.im.to_bits()),
                            (s.re.to_bits(), s.im.to_bits()),
                            "half {half} blocks {blocks} conj {conj} elem {i}: {f} vs {s}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn first_stage_is_sum_difference() {
        let mut data = vec![
            Complex::new(1.0, 2.0),
            Complex::new(3.0, -4.0),
            Complex::new(-0.5, 0.0),
            Complex::new(0.25, 1.0),
        ];
        stage(&mut data, 1, &[Complex::new(1.0, 0.0)], false);
        assert_eq!(data[0], Complex::new(4.0, -2.0));
        assert_eq!(data[1], Complex::new(-2.0, 6.0));
        assert_eq!(data[2], Complex::new(-0.25, 1.0));
        assert_eq!(data[3], Complex::new(-0.75, -1.0));
    }
}
