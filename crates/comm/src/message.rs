//! Message envelopes moved between rank mailboxes.
//!
//! A message payload takes one of two forms:
//!
//! * **Typed** — a `Vec<T>` boxed as `dyn Any`, so the mailbox can be
//!   type-agnostic while transfers stay zero-copy (the vector's heap
//!   buffer moves between threads untouched). Used by the blocking
//!   by-value send path and by the **rendezvous** protocol: slice sends
//!   above the eager limit materialise the payload once into an owned
//!   `Vec` that then moves by pointer.
//! * **Pooled** — raw bytes in a [`PooledBuf`] checked out of the sending
//!   rank's [`crate::pool::BufferPool`], tagged with the element
//!   `TypeId`. Used by the **eager** protocol for slice sends at or
//!   below the limit ([`crate::Communicator::isend`]): the sender copies
//!   the slice into a reused envelope, and when the receiver unpacks the
//!   payload the envelope returns to the sender's pool. Restricted to
//!   `T: Copy`.
//!
//! The envelope carries the metadata MPI would put on the wire: source
//! rank, tag, and the payload size in bytes (used by the instrumentation
//! layer).

use crate::error::CommError;
use crate::pool::PooledBuf;
use std::any::{Any, TypeId};

/// Marker trait for element types that can travel in a message.
///
/// Blanket-implemented for every `Send + 'static` type; the bound exists so
/// signatures read as intent ("this is message data") and so a future
/// serializing transport could narrow it.
pub trait CommData: Send + 'static {}
impl<T: Send + 'static> CommData for T {}

/// The two payload transports.
enum Payload {
    /// An owned `Vec<T>` moved by pointer.
    Typed(Box<dyn Any + Send>),
    /// `count` elements of the type with id `elem`, memcpy'd into a
    /// pooled byte envelope.
    Pooled { buf: PooledBuf, elem: TypeId },
}

/// A typed message in flight between two ranks of one communicator.
pub struct Envelope {
    /// Rank of the sender *within the communicator the message was sent on*.
    pub src: usize,
    /// User-chosen matching tag.
    pub tag: u64,
    /// Payload transport (owned vector or pooled bytes).
    payload: Payload,
    /// Payload size in bytes (`len * size_of::<T>()`), for tracing.
    pub bytes: usize,
    /// Number of elements in the payload.
    pub count: usize,
    /// Name of the element type, for diagnostics on mismatched receives.
    pub type_name: &'static str,
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("src", &self.src)
            .field("tag", &self.tag)
            .field("bytes", &self.bytes)
            .field("count", &self.count)
            .field("type_name", &self.type_name)
            .field("pooled", &matches!(self.payload, Payload::Pooled { .. }))
            .finish_non_exhaustive()
    }
}

impl Envelope {
    /// Wrap a typed buffer into an envelope (owned-vector transport).
    pub fn new<T: CommData>(src: usize, tag: u64, data: Vec<T>) -> Self {
        let count = data.len();
        let bytes = count * std::mem::size_of::<T>();
        Envelope {
            src,
            tag,
            payload: Payload::Typed(Box::new(data)),
            bytes,
            count,
            type_name: std::any::type_name::<T>(),
        }
    }

    /// Copy a slice into a pooled byte envelope (pooled transport). The
    /// `T: Copy` bound is what makes the byte-level round trip sound.
    pub fn from_slice<T: CommData + Copy>(
        src: usize,
        tag: u64,
        data: &[T],
        mut buf: PooledBuf,
    ) -> Self {
        buf.fill_from(data);
        Envelope {
            src,
            tag,
            bytes: buf.len(),
            count: data.len(),
            payload: Payload::Pooled {
                buf,
                elem: TypeId::of::<T>(),
            },
            type_name: std::any::type_name::<T>(),
        }
    }

    /// Recover the typed buffer, panicking with context on a type mismatch.
    ///
    /// A mismatch is a protocol error between sender and receiver — the
    /// moral equivalent of an MPI datatype mismatch — so, like MPI, we
    /// treat it as fatal. For pooled payloads this copies the bytes out
    /// and (on drop of the internal buffer) returns the envelope to the
    /// sender's pool.
    pub fn into_data<T: CommData>(self) -> Vec<T> {
        self.try_into_data().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Recover the typed buffer, returning [`CommError::TypeMismatch`]
    /// instead of panicking when the element types disagree. Used by the
    /// fallible receive paths, which must surface protocol errors without
    /// tearing the rank down.
    pub fn try_into_data<T: CommData>(self) -> Result<Vec<T>, CommError> {
        let mismatch = CommError::TypeMismatch {
            expected: std::any::type_name::<T>(),
            got: self.type_name,
            src: self.src,
            tag: self.tag,
        };
        match self.payload {
            Payload::Typed(any) => match any.downcast::<Vec<T>>() {
                Ok(v) => Ok(*v),
                Err(_) => Err(mismatch),
            },
            Payload::Pooled { buf, elem } => {
                if elem != TypeId::of::<T>() {
                    return Err(mismatch);
                }
                // The TypeId check proves this T is exactly the `T: Copy`
                // the buffer was filled from in `from_slice` (the only
                // constructor of pooled payloads), so reconstructing the
                // values with a byte copy is sound even though the `Copy`
                // bound is not visible on this signature.
                let n = self.count * std::mem::size_of::<T>();
                debug_assert!(n <= buf.len());
                let mut out: Vec<T> = Vec::with_capacity(self.count);
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        buf.as_slice().as_ptr(),
                        out.as_mut_ptr().cast::<u8>(),
                        n,
                    );
                    out.set_len(self.count);
                }
                Ok(out)
            }
        }
    }

    /// Whether this envelope matches a `(src, tag)` selector pair.
    /// `usize::MAX` / `u64::MAX` act as wildcards (ANY_SOURCE / ANY_TAG).
    #[inline]
    pub fn matches(&self, src: usize, tag: u64) -> bool {
        (src == usize::MAX || self.src == src) && (tag == u64::MAX || self.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::BufferPool;
    use std::sync::Arc;

    #[test]
    fn roundtrip_preserves_data_and_metadata() {
        let env = Envelope::new(2, 17, vec![1.0f64, 2.0, 3.0]);
        assert_eq!(env.src, 2);
        assert_eq!(env.tag, 17);
        assert_eq!(env.count, 3);
        assert_eq!(env.bytes, 24);
        let v: Vec<f64> = env.into_data();
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn pooled_roundtrip_preserves_data_and_returns_buffer() {
        let pool = Arc::new(BufferPool::new());
        let (buf, _) = pool.acquire(32);
        let env = Envelope::from_slice(1, 9, &[10u32, 20, 30], buf);
        assert_eq!(env.count, 3);
        assert_eq!(env.bytes, 12);
        let v: Vec<u32> = env.into_data();
        assert_eq!(v, vec![10, 20, 30]);
        // The envelope returned its buffer to the pool on unpack.
        assert_eq!(pool.stats().free, 1);
    }

    #[test]
    fn matching_with_wildcards() {
        let env = Envelope::new(1, 5, vec![0u8]);
        assert!(env.matches(1, 5));
        assert!(env.matches(usize::MAX, 5));
        assert!(env.matches(1, u64::MAX));
        assert!(env.matches(usize::MAX, u64::MAX));
        assert!(!env.matches(2, 5));
        assert!(!env.matches(1, 6));
    }

    #[test]
    #[should_panic(expected = "message type mismatch")]
    fn type_mismatch_panics_with_context() {
        let env = Envelope::new(0, 0, vec![1u32, 2]);
        let _: Vec<f32> = env.into_data();
    }

    #[test]
    #[should_panic(expected = "message type mismatch")]
    fn pooled_type_mismatch_panics_with_context() {
        let pool = Arc::new(BufferPool::new());
        let (buf, _) = pool.acquire(8);
        let env = Envelope::from_slice(0, 0, &[1u32, 2], buf);
        let _: Vec<f32> = env.into_data();
    }

    #[test]
    fn try_into_data_reports_mismatch_as_error() {
        let env = Envelope::new(4, 11, vec![1u32, 2]);
        let err = env.try_into_data::<f32>().unwrap_err();
        assert!(matches!(
            err,
            CommError::TypeMismatch { src: 4, tag: 11, .. }
        ));
        assert!(err.to_string().contains("message type mismatch"));
    }

    #[test]
    fn zero_sized_payloads_are_fine() {
        let env = Envelope::new(0, 0, Vec::<f64>::new());
        assert_eq!(env.bytes, 0);
        assert_eq!(env.count, 0);
        let v: Vec<f64> = env.into_data();
        assert!(v.is_empty());
    }
}
