//! Typed world configuration: the single gathering point for every
//! `BEATNIK_*` environment variable the comm runtime reads.
//!
//! Before this module, env reads were scattered (the eager limit in
//! `transport`, the fault seed in `fault`); each new knob added another
//! ad-hoc `std::env::var` call site. [`CommConfig::from_env`] is now the
//! one place the environment is consulted, [`crate::WorldBuilder`]
//! carries the resulting struct, and `rocketrig --print-config` prints
//! it so a run's effective configuration is always inspectable.
//!
//! | variable                 | field            | default          |
//! |--------------------------|------------------|------------------|
//! | `BEATNIK_TRANSPORT`      | `transport`      | `thread`         |
//! | `BEATNIK_EAGER_LIMIT`    | `eager_limit`    | 8192 bytes       |
//! | `BEATNIK_FAULT_SEED`     | `fault_seed`     | `0xBEA7`         |
//! | `BEATNIK_RECV_TIMEOUT_MS`| `recv_timeout`   | 120 000 ms       |
//! | `BEATNIK_SHM_RING_BYTES` | `shm_ring_bytes` | 8 MiB            |
//!
//! Unset or unparseable values fall back to the defaults — a typo'd
//! override must never abort a run, only fail to take effect.

use crate::transport::TransportKind;
use std::time::Duration;

/// Name of the environment variable selecting the transport backend.
pub const TRANSPORT_ENV: &str = "BEATNIK_TRANSPORT";

/// Name of the environment variable overriding the receive deadline.
pub const RECV_TIMEOUT_ENV: &str = "BEATNIK_RECV_TIMEOUT_MS";

/// Name of the environment variable sizing shared-memory rings.
pub const SHM_RING_BYTES_ENV: &str = "BEATNIK_SHM_RING_BYTES";

/// Default per-pair shared-memory ring capacity. Large enough that a
/// rendezvous payload at rocketrig scales fits whole; a frame larger
/// than the ring is a hard error telling the user to raise this.
pub const DEFAULT_SHM_RING_BYTES: usize = 8 * 1024 * 1024;

/// Every tunable the comm runtime reads from the environment, resolved
/// once at world construction (a mid-run env change cannot split a
/// world across two configurations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommConfig {
    /// Which [`TransportKind`] carries envelopes between ranks.
    pub transport: TransportKind,
    /// Eager/rendezvous crossover in payload bytes (`0` forces every
    /// sized send onto the rendezvous path).
    pub eager_limit: usize,
    /// Seed for the deterministic fault-injection engine.
    pub fault_seed: u64,
    /// Stall limit for blocking receives; doubles as the
    /// failure-detection deadline for fault-tolerant drivers.
    pub recv_timeout: Duration,
    /// Capacity of each per-pair shared-memory ring (shmem backend).
    pub shm_ring_bytes: usize,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            transport: TransportKind::Thread,
            eager_limit: crate::transport::DEFAULT_EAGER_LIMIT,
            fault_seed: crate::fault::DEFAULT_FAULT_SEED,
            recv_timeout: crate::world::DEFAULT_RECV_TIMEOUT,
            shm_ring_bytes: DEFAULT_SHM_RING_BYTES,
        }
    }
}

impl CommConfig {
    /// Resolve the configuration from the process environment. This is
    /// the *only* place `BEATNIK_*` variables are consulted.
    pub fn from_env() -> Self {
        let get = |name: &str| std::env::var(name).ok();
        Self::from_lookup(|name| get(name))
    }

    /// Resolve from an arbitrary lookup function. Split out from
    /// [`CommConfig::from_env`] so parsing is testable without mutating
    /// process-global environment state under a parallel test runner.
    pub fn from_lookup<F: Fn(&str) -> Option<String>>(get: F) -> Self {
        let d = CommConfig::default();
        CommConfig {
            transport: get(TRANSPORT_ENV)
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(d.transport),
            eager_limit: parse_or(get(crate::transport::EAGER_LIMIT_ENV), d.eager_limit),
            fault_seed: parse_or(get(crate::fault::FAULT_SEED_ENV), d.fault_seed),
            recv_timeout: get(RECV_TIMEOUT_ENV)
                .and_then(|s| s.trim().parse::<u64>().ok())
                .map(Duration::from_millis)
                .unwrap_or(d.recv_timeout),
            shm_ring_bytes: parse_or(get(SHM_RING_BYTES_ENV), d.shm_ring_bytes),
        }
    }
}

fn parse_or<T: std::str::FromStr>(raw: Option<String>, default: T) -> T {
    raw.and_then(|s| s.trim().parse().ok()).unwrap_or(default)
}

impl std::fmt::Display for CommConfig {
    /// `key = value` lines, one per field, annotated with the env var
    /// that controls it — the format `rocketrig --print-config` emits.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "transport      = {} ({TRANSPORT_ENV})", self.transport)?;
        writeln!(
            f,
            "eager_limit    = {} ({})",
            self.eager_limit,
            crate::transport::EAGER_LIMIT_ENV
        )?;
        writeln!(
            f,
            "fault_seed     = {:#x} ({})",
            self.fault_seed,
            crate::fault::FAULT_SEED_ENV
        )?;
        writeln!(
            f,
            "recv_timeout   = {}ms ({RECV_TIMEOUT_ENV})",
            self.recv_timeout.as_millis()
        )?;
        write!(
            f,
            "shm_ring_bytes = {} ({SHM_RING_BYTES_ENV})",
            self.shm_ring_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_when_nothing_is_set() {
        let c = CommConfig::from_lookup(|_| None);
        assert_eq!(c, CommConfig::default());
        assert_eq!(c.transport, TransportKind::Thread);
        assert_eq!(c.eager_limit, 8192);
        assert_eq!(c.fault_seed, 0xBEA7);
        assert_eq!(c.recv_timeout, Duration::from_secs(120));
    }

    #[test]
    fn overrides_parse_and_garbage_falls_back() {
        let c = CommConfig::from_lookup(|name| match name {
            TRANSPORT_ENV => Some("tcp".into()),
            "BEATNIK_EAGER_LIMIT" => Some("0".into()),
            "BEATNIK_FAULT_SEED" => Some("42".into()),
            RECV_TIMEOUT_ENV => Some("1500".into()),
            SHM_RING_BYTES_ENV => Some("65536".into()),
            _ => None,
        });
        assert_eq!(c.transport, TransportKind::Tcp);
        assert_eq!(c.eager_limit, 0);
        assert_eq!(c.fault_seed, 42);
        assert_eq!(c.recv_timeout, Duration::from_millis(1500));
        assert_eq!(c.shm_ring_bytes, 65536);

        let c = CommConfig::from_lookup(|_| Some("garbage".into()));
        assert_eq!(c, CommConfig::default());
    }

    #[test]
    fn display_names_every_env_var() {
        let text = CommConfig::default().to_string();
        for var in [
            TRANSPORT_ENV,
            "BEATNIK_EAGER_LIMIT",
            "BEATNIK_FAULT_SEED",
            RECV_TIMEOUT_ENV,
            SHM_RING_BYTES_ENV,
        ] {
            assert!(text.contains(var), "missing {var} in:\n{text}");
        }
    }
}
