//! HTTP-surface integration tests: golden admission-error bodies and
//! concurrent metrics scrapes against a live server with a stub runner.

use beatnik_serve::http::request;
use beatnik_serve::{
    serve, JobContext, JobOutcome, JobRunner, Scheduler, SchedulerConfig, ServerHandle,
};
use beatnik_telemetry::metrics::MetricsRegistry;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spins for `ms`, honoring cancel/preempt like a cooperative job.
struct SleepRunner {
    ms: u64,
}

impl JobRunner for SleepRunner {
    fn run(&self, ctx: &JobContext) -> Result<JobOutcome, String> {
        let deadline = Instant::now() + Duration::from_millis(self.ms);
        while Instant::now() < deadline {
            if ctx.cancel_requested() {
                return Ok(JobOutcome::Canceled { at_step: 0 });
            }
            if ctx.preempt_requested() {
                return Ok(JobOutcome::Preempted { at_step: 0 });
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        Ok(JobOutcome::Completed {
            steps: ctx.spec.steps,
            amplitude: 1.0,
            enstrophy: 1.0,
            critical_path: None,
        })
    }
}

fn start(tag: &str, pool: usize, max_queue: usize, ms: u64) -> ServerHandle {
    let cfg = SchedulerConfig {
        pool_ranks: pool,
        max_queue,
        ckpt_dir: std::env::temp_dir().join(format!("beatnik-serve-http-{tag}")),
        ..SchedulerConfig::default()
    };
    let scheduler = Arc::new(Scheduler::new(
        cfg,
        Arc::new(MetricsRegistry::new()),
        Arc::new(SleepRunner { ms }),
    ));
    serve("127.0.0.1:0", scheduler).expect("bind loopback")
}

fn wait_running(addr: &str, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (code, body) = request(addr, "GET", &format!("/jobs/{id}"), None).unwrap();
        assert_eq!(code, 200);
        if body.contains("\"state\":\"running\"") {
            return;
        }
        assert!(Instant::now() < deadline, "job {id} never ran: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Admission failures must come back with *exactly* these bodies —
/// tenants parse them, so the strings are API surface.
#[test]
fn post_jobs_validation_errors_are_golden() {
    let handle = start("golden", 2, 8, 10);
    let addr = handle.addr().to_string();

    let cases = [
        (
            r#"{"order":"fast"}"#,
            r#"{"error":"invalid job spec: unknown order 'fast' (low|medium|high)"}"#,
        ),
        (
            r#"{"mesh_n":512}"#,
            r#"{"error":"invalid job spec: mesh_n 512 exceeds limit 256"}"#,
        ),
        (
            r#"{"deck":"vortex"}"#,
            r#"{"error":"invalid job spec: unknown deck 'vortex' (multimode|singlemode)"}"#,
        ),
        (
            r#"{"steps":0}"#,
            r#"{"error":"invalid job spec: steps must be at least 1"}"#,
        ),
        (
            r#"{"ranks":4,"min_ranks":5}"#,
            r#"{"error":"invalid job spec: min_ranks 5 must be in 1..=ranks (4)"}"#,
        ),
        (
            r#"{"priority":12}"#,
            r#"{"error":"invalid job spec: priority 12 exceeds maximum 9"}"#,
        ),
    ];
    for (body, want) in cases {
        let (code, got) = request(&addr, "POST", "/jobs", Some(body)).unwrap();
        assert_eq!(code, 400, "POST {body} => {got}");
        assert_eq!(got, want, "POST {body}");
    }

    // Malformed JSON is a 400 with the parser's message behind the
    // stable prefix (the exact parse diagnostics are not API).
    let (code, got) = request(&addr, "POST", "/jobs", Some("not json at all")).unwrap();
    assert_eq!(code, 400);
    assert!(
        got.starts_with(r#"{"error":"invalid job spec: json: "#),
        "malformed body => {got}"
    );

    handle.shutdown();
}

#[test]
fn saturated_queue_returns_golden_429() {
    // One rank slot, two queue slots, slow jobs.
    let handle = start("saturated", 1, 2, 2_000);
    let addr = handle.addr().to_string();

    let spec = r#"{"name":"hog","ranks":1,"steps":1}"#;
    let (code, body) = request(&addr, "POST", "/jobs", Some(spec)).unwrap();
    assert_eq!(code, 201, "{body}");
    let id: u64 = body
        .split("\"id\":")
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .and_then(|s| s.parse().ok())
        .unwrap();
    wait_running(&addr, id);

    for _ in 0..2 {
        let (code, body) = request(&addr, "POST", "/jobs", Some(spec)).unwrap();
        assert_eq!(code, 201, "{body}");
    }
    let (code, body) = request(&addr, "POST", "/jobs", Some(spec)).unwrap();
    assert_eq!(code, 429);
    assert_eq!(body, r#"{"error":"queue full (2 jobs waiting)"}"#);

    handle.shutdown();
}

/// `GET /metrics` must stay well-formed under concurrent scrapes while
/// the scheduler is churning jobs.
#[test]
fn concurrent_metrics_scrapes_stay_wellformed() {
    let handle = start("scrape", 2, 64, 30);
    let addr = handle.addr().to_string();

    for i in 0..6 {
        let spec = format!("{{\"name\":\"churn-{i}\",\"ranks\":1,\"steps\":1}}");
        let (code, body) = request(&addr, "POST", "/jobs", Some(&spec)).unwrap();
        assert_eq!(code, 201, "{body}");
    }

    std::thread::scope(|s| {
        for _ in 0..4 {
            let addr = addr.as_str();
            s.spawn(move || {
                for _ in 0..10 {
                    let (code, body) = request(addr, "GET", "/metrics", None).unwrap();
                    assert_eq!(code, 200);
                    assert!(body.contains("beatnik_serve_jobs_submitted_total"), "{body}");
                    assert!(body.contains("beatnik_serve_queue_depth"), "{body}");
                    assert!(body.ends_with("# EOF\n"), "exposition not terminated");
                }
            });
        }
    });

    assert!(
        handle.scheduler().wait_idle(Duration::from_secs(30)),
        "jobs did not drain"
    );
    handle.shutdown();
}
