//! Serial 2D FFT by the row–column method over row-major buffers.
//!
//! Used directly by single-rank solves and as the correctness oracle for
//! the distributed transform in `beatnik-dfft`.

use crate::complex::Complex;
use crate::plan::Fft;

/// Planned 2D transform of an `n_rows × n_cols` row-major grid.
pub struct Fft2d {
    n_rows: usize,
    n_cols: usize,
    row_plan: Fft,
    col_plan: Fft,
}

impl Fft2d {
    /// Plan transforms for an `n_rows × n_cols` grid.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        Fft2d {
            n_rows,
            n_cols,
            row_plan: Fft::new(n_cols),
            col_plan: Fft::new(n_rows),
        }
    }

    /// Grid shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.n_rows, self.n_cols)
    }

    fn check(&self, data: &[Complex]) {
        assert_eq!(
            data.len(),
            self.n_rows * self.n_cols,
            "fft2d: buffer shape mismatch"
        );
    }

    /// In-place forward 2D transform (unnormalized).
    pub fn forward(&self, data: &mut [Complex]) {
        self.check(data);
        for row in data.chunks_exact_mut(self.n_cols) {
            self.row_plan.forward(row);
        }
        self.columns(data, |plan, col| plan.forward(col));
    }

    /// In-place inverse 2D transform (normalized by `1/(rows·cols)`).
    pub fn inverse(&self, data: &mut [Complex]) {
        self.check(data);
        for row in data.chunks_exact_mut(self.n_cols) {
            self.row_plan.inverse(row);
        }
        self.columns(data, |plan, col| plan.inverse(col));
    }

    /// Apply a 1D plan down every column via a gather/scatter scratch
    /// buffer (cache-friendlier than strided butterflies at these sizes).
    fn columns(&self, data: &mut [Complex], f: impl Fn(&Fft, &mut [Complex])) {
        let mut scratch = vec![Complex::default(); self.n_rows];
        for c in 0..self.n_cols {
            for r in 0..self.n_rows {
                scratch[r] = data[r * self.n_cols + c];
            }
            f(&self.col_plan, &mut scratch);
            for r in 0..self.n_rows {
                data[r * self.n_cols + c] = scratch[r];
            }
        }
    }
}

/// Forward 2D DFT by direct summation — O((nm)²) oracle for tests.
pub fn dft2d_naive(data: &[Complex], n_rows: usize, n_cols: usize) -> Vec<Complex> {
    assert_eq!(data.len(), n_rows * n_cols);
    let mut out = vec![Complex::default(); data.len()];
    let tau = -2.0 * std::f64::consts::PI;
    for kr in 0..n_rows {
        for kc in 0..n_cols {
            let mut acc = Complex::default();
            for r in 0..n_rows {
                for c in 0..n_cols {
                    let phase = tau
                        * ((kr * r) as f64 / n_rows as f64 + (kc * c) as f64 / n_cols as f64);
                    acc += data[r * n_cols + c] * Complex::cis(phase);
                }
            }
            out[kr * n_cols + kc] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(nr: usize, nc: usize) -> Vec<Complex> {
        (0..nr * nc)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect()
    }

    #[test]
    fn matches_naive_2d_dft() {
        for (nr, nc) in [(4usize, 4usize), (8, 4), (3, 5), (6, 8)] {
            let x = grid(nr, nc);
            let mut fast = x.clone();
            Fft2d::new(nr, nc).forward(&mut fast);
            let slow = dft2d_naive(&x, nr, nc);
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!((*a - *b).abs() < 1e-8 * (nr * nc) as f64, "{nr}x{nc} @{i}");
            }
        }
    }

    #[test]
    fn roundtrip_2d() {
        for (nr, nc) in [(8usize, 8usize), (16, 4), (5, 7), (1, 8), (8, 1)] {
            let x = grid(nr, nc);
            let plan = Fft2d::new(nr, nc);
            let mut buf = x.clone();
            plan.forward(&mut buf);
            plan.inverse(&mut buf);
            for (a, b) in buf.iter().zip(&x) {
                assert!((*a - *b).abs() < 1e-9 * (nr * nc).max(1) as f64);
            }
        }
    }

    #[test]
    fn plane_wave_lands_in_single_bin() {
        let (nr, nc) = (8usize, 8usize);
        let (mr, mc) = (2usize, 5usize);
        let x: Vec<Complex> = (0..nr * nc)
            .map(|i| {
                let (r, c) = (i / nc, i % nc);
                Complex::cis(
                    2.0 * std::f64::consts::PI
                        * (mr as f64 * r as f64 / nr as f64 + mc as f64 * c as f64 / nc as f64),
                )
            })
            .collect();
        let mut spec = x;
        Fft2d::new(nr, nc).forward(&mut spec);
        for r in 0..nr {
            for c in 0..nc {
                let v = spec[r * nc + c];
                if (r, c) == (mr, mc) {
                    assert!((v.re - (nr * nc) as f64).abs() < 1e-8);
                } else {
                    assert!(v.abs() < 1e-8, "leakage at ({r},{c})");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let mut buf = vec![Complex::default(); 10];
        Fft2d::new(4, 4).forward(&mut buf);
    }
}
