//! Flat CSV point dumps for ad-hoc analysis.

use crate::gather_surface;
use beatnik_core::ProblemManager;
use std::io::Write;
use std::path::Path;

/// Write `gr,gc,x,y,z,w1,w2` rows for the whole surface (rank 0 writes).
/// Returns whether this rank wrote the file. Collective.
pub fn write_csv(pm: &ProblemManager, path: impl AsRef<Path>) -> std::io::Result<bool> {
    let Some((nr, nc, pts)) = gather_surface(pm) else {
        return Ok(false);
    };
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    writeln!(out, "row,col,x,y,z,w1,w2")?;
    for gr in 0..nr {
        for gc in 0..nc {
            let (z, w) = pts[gr * nc + gc];
            writeln!(out, "{gr},{gc},{},{},{},{},{}", z[0], z[1], z[2], w[0], w[1])?;
        }
    }
    out.flush()?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_comm::World;
    use beatnik_core::InitialCondition;
    use beatnik_mesh::{BoundaryCondition, SurfaceMesh};

    #[test]
    fn csv_has_header_and_all_rows() {
        World::builder(2).run(|comm| {
            let mesh =
                SurfaceMesh::new(&comm, [4, 6], [true, true], 2, [0.0, 0.0], [1.0, 1.0]);
            let mut pm = ProblemManager::new(
                mesh,
                BoundaryCondition::Periodic { periods: [1.0, 1.0] },
            );
            InitialCondition::Flat.apply(&mut pm);
            let dir = std::env::temp_dir().join("beatnik_csv_test");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("surface.csv");
            write_csv(&pm, &path).unwrap();
            comm.barrier();
            let text = std::fs::read_to_string(&path).unwrap();
            let mut lines = text.lines();
            assert_eq!(lines.next().unwrap(), "row,col,x,y,z,w1,w2");
            assert_eq!(lines.count(), 24);
        });
    }
}
