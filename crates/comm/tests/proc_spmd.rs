//! Multi-process smoke tests: [`beatnik_comm::proc::spmd`] re-executes
//! this very test binary (libtest `--exact` filter) to give every rank
//! its own OS process, rendezvousing over shared-memory rings or TCP.
//!
//! Spawned children re-enter the same `#[test]` function, where `spmd`
//! detects the `BEATNIK_PROC_RANK` role, joins the world, and exits the
//! process — only the parent (world rank 0) reaches the assertions.
#![cfg(unix)]

use beatnik_comm::proc;
use beatnik_comm::TransportKind;

/// The libtest argv that routes a spawned child back into `test_name`.
fn reexec_args(test_name: &str) -> [&str; 4] {
    [test_name, "--exact", "--nocapture", "--test-threads=1"]
}

/// Collectives + point-to-point over a world of `n` real processes.
fn spmd_smoke(n: usize, kind: TransportKind, test_name: &str) {
    let (out, killed) = proc::spmd(n, kind, &reexec_args(test_name), move |comm| {
        let (rank, size) = (comm.rank(), comm.size());
        assert_eq!(size, n);

        let sum = comm.allreduce_sum(rank as f64);
        assert_eq!(sum, (n * (n - 1) / 2) as f64, "rank {rank}");

        // A p2p ring: each rank passes a growing payload to the right.
        let next = (rank + 1) % size;
        let prev = (rank + size - 1) % size;
        comm.send(next, 9, vec![rank as u64; rank + 1]);
        let got: Vec<u64> = comm.recv(prev, 9);
        assert_eq!(got, vec![prev as u64; prev + 1], "rank {rank}");

        let gathered = comm.allgather(&[rank as u64 * 100]);
        assert_eq!(gathered, (0..n as u64).map(|r| r * 100).collect::<Vec<_>>());

        sum
    });
    assert_eq!(out, (n * (n - 1) / 2) as f64);
    assert!(killed.is_empty(), "no rank was faulted: {killed:?}");
}

#[test]
fn shmem_world_spans_three_processes() {
    spmd_smoke(3, TransportKind::Shmem, "shmem_world_spans_three_processes");
}

#[test]
fn tcp_world_spans_three_processes() {
    spmd_smoke(3, TransportKind::Tcp, "tcp_world_spans_three_processes");
}

#[test]
fn single_process_world_needs_no_children() {
    let (rank, killed) = proc::spmd(
        1,
        TransportKind::Shmem,
        &reexec_args("single_process_world_needs_no_children"),
        |comm| {
            assert_eq!(comm.size(), 1);
            assert_eq!(comm.allreduce_sum(5.0), 5.0);
            comm.rank()
        },
    );
    assert_eq!(rank, 0);
    assert!(killed.is_empty());
}
