//! The heFFTe-style tuning configuration (the paper's Table 1).

use beatnik_json::impl_json_struct;
use std::fmt;

/// Communication/layout tuning knobs of the distributed FFT, mirroring
/// heFFTe's `use_alltoall`, `use_pencils`, and `use_reorder` options that
/// the paper sweeps in Section 5.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FftConfig {
    /// `true`: scheduled pairwise exchange (the `MPI_Alltoall` primitive);
    /// `false`: unscheduled direct point-to-point exchange.
    pub all_to_all: bool,
    /// `true`: pencil intermediate layouts (first/last reshape inside
    /// row/column subcommunicators); `false`: slab intermediates (all
    /// reshapes global).
    pub pencils: bool,
    /// `true`: assemble intermediates in contiguous transform order;
    /// `false`: keep arrival layout and pay strided gathers per transform.
    pub reorder: bool,
}

impl_json_struct!(FftConfig { all_to_all, pencils, reorder });

impl Default for FftConfig {
    /// heFFTe's own defaults: alltoall + pencils + reorder.
    fn default() -> Self {
        FftConfig {
            all_to_all: true,
            pencils: true,
            reorder: true,
        }
    }
}

impl FftConfig {
    /// The paper's Table-1 numbering: configurations 0–7 ordered as
    /// (AllToAll, Pencils, Reorder) with AllToAll the most significant
    /// bit: `index = 4·all_to_all + 2·pencils + reorder`.
    pub fn index(&self) -> usize {
        (self.all_to_all as usize) * 4 + (self.pencils as usize) * 2 + (self.reorder as usize)
    }

    /// Configuration from a Table-1 index (0–7).
    pub fn from_index(i: usize) -> Self {
        assert!(i < 8, "heFFTe configuration index must be 0-7");
        FftConfig {
            all_to_all: i & 4 != 0,
            pencils: i & 2 != 0,
            reorder: i & 1 != 0,
        }
    }

    /// All eight configurations in Table-1 order.
    pub fn table1() -> Vec<FftConfig> {
        (0..8).map(FftConfig::from_index).collect()
    }
}

impl fmt::Display for FftConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cfg{} (AllToAll={}, Pencils={}, Reorder={})",
            self.index(),
            self.all_to_all,
            self.pencils,
            self.reorder
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        // Paper Table 1: row 0 = (F,F,F), row 1 = (F,F,T), … row 7 = (T,T,T).
        let t = FftConfig::table1();
        assert_eq!(t.len(), 8);
        assert!(!t[0].all_to_all && !t[0].pencils && !t[0].reorder);
        assert!(!t[1].all_to_all && !t[1].pencils && t[1].reorder);
        assert!(!t[2].all_to_all && t[2].pencils && !t[2].reorder);
        assert!(t[4].all_to_all && !t[4].pencils && !t[4].reorder);
        assert!(t[7].all_to_all && t[7].pencils && t[7].reorder);
    }

    #[test]
    fn index_roundtrip() {
        for i in 0..8 {
            assert_eq!(FftConfig::from_index(i).index(), i);
        }
    }

    #[test]
    fn default_is_config_7() {
        assert_eq!(FftConfig::default().index(), 7);
    }

    #[test]
    fn display_names_the_knobs() {
        let s = FftConfig::from_index(5).to_string();
        assert!(s.contains("cfg5"));
        assert!(s.contains("AllToAll=true"));
        assert!(s.contains("Pencils=false"));
    }
}
