//! Randomized-property tests of the mesh layer: partitions,
//! halo-exchange correctness on random fields, RCB balance, and spatial
//! ownership. Cases come from the workspace's deterministic PRNG —
//! reproducible and hermetic.

use beatnik_comm::World;
use beatnik_mesh::{
    split_even, Partition2d, PointDecomposition, RcbDecomposition, SpatialMesh, SurfaceMesh,
};
use beatnik_prng::Rng;

const CASES: usize = 64;

#[test]
fn split_even_partitions_exactly() {
    let mut rng = Rng::seed_from_u64(0x3E5_0001);
    for _ in 0..CASES {
        let n = rng.gen_index(0..100_000);
        let parts = rng.gen_index(1..256);
        let mut end = 0;
        for i in 0..parts {
            let r = split_even(n, parts, i);
            assert_eq!(r.start, end);
            end = r.end;
            assert!(r.len() <= n / parts + 1);
        }
        assert_eq!(end, n, "n {n}, parts {parts}");
    }
}

#[test]
fn partition_owner_is_consistent() {
    let mut rng = Rng::seed_from_u64(0x3E5_0002);
    for _ in 0..CASES {
        let nr = rng.gen_index(4..200);
        let nc = rng.gen_index(4..200);
        let pr = rng.gen_index(1..8);
        let pc = rng.gen_index(1..8);
        let p = Partition2d::with_dims([nr, nc], [pr, pc]);
        let gr = ((nr as f64 * rng.next_f64()) as usize).min(nr - 1);
        let gc = ((nc as f64 * rng.next_f64()) as usize).min(nc - 1);
        let [opr, opc] = p.owner_of(gr, gc);
        assert!(p.rows_of(opr).contains(&gr));
        assert!(p.cols_of(opc).contains(&gc));
    }
}

#[test]
fn spatial_mesh_ranks_within_includes_owner() {
    let mut rng = Rng::seed_from_u64(0x3E5_0003);
    for _ in 0..CASES {
        let x = rng.gen_range(-5.0..5.0);
        let y = rng.gen_range(-5.0..5.0);
        let cutoff = rng.gen_range(0.0..3.0);
        let py = rng.gen_index(1..6);
        let px = rng.gen_index(1..6);
        let m = SpatialMesh::new([-3.0, -3.0, -1.0], [3.0, 3.0, 1.0], [py, px]);
        let p = [x, y, 0.0];
        let own = m.rank_of_point(p);
        let within = m.ranks_within(p, cutoff);
        assert!(within.contains(&own), "{own} not in {within:?}");
        assert!(within.iter().all(|&r| r < m.ranks()));
    }
}

#[test]
fn rcb_regions_balance_any_cloud() {
    let mut rng = Rng::seed_from_u64(0x3E5_0004);
    for _ in 0..CASES {
        let n = rng.gen_index(32..200);
        let pts: Vec<[f64; 3]> = (0..n)
            .map(|_| [rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0), 0.0])
            .collect();
        let ranks = rng.gen_index(2..17);
        let d = RcbDecomposition::build(&pts, ranks, [-3.0, -3.0], [3.0, 3.0]);
        let mut counts = vec![0usize; ranks];
        for p in &pts {
            counts[d.rank_of_point(*p)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), pts.len());
        // Median splits keep every region within a small additive band of
        // the ideal share (ties on duplicate coordinates can shift a few
        // points).
        let ideal = pts.len() as f64 / ranks as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max <= 2.0 * ideal + 4.0, "counts {counts:?}");
    }
}

#[test]
fn halo_exchange_delivers_wrapped_values() {
    // World-spawning cases are costlier: fewer of them.
    let mut rng = Rng::seed_from_u64(0x3E5_0005);
    for _ in 0..8 {
        let seed = rng.next_u64() % 1000;
        World::builder(4).run(move |comm| {
            let mesh = SurfaceMesh::new(
                &comm,
                [10, 10],
                [true, true],
                2,
                [0.0, 0.0],
                [1.0, 1.0],
            );
            let mut f = mesh.make_field(1);
            let value = |gr: usize, gc: usize| -> f64 {
                ((gr as u64 * 131 + gc as u64 * 17 + seed) % 1000) as f64
            };
            for (lr, lc, gr, gc) in mesh.owned_indices() {
                f.set(lr, lc, 0, value(gr, gc));
            }
            mesh.halo_exchange(&mut f);
            let [lr_n, lc_n] = mesh.local_shape();
            for r in 0..lr_n {
                for c in 0..lc_n {
                    let [gr, gc] = mesh.global_of(r, c);
                    let wr = gr.rem_euclid(10) as usize;
                    let wc = gc.rem_euclid(10) as usize;
                    assert_eq!(f.get(r, c, 0), value(wr, wc), "({r},{c})");
                }
            }
        });
    }
}
