//! # beatnik-mesh — distributed structured meshes and particle migration
//!
//! This crate replaces the Cabana grid layer the paper's Beatnik builds
//! on. It provides:
//!
//! * [`SurfaceMesh`] — the distributed 2D interface mesh: a global
//!   `N × N` node grid, block-decomposed over a `Pr × Pc` rank grid, with
//!   width-2 halo regions ("two-node-deep stencils" in the paper) and a
//!   two-phase halo exchange (x then y, so corner halos arrive for free).
//! * [`Field`] — node-centered multi-component `f64` storage over a
//!   mesh's local block (owned + halo), the unit of halo exchange.
//! * [`boundary`] — periodic position correction (ghost copies of
//!   positions must be offset by a domain period) and non-periodic
//!   extrapolation of ghost values, matching Beatnik's
//!   `BoundaryCondition` class.
//! * [`stencil`] — finite differences (2nd and 4th order) and 9-point
//!   Laplacians over fields.
//! * [`SpatialMesh`] — the 3D spatial domain of the cutoff solver,
//!   decomposed over a 2D x/y rank grid (the paper's choice, mirroring
//!   the initial surface distribution).
//! * [`migrate`] — the `HaloComm` analogue: migrating surface points into
//!   the spatial decomposition, haloing points within a cutoff distance
//!   of neighboring spatial blocks, and returning computed results to
//!   each point's home rank.

pub mod boundary;
pub mod decomposition;
pub mod field;
pub mod migrate;
pub mod partition;
pub mod rcb;
pub mod spatial_mesh;
pub mod stencil;
pub mod surface;

pub use boundary::BoundaryCondition;
pub use decomposition::PointDecomposition;
pub use rcb::RcbDecomposition;
pub use field::Field;
pub use migrate::{PointResult, SurfacePoint};
pub use partition::{split_even, Partition2d};
pub use spatial_mesh::SpatialMesh;
pub use surface::SurfaceMesh;
