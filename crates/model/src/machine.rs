//! Machine descriptions: compute-node and network constants.


use beatnik_json::impl_json_struct;

/// Parameters of a GPU-accelerated cluster, one MPI rank per GPU (the
/// paper's configuration: "one MPI process and one Power9 core per GPU").
///
/// Constants are *sustained* application-visible rates, not peaks; the
/// Lassen preset uses published V100/EDR numbers derated to typical
/// application efficiency.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Human-readable name for reports.
    pub name: String,
    /// GPUs (= ranks) per node.
    pub gpus_per_node: usize,
    /// Sustained FP64 rate per GPU, flop/s.
    pub gpu_flops: f64,
    /// Sustained GPU memory bandwidth, bytes/s.
    pub gpu_mem_bw: f64,
    /// One-way small-message network latency between nodes, seconds.
    pub nic_latency: f64,
    /// Per-message software/injection overhead (LogGP `o`), seconds.
    pub msg_overhead: f64,
    /// Injection bandwidth per node NIC, bytes/s (shared by the node's
    /// GPUs when several communicate off-node at once).
    pub nic_bandwidth: f64,
    /// Intra-node (NVLink/shared-memory) bandwidth per pair, bytes/s.
    pub intra_node_bandwidth: f64,
    /// Intra-node latency, seconds.
    pub intra_node_latency: f64,
    /// Fraction of full bisection bandwidth the fabric provides
    /// (1.0 = non-blocking fat tree; < 1.0 = tapered).
    pub bisection_factor: f64,
}

impl_json_struct!(Machine {
    name,
    gpus_per_node,
    gpu_flops,
    gpu_mem_bw,
    nic_latency,
    msg_overhead,
    nic_bandwidth,
    intra_node_bandwidth,
    intra_node_latency,
    bisection_factor,
});

impl Machine {
    /// A Lassen-like machine: 4 × V100 (16 GB) per Power9 node, EDR
    /// InfiniBand (100 Gb/s/node), GPU-aware Spectrum-MPI-era software
    /// overheads.
    pub fn lassen() -> Self {
        Machine {
            name: "lassen-like".to_string(),
            gpus_per_node: 4,
            // V100 peak FP64 is 7.8 Tflop/s; stencil/particle kernels
            // sustain a modest fraction.
            gpu_flops: 1.5e12,
            // 900 GB/s HBM2 peak, ~70% sustained.
            gpu_mem_bw: 6.3e11,
            nic_latency: 1.5e-6,
            // GPU-aware Spectrum MPI pays heavy per-message software and
            // pipeline-staging costs for device buffers (the paper itself
            // pins its CUDA version to work around Spectrum MPI's
            // GPU-awareness limitations).
            msg_overhead: 10.0e-6,
            // EDR = 100 Gb/s = 12.5 GB/s per node.
            nic_bandwidth: 12.5e9,
            // Effective intra-node MPI bandwidth for GPU buffers: staged
            // by Spectrum MPI well below raw NVLink rates.
            intra_node_bandwidth: 3.8e9,
            intra_node_latency: 1.0e-6,
            // Lassen's fat tree is close to full bisection but GPU-aware
            // staging costs show up as an effective taper at scale.
            bisection_factor: 0.7,
        }
    }

    /// A generic commodity cluster (1 GPU/node, 25 Gb/s Ethernet-class
    /// fabric) — used by ablation benches to show how machine balance
    /// moves the crossover points.
    pub fn commodity() -> Self {
        Machine {
            name: "commodity".to_string(),
            gpus_per_node: 1,
            gpu_flops: 5.0e11,
            gpu_mem_bw: 2.0e11,
            nic_latency: 5.0e-6,
            msg_overhead: 2.0e-6,
            nic_bandwidth: 3.1e9,
            intra_node_bandwidth: 3.1e9,
            intra_node_latency: 5.0e-6,
            bisection_factor: 0.4,
        }
    }

    /// Number of nodes needed for `ranks` ranks (one rank per GPU).
    pub fn nodes_for(&self, ranks: usize) -> usize {
        ranks.div_ceil(self.gpus_per_node)
    }

    /// Whether a job of `ranks` ranks fits on a single node (all traffic
    /// intra-node).
    pub fn single_node(&self, ranks: usize) -> bool {
        ranks <= self.gpus_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lassen_constants_are_sane() {
        let m = Machine::lassen();
        assert_eq!(m.gpus_per_node, 4);
        assert!(m.gpu_flops > 1e11);
        assert!(m.nic_latency > 0.0 && m.nic_latency < 1e-4);
        // Intra-node MPI beats one rank's *share* of the node NIC, but is
        // well below raw NVLink (GPU-aware staging).
        assert!(m.intra_node_bandwidth > m.nic_bandwidth / m.gpus_per_node as f64);
        assert!(m.bisection_factor > 0.0 && m.bisection_factor <= 1.0);
    }

    #[test]
    fn node_counting() {
        let m = Machine::lassen();
        assert_eq!(m.nodes_for(1), 1);
        assert_eq!(m.nodes_for(4), 1);
        assert_eq!(m.nodes_for(5), 2);
        assert_eq!(m.nodes_for(1024), 256);
        assert!(m.single_node(4));
        assert!(!m.single_node(5));
    }

    #[test]
    fn machine_serializes() {
        let m = Machine::lassen();
        let s = beatnik_json::to_string(&m);
        let back: Machine = beatnik_json::from_str(&s).unwrap();
        assert_eq!(back.gpus_per_node, m.gpus_per_node);
        assert_eq!(back.nic_bandwidth, m.nic_bandwidth);
    }
}
