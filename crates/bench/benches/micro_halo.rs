//! Criterion microbenchmarks of the surface-mesh halo exchange — the
//! neighbor communication pattern behind the high-order stencils — at
//! several rank counts and field widths.

use beatnik_comm::World;
use beatnik_mesh::SurfaceMesh;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_halo(c: &mut Criterion) {
    let mut g = c.benchmark_group("halo_exchange");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    let reps = 10;
    for ranks in [1usize, 4, 9] {
        for ncomp in [1usize, 3, 5] {
            g.bench_with_input(
                BenchmarkId::new(format!("128x128_{ncomp}comp"), ranks),
                &ranks,
                |b, &ranks| {
                    b.iter(|| {
                        World::builder(ranks).run(move |comm| {
                            let mesh = SurfaceMesh::new(
                                &comm,
                                [128, 128],
                                [true, true],
                                2,
                                [0.0, 0.0],
                                [1.0, 1.0],
                            );
                            let mut f = mesh.make_field(ncomp);
                            for _ in 0..reps {
                                mesh.halo_exchange(&mut f);
                            }
                            f.max_abs()
                        })
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_halo);
criterion_main!(benches);
