//! The wire frame format shared by the shmem and TCP backends.
//!
//! One frame is one envelope delivery (`DATA`) or one piece of
//! failure-ledger news (`CTRL`). All integers are little-endian; the
//! element type travels by *name* — sound because every rank of a world
//! runs the same binary, so equal names imply equal layouts (and the
//! receive side re-checks size and drop-freeness before reconstructing
//! values).
//!
//! ```text
//! DATA:    0x00 | comm u64 | dst_local u32 | src u32 | tag u64
//!               | count u64 | elem_size u32 | name_len u16 | name bytes
//!               | payload_len u64 | payload bytes
//! CTRL:    0x01 | code u8 (0 FAILED, 1 REVOKE, 2 ABORT, 3 BYE) | arg u64
//! HANDOFF: 0x02 | comm u64 | dst_local u32 | token u64
//! ```
//!
//! `HANDOFF` is the zero-copy large-message path on shmem **loopback**
//! worlds: the sender stashes the whole [`Envelope`] in a process-local
//! slab and pushes only this ~21-byte token frame through the ring, so
//! FIFO order with smaller serialized frames is preserved while the
//! payload allocation moves by pointer. The token is meaningless outside
//! the process that minted it, which is why only the shmem poller (which
//! shares the sender's slab) may apply one — [`apply`] refuses it.
//!
//! Frames are self-delimiting inside a shmem ring record; on TCP each
//! frame is additionally length-prefixed with a `u32` by the stream
//! layer. `comm` carries the collective-channel bit exactly as the
//! mailbox key does, so decoding pushes straight into the right
//! mailbox without knowing about channels.

use super::CtrlMsg;
use crate::message::Envelope;
use crate::registry::Registry;

/// A decoded frame.
#[derive(Debug)]
pub enum Frame {
    /// An envelope for mailbox `(comm, dst_local)`.
    Data {
        /// Communicator id (channel bit included).
        comm: u64,
        /// Destination rank within the communicator.
        dst_local: usize,
        /// The reconstructed envelope.
        env: Envelope,
    },
    /// Failure-ledger news.
    Ctrl(CtrlMsg),
    /// A zero-copy handoff token for mailbox `(comm, dst_local)`: the
    /// envelope itself is stashed in the sending process's slab under
    /// `token`. Only meaningful to a poller sharing that slab.
    Handoff {
        /// Communicator id (channel bit included).
        comm: u64,
        /// Destination rank within the communicator.
        dst_local: usize,
        /// Slab key the stashed envelope is claimed with.
        token: u64,
    },
}

const KIND_DATA: u8 = 0x00;
const KIND_CTRL: u8 = 0x01;
const KIND_HANDOFF: u8 = 0x02;

const CTRL_FAILED: u8 = 0;
const CTRL_REVOKE: u8 = 1;
const CTRL_ABORT: u8 = 2;
const CTRL_BYE: u8 = 3;

/// Encode an envelope delivery. Panics with a diagnostic when the
/// payload's element type cannot legally cross a process boundary
/// (drop glue) — the same class of fatal protocol error as an MPI
/// datatype mismatch.
pub fn encode_data(comm: u64, dst_local: usize, env: &Envelope) -> Vec<u8> {
    let payload = env.wire_view().unwrap_or_else(|| {
        panic!(
            "payload type `{}` cannot cross a wire transport (it has drop \
             glue); send plain-data elements or use the thread backend",
            env.type_name
        )
    });
    let name = env.type_name.as_bytes();
    assert!(name.len() <= u16::MAX as usize, "absurd type name length");
    let mut out = Vec::with_capacity(43 + name.len() + payload.len());
    out.push(KIND_DATA);
    out.extend_from_slice(&comm.to_le_bytes());
    out.extend_from_slice(&(dst_local as u32).to_le_bytes());
    out.extend_from_slice(&(env.src as u32).to_le_bytes());
    out.extend_from_slice(&env.tag.to_le_bytes());
    out.extend_from_slice(&(env.count as u64).to_le_bytes());
    out.extend_from_slice(&(env.elem_size as u32).to_le_bytes());
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encode a zero-copy handoff token (see the module docs).
pub fn encode_handoff(comm: u64, dst_local: usize, token: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(21);
    out.push(KIND_HANDOFF);
    out.extend_from_slice(&comm.to_le_bytes());
    out.extend_from_slice(&(dst_local as u32).to_le_bytes());
    out.extend_from_slice(&token.to_le_bytes());
    out
}

/// Encode failure-ledger news.
pub fn encode_ctrl(msg: CtrlMsg) -> Vec<u8> {
    let (code, arg) = match msg {
        CtrlMsg::Failed(rank) => (CTRL_FAILED, rank as u64),
        CtrlMsg::Revoke(comm) => (CTRL_REVOKE, comm),
        CtrlMsg::Abort => (CTRL_ABORT, 0),
        CtrlMsg::Bye(rank) => (CTRL_BYE, rank as u64),
    };
    let mut out = Vec::with_capacity(10);
    out.push(KIND_CTRL);
    out.push(code);
    out.extend_from_slice(&arg.to_le_bytes());
    out
}

/// Cursor-style reader over a frame buffer.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated frame: wanted {n} bytes at {}", self.pos))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Decode one frame (the full buffer must be exactly one frame).
pub fn decode(buf: &[u8]) -> Result<Frame, String> {
    let mut r = Reader { buf, pos: 0 };
    match r.u8()? {
        KIND_DATA => {
            let comm = r.u64()?;
            let dst_local = r.u32()? as usize;
            let src = r.u32()? as usize;
            let tag = r.u64()?;
            let count = r.u64()? as usize;
            let elem_size = r.u32()? as usize;
            let name_len = r.u16()? as usize;
            let name = std::str::from_utf8(r.take(name_len)?)
                .map_err(|e| format!("bad type name: {e}"))?
                .to_owned();
            let payload_len = r.u64()? as usize;
            if payload_len != count.saturating_mul(elem_size) {
                return Err(format!(
                    "inconsistent frame: {count} x {elem_size}B elements but {payload_len}B payload"
                ));
            }
            let payload = r.take(payload_len)?.to_vec();
            if r.pos != buf.len() {
                return Err(format!("{} trailing bytes after frame", buf.len() - r.pos));
            }
            Ok(Frame::Data {
                comm,
                dst_local,
                env: Envelope::from_wire(src, tag, count, elem_size, &name, payload),
            })
        }
        KIND_HANDOFF => {
            let comm = r.u64()?;
            let dst_local = r.u32()? as usize;
            let token = r.u64()?;
            if r.pos != buf.len() {
                return Err(format!("{} trailing bytes after frame", buf.len() - r.pos));
            }
            Ok(Frame::Handoff {
                comm,
                dst_local,
                token,
            })
        }
        KIND_CTRL => {
            let code = r.u8()?;
            let arg = r.u64()?;
            let msg = match code {
                CTRL_FAILED => CtrlMsg::Failed(arg as usize),
                CTRL_REVOKE => CtrlMsg::Revoke(arg),
                CTRL_ABORT => CtrlMsg::Abort,
                CTRL_BYE => CtrlMsg::Bye(arg as usize),
                other => return Err(format!("unknown ctrl code {other}")),
            };
            Ok(Frame::Ctrl(msg))
        }
        other => Err(format!("unknown frame kind {other:#04x}")),
    }
}

/// Apply a decoded frame to the local registry: push data into the
/// destination mailbox, or fold ctrl news into the failure ledger
/// (without re-publishing — the news came *from* the wire).
pub fn apply(frame: Frame, registry: &Registry) {
    match frame {
        Frame::Data {
            comm,
            dst_local,
            env,
        } => registry.mailbox(comm, dst_local).push(env),
        Frame::Ctrl(msg) => registry.apply_remote_ctrl(msg),
        // A handoff token references a slab in the *sending* process;
        // resolving it here would be type confusion across processes.
        // The shmem poller claims these itself before calling `apply`.
        Frame::Handoff { token, .. } => {
            panic!("handoff token {token:#x} reached a poller without the sender's slab")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_frames_roundtrip() {
        let env = Envelope::new(3, 42, vec![1u64, 2, 3]);
        let buf = encode_data(7 | (1 << 63), 5, &env);
        match decode(&buf).unwrap() {
            Frame::Data {
                comm,
                dst_local,
                env,
            } => {
                assert_eq!(comm, 7 | (1 << 63));
                assert_eq!(dst_local, 5);
                assert_eq!(env.src, 3);
                assert_eq!(env.tag, 42);
                assert_eq!(env.into_data::<u64>(), vec![1, 2, 3]);
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn handoff_frames_roundtrip() {
        let buf = encode_handoff(5 | (1 << 63), 3, 0xDEAD_BEEF);
        assert_eq!(buf.len(), 21);
        match decode(&buf).unwrap() {
            Frame::Handoff {
                comm,
                dst_local,
                token,
            } => {
                assert_eq!(comm, 5 | (1 << 63));
                assert_eq!(dst_local, 3);
                assert_eq!(token, 0xDEAD_BEEF);
            }
            other => panic!("wrong frame: {other:?}"),
        }
        assert!(decode(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    #[should_panic(expected = "without the sender's slab")]
    fn handoff_tokens_refuse_foreign_application() {
        let registry = crate::registry::Registry::new();
        apply(
            Frame::Handoff {
                comm: 0,
                dst_local: 0,
                token: 1,
            },
            &registry,
        );
    }

    #[test]
    fn ctrl_frames_roundtrip() {
        for msg in [
            CtrlMsg::Failed(2),
            CtrlMsg::Revoke(9 | (1 << 62)),
            CtrlMsg::Abort,
            CtrlMsg::Bye(7),
        ] {
            match decode(&encode_ctrl(msg)).unwrap() {
                Frame::Ctrl(got) => assert_eq!(got, msg),
                other => panic!("wrong frame: {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_and_inconsistent_frames_error() {
        let env = Envelope::new(0, 0, vec![1u32]);
        let buf = encode_data(0, 0, &env);
        assert!(decode(&buf[..buf.len() - 1]).is_err());
        assert!(decode(&[0x77]).is_err());
        let mut bad = buf.clone();
        // Corrupt the count field (offset 1 + 8 + 4 + 4 + 8 = 25).
        bad[25] = 99;
        assert!(decode(&bad).is_err());
    }

    #[test]
    #[should_panic(expected = "cannot cross a wire transport")]
    fn droppy_payloads_refuse_to_encode() {
        let env = Envelope::new(0, 0, vec![String::from("nope")]);
        let _ = encode_data(0, 0, &env);
    }
}
