//! Chrome Trace Event JSON export.
//!
//! Emits the [Trace Event Format] understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): one complete (`"ph": "X"`)
//! event per span, one process per world, one thread per rank. Times
//! are microseconds since the world's shared epoch, so rank timelines
//! line up in the viewer.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::span::algos;
use crate::timeline::WorldTimeline;
use beatnik_json::Value;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Render the timeline as a Chrome Trace Event JSON document.
///
/// Shape: `{"traceEvents": [...], "displayTimeUnit": "ms",
/// "beatnik": {"ranks": N, "dropped_spans": D}}`; each span event
/// carries `name`, `cat` (`"comm"` or `"phase"`), `ph: "X"`, `ts`/
/// `dur` in µs, `pid: 0`, `tid: rank`, and
/// `args: {peer, tag, bytes}` — plus `algo` when the span recorded a
/// collective-algorithm choice (see [`crate::span::algos`]).
pub fn chrome_trace(tl: &WorldTimeline) -> Value {
    let mut events = Vec::with_capacity(tl.total_spans() + tl.num_ranks());
    for rt in &tl.ranks {
        events.push(obj(vec![
            ("name", Value::Str("thread_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::UInt(0)),
            ("tid", Value::UInt(rt.rank as u64)),
            (
                "args",
                obj(vec![("name", Value::Str(format!("rank {}", rt.rank)))]),
            ),
        ]));
    }
    for rt in &tl.ranks {
        for s in &rt.spans {
            events.push(obj(vec![
                ("name", Value::Str(s.kind.name().into())),
                ("cat", Value::Str(s.kind.category().into())),
                ("ph", Value::Str("X".into())),
                ("ts", Value::Float(s.start_ns as f64 / 1000.0)),
                ("dur", Value::Float(s.dur_ns() as f64 / 1000.0)),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(rt.rank as u64)),
                ("args", {
                    let mut args = vec![
                        ("peer", Value::Int(s.peer)),
                        ("tag", Value::UInt(s.tag)),
                        ("bytes", Value::UInt(s.bytes)),
                    ];
                    if let Some(name) = algos::name(s.algo) {
                        args.push(("algo", Value::Str(name.into())));
                    }
                    obj(args)
                }),
            ]));
        }
    }
    obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
        (
            "beatnik",
            obj(vec![
                ("ranks", Value::UInt(tl.num_ranks() as u64)),
                ("dropped_spans", Value::UInt(tl.total_dropped())),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{CommOp, Span, SpanKind};
    use crate::timeline::RankTimeline;

    #[test]
    fn events_cover_every_span_plus_thread_metadata() {
        let tl = WorldTimeline::new(vec![
            RankTimeline {
                rank: 0,
                spans: vec![Span {
                    kind: SpanKind::Op(CommOp::Send),
                    peer: 1,
                    tag: 4,
                    bytes: 32,
                    start_ns: 1000,
                    end_ns: 3500,
                    ..Span::default()
                }],
                dropped: 0,
            },
            RankTimeline {
                rank: 1,
                spans: vec![Span {
                    kind: SpanKind::Phase("halo"),
                    start_ns: 0,
                    end_ns: 9000,
                    ..Span::default()
                }],
                dropped: 2,
            },
        ]);
        let v = chrome_trace(&tl);
        let Value::Array(events) = v.get("traceEvents").unwrap() else {
            panic!("traceEvents not an array");
        };
        assert_eq!(events.len(), 4); // 2 metadata + 2 spans
        let send = &events[2];
        assert_eq!(send.get("name").unwrap().as_str(), Some("send"));
        assert_eq!(send.get("cat").unwrap().as_str(), Some("comm"));
        assert_eq!(send.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(send.get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(send.get("dur").unwrap().as_f64(), Some(2.5));
        assert_eq!(send.get("tid").unwrap().as_u64(), Some(0));
        let args = send.get("args").unwrap();
        assert_eq!(args.get("peer").unwrap().as_i64(), Some(1));
        assert_eq!(args.get("bytes").unwrap().as_u64(), Some(32));
        assert_eq!(
            v.get("beatnik").unwrap().get("dropped_spans").unwrap().as_u64(),
            Some(2)
        );
    }

    #[test]
    fn algo_arg_appears_only_when_recorded() {
        let tl = WorldTimeline::new(vec![RankTimeline {
            rank: 0,
            spans: vec![
                Span {
                    kind: SpanKind::Op(CommOp::Alltoall),
                    bytes: 64,
                    algo: algos::BRUCK,
                    start_ns: 0,
                    end_ns: 100,
                    ..Span::default()
                },
                Span {
                    kind: SpanKind::Op(CommOp::Send),
                    start_ns: 100,
                    end_ns: 200,
                    ..Span::default()
                },
            ],
            dropped: 0,
        }]);
        let v = chrome_trace(&tl);
        let Value::Array(events) = v.get("traceEvents").unwrap() else {
            panic!("traceEvents not an array");
        };
        let a2a = &events[1];
        assert_eq!(
            a2a.get("args").unwrap().get("algo").unwrap().as_str(),
            Some("bruck")
        );
        let send = &events[2];
        assert!(send.get("args").unwrap().get("algo").is_none());
    }

    #[test]
    fn output_parses_back_as_json() {
        let tl = WorldTimeline::new(vec![RankTimeline {
            rank: 0,
            spans: vec![Span::default()],
            dropped: 0,
        }]);
        let text = beatnik_json::to_string(&chrome_trace(&tl));
        let back = beatnik_json::parse(&text).unwrap();
        assert!(back.get("traceEvents").is_some());
    }
}
