//! Exact O(n²) Birkhoff–Rott solver with ring-pass communication
//! (paper §3.2, `ExactBRSolver`).
//!
//! Every rank's point block circulates around the rank ring; after P−1
//! shifts every rank has accumulated forces from every block. The
//! communication is regular (fixed-size messages to a fixed neighbor)
//! and the computation — n²/P pair interactions per rank per shift —
//! dominates, exactly the compute-bound profile the paper describes.
//!
//! The default path pipelines each ring step: the receive for the next
//! block and the send of the current block are posted *before* the n²/P
//! pair kernel runs, so the neighbor exchange overlaps the computation
//! (P−1-stage pipeline). [`ExactBrSolver::velocities_blocking`] keeps the
//! original synchronous `sendrecv` schedule for comparison benchmarks.

use super::kernel::accumulate_block;
use super::{BrPoint, BrSolver};
use beatnik_comm::Communicator;
use crate::par::prelude::*;

/// The brute-force all-pairs solver.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExactBrSolver;

/// Message tag for ring traffic (distinct from halo traffic).
const RING_TAG: u64 = 0x5249_4e47; // "RING"

impl BrSolver for ExactBrSolver {
    fn velocities(
        &self,
        comm: &Communicator,
        points: &[BrPoint],
        epsilon: f64,
    ) -> Vec<[f64; 3]> {
        let _phase = comm.telemetry().phase("br-exact");
        let eps2 = epsilon * epsilon;
        let p = comm.size();
        let me = comm.rank();
        let targets: Vec<[f64; 3]> = points.iter().map(|b| b.pos).collect();
        let mut vel = vec![[0.0f64; 3]; points.len()];

        // The circulating block: (position, strength) pairs.
        let mut circ: Vec<([f64; 3], [f64; 3])> =
            points.iter().map(|b| (b.pos, b.strength)).collect();

        for step in 0..p {
            let _stage = comm.telemetry().phase("br-ring-stage");
            // Post the next ring exchange before computing on the current
            // block, so the transfer overlaps the pair kernel.
            let pending = if step + 1 < p {
                let right = (me + 1) % p;
                let left = (me + p - 1) % p;
                let tag = RING_TAG + step as u64;
                let recv = comm.irecv::<([f64; 3], [f64; 3])>(left, tag);
                let send = comm.isend(right, tag, &circ);
                Some((recv, send))
            } else {
                None
            };

            // Accumulate the current block into every target, parallel
            // over targets (the Kokkos-equivalent on-node parallelism).
            vel.par_chunks_mut(256)
                .zip(targets.par_chunks(256))
                .for_each(|(v, t)| accumulate_block(v, t, &circ, eps2));

            if let Some((recv, send)) = pending {
                circ = recv.wait();
                send.wait();
            }
        }
        vel
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

impl ExactBrSolver {
    /// The pre-pipelining schedule: compute on the current block, *then*
    /// exchange it with a synchronous `sendrecv`. Numerically identical
    /// to [`BrSolver::velocities`]; kept for blocking-vs-nonblocking
    /// benchmark comparisons.
    pub fn velocities_blocking(
        &self,
        comm: &Communicator,
        points: &[BrPoint],
        epsilon: f64,
    ) -> Vec<[f64; 3]> {
        let _phase = comm.telemetry().phase("br-exact");
        let eps2 = epsilon * epsilon;
        let p = comm.size();
        let me = comm.rank();
        let targets: Vec<[f64; 3]> = points.iter().map(|b| b.pos).collect();
        let mut vel = vec![[0.0f64; 3]; points.len()];
        let mut circ: Vec<([f64; 3], [f64; 3])> =
            points.iter().map(|b| (b.pos, b.strength)).collect();

        for step in 0..p {
            let _stage = comm.telemetry().phase("br-ring-stage");
            vel.par_chunks_mut(256)
                .zip(targets.par_chunks(256))
                .for_each(|(v, t)| accumulate_block(v, t, &circ, eps2));

            if step + 1 < p {
                let right = (me + 1) % p;
                let left = (me + p - 1) % p;
                circ = comm.sendrecv(right, circ, left, RING_TAG + step as u64);
            }
        }
        vel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::br::kernel::br_pair_velocity;
    use beatnik_comm::{OpKind, World};

    /// Deterministic global point set, split contiguously over ranks.
    fn global_points(n: usize) -> Vec<BrPoint> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                BrPoint {
                    pos: [
                        (t * 0.37).fract() * 2.0 - 1.0,
                        (t * 0.71).fract() * 2.0 - 1.0,
                        (t * 0.13).fract() * 0.5,
                    ],
                    strength: [(t * 0.29).fract() - 0.5, (t * 0.53).fract() - 0.5, 0.1],
                }
            })
            .collect()
    }

    /// Serial reference: all-pairs sum.
    fn serial_velocities(pts: &[BrPoint], eps: f64) -> Vec<[f64; 3]> {
        let eps2 = eps * eps;
        pts.iter()
            .map(|t| {
                let mut acc = [0.0f64; 3];
                for s in pts {
                    let u = br_pair_velocity(t.pos, s.pos, s.strength, eps2);
                    acc[0] += u[0];
                    acc[1] += u[1];
                    acc[2] += u[2];
                }
                acc
            })
            .collect()
    }

    #[test]
    fn ring_pass_matches_serial_all_pairs() {
        let n = 60;
        let eps = 0.05;
        let all = global_points(n);
        let want = serial_velocities(&all, eps);
        for p in [1usize, 2, 3, 4, 9] {
            let all2 = all.clone();
            let want2 = want.clone();
            World::builder(p).run(move |comm| {
                let chunk = n / comm.size();
                let lo = comm.rank() * chunk;
                let hi = if comm.rank() + 1 == comm.size() { n } else { lo + chunk };
                let mine = &all2[lo..hi];
                let got = ExactBrSolver.velocities(&comm, mine, eps);
                for (i, g) in got.iter().enumerate() {
                    for k in 0..3 {
                        assert!(
                            (g[k] - want2[lo + i][k]).abs() < 1e-12,
                            "p={p} point {i} comp {k}"
                        );
                    }
                }
            });
        }
    }

    #[test]
    fn ring_message_pattern() {
        let (_, trace) = World::builder(4).run_traced(|comm| {
            let pts = global_points(40);
            let chunk = 10;
            let lo = comm.rank() * chunk;
            let _ = ExactBrSolver.velocities(&comm, &pts[lo..lo + chunk], 0.1);
        });
        // P-1 = 3 ring sends per rank, each 10 points x 48 bytes.
        for r in 0..4 {
            let s = trace.rank(r).get(OpKind::Send);
            assert_eq!(s.messages, 3);
            assert_eq!(s.bytes, 3 * 10 * 48);
            // Every isend drew a pooled envelope, and at each pipelined
            // step the send and the receive were in flight together.
            let t = trace.rank(r);
            assert_eq!(t.pool_hits() + t.pool_misses(), 3);
            assert!(t.peak_outstanding() >= 2, "rank {r}");
            assert_eq!(t.outstanding_requests(), 0, "rank {r}");
        }
    }

    #[test]
    fn blocking_schedule_matches_pipelined_bitwise() {
        let all = global_points(36);
        for p in [2usize, 4, 9] {
            let all2 = all.clone();
            World::builder(p).run(move |comm| {
                let chunk = 36 / comm.size();
                let lo = comm.rank() * chunk;
                let hi = if comm.rank() + 1 == comm.size() {
                    36
                } else {
                    lo + chunk
                };
                let mine = &all2[lo..hi];
                let pipelined = ExactBrSolver.velocities(&comm, mine, 0.07);
                let blocking = ExactBrSolver.velocities_blocking(&comm, mine, 0.07);
                // Same pair order, same arithmetic: bitwise identical.
                assert_eq!(pipelined, blocking, "p={p}");
            });
        }
    }

    #[test]
    fn empty_rank_participates_without_deadlock() {
        // Rank sizes 0 and n must still circulate blocks.
        World::builder(3).run(|comm| {
            let all = global_points(20);
            let mine: &[BrPoint] = match comm.rank() {
                0 => &all[..0],
                1 => &all[..12],
                _ => &all[12..],
            };
            let got = ExactBrSolver.velocities(&comm, mine, 0.05);
            assert_eq!(got.len(), mine.len());
        });
    }

    #[test]
    fn two_vortex_points_induce_antisymmetric_velocities() {
        World::builder(1).run(|comm| {
            let pts = [
                BrPoint {
                    pos: [0.0, 0.0, 0.0],
                    strength: [0.0, 1.0, 0.0],
                },
                BrPoint {
                    pos: [1.0, 0.0, 0.0],
                    strength: [0.0, 1.0, 0.0],
                },
            ];
            let v = ExactBrSolver.velocities(&comm, &pts, 0.0);
            // Equal parallel strengths: each induces on the other equal
            // and opposite vertical velocities.
            assert!((v[0][2] + v[1][2]).abs() < 1e-15);
            assert!(v[0][2].abs() > 0.0);
        });
    }
}
