//! Transport-protocol integration tests: copy accounting across the
//! eager/rendezvous crossover, and ordering guarantees of the indexed
//! mailbox under randomized same-selector streams.

use beatnik_comm::{wait_all, TransportKind, World, ANY_SOURCE, ANY_TAG, DEFAULT_EAGER_LIMIT};
use beatnik_prng::Rng;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

/// Above the eager limit the transport must perform exactly ONE payload
/// copy (sender-side materialisation into the owned buffer that then
/// moves by pointer). Verified through the trace's copied-bytes
/// counter, which the send paths charge per protocol.
#[test]
fn rendezvous_sends_copy_payload_exactly_once() {
    // Eager limit 0: every sized isend takes the rendezvous path.
    let (_, trace) = World::builder(2).recv_timeout(TIMEOUT).eager_limit(0).run_traced(|c| {
        if c.rank() == 0 {
            c.isend(1, 1, &[7u64; 100]).wait(); // 800 bytes
        } else {
            let got = c.irecv::<u64>(0, 1).wait();
            assert_eq!(got, vec![7u64; 100]);
        }
    });
    assert_eq!(
        trace.rank(0).copied_bytes(),
        800,
        "rendezvous must copy the payload exactly once"
    );
    // The receiver takes ownership of the buffer — no copy charged there,
    // and no pooled envelope was involved on either side.
    assert_eq!(trace.rank(0).pool_hits() + trace.rank(0).pool_misses(), 0);
}

/// Below the limit the eager path copies twice: into the pooled envelope
/// at the sender, out of it at the receiver.
#[test]
fn eager_sends_copy_payload_twice() {
    let (_, trace) = World::builder(2).recv_timeout(TIMEOUT).eager_limit(DEFAULT_EAGER_LIMIT).run_traced(|c| {
        if c.rank() == 0 {
            c.isend(1, 1, &[7u64; 100]).wait();
        } else {
            let _ = c.irecv::<u64>(0, 1).wait();
        }
    });
    assert_eq!(trace.rank(0).copied_bytes(), 1600);
    assert_eq!(trace.rank(0).pool_hits() + trace.rank(0).pool_misses(), 1);
}

/// The crossover is exclusive at the limit: a payload of exactly
/// `eager_limit` bytes stays eager; one byte more goes rendezvous.
#[test]
fn crossover_boundary_is_exclusive() {
    let (_, trace) = World::builder(2).recv_timeout(TIMEOUT).eager_limit(64).run_traced(|c| {
        if c.rank() == 0 {
            c.isend(1, 1, &[1u8; 64]).wait(); // == limit: eager
            c.isend(1, 2, &[2u8; 65]).wait(); // > limit: rendezvous
        } else {
            assert_eq!(c.irecv::<u8>(0, 1).wait().len(), 64);
            assert_eq!(c.irecv::<u8>(0, 2).wait().len(), 65);
        }
    });
    assert_eq!(trace.rank(0).copied_bytes(), 2 * 64 + 65);
    assert_eq!(trace.rank(0).pool_hits() + trace.rank(0).pool_misses(), 1);
}

/// Rendezvous deposits must land directly in a posted receive: post the
/// irecv first, then send large, and confirm completion plus single-copy
/// accounting in one run.
#[test]
fn rendezvous_deposits_into_posted_receive() {
    let (_, trace) = World::builder(2).recv_timeout(TIMEOUT).eager_limit(8).run_traced(|c| {
        if c.rank() == 0 {
            c.barrier(); // ensure rank 1's irecv is posted first
            c.isend(1, 5, &[0.25f64; 64]).wait(); // 512 bytes, rendezvous
        } else {
            let req = c.irecv::<f64>(0, 5);
            c.barrier();
            assert_eq!(req.wait(), vec![0.25f64; 64]);
        }
    });
    assert_eq!(trace.rank(0).copied_bytes(), 512);
}

/// Ownership-transfer sends copy nothing at any size: the buffer the
/// caller gives up is the buffer the receiver unwraps. The bytes are
/// charged to the disjoint `handoff` counter instead, so the zero on
/// `copied` is a pinned invariant, not an accounting gap.
#[test]
fn owned_sends_copy_nothing_at_any_size() {
    // Eager limit 0: a slice isend of any size would go rendezvous
    // (1 copy); the owned path must still charge zero.
    let (_, trace) = World::builder(2).recv_timeout(TIMEOUT).eager_limit(0).run_traced(|c| {
        if c.rank() == 0 {
            c.isend_owned(1, 1, vec![7u64; 100]).wait(); // 800 bytes
            c.isend_owned(1, 2, vec![9u64; 65536]).wait(); // 512 KiB
        } else {
            assert_eq!(c.irecv::<u64>(0, 1).wait(), vec![7u64; 100]);
            assert_eq!(c.irecv::<u64>(0, 2).wait().len(), 65536);
        }
    });
    assert_eq!(trace.rank(0).copied_bytes(), 0, "ownership transfer must not copy");
    assert_eq!(trace.rank(0).handoff_bytes(), 800 + 65536 * 8);
    assert_eq!(trace.rank(0).pool_hits() + trace.rank(0).pool_misses(), 0);
}

/// Shared-buffer sends fan one allocation out to many destinations with
/// zero sender-side copies; the last receiver to claim the buffer takes
/// the allocation itself.
#[test]
fn shared_sends_copy_nothing_at_the_sender() {
    let (_, trace) = World::builder(3).recv_timeout(TIMEOUT).run_traced(|c| {
        if c.rank() == 0 {
            let buf = Arc::new(vec![0.5f64; 4096]); // 32 KiB
            let reqs = [c.isend_shared(1, 3, &buf), c.isend_shared(2, 3, &buf)];
            for r in reqs {
                r.wait();
            }
        } else {
            assert_eq!(c.irecv::<f64>(0, 3).wait(), vec![0.5f64; 4096]);
        }
    });
    assert_eq!(trace.rank(0).copied_bytes(), 0);
    // Both envelopes' payload bytes move by ownership transfer.
    assert_eq!(trace.rank(0).handoff_bytes(), 2 * 4096 * 8);
}

beatnik_comm::backend_matrix! {
    /// Copy accounting is protocol-level and therefore backend-uniform:
    /// a large ownership-transfer send reports zero copied bytes on
    /// every transport (wire backends serialize internally, which the
    /// protocol counters never charge).
    fn owned_sends_report_zero_copies(kind: TransportKind) {
        let (_, trace) = World::builder(2)
            .transport(kind)
            .recv_timeout(TIMEOUT)
            .run_traced(|c| {
                if c.rank() == 0 {
                    let data: Vec<u64> = (0..8192).collect(); // 64 KiB >= eager limit
                    c.isend_owned(1, 7, data).wait();
                } else {
                    let got = c.irecv::<u64>(0, 7).wait();
                    assert_eq!(got.len(), 8192);
                    assert_eq!(got[4096], 4096);
                }
            });
        for r in 0..2 {
            assert_eq!(trace.rank(r).copied_bytes(), 0, "rank {r} on {kind}");
        }
        assert_eq!(trace.rank(0).handoff_bytes(), 65536);
    }

    /// The capability probe tells callers which backends move pointers
    /// end to end: thread always, shmem when the peer shares the
    /// process (loopback worlds), TCP never.
    fn handoff_capability_matches_backend(kind: TransportKind) {
        let caps = World::builder(2)
            .transport(kind)
            .recv_timeout(TIMEOUT)
            .run(move |c| c.transport_handoff((c.rank() + 1) % 2));
        let expect = match kind {
            TransportKind::Thread | TransportKind::Shmem => true,
            TransportKind::Tcp => false,
        };
        assert_eq!(caps, vec![expect; 2]);
    }
}

/// Same-selector messages must never overtake each other, whichever mix
/// of exact and wildcard receives drains them. Randomized streams from
/// several senders, consumed through interleaved blocking recvs, irecvs,
/// and wildcard receives.
#[test]
fn non_overtaking_under_randomized_mixed_selectors() {
    const MSGS: u64 = 60;
    for seed in 0..4u64 {
        World::builder(4).run(move |c| {
            if c.rank() == 0 {
                // Per-sender sequence numbers; message value encodes
                // (sender, seq) so ordering violations are detectable.
                let mut next_seq = [0u64; 4];
                let mut rng = Rng::seed_from_u64(seed);
                let mut received = 0;
                while received < MSGS * 3 {
                    // Exact receives are only safe from senders that
                    // still have messages in flight (wildcards may have
                    // drained a stream ahead of the exact picks).
                    let open: Vec<usize> =
                        (1..4).filter(|&s| next_seq[s] < MSGS).collect();
                    let style = rng.gen_index(0..3);
                    let (payload, src) = match style {
                        // Exact-selector blocking receive from a random
                        // still-open sender (tag = sender for variety).
                        0 if !open.is_empty() => {
                            let s = open[rng.gen_index(0..open.len())];
                            (c.recv::<u64>(s, s as u64), s)
                        }
                        // Posted-receive path (exact selector).
                        1 if !open.is_empty() => {
                            let s = open[rng.gen_index(0..open.len())];
                            (c.irecv::<u64>(s, s as u64).wait(), s)
                        }
                        // Wildcard: matches whichever stream arrives
                        // first; must still respect per-stream order.
                        _ => {
                            let (v, src, _tag) = c.recv_any::<u64>(ANY_SOURCE, ANY_TAG);
                            (v, src)
                        }
                    };
                    let seq = payload[0] % 1000;
                    let sender = payload[0] / 1000;
                    assert_eq!(sender as usize, src, "seed {seed}");
                    assert_eq!(
                        seq,
                        next_seq[src],
                        "seed {seed}: stream from {src} overtook (got {seq}, want {})",
                        next_seq[src]
                    );
                    next_seq[src] += 1;
                    received += 1;
                }
            } else {
                // Each sender emits an ordered stream on its own (src,
                // tag) selector, alternating send styles.
                let r = c.rank() as u64;
                for seq in 0..MSGS {
                    let v = [r * 1000 + seq];
                    if seq % 2 == 0 {
                        c.isend(0, r, &v).wait();
                    } else {
                        c.send(0, r, v.to_vec());
                    }
                }
            }
        });
    }
}

/// Exact-selector receives must not steal from a wildcard's stream
/// position: interleave a wildcard irecv batch with exact receives and
/// check every stream is seen in order.
#[test]
fn wait_all_wildcards_and_exact_posts_preserve_stream_order() {
    World::builder(3).run(|c| {
        if c.rank() == 0 {
            // Post: exact from 1, wildcard, exact from 2, wildcard.
            let reqs = vec![
                c.irecv::<u64>(1, 9),
                c.irecv::<u64>(ANY_SOURCE, 9),
                c.irecv::<u64>(2, 9),
                c.irecv::<u64>(ANY_SOURCE, 9),
            ];
            let got = wait_all(reqs);
            // Posted-order matching: the first exact-from-1 post gets
            // sender 1's first message (100), the first wildcard takes
            // whichever arrives next; per-stream order must hold across
            // the exact and wildcard consumers.
            let from1: Vec<u64> = got.iter().flatten().copied().filter(|v| *v < 200).collect();
            let from2: Vec<u64> = got.iter().flatten().copied().filter(|v| *v >= 200).collect();
            assert_eq!(from1, vec![100, 101]);
            assert_eq!(from2, vec![200, 201]);
        } else {
            let base = c.rank() as u64 * 100;
            c.isend(0, 9, &[base]).wait();
            c.isend(0, 9, &[base + 1]).wait();
        }
    });
}

/// Property test for the zero-copy path: ownership-transfer sends mixed
/// into eager, rendezvous, and posted-receive traffic must preserve
/// per-stream non-overtaking order and payload integrity — and the copy
/// counters must come out exactly as the protocol prices each style
/// (eager 2x, rendezvous slice 1x, owned 0x + handoff).
#[test]
fn zero_copy_sends_interleave_with_eager_and_rendezvous_traffic() {
    const MSGS: u64 = 45;
    const LIMIT: usize = 1024;
    // Message sizes in u64 elements per send style.
    const EAGER_N: usize = 64; // 512 B  <= limit: eager, copied 2x
    const RDV_N: usize = 200; // 1600 B >  limit: slice rendezvous, copied 1x
    const OWNED_N: usize = 300; // 2400 B: ownership transfer, copied 0x

    for seed in 0..3u64 {
        let (expected, trace) = World::builder(4)
            .recv_timeout(TIMEOUT)
            .eager_limit(LIMIT)
            .run_traced(move |c| {
                if c.rank() == 0 {
                    let mut next_seq = [0u64; 4];
                    let mut rng = Rng::seed_from_u64(seed);
                    let mut received = 0;
                    while received < MSGS * 3 {
                        let open: Vec<usize> = (1..4).filter(|&s| next_seq[s] < MSGS).collect();
                        let payload = match rng.gen_index(0..3) {
                            0 if !open.is_empty() => {
                                let s = open[rng.gen_index(0..open.len())];
                                c.recv::<u64>(s, s as u64)
                            }
                            1 if !open.is_empty() => {
                                let s = open[rng.gen_index(0..open.len())];
                                c.irecv::<u64>(s, s as u64).wait()
                            }
                            _ => c.recv_any::<u64>(ANY_SOURCE, ANY_TAG).0,
                        };
                        // Header encodes (sender, seq); every filler
                        // element must match header + index.
                        let header = payload[0];
                        let src = (header / 1000) as usize;
                        let seq = header % 1000;
                        assert_eq!(
                            seq, next_seq[src],
                            "seed {seed}: stream from {src} overtook"
                        );
                        for (i, &v) in payload.iter().enumerate() {
                            assert_eq!(
                                v,
                                header + i as u64,
                                "seed {seed}: payload corrupted at elem {i} of (src {src}, seq {seq})"
                            );
                        }
                        next_seq[src] += 1;
                        received += 1;
                    }
                    (0u64, 0u64)
                } else {
                    let r = c.rank() as u64;
                    let (mut copied, mut handoff) = (0u64, 0u64);
                    for seq in 0..MSGS {
                        let header = r * 1000 + seq;
                        let fill = |n: usize| -> Vec<u64> {
                            (0..n as u64).map(|i| header + i).collect()
                        };
                        match seq % 3 {
                            0 => {
                                c.isend(0, r, &fill(EAGER_N)).wait();
                                copied += 2 * (EAGER_N * 8) as u64;
                            }
                            1 => {
                                c.isend(0, r, &fill(RDV_N)).wait();
                                copied += (RDV_N * 8) as u64;
                            }
                            _ => {
                                c.isend_owned(0, r, fill(OWNED_N)).wait();
                                handoff += (OWNED_N * 8) as u64;
                            }
                        }
                    }
                    (copied, handoff)
                }
            });
        for (rank, &(copied, handoff)) in expected.iter().enumerate() {
            assert_eq!(trace.rank(rank).copied_bytes(), copied, "seed {seed} rank {rank}");
            assert_eq!(trace.rank(rank).handoff_bytes(), handoff, "seed {seed} rank {rank}");
        }
    }
}
