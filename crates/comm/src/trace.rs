//! Communication instrumentation.
//!
//! Beatnik exists to *measure communication*, so every operation the
//! runtime performs is counted here: one [`RankTrace`] per world rank,
//! shared by all communicators that rank derives (splits, Cartesian row/
//! column subcommunicators), aggregated into a [`WorldTrace`] when the
//! world finishes. The analytic performance model in `beatnik-model` maps
//! these counts onto machine parameters to predict time at scale.

use crate::sync::Mutex;
use beatnik_telemetry::sizebins;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-message size histogram over the shared power-of-two buckets of
/// [`beatnik_telemetry::sizebins`]: `hist[i]` counts messages whose
/// payload falls in bucket `i`. Telemetry skew reports and the `model`
/// crate's network predictions use the same buckets, so a measured
/// histogram feeds the analytic model directly.
pub type ByteHistogram = [u64; sizebins::NUM_BUCKETS];

/// The kinds of operations the runtime distinguishes in traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Point-to-point send.
    Send,
    /// Point-to-point receive.
    Recv,
    /// Barrier participation.
    Barrier,
    /// Broadcast participation.
    Broadcast,
    /// Reduce-to-root participation.
    Reduce,
    /// Allreduce participation.
    Allreduce,
    /// Scan / exscan participation (prefix reductions).
    Scan,
    /// Gather participation.
    Gather,
    /// Allgather participation.
    Allgather,
    /// Scatter participation.
    Scatter,
    /// All-to-all participation (regular counts).
    Alltoall,
    /// All-to-all participation (variable counts).
    Alltoallv,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Counters for one operation kind on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Number of calls to the operation.
    pub calls: u64,
    /// Number of point-to-point messages the operation put on the "wire".
    pub messages: u64,
    /// Total payload bytes sent by this rank within the operation.
    pub bytes: u64,
}

impl OpStats {
    fn merge(&mut self, other: &OpStats) {
        self.calls += other.calls;
        self.messages += other.messages;
        self.bytes += other.bytes;
    }
}

/// All counters for one rank, shared across its derived communicators.
#[derive(Debug, Default)]
pub struct RankTrace {
    inner: Mutex<BTreeMap<OpKind, OpStats>>,
    /// Per-op histogram of individual message sizes (not just totals):
    /// `hist[kind][bucket]` counts messages, bucketed per [`sizebins`].
    hist: Mutex<BTreeMap<OpKind, ByteHistogram>>,
    /// Bytes sent to each *world* peer rank (communication matrix row).
    peers: Mutex<BTreeMap<usize, u64>>,
    /// Send-buffer pool acquisitions served from the free list.
    pool_hits: AtomicU64,
    /// Send-buffer pool acquisitions that had to allocate.
    pool_misses: AtomicU64,
    /// Nonblocking requests currently posted but not yet retired.
    outstanding: AtomicU64,
    /// High-water mark of `outstanding` — how deeply the program pipelines.
    peak_outstanding: AtomicU64,
    /// Payload bytes physically copied by the transport on this rank's
    /// sends (eager/pooled sends count the payload twice — once into the
    /// envelope, once out at the receiver; rendezvous sends count it
    /// once; owned-`Vec` sends move the allocation and count zero).
    copied: AtomicU64,
    /// Peak simultaneously checked-out send-pool buffers, mirrored from
    /// [`crate::BufferPool`] when the world joins.
    pool_peak_in_flight: AtomicU64,
}

impl RankTrace {
    /// Fresh, zeroed trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one *call* of `kind` that sent `messages` messages totalling
    /// `bytes` payload bytes from this rank.
    pub fn record(&self, kind: OpKind, messages: u64, bytes: u64) {
        let mut m = self.inner.lock();
        let e = m.entry(kind).or_default();
        e.calls += 1;
        e.messages += messages;
        e.bytes += bytes;
    }

    /// Add messages/bytes to an already-counted call (used by collectives
    /// built from several point-to-point rounds).
    pub fn add_traffic(&self, kind: OpKind, messages: u64, bytes: u64) {
        let mut m = self.inner.lock();
        let e = m.entry(kind).or_default();
        e.messages += messages;
        e.bytes += bytes;
    }

    /// Record one message of `bytes` payload bytes in `kind`'s size
    /// histogram. Called once per point-to-point message the runtime
    /// puts on the "wire" (user sends and collective-internal sends).
    pub fn record_message(&self, kind: OpKind, bytes: u64) {
        let mut m = self.hist.lock();
        let h = m.entry(kind).or_insert([0; sizebins::NUM_BUCKETS]);
        h[sizebins::bucket_of(bytes)] += 1;
    }

    /// The per-message size histogram for one op kind (zeroed if the op
    /// never sent a message).
    pub fn byte_histogram(&self, kind: OpKind) -> ByteHistogram {
        self.hist
            .lock()
            .get(&kind)
            .copied()
            .unwrap_or([0; sizebins::NUM_BUCKETS])
    }

    /// All per-op message-size histograms.
    pub fn byte_histograms(&self) -> BTreeMap<OpKind, ByteHistogram> {
        self.hist.lock().clone()
    }

    /// Record bytes sent to a world peer (communication-matrix entry).
    pub fn record_peer(&self, peer: usize, bytes: u64) {
        *self.peers.lock().entry(peer).or_default() += bytes;
    }

    /// Bytes sent per world peer.
    pub fn peer_bytes(&self) -> BTreeMap<usize, u64> {
        self.peers.lock().clone()
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> BTreeMap<OpKind, OpStats> {
        self.inner.lock().clone()
    }

    /// Stats for one op kind (zeroed if never recorded).
    pub fn get(&self, kind: OpKind) -> OpStats {
        self.inner.lock().get(&kind).copied().unwrap_or_default()
    }

    /// Total bytes sent by this rank across all op kinds.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().values().map(|s| s.bytes).sum()
    }

    /// Total messages sent by this rank across all op kinds.
    pub fn total_messages(&self) -> u64 {
        self.inner.lock().values().map(|s| s.messages).sum()
    }

    /// Record one buffer-pool acquisition on the nonblocking send path.
    pub fn record_pool(&self, hit: bool) {
        if hit {
            self.pool_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.pool_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record that a nonblocking request (`isend`/`irecv`) was posted.
    pub fn request_posted(&self) {
        let now = self.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_outstanding.fetch_max(now, Ordering::Relaxed);
    }

    /// Record that a nonblocking request completed (wait/test success or
    /// handle drop).
    pub fn request_completed(&self) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
    }

    /// Buffer-pool acquisitions served without allocating.
    pub fn pool_hits(&self) -> u64 {
        self.pool_hits.load(Ordering::Relaxed)
    }

    /// Buffer-pool acquisitions that allocated a fresh buffer.
    pub fn pool_misses(&self) -> u64 {
        self.pool_misses.load(Ordering::Relaxed)
    }

    /// Fraction of pool acquisitions served from the free list, in
    /// `[0, 1]`; zero when the nonblocking path was never used.
    pub fn pool_hit_rate(&self) -> f64 {
        let h = self.pool_hits();
        let m = self.pool_misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Record that the transport physically copied `bytes` payload bytes
    /// while sending (see the `copied` field for the accounting rules).
    pub fn record_copied(&self, bytes: u64) {
        self.copied.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Payload bytes physically copied by this rank's sends.
    pub fn copied_bytes(&self) -> u64 {
        self.copied.load(Ordering::Relaxed)
    }

    /// Mirror the send pool's peak-in-flight gauge into the trace (the
    /// world does this after joining so summaries can report it).
    pub fn set_pool_peak_in_flight(&self, peak: u64) {
        self.pool_peak_in_flight.store(peak, Ordering::Relaxed);
    }

    /// Peak simultaneously checked-out send-pool buffers on this rank.
    pub fn pool_peak_in_flight(&self) -> u64 {
        self.pool_peak_in_flight.load(Ordering::Relaxed)
    }

    /// Nonblocking requests currently posted and not yet retired.
    pub fn outstanding_requests(&self) -> u64 {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// High-water mark of simultaneously outstanding requests.
    pub fn peak_outstanding(&self) -> u64 {
        self.peak_outstanding.load(Ordering::Relaxed)
    }

    /// Reset every counter to zero (benchmark harnesses call this between
    /// warmup and measured phases).
    pub fn reset(&self) {
        self.inner.lock().clear();
        self.hist.lock().clear();
        self.peers.lock().clear();
        self.pool_hits.store(0, Ordering::Relaxed);
        self.pool_misses.store(0, Ordering::Relaxed);
        self.outstanding.store(0, Ordering::Relaxed);
        self.peak_outstanding.store(0, Ordering::Relaxed);
        self.copied.store(0, Ordering::Relaxed);
        self.pool_peak_in_flight.store(0, Ordering::Relaxed);
    }
}

/// Aggregated traces for a completed world run, indexed by world rank.
#[derive(Debug)]
pub struct WorldTrace {
    per_rank: Vec<Arc<RankTrace>>,
}

impl WorldTrace {
    /// Build from the per-rank trace handles the world created.
    pub fn new(per_rank: Vec<Arc<RankTrace>>) -> Self {
        WorldTrace { per_rank }
    }

    /// Number of ranks traced.
    pub fn num_ranks(&self) -> usize {
        self.per_rank.len()
    }

    /// The trace of one rank.
    pub fn rank(&self, r: usize) -> &RankTrace {
        &self.per_rank[r]
    }

    /// Sum of an op's stats over all ranks.
    pub fn total(&self, kind: OpKind) -> OpStats {
        let mut acc = OpStats::default();
        for t in &self.per_rank {
            acc.merge(&t.get(kind));
        }
        acc
    }

    /// Total bytes moved across the whole world.
    pub fn total_bytes(&self) -> u64 {
        self.per_rank.iter().map(|t| t.total_bytes()).sum()
    }

    /// Maximum bytes sent by any single rank — a first-order load-imbalance
    /// indicator for communication volume.
    pub fn max_rank_bytes(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|t| t.total_bytes())
            .max()
            .unwrap_or(0)
    }

    /// World-aggregate buffer-pool hit rate over the nonblocking send
    /// path, in `[0, 1]`; zero when no rank used pooled sends.
    pub fn pool_hit_rate(&self) -> f64 {
        let hits: u64 = self.per_rank.iter().map(|t| t.pool_hits()).sum();
        let misses: u64 = self.per_rank.iter().map(|t| t.pool_misses()).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Deepest request pipeline any rank built (max over ranks of the
    /// per-rank peak of simultaneously outstanding `isend`/`irecv`
    /// requests).
    pub fn peak_outstanding(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|t| t.peak_outstanding())
            .max()
            .unwrap_or(0)
    }

    /// Payload bytes physically copied by sends across the whole world.
    /// Compare against [`total_bytes`](WorldTrace::total_bytes) to see
    /// the copy factor the transport achieved (2× = fully eager/pooled,
    /// 1× = fully rendezvous, 0× = owned-`Vec` moves).
    pub fn copied_bytes(&self) -> u64 {
        self.per_rank.iter().map(|t| t.copied_bytes()).sum()
    }

    /// Largest send-pool peak-in-flight gauge over all ranks.
    pub fn pool_peak_in_flight(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|t| t.pool_peak_in_flight())
            .max()
            .unwrap_or(0)
    }

    /// Sum of one op's per-message size histogram over all ranks.
    pub fn byte_histogram(&self, kind: OpKind) -> ByteHistogram {
        let mut acc = [0u64; sizebins::NUM_BUCKETS];
        for t in &self.per_rank {
            for (i, c) in t.byte_histogram(kind).iter().enumerate() {
                acc[i] += c;
            }
        }
        acc
    }

    /// Render the non-empty per-op message-size histograms as a table
    /// (one row per populated size bucket).
    pub fn histogram_text(&self) -> String {
        use std::fmt::Write as _;
        let mut kinds: BTreeMap<OpKind, ByteHistogram> = BTreeMap::new();
        for t in &self.per_rank {
            for (k, h) in t.byte_histograms() {
                let acc = kinds.entry(k).or_insert([0; sizebins::NUM_BUCKETS]);
                for (i, c) in h.iter().enumerate() {
                    acc[i] += c;
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "message-size histograms (shared model buckets):");
        for (k, h) in kinds {
            if h.iter().all(|&c| c == 0) {
                continue;
            }
            let _ = writeln!(out, "  {k}:");
            for (i, &c) in h.iter().enumerate() {
                if c > 0 {
                    let _ = writeln!(out, "    {:>8} {c:>10}", sizebins::label(i));
                }
            }
        }
        out
    }

    /// The world communication matrix: `matrix[src][dst]` = bytes sent.
    pub fn peer_matrix(&self) -> Vec<Vec<u64>> {
        let n = self.per_rank.len();
        let mut m = vec![vec![0u64; n]; n];
        for (src, t) in self.per_rank.iter().enumerate() {
            for (dst, bytes) in t.peer_bytes() {
                if dst < n {
                    m[src][dst] = bytes;
                }
            }
        }
        m
    }

    /// Render the communication matrix as an aligned table (KiB entries).
    pub fn matrix_text(&self) -> String {
        use std::fmt::Write as _;
        let m = self.peer_matrix();
        let n = m.len();
        let mut out = String::new();
        let _ = writeln!(out, "communication matrix (KiB sent, row=src col=dst):");
        let _ = write!(out, "{:>6}", "");
        for d in 0..n {
            let _ = write!(out, " {d:>8}");
        }
        let _ = writeln!(out);
        for (s, row) in m.iter().enumerate() {
            let _ = write!(out, "{s:>6}");
            for &b in row {
                let _ = write!(out, " {:>8}", b / 1024);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Human-readable multi-line summary table.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut kinds: BTreeMap<OpKind, OpStats> = BTreeMap::new();
        for t in &self.per_rank {
            for (k, s) in t.snapshot() {
                kinds.entry(k).or_default().merge(&s);
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{:<12} {:>10} {:>12} {:>16}", "op", "calls", "messages", "bytes");
        for (k, s) in kinds {
            let _ = writeln!(
                out,
                "{:<12} {:>10} {:>12} {:>16}",
                k.to_string(),
                s.calls,
                s.messages,
                s.bytes
            );
        }
        let hits: u64 = self.per_rank.iter().map(|t| t.pool_hits()).sum();
        let misses: u64 = self.per_rank.iter().map(|t| t.pool_misses()).sum();
        if hits + misses > 0 {
            let _ = writeln!(
                out,
                "send-buffer pool: {hits} hits / {misses} misses ({:.1}% hit rate)",
                self.pool_hit_rate() * 100.0
            );
        }
        let pool_peak = self.pool_peak_in_flight();
        if pool_peak > 0 {
            let _ = writeln!(out, "send-buffer pool peak in flight (any rank): {pool_peak}");
        }
        let copied = self.copied_bytes();
        if copied > 0 {
            let _ = writeln!(out, "payload bytes copied by transport: {copied}");
        }
        let peak = self.peak_outstanding();
        if peak > 0 {
            let _ = writeln!(out, "peak outstanding requests (any rank): {peak}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let t = RankTrace::new();
        t.record(OpKind::Send, 1, 100);
        t.record(OpKind::Send, 1, 50);
        t.add_traffic(OpKind::Send, 2, 10);
        let s = t.get(OpKind::Send);
        assert_eq!(s.calls, 2);
        assert_eq!(s.messages, 4);
        assert_eq!(s.bytes, 160);
        assert_eq!(t.total_bytes(), 160);
        t.reset();
        assert_eq!(t.get(OpKind::Send), OpStats::default());
    }

    #[test]
    fn pool_and_request_counters() {
        let t = RankTrace::new();
        assert_eq!(t.pool_hit_rate(), 0.0);
        t.record_pool(false);
        t.record_pool(true);
        t.record_pool(true);
        assert_eq!(t.pool_hits(), 2);
        assert_eq!(t.pool_misses(), 1);
        assert!((t.pool_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        t.request_posted();
        t.request_posted();
        assert_eq!(t.outstanding_requests(), 2);
        t.request_completed();
        t.request_posted();
        t.request_posted();
        assert_eq!(t.peak_outstanding(), 3);
        t.request_completed();
        t.request_completed();
        t.request_completed();
        assert_eq!(t.outstanding_requests(), 0);
        assert_eq!(t.peak_outstanding(), 3);
        t.reset();
        assert_eq!(t.pool_hits(), 0);
        assert_eq!(t.peak_outstanding(), 0);
    }

    #[test]
    fn byte_histograms_share_model_buckets() {
        let t = RankTrace::new();
        t.record_message(OpKind::Send, 1); // bucket 0
        t.record_message(OpKind::Send, 100); // 64 < 100 <= 128 -> bucket 7
        t.record_message(OpKind::Send, 128); // bucket 7
        t.record_message(OpKind::Alltoall, 4096); // bucket 12
        let h = t.byte_histogram(OpKind::Send);
        assert_eq!(h[0], 1);
        assert_eq!(h[sizebins::bucket_of(100)], 2);
        assert_eq!(h.iter().sum::<u64>(), 3);
        assert_eq!(t.byte_histogram(OpKind::Alltoall)[12], 1);
        // Never-recorded op yields an all-zero histogram.
        assert_eq!(t.byte_histogram(OpKind::Barrier), [0; sizebins::NUM_BUCKETS]);
        t.reset();
        assert!(t.byte_histograms().is_empty());
    }

    #[test]
    fn world_histogram_sums_ranks() {
        let a = Arc::new(RankTrace::new());
        let b = Arc::new(RankTrace::new());
        a.record_message(OpKind::Send, 1024);
        b.record_message(OpKind::Send, 1024);
        b.record_message(OpKind::Send, 3);
        let w = WorldTrace::new(vec![a, b]);
        let h = w.byte_histogram(OpKind::Send);
        assert_eq!(h[sizebins::bucket_of(1024)], 2);
        assert_eq!(h[sizebins::bucket_of(3)], 1);
        let text = w.histogram_text();
        assert!(text.contains("Send"), "{text}");
        assert!(text.contains("message-size histograms"), "{text}");
    }

    #[test]
    fn world_trace_reports_pool_and_peak() {
        let a = Arc::new(RankTrace::new());
        let b = Arc::new(RankTrace::new());
        a.record_pool(true);
        a.record_pool(false);
        b.record_pool(true);
        for _ in 0..4 {
            b.request_posted();
        }
        let w = WorldTrace::new(vec![a, b]);
        assert!((w.pool_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(w.peak_outstanding(), 4);
        let s = w.summary();
        assert!(s.contains("send-buffer pool"));
        assert!(s.contains("peak outstanding"));
    }

    #[test]
    fn copied_bytes_and_pool_peak_aggregate() {
        let a = Arc::new(RankTrace::new());
        let b = Arc::new(RankTrace::new());
        a.record_copied(100);
        a.record_copied(28);
        b.record_copied(72);
        a.set_pool_peak_in_flight(3);
        b.set_pool_peak_in_flight(9);
        assert_eq!(a.copied_bytes(), 128);
        let w = WorldTrace::new(vec![Arc::clone(&a), b]);
        assert_eq!(w.copied_bytes(), 200);
        assert_eq!(w.pool_peak_in_flight(), 9);
        let s = w.summary();
        assert!(s.contains("payload bytes copied by transport: 200"), "{s}");
        assert!(s.contains("peak in flight (any rank): 9"), "{s}");
        a.reset();
        assert_eq!(a.copied_bytes(), 0);
        assert_eq!(a.pool_peak_in_flight(), 0);
    }

    #[test]
    fn world_trace_aggregates_over_ranks() {
        let a = Arc::new(RankTrace::new());
        let b = Arc::new(RankTrace::new());
        a.record(OpKind::Alltoall, 3, 300);
        b.record(OpKind::Alltoall, 3, 500);
        b.record(OpKind::Send, 1, 7);
        let w = WorldTrace::new(vec![a, b]);
        assert_eq!(w.num_ranks(), 2);
        let t = w.total(OpKind::Alltoall);
        assert_eq!(t.calls, 2);
        assert_eq!(t.bytes, 800);
        assert_eq!(w.total_bytes(), 807);
        assert_eq!(w.max_rank_bytes(), 507);
        let s = w.summary();
        assert!(s.contains("Alltoall"));
        assert!(s.contains("800"));
    }
}

#[cfg(test)]
mod matrix_tests {
    use crate::world::World;

    #[test]
    fn matrix_records_world_peers_for_p2p() {
        let (_, trace) = World::run_traced(3, |c| {
            if c.rank() == 0 {
                c.send(2, 0, vec![0u8; 1024]);
            } else if c.rank() == 2 {
                let _ = c.recv::<u8>(0, 0);
            }
        });
        let m = trace.peer_matrix();
        assert_eq!(m[0][2], 1024);
        assert_eq!(m[0][1], 0);
        assert_eq!(m[2][0], 0);
        let text = trace.matrix_text();
        assert!(text.contains("communication matrix"));
    }

    #[test]
    fn matrix_attributes_subcommunicator_traffic_to_world_ranks() {
        // Split into a reversed-order subgroup; traffic must still land on
        // the correct *world* rows/cols.
        let (_, trace) = World::run_traced(4, |c| {
            let sub = c.split(Some(0), -(c.rank() as i64)).unwrap();
            // sub rank 0 = world rank 3, sub rank 3 = world rank 0.
            if sub.rank() == 0 {
                sub.send(3, 7, vec![0u64; 16]); // world 3 -> world 0, 128 B
            } else if sub.rank() == 3 {
                let _ = sub.recv::<u64>(0, 7);
            }
        });
        let m = trace.peer_matrix();
        // The 128-byte payload lands on the world-3 -> world-0 entry (on
        // top of the split's own small collective traffic); the reverse
        // direction carries only collective overhead.
        assert!(m[3][0] >= 128, "{m:?}");
        assert!(m[0][3] < 128, "{m:?}");
    }

    #[test]
    fn collective_traffic_appears_in_the_matrix() {
        let (_, trace) = World::run_traced(4, |c| {
            let _ = c.alltoall(&[0u8; 1024]); // 256 bytes per destination
        });
        let m = trace.peer_matrix();
        for (s, row) in m.iter().enumerate() {
            for (d, &bytes) in row.iter().enumerate() {
                if s != d {
                    assert_eq!(bytes, 256, "{s}->{d}");
                }
            }
        }
    }
}
