//! Generic rectangle redistribution.
//!
//! Every reshape in the distributed FFT moves data between two
//! *rectangle-per-rank* layouts of the same global index space. Because
//! both layouts are computable from rank indices alone, each rank derives
//! every pairwise intersection analytically — no metadata travels with the
//! payloads, exactly as in production transpose engines.

use crate::layout::{pack, unpack, Rect};
use beatnik_comm::{wait_all, AllToAllAlgo, Communicator};
use beatnik_fft::Complex;

/// Message tag for p2p reshape traffic. One message per `(source, tag)`
/// per reshape plus the mailbox's non-overtaking guarantee keeps
/// back-to-back reshapes from cross-matching, so a constant tag suffices.
const DFFT_TAG: u64 = 0x4446_4654; // "DFFT"

/// Move data from `my_rect` (this rank's rectangle in the source layout,
/// with row-major `data`) to the destination layout described by
/// `dest_rect(r)` over all ranks of `comm`. `src_rect(r)` must describe the
/// source layout for every rank (used to reconstruct incoming block
/// shapes). Returns this rank's new rectangle and its row-major contents.
///
/// `algo` selects the exchange engine (the heFFTe `AllToAll` knob):
/// [`AllToAllAlgo::Direct`] runs nonblocking point-to-point — every
/// receive is posted up front, sends go out pairwise, and arrivals
/// complete in whatever order they land; the p2p path also skips peers
/// whose rectangle intersection is empty, so sparse reshapes send fewer
/// messages than the collective. Every other choice runs the collective
/// `alltoallv` with that algorithm — including
/// [`AllToAllAlgo::Adaptive`], which picks the engine per call from
/// this rank's send volume.
pub fn redistribute(
    comm: &Communicator,
    data: &[Complex],
    src_rect: &dyn Fn(usize) -> Rect,
    dest_rect: &dyn Fn(usize) -> Rect,
    algo: AllToAllAlgo,
) -> (Rect, Vec<Complex>) {
    let _phase = comm.telemetry().phase("dfft-redistribute");
    let p = comm.size();
    let me = comm.rank();
    let my_src = src_rect(me);
    let my_dst = dest_rect(me);
    debug_assert_eq!(data.len(), my_src.area(), "redistribute: bad source buffer");

    // Pack the intersection of my source data with every destination.
    let mut blocks: Vec<Vec<Complex>> = (0..p)
        .map(|d| {
            let inter = my_src.intersect(&dest_rect(d));
            if inter.is_empty() {
                Vec::new()
            } else {
                pack(data, &my_src, &inter)
            }
        })
        .collect();

    let received: Vec<Vec<Complex>> = match algo {
        AllToAllAlgo::Direct => {
            // Both sides compute the same intersections, so receiver and
            // sender agree on exactly which peers exchange a message.
            let expect: Vec<usize> = (0..p)
                .filter(|&s| s != me && !src_rect(s).intersect(&my_dst).is_empty())
                .collect();
            let reqs = expect
                .iter()
                .map(|&s| comm.irecv::<Complex>(s, DFFT_TAG))
                .collect();
            // Pairwise destination order spreads traffic instead of having
            // every rank hit rank 0 first. The packed per-destination
            // blocks are given up wholesale: ownership-transfer sends
            // move each block's allocation to its receiver with zero
            // payload copies at any size.
            let sends: Vec<_> = (1..p)
                .map(|step| (me + step) % p)
                .filter_map(|d| {
                    if blocks[d].is_empty() {
                        None
                    } else {
                        Some(comm.isend_owned(d, DFFT_TAG, std::mem::take(&mut blocks[d])))
                    }
                })
                .collect();
            let got = wait_all(reqs);
            for s in sends {
                s.wait();
            }
            let mut received: Vec<Vec<Complex>> = (0..p).map(|_| Vec::new()).collect();
            received[me] = std::mem::take(&mut blocks[me]);
            for (s, block) in expect.into_iter().zip(got) {
                received[s] = block;
            }
            received
        }
        collective => {
            let counts: Vec<usize> = blocks.iter().map(Vec::len).collect();
            let send = blocks.concat();
            let (flat, rcounts) = comm.alltoallv_with(&send, &counts, collective);
            let mut rest = flat.as_slice();
            rcounts
                .iter()
                .map(|&n| {
                    let (head, tail) = rest.split_at(n);
                    rest = tail;
                    head.to_vec()
                })
                .collect()
        }
    };

    // Place every received block into my destination rectangle.
    let mut out = vec![Complex::default(); my_dst.area()];
    for (s, block) in received.into_iter().enumerate() {
        let inter = src_rect(s).intersect(&my_dst);
        if inter.is_empty() {
            debug_assert!(block.is_empty());
            continue;
        }
        debug_assert_eq!(block.len(), inter.area(), "redistribute: bad block from {s}");
        unpack(&mut out, &my_dst, &inter, &block);
    }
    (my_dst, out)
}

/// Simulate heFFTe's skipped-reorder path: push the assembled buffer
/// through an element-wise strided pass (scratch copy + per-element
/// placement). Data is unchanged; local memory traffic roughly doubles,
/// matching the cost of operating on non-contiguous layouts.
pub fn no_reorder_penalty(buf: &mut [Complex]) {
    let scratch: Vec<Complex> = buf.to_vec();
    // Reverse-order element-wise writeback defeats the memcpy fast path,
    // behaving like a strided gather/scatter.
    let n = buf.len();
    for i in 0..n {
        buf[n - 1 - i] = scratch[n - 1 - i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Dist;
    use beatnik_comm::World;

    /// Global 8x6 grid with value = row*100 + col, moved between layouts.
    fn value(r: usize, c: usize) -> Complex {
        Complex::new((r * 100 + c) as f64, 0.0)
    }

    fn fill(rect: &Rect) -> Vec<Complex> {
        let mut v = Vec::with_capacity(rect.area());
        for r in rect.rows.clone() {
            for c in rect.cols.clone() {
                v.push(value(r, c));
            }
        }
        v
    }

    fn check(rect: &Rect, data: &[Complex]) {
        let mut i = 0;
        for r in rect.rows.clone() {
            for c in rect.cols.clone() {
                assert_eq!(data[i], value(r, c), "({r},{c})");
                i += 1;
            }
        }
    }

    #[test]
    fn block_to_row_slab_and_back() {
        let (nr, nc) = (8usize, 6usize);
        for p in [1usize, 2, 4] {
            World::builder(p).run(move |comm| {
                // Source: row blocks of a 2D decomposition collapsed to
                // 1D rows for simplicity (rows split over p, full width).
                let rows = Dist::new(nr, p);
                let cols_full = 0..nc;
                let src = move |r: usize| Rect::new(rows.range(r), cols_full.clone());
                // Destination: column slabs (full height, cols split).
                let cd = Dist::new(nc, p);
                let dst = move |r: usize| Rect::new(0..nr, cd.range(r));

                let my = src(comm.rank());
                let data = fill(&my);
                let (got_rect, got) =
                    redistribute(&comm, &data, &src, &dst, AllToAllAlgo::Pairwise);
                assert_eq!(got_rect, dst(comm.rank()));
                check(&got_rect, &got);

                // And back again with the Direct algorithm.
                let (back_rect, back) =
                    redistribute(&comm, &got, &dst, &src, AllToAllAlgo::Direct);
                assert_eq!(back_rect, my);
                check(&back_rect, &back);
            });
        }
    }

    #[test]
    fn two_d_block_to_row_slab() {
        // 2D 2x2 block layout -> row slabs on 4 ranks.
        let (nr, nc) = (8usize, 8usize);
        World::builder(4).run(move |comm| {
            let rd = Dist::new(nr, 2);
            let cd = Dist::new(nc, 2);
            let src = move |r: usize| Rect::new(rd.range(r / 2), cd.range(r % 2));
            let sd = Dist::new(nr, 4);
            let dst = move |r: usize| Rect::new(sd.range(r), 0..nc);
            let my = src(comm.rank());
            let data = fill(&my);
            let (rect, got) = redistribute(&comm, &data, &src, &dst, AllToAllAlgo::Pairwise);
            check(&rect, &got);
        });
    }

    #[test]
    fn empty_destinations_are_fine() {
        // 3 ranks, 2 global rows: one destination rank owns nothing.
        World::builder(3).run(|comm| {
            let rows = Dist::new(2, 3);
            let src = move |r: usize| Rect::new(rows.range(r), 0..4);
            let dst = move |r: usize| Rect::new(if r == 0 { 0..2 } else { 2..2 }, 0..4);
            let my = src(comm.rank());
            let data = fill(&my);
            let (rect, got) = redistribute(&comm, &data, &src, &dst, AllToAllAlgo::Pairwise);
            if comm.rank() == 0 {
                assert_eq!(got.len(), 8);
                check(&rect, &got);
            } else {
                assert!(got.is_empty());
            }
        });
    }

    #[test]
    fn direct_path_is_nonblocking_p2p() {
        use beatnik_comm::OpKind;
        let (nr, nc) = (8usize, 6usize);
        let (_, trace) = World::builder(4).run_traced(move |comm| {
            let rows = Dist::new(nr, 4);
            let src = move |r: usize| Rect::new(rows.range(r), 0..nc);
            let cd = Dist::new(nc, 4);
            let dst = move |r: usize| Rect::new(0..nr, cd.range(r));
            let my = src(comm.rank());
            let data = fill(&my);
            let (rect, got) = redistribute(&comm, &data, &src, &dst, AllToAllAlgo::Direct);
            check(&rect, &got);
        });
        // The Direct engine is pure point-to-point: no collective traffic,
        // one message per nonempty peer intersection (3 per rank here),
        // with all receives posted before the sends drain. Every block
        // travels by ownership transfer — zero protocol copies, no
        // pooled envelopes, all payload bytes on the handoff counter.
        assert_eq!(trace.total(OpKind::Alltoallv).messages, 0);
        for r in 0..4 {
            let t = trace.rank(r);
            assert_eq!(t.get(OpKind::Send).messages, 3);
            assert_eq!(t.pool_hits() + t.pool_misses(), 0);
            assert_eq!(t.copied_bytes(), 0, "rank {r} copied payload bytes");
            assert_eq!(t.handoff_bytes(), t.get(OpKind::Send).bytes);
            assert!(t.peak_outstanding() >= 4, "rank {r}");
            assert_eq!(t.outstanding_requests(), 0);
        }
    }

    #[test]
    fn no_reorder_penalty_preserves_data() {
        let mut buf: Vec<Complex> = (0..100).map(|i| Complex::new(i as f64, -(i as f64))).collect();
        let orig = buf.clone();
        no_reorder_penalty(&mut buf);
        assert_eq!(buf, orig);
    }
}
