//! Transport protocol thresholds.
//!
//! The point-to-point engine runs two send protocols, chosen per
//! message by payload size:
//!
//! * **Eager** (at or below the limit): the payload is copied into a
//!   pooled byte envelope at the sender and copied out at the receiver
//!   — two copies, but the send completes immediately and the pool
//!   makes the envelope allocation-free after warmup.
//! * **Rendezvous** (above the limit): the payload is materialised
//!   once into an owned buffer that travels by pointer and is handed
//!   to the receiver — one copy total, no pooled envelope round-trip.
//!   Matching posted receives ([`crate::Communicator::irecv`]) take
//!   delivery directly from their slot.
//!
//! The crossover defaults to [`DEFAULT_EAGER_LIMIT`] and can be tuned
//! per run with the `BEATNIK_EAGER_LIMIT` environment variable (bytes;
//! `0` forces every sized send onto the rendezvous path).

/// Default eager/rendezvous crossover in payload bytes. Mirrors the
/// 8 KiB eager limit common to production MPI transports: below it the
/// extra copy is cheaper than the envelope round-trip it avoids.
pub const DEFAULT_EAGER_LIMIT: usize = 8192;

/// Name of the environment variable overriding the eager limit.
pub const EAGER_LIMIT_ENV: &str = "BEATNIK_EAGER_LIMIT";

/// The eager limit for a new world: `BEATNIK_EAGER_LIMIT` when set to
/// a parseable byte count, [`DEFAULT_EAGER_LIMIT`] otherwise.
///
/// Read once at world construction, not per message, so a mid-run env
/// change cannot split a world across two protocols.
pub fn eager_limit_from_env() -> usize {
    parse_eager_limit(std::env::var(EAGER_LIMIT_ENV).ok().as_deref())
}

/// Parse an eager-limit override; `None` or garbage falls back to the
/// default. Split out from the env read so it is testable without
/// mutating process-global state under a parallel test runner.
fn parse_eager_limit(raw: Option<&str>) -> usize {
    raw.and_then(|s| s.trim().parse().ok()).unwrap_or(DEFAULT_EAGER_LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_and_garbage_fall_back_to_default() {
        assert_eq!(parse_eager_limit(None), DEFAULT_EAGER_LIMIT);
        assert_eq!(parse_eager_limit(Some("")), DEFAULT_EAGER_LIMIT);
        assert_eq!(parse_eager_limit(Some("lots")), DEFAULT_EAGER_LIMIT);
        assert_eq!(parse_eager_limit(Some("-1")), DEFAULT_EAGER_LIMIT);
    }

    #[test]
    fn numeric_overrides_parse() {
        assert_eq!(parse_eager_limit(Some("0")), 0);
        assert_eq!(parse_eager_limit(Some("65536")), 65536);
        assert_eq!(parse_eager_limit(Some(" 1024 ")), 1024);
    }
}
