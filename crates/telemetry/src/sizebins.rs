//! Shared power-of-two message-size buckets.
//!
//! The comm layer's per-op byte histograms (`RankTrace`) and the
//! `model` crate's network predictions bucket message sizes the same
//! way, so a measured histogram can be fed straight into the analytic
//! model. Bucket `i` holds messages of `2^(i-1) < bytes ≤ 2^i` (bucket
//! 0 holds zero- and one-byte messages); the last bucket absorbs
//! everything ≥ 2^(NUM_BUCKETS-1).

/// Number of buckets: sizes up to 2^30 (1 GiB) resolve exactly; larger
/// messages land in the final bucket.
pub const NUM_BUCKETS: usize = 31;

/// Bucket index for a message of `bytes` bytes.
#[inline]
pub fn bucket_of(bytes: u64) -> usize {
    if bytes <= 1 {
        return 0;
    }
    let b = (64 - (bytes - 1).leading_zeros()) as usize;
    b.min(NUM_BUCKETS - 1)
}

/// Inclusive upper edge of bucket `i` in bytes (`2^i`).
pub fn bucket_hi(i: usize) -> u64 {
    1u64 << i.min(62)
}

/// Exclusive lower edge of bucket `i` in bytes.
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1).min(62)
    }
}

/// Representative size for bucket `i`: the geometric-ish midpoint
/// `3 · 2^(i-2)` (= 0.75 · hi), or `1` for bucket 0. Used by the
/// network model to price a histogram of messages.
pub fn midpoint(i: usize) -> u64 {
    if i == 0 {
        1
    } else if i == 1 {
        2
    } else {
        3u64 << (i - 2).min(60)
    }
}

/// Human-readable bucket label, e.g. `"≤64B"`, `"≤4KiB"`.
pub fn label(i: usize) -> String {
    let hi = bucket_hi(i);
    if hi < 1024 {
        format!("≤{hi}B")
    } else if hi < 1024 * 1024 {
        format!("≤{}KiB", hi / 1024)
    } else if hi < 1024 * 1024 * 1024 {
        format!("≤{}MiB", hi / (1024 * 1024))
    } else {
        format!("≤{}GiB", hi / (1024 * 1024 * 1024))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(5), 3);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(1025), 11);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn every_size_lands_within_its_edges() {
        for bytes in [0u64, 1, 2, 7, 8, 9, 63, 64, 65, 4096, 1 << 20] {
            let i = bucket_of(bytes);
            assert!(bytes <= bucket_hi(i), "bytes {bytes} above hi of bucket {i}");
            if i > 0 && i < NUM_BUCKETS - 1 {
                assert!(bytes > bucket_lo(i), "bytes {bytes} below lo of bucket {i}");
            }
        }
    }

    #[test]
    fn midpoints_sit_inside_buckets() {
        for i in 1..NUM_BUCKETS - 1 {
            let m = midpoint(i);
            assert!(m > bucket_lo(i) && m <= bucket_hi(i), "bucket {i}: mid {m}");
        }
    }

    #[test]
    fn labels_render() {
        assert_eq!(label(0), "≤1B");
        assert_eq!(label(10), "≤1KiB");
        assert_eq!(label(20), "≤1MiB");
        assert_eq!(label(30), "≤1GiB");
    }
}
