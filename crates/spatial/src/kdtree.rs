//! Median-split k-d tree with pruned fixed-radius queries.
//!
//! The alternative neighbor-search backend: unlike the uniform grid its
//! performance does not degrade when the interface rolls up and point
//! density becomes highly non-uniform (the paper's single-mode case).

use crate::dist2;

/// Flattened k-d tree over a fixed point set.
pub struct KdTree {
    points: Vec<[f64; 3]>,
    /// Per-node: point index at the node.
    node_point: Vec<u32>,
    /// Per-node: split axis (0, 1, 2).
    node_axis: Vec<u8>,
    /// Per-node children indices (u32::MAX = none): [left, right].
    children: Vec<[u32; 2]>,
    root: u32,
}

const NONE: u32 = u32::MAX;

impl KdTree {
    /// Build over `points` (O(n log² n) median-by-sort construction).
    pub fn build(points: Vec<[f64; 3]>) -> Self {
        let n = points.len();
        let mut tree = KdTree {
            points,
            node_point: Vec::with_capacity(n),
            node_axis: Vec::with_capacity(n),
            children: Vec::with_capacity(n),
            root: NONE,
        };
        let mut idx: Vec<u32> = (0..n as u32).collect();
        tree.root = tree.build_rec(&mut idx, 0);
        tree
    }

    fn build_rec(&mut self, idx: &mut [u32], depth: usize) -> u32 {
        if idx.is_empty() {
            return NONE;
        }
        let axis = (depth % 3) as u8;
        idx.sort_unstable_by(|&a, &b| {
            self.points[a as usize][axis as usize]
                .total_cmp(&self.points[b as usize][axis as usize])
        });
        let mid = idx.len() / 2;
        let node = self.node_point.len() as u32;
        self.node_point.push(idx[mid]);
        self.node_axis.push(axis);
        self.children.push([NONE, NONE]);
        let (left, right) = idx.split_at_mut(mid);
        let l = self.build_rec(left, depth + 1);
        let r = self.build_rec(&mut right[1..], depth + 1);
        self.children[node as usize] = [l, r];
        node
    }

    /// The indexed points.
    pub fn points(&self) -> &[[f64; 3]] {
        &self.points
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of all points within `radius` of `q`.
    pub fn query(&self, q: [f64; 3], radius: f64, out: &mut Vec<u32>) {
        out.clear();
        if self.root == NONE {
            return;
        }
        let r2 = radius * radius;
        // Explicit stack to avoid recursion in the hot path.
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            let pi = self.node_point[node as usize];
            let p = self.points[pi as usize];
            if dist2(p, q) <= r2 {
                out.push(pi);
            }
            let axis = self.node_axis[node as usize] as usize;
            let delta = q[axis] - p[axis];
            let [l, r] = self.children[node as usize];
            // Visit the near side always; the far side only if the
            // splitting plane is within the radius.
            let (near, far) = if delta <= 0.0 { (l, r) } else { (r, l) };
            if near != NONE {
                stack.push(near);
            }
            if far != NONE && delta * delta <= r2 {
                stack.push(far);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize) -> Vec<[f64; 3]> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                [
                    (t * 0.619).fract() * 6.0 - 3.0,
                    (t * 0.283).fract() * 6.0 - 3.0,
                    (t * 0.157).fract() * 2.0 - 1.0,
                ]
            })
            .collect()
    }

    #[test]
    fn query_matches_brute_force() {
        let pts = cloud(257);
        let tree = KdTree::build(pts.clone());
        let mut found = Vec::new();
        for r in [0.1, 0.5, 1.5] {
            for q in pts.iter().step_by(31) {
                tree.query(*q, r, &mut found);
                let mut got = found.clone();
                got.sort_unstable();
                let mut want: Vec<u32> = pts
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| dist2(**p, *q) <= r * r)
                    .map(|(i, _)| i as u32)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "radius {r}");
            }
        }
    }

    #[test]
    fn query_point_not_in_set() {
        let pts = vec![[0.0; 3], [1.0, 0.0, 0.0], [0.0, 2.0, 0.0]];
        let tree = KdTree::build(pts);
        let mut out = Vec::new();
        tree.query([0.4, 0.0, 0.0], 0.5, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0]);
        tree.query([0.5, 0.0, 0.0], 0.5, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn empty_tree() {
        let tree = KdTree::build(Vec::new());
        assert!(tree.is_empty());
        let mut out = vec![1u32];
        tree.query([0.0; 3], 1.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn duplicate_points() {
        let pts = vec![[1.0; 3]; 5];
        let tree = KdTree::build(pts);
        let mut out = Vec::new();
        tree.query([1.0; 3], 0.01, &mut out);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn highly_clustered_points() {
        // Rollup-like distribution: dense spiral + sparse background.
        let mut pts = Vec::new();
        for i in 0..200 {
            let t = i as f64 * 0.05;
            pts.push([t.cos() * t * 0.1, t.sin() * t * 0.1, 0.0]);
        }
        for i in 0..20 {
            pts.push([i as f64, 10.0, 0.0]);
        }
        let tree = KdTree::build(pts.clone());
        let mut out = Vec::new();
        tree.query([0.0; 3], 0.3, &mut out);
        let want = pts.iter().filter(|p| dist2(**p, [0.0; 3]) <= 0.09).count();
        assert_eq!(out.len(), want);
        assert!(out.len() > 10, "cluster should be dense near origin");
    }
}
