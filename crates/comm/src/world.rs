//! World launch: ranks as scoped threads over a pluggable transport.
//!
//! [`World::builder`] is the one entry point. It collapses what used to
//! be eight `run*` variants into a single fluent configuration —
//! transport backend, receive timeout, eager limit, profiling, fault
//! plan — with four terminal runners:
//!
//! ```
//! use beatnik_comm::World;
//!
//! let sums = World::builder(4).run(|c| c.allreduce_sum(c.rank() as f64));
//! assert!(sums.iter().all(|&s| s == 6.0));
//! ```
//!
//! `run_traced` adds the aggregated [`WorldTrace`], `run_profiled` adds
//! the span [`WorldTimeline`], and `run_ft` returns an [`FtReport`]
//! where injected rank deaths are data instead of propagated panics.

use crate::communicator::Communicator;
use crate::config::CommConfig;
use crate::fault::{FaultEvent, FaultInjector, FaultPlan, RankKilled};
use crate::metrics::MetricsPlane;
use crate::pool::BufferPool;
use crate::registry::{Registry, WORLD_COMM_ID};
use crate::sync::Mutex;
use crate::trace::{RankTrace, WorldTrace};
use crate::transport::TransportKind;
use beatnik_telemetry::metrics::MetricsRegistry;
use beatnik_telemetry::{RankTimeline, SpanRecorder, WorldTimeline, DEFAULT_SPAN_CAPACITY};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default stall limit for blocking receives: long enough for heavyweight
/// kernels between messages, short enough that a genuine deadlock fails a
/// CI run loudly instead of hanging it.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// Entry point for running an SPMD program over `P` thread-ranks.
///
/// Mirrors `mpirun -np P`: the closure is the program `main`, executed once
/// per rank with that rank's [`Communicator`] for the world group.
pub struct World;

/// Outcome of a fault-tolerant run ([`WorldBuilder::run_ft`]): unlike the
/// plain runners, an injected rank death is *data*, not a propagated panic.
pub struct FtReport<R> {
    /// Per-rank results; `None` for ranks that died (by injection) before
    /// producing one.
    pub results: Vec<Option<R>>,
    /// World ranks killed by fault injection, in rank order.
    pub killed: Vec<usize>,
    /// Aggregated communication counters for the whole run.
    pub trace: WorldTrace,
    /// Span timeline when profiling was enabled.
    pub timeline: Option<WorldTimeline>,
    /// Every fault the plan actually fired, sorted by `(rank, op_index)`.
    /// Byte-identical across runs with the same plan, seed, and program.
    pub fault_events: Vec<FaultEvent>,
}

/// Fluent configuration for a world launch; see the module docs.
///
/// Starts from [`CommConfig::from_env`], so `BEATNIK_*` environment
/// overrides apply unless a setter pins the knob explicitly.
pub struct WorldBuilder {
    num_ranks: usize,
    config: CommConfig,
    span_capacity: Option<usize>,
    fault_plan: Option<FaultPlan>,
}

impl World {
    /// Start configuring a world of `num_ranks` ranks.
    pub fn builder(num_ranks: usize) -> WorldBuilder {
        WorldBuilder {
            num_ranks,
            config: CommConfig::from_env(),
            span_capacity: None,
            fault_plan: None,
        }
    }
}

impl WorldBuilder {
    /// Select the transport backend carrying envelopes between ranks.
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.config.transport = kind;
        self
    }

    /// Replace the whole configuration (all `BEATNIK_*` knobs at once).
    pub fn config(mut self, config: CommConfig) -> Self {
        self.config = config;
        self
    }

    /// Stall limit for blocking receives; doubles as the
    /// failure-detection deadline for fault-tolerant drivers (which
    /// typically pass seconds, not minutes).
    pub fn recv_timeout(mut self, timeout: Duration) -> Self {
        self.config.recv_timeout = timeout;
        self
    }

    /// Eager/rendezvous crossover in payload bytes (`0` forces every
    /// sized send onto the rendezvous path). Tests use this to pin one
    /// protocol without touching process-global environment state.
    pub fn eager_limit(mut self, bytes: usize) -> Self {
        self.config.eager_limit = bytes;
        self
    }

    /// Enable span profiling at [`DEFAULT_SPAN_CAPACITY`] spans per rank
    /// (drop-oldest on overflow).
    pub fn profiled(self) -> Self {
        self.span_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// Enable span profiling with an explicit per-rank ring capacity.
    pub fn span_capacity(mut self, capacity: usize) -> Self {
        self.span_capacity = Some(capacity);
        self
    }

    /// Inject faults from `plan` (deterministic; see [`FaultPlan`]).
    /// Meaningful with [`WorldBuilder::run_ft`], which reports injected
    /// deaths instead of propagating them.
    pub fn fault_plan(mut self, plan: &FaultPlan) -> Self {
        self.fault_plan = Some(plan.clone());
        self
    }

    /// Run `f` on every rank; returns each rank's result, indexed by rank.
    ///
    /// # Panics
    /// Propagates the first rank panic after all ranks have stopped
    /// (peers of a panicked rank fail their receive timeouts, so the
    /// whole world terminates rather than hanging).
    pub fn run<R, F>(self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        self.run_traced(f).0
    }

    /// Like [`WorldBuilder::run`], additionally returning the aggregated
    /// communication trace.
    pub fn run_traced<R, F>(self, f: F) -> (Vec<R>, WorldTrace)
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        let report = self.launch(f);
        (Self::unwrap_results(report.results), report.trace)
    }

    /// Like [`WorldBuilder::run_traced`], with span profiling enabled
    /// (implicitly at [`DEFAULT_SPAN_CAPACITY`] unless
    /// [`WorldBuilder::span_capacity`] set one).
    pub fn run_profiled<R, F>(mut self, f: F) -> (Vec<R>, WorldTrace, WorldTimeline)
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        if self.span_capacity.is_none() {
            self.span_capacity = Some(DEFAULT_SPAN_CAPACITY);
        }
        let report = self.launch(f);
        (
            Self::unwrap_results(report.results),
            report.trace,
            report.timeline.expect("profiled run yields a timeline"),
        )
    }

    /// Fault-tolerant runner: ranks killed by the fault plan terminate
    /// quietly (recorded in [`FtReport::killed`]) instead of tearing the
    /// world down, and survivors observe the death as
    /// `CommError::RankFailed` / `Timeout` on their next blocking op.
    /// Panics that are *not* injected kills propagate exactly as in
    /// [`WorldBuilder::run`].
    pub fn run_ft<R, F>(self, f: F) -> FtReport<R>
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        self.launch(f)
    }

    fn unwrap_results<R>(results: Vec<Option<R>>) -> Vec<R> {
        results
            .into_iter()
            .map(|r| r.expect("rank produced no result"))
            .collect()
    }

    /// The one launch path every terminal runner shares: build the
    /// transport, the metrics plane, and one communicator per rank; run
    /// the ranks as scoped threads; tear the transport down after every
    /// rank has joined.
    fn launch<R, F>(self, f: F) -> FtReport<R>
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        let WorldBuilder {
            num_ranks,
            config,
            span_capacity,
            fault_plan,
        } = self;
        assert!(num_ranks > 0, "world needs at least one rank");
        if fault_plan.is_some() {
            Self::silence_injected_kills();
        }

        let registry = Arc::new(Registry::new());
        let transport = crate::transport::build_loopback(config.transport, num_ranks, &config);
        registry.install_transport(Arc::clone(&transport));
        transport.attach(&registry);

        // One shared metrics registry per world: every rank trace
        // publishes its counters into it, and the metrics plane
        // (installed below) snapshots it live.
        let metrics = Arc::new(MetricsRegistry::new());
        metrics
            .gauge(
                "beatnik_world_info",
                "World configuration carried as labels (value is always 1)",
                &[("transport", config.transport.name())],
            )
            .set(1);
        let traces: Vec<Arc<RankTrace>> = (0..num_ranks)
            .map(|rank| Arc::new(RankTrace::with_registry(&metrics, rank)))
            .collect();
        // All ranks stamp spans against one epoch so cross-rank skew is
        // meaningful; `None` capacity yields inert recorders.
        let epoch = Instant::now();
        let recorders: Vec<Arc<SpanRecorder>> = (0..num_ranks)
            .map(|_| {
                Arc::new(match span_capacity {
                    Some(cap) => SpanRecorder::new(cap, epoch),
                    None => SpanRecorder::disabled(),
                })
            })
            .collect();
        let identity: Arc<Vec<usize>> = Arc::new((0..num_ranks).collect());
        // One send-buffer pool per rank; subcommunicators derived from a
        // rank share it. Kept out here so the high-water mark survives
        // into the trace after the rank threads join.
        let pools: Vec<Arc<BufferPool>> = (0..num_ranks)
            .map(|_| Arc::new(BufferPool::new()))
            .collect();
        registry.install_metrics(Arc::new(MetricsPlane::new(
            metrics,
            traces.clone(),
            recorders.clone(),
            pools.clone(),
        )));
        let injectors: Vec<Option<Arc<FaultInjector>>> = (0..num_ranks)
            .map(|rank| fault_plan.as_ref().and_then(|p| p.injector_for(rank)))
            .collect();

        let mut results: Vec<Option<R>> = (0..num_ranks).map(|_| None).collect();
        let killed: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let f = &f;
        let killed_ref = &killed;
        std::thread::scope(|scope| {
            let handles: Vec<_> = results
                .iter_mut()
                .enumerate()
                .map(|(rank, slot)| {
                    let comm = Communicator::new(
                        Arc::clone(&registry),
                        WORLD_COMM_ID,
                        rank,
                        num_ranks,
                        Arc::clone(&identity),
                        Arc::clone(&traces[rank]),
                        Arc::clone(&recorders[rank]),
                        Arc::clone(&pools[rank]),
                        config.recv_timeout,
                        config.eager_limit,
                    )
                    .with_fault(injectors[rank].clone());
                    let reg = Arc::clone(&registry);
                    scope.spawn(move || {
                        // On panic, flag the world so peers blocked in
                        // receives fail fast rather than timing out.
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(comm)));
                        match out {
                            Ok(r) => *slot = Some(r),
                            Err(p) => {
                                // An injected kill is part of the
                                // experiment: record it and let survivors
                                // carry on. Anything else is a real bug.
                                if let Some(k) = p.downcast_ref::<RankKilled>() {
                                    killed_ref.lock().push(k.world_rank);
                                } else {
                                    reg.signal_abort();
                                    std::panic::resume_unwind(p);
                                }
                            }
                        }
                    })
                })
                .collect();
            // Prefer the root-cause panic over secondary "peer failed"
            // abort panics from ranks that were merely blocked on it.
            let mut panics: Vec<Box<dyn std::any::Any + Send>> = Vec::new();
            for h in handles {
                if let Err(p) = h.join() {
                    panics.push(p);
                }
            }
            if !panics.is_empty() {
                let is_secondary = |p: &Box<dyn std::any::Any + Send>| {
                    let msg = p
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| p.downcast_ref::<&str>().copied())
                        .unwrap_or("");
                    msg.contains("a peer rank failed")
                };
                let idx = panics.iter().position(|p| !is_secondary(p)).unwrap_or(0);
                // The transport must not outlive the world even when a
                // rank panic propagates out of the launch.
                transport.shutdown();
                std::panic::resume_unwind(panics.swap_remove(idx));
            }
        });

        // All rank threads have joined; drain and stop the transport
        // before snapshotting so in-flight wire frames land first.
        transport.shutdown();

        // Mirror each pool's high-water mark into its rank trace so the
        // profile summary can report envelope-memory pressure.
        for (trace, pool) in traces.iter().zip(&pools) {
            trace.set_pool_peak_in_flight(pool.stats().peak_in_flight);
        }
        // All rank threads have joined: snapshotting the recorders is
        // race-free (single-writer protocol).
        let timeline = span_capacity.map(|_| {
            WorldTimeline::new(
                recorders
                    .iter()
                    .enumerate()
                    .map(|(rank, rec)| {
                        let (spans, dropped) = rec.snapshot();
                        RankTimeline {
                            rank,
                            spans,
                            dropped,
                        }
                    })
                    .collect(),
            )
        });
        let mut killed = std::mem::take(&mut *killed.lock());
        killed.sort_unstable();
        let mut fault_events: Vec<FaultEvent> = injectors
            .iter()
            .flatten()
            .flat_map(|inj| inj.events())
            .collect();
        fault_events.sort_by_key(|e| (e.rank, e.op_index));
        FtReport {
            results,
            killed,
            trace: WorldTrace::new(traces),
            timeline,
            fault_events,
        }
    }

    /// Install (once, process-wide) a panic hook that swallows the two
    /// panic payloads fault tolerance uses as control flow: the
    /// [`RankKilled`] payload injection takes a rank down with, and the
    /// [`crate::fault::CollectiveFailed`] payload
    /// [`Communicator::escalate`] throws for recovery drivers to catch.
    /// Both are the *experiment*, not a bug — the default hook's "thread
    /// panicked" banner and backtrace for each would bury real failures
    /// in noise. Every other panic reaches the previous hook untouched,
    /// and the payloads themselves still propagate to whoever catches
    /// (or fails to catch) them.
    fn silence_injected_kills() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let p = info.payload();
                if p.downcast_ref::<RankKilled>().is_none()
                    && p.downcast_ref::<crate::fault::CollectiveFailed>().is_none()
                {
                    previous(info);
                }
            }));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_indexed_by_rank() {
        let out = World::builder(6).run(|c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn single_rank_world_works() {
        let out = World::builder(1).run(|c| {
            c.barrier();
            let v = c.allgather(&[5u8]);
            (c.size(), v)
        });
        assert_eq!(out[0].0, 1);
        assert_eq!(out[0].1, vec![5]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_is_rejected() {
        let _ = World::builder(0).run(|_| ());
    }

    #[test]
    #[should_panic(expected = "rank 2 exploded")]
    fn rank_panic_propagates() {
        World::builder(4).run(|c| {
            if c.rank() == 2 {
                panic!("rank 2 exploded");
            }
        });
    }

    #[test]
    fn deadlock_is_converted_into_panic() {
        let res = std::panic::catch_unwind(|| {
            World::builder(2)
                .recv_timeout(Duration::from_millis(50))
                .run(|c| {
                    if c.rank() == 0 {
                        // Rank 1 never sends: this receive must time out.
                        let _ = c.recv::<u8>(1, 0);
                    }
                })
        });
        assert!(res.is_err());
    }

    #[test]
    fn worlds_are_isolated() {
        // Two sequential worlds must not share mailboxes or traces.
        let (_, t1) = World::builder(2).run_traced(|c| {
            if c.rank() == 0 {
                c.send(1, 0, vec![1u8]);
            } else {
                let _ = c.recv::<u8>(0, 0);
            }
        });
        let (_, t2) = World::builder(2).run_traced(|c| {
            c.barrier();
        });
        assert_eq!(t1.total(crate::trace::OpKind::Send).messages, 1);
        assert_eq!(t2.total(crate::trace::OpKind::Send).messages, 0);
    }

    #[test]
    fn builder_covers_the_old_entry_points() {
        let out = World::builder(2).run(|c| c.rank());
        assert_eq!(out, vec![0, 1]);
        let (_, t) = World::builder(2).run_traced(|c| c.barrier());
        assert!(t.total(crate::trace::OpKind::Barrier).messages > 0);
    }

    #[test]
    fn builder_pins_config_knobs() {
        let cfg = CommConfig {
            transport: TransportKind::Thread,
            eager_limit: 0,
            recv_timeout: Duration::from_secs(5),
            ..CommConfig::default()
        };
        let (_, trace) = World::builder(2).config(cfg).run_traced(|c| {
            if c.rank() == 0 {
                c.isend(1, 1, &[1u8; 64]).wait();
            } else {
                let _ = c.recv::<u8>(0, 1);
            }
        });
        // eager_limit 0 forces the rendezvous path: exactly one copy.
        assert_eq!(trace.rank(0).copied_bytes(), 64);
    }
}
