//! World launch: ranks as scoped threads.

use crate::communicator::Communicator;
use crate::fault::{FaultEvent, FaultInjector, FaultPlan, RankKilled};
use crate::metrics::MetricsPlane;
use crate::pool::BufferPool;
use crate::registry::{Registry, WORLD_COMM_ID};
use crate::sync::Mutex;
use crate::trace::{RankTrace, WorldTrace};
use beatnik_telemetry::metrics::MetricsRegistry;
use beatnik_telemetry::{RankTimeline, SpanRecorder, WorldTimeline, DEFAULT_SPAN_CAPACITY};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default stall limit for blocking receives: long enough for heavyweight
/// kernels between messages, short enough that a genuine deadlock fails a
/// CI run loudly instead of hanging it.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// Entry point for running an SPMD program over `P` thread-ranks.
///
/// Mirrors `mpirun -np P`: the closure is the program `main`, executed once
/// per rank with that rank's [`Communicator`] for the world group.
pub struct World;

/// Outcome of a fault-tolerant run ([`World::run_ft`]): unlike the plain
/// runners, an injected rank death is *data*, not a propagated panic.
pub struct FtReport<R> {
    /// Per-rank results; `None` for ranks that died (by injection) before
    /// producing one.
    pub results: Vec<Option<R>>,
    /// World ranks killed by fault injection, in rank order.
    pub killed: Vec<usize>,
    /// Aggregated communication counters for the whole run.
    pub trace: WorldTrace,
    /// Span timeline when profiling was enabled.
    pub timeline: Option<WorldTimeline>,
    /// Every fault the plan actually fired, sorted by `(rank, op_index)`.
    /// Byte-identical across runs with the same plan, seed, and program.
    pub fault_events: Vec<FaultEvent>,
}

impl World {
    /// Run `f` on `num_ranks` ranks; returns each rank's result, indexed by
    /// rank.
    ///
    /// # Panics
    /// Propagates the first rank panic after all ranks have stopped
    /// (peers of a panicked rank fail their receive timeouts, so the whole
    /// world terminates rather than hanging).
    pub fn run<R, F>(num_ranks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        Self::run_config(num_ranks, DEFAULT_RECV_TIMEOUT, f).0
    }

    /// Like [`World::run`], additionally returning the aggregated
    /// communication trace for the whole run.
    pub fn run_traced<R, F>(num_ranks: usize, f: F) -> (Vec<R>, WorldTrace)
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        Self::run_config(num_ranks, DEFAULT_RECV_TIMEOUT, f)
    }

    /// Like [`World::run`], with span profiling enabled: every comm
    /// operation and solver phase records into a per-rank
    /// `beatnik-telemetry` ring buffer of [`DEFAULT_SPAN_CAPACITY`]
    /// spans (drop-oldest on overflow). Returns the aggregated
    /// [`WorldTimeline`] alongside the counters.
    pub fn run_profiled<R, F>(num_ranks: usize, f: F) -> (Vec<R>, WorldTrace, WorldTimeline)
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        Self::run_profiled_config(num_ranks, DEFAULT_RECV_TIMEOUT, DEFAULT_SPAN_CAPACITY, f)
    }

    /// Full-control profiled variant: explicit receive-stall timeout and
    /// per-rank span-ring capacity.
    pub fn run_profiled_config<R, F>(
        num_ranks: usize,
        recv_timeout: Duration,
        span_capacity: usize,
        f: F,
    ) -> (Vec<R>, WorldTrace, WorldTimeline)
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        let (results, trace, timeline) =
            Self::run_inner(num_ranks, recv_timeout, Some(span_capacity), f);
        (results, trace, timeline.expect("profiled run yields a timeline"))
    }

    /// Full-control variant: explicit receive-stall timeout.
    pub fn run_config<R, F>(num_ranks: usize, recv_timeout: Duration, f: F) -> (Vec<R>, WorldTrace)
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        let (results, trace, _) = Self::run_inner(num_ranks, recv_timeout, None, f);
        (results, trace)
    }

    /// Traced variant with an explicit eager/rendezvous crossover
    /// (bytes), overriding [`crate::transport::eager_limit_from_env`].
    /// Tests use this to force one protocol or the other without
    /// touching process-global environment state.
    pub fn run_transport_config<R, F>(
        num_ranks: usize,
        recv_timeout: Duration,
        eager_limit: usize,
        f: F,
    ) -> (Vec<R>, WorldTrace)
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        let (results, trace, _) =
            Self::run_inner_with_limit(num_ranks, recv_timeout, None, eager_limit, f);
        (results, trace)
    }

    /// Fault-tolerant runner: like [`World::run_config`], but ranks killed
    /// by `plan` terminate quietly (recorded in [`FtReport::killed`])
    /// instead of tearing the world down, and survivors observe the death
    /// as `CommError::RankFailed` / `Timeout` on their next blocking op.
    ///
    /// `recv_timeout` doubles as the failure-detection deadline, so
    /// fault-tolerant drivers typically pass seconds, not minutes.
    /// Panics that are *not* injected kills propagate exactly as in
    /// [`World::run`].
    pub fn run_ft<R, F>(
        num_ranks: usize,
        recv_timeout: Duration,
        plan: Option<&FaultPlan>,
        f: F,
    ) -> FtReport<R>
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        Self::run_ft_inner(num_ranks, recv_timeout, None, plan, f)
    }

    /// [`World::run_ft`] with span profiling enabled (capacity as in
    /// [`World::run_profiled_config`]); [`FtReport::timeline`] is `Some`.
    pub fn run_ft_profiled<R, F>(
        num_ranks: usize,
        recv_timeout: Duration,
        span_capacity: usize,
        plan: Option<&FaultPlan>,
        f: F,
    ) -> FtReport<R>
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        Self::run_ft_inner(num_ranks, recv_timeout, Some(span_capacity), plan, f)
    }

    fn run_ft_inner<R, F>(
        num_ranks: usize,
        recv_timeout: Duration,
        span_capacity: Option<usize>,
        plan: Option<&FaultPlan>,
        f: F,
    ) -> FtReport<R>
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        assert!(num_ranks > 0, "world needs at least one rank");
        Self::silence_injected_kills();
        let eager_limit = crate::transport::eager_limit_from_env();
        let registry = Arc::new(Registry::new());
        let metrics = Arc::new(MetricsRegistry::new());
        let traces: Vec<Arc<RankTrace>> = (0..num_ranks)
            .map(|rank| Arc::new(RankTrace::with_registry(&metrics, rank)))
            .collect();
        let epoch = Instant::now();
        let recorders: Vec<Arc<SpanRecorder>> = (0..num_ranks)
            .map(|_| {
                Arc::new(match span_capacity {
                    Some(cap) => SpanRecorder::new(cap, epoch),
                    None => SpanRecorder::disabled(),
                })
            })
            .collect();
        let identity: Arc<Vec<usize>> = Arc::new((0..num_ranks).collect());
        let pools: Vec<Arc<BufferPool>> = (0..num_ranks)
            .map(|_| Arc::new(BufferPool::new()))
            .collect();
        registry.install_metrics(Arc::new(MetricsPlane::new(
            metrics,
            traces.clone(),
            recorders.clone(),
            pools.clone(),
        )));
        let injectors: Vec<Option<Arc<FaultInjector>>> = (0..num_ranks)
            .map(|rank| plan.and_then(|p| p.injector_for(rank)))
            .collect();

        let mut results: Vec<Option<R>> = (0..num_ranks).map(|_| None).collect();
        let killed: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let f = &f;
        let killed_ref = &killed;
        std::thread::scope(|scope| {
            let handles: Vec<_> = results
                .iter_mut()
                .enumerate()
                .map(|(rank, slot)| {
                    let comm = Communicator::new(
                        Arc::clone(&registry),
                        WORLD_COMM_ID,
                        rank,
                        num_ranks,
                        Arc::clone(&identity),
                        Arc::clone(&traces[rank]),
                        Arc::clone(&recorders[rank]),
                        Arc::clone(&pools[rank]),
                        recv_timeout,
                        eager_limit,
                    )
                    .with_fault(injectors[rank].clone());
                    let reg = Arc::clone(&registry);
                    scope.spawn(move || {
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(comm)));
                        match out {
                            Ok(r) => *slot = Some(r),
                            Err(p) => {
                                // An injected kill is part of the
                                // experiment: record it and let survivors
                                // carry on. Anything else is a real bug.
                                if let Some(k) = p.downcast_ref::<RankKilled>() {
                                    killed_ref.lock().push(k.world_rank);
                                } else {
                                    reg.signal_abort();
                                    std::panic::resume_unwind(p);
                                }
                            }
                        }
                    })
                })
                .collect();
            let mut panics: Vec<Box<dyn std::any::Any + Send>> = Vec::new();
            for h in handles {
                if let Err(p) = h.join() {
                    panics.push(p);
                }
            }
            if !panics.is_empty() {
                let is_secondary = |p: &Box<dyn std::any::Any + Send>| {
                    let msg = p
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| p.downcast_ref::<&str>().copied())
                        .unwrap_or("");
                    msg.contains("a peer rank failed")
                };
                let idx = panics.iter().position(|p| !is_secondary(p)).unwrap_or(0);
                std::panic::resume_unwind(panics.swap_remove(idx));
            }
        });

        for (trace, pool) in traces.iter().zip(&pools) {
            trace.set_pool_peak_in_flight(pool.stats().peak_in_flight);
        }
        let timeline = span_capacity.map(|_| {
            WorldTimeline::new(
                recorders
                    .iter()
                    .enumerate()
                    .map(|(rank, rec)| {
                        let (spans, dropped) = rec.snapshot();
                        RankTimeline {
                            rank,
                            spans,
                            dropped,
                        }
                    })
                    .collect(),
            )
        });
        let mut killed = std::mem::take(&mut *killed.lock());
        killed.sort_unstable();
        let mut fault_events: Vec<FaultEvent> = injectors
            .iter()
            .flatten()
            .flat_map(|inj| inj.events())
            .collect();
        fault_events.sort_by_key(|e| (e.rank, e.op_index));
        FtReport {
            results,
            killed,
            trace: WorldTrace::new(traces),
            timeline,
            fault_events,
        }
    }

    /// Install (once, process-wide) a panic hook that swallows the two
    /// panic payloads fault tolerance uses as control flow: the
    /// [`RankKilled`] payload injection takes a rank down with, and the
    /// [`CollectiveFailed`] payload [`Communicator::escalate`] throws for
    /// recovery drivers to catch. Both are the *experiment*, not a bug —
    /// the default hook's "thread panicked" banner and backtrace for each
    /// would bury real failures in noise. Every other panic reaches the
    /// previous hook untouched, and the payloads themselves still
    /// propagate to whoever catches (or fails to catch) them.
    fn silence_injected_kills() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let p = info.payload();
                if p.downcast_ref::<RankKilled>().is_none()
                    && p.downcast_ref::<crate::fault::CollectiveFailed>().is_none()
                {
                    previous(info);
                }
            }));
        });
    }

    fn run_inner<R, F>(
        num_ranks: usize,
        recv_timeout: Duration,
        span_capacity: Option<usize>,
        f: F,
    ) -> (Vec<R>, WorldTrace, Option<WorldTimeline>)
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        let eager_limit = crate::transport::eager_limit_from_env();
        Self::run_inner_with_limit(num_ranks, recv_timeout, span_capacity, eager_limit, f)
    }

    fn run_inner_with_limit<R, F>(
        num_ranks: usize,
        recv_timeout: Duration,
        span_capacity: Option<usize>,
        eager_limit: usize,
        f: F,
    ) -> (Vec<R>, WorldTrace, Option<WorldTimeline>)
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        assert!(num_ranks > 0, "world needs at least one rank");
        let registry = Arc::new(Registry::new());
        // One shared metrics registry per world: every rank trace
        // publishes its counters into it, and the metrics plane
        // (installed below) snapshots it live.
        let metrics = Arc::new(MetricsRegistry::new());
        let traces: Vec<Arc<RankTrace>> = (0..num_ranks)
            .map(|rank| Arc::new(RankTrace::with_registry(&metrics, rank)))
            .collect();
        // All ranks stamp spans against one epoch so cross-rank skew is
        // meaningful; `None` capacity yields inert recorders.
        let epoch = Instant::now();
        let recorders: Vec<Arc<SpanRecorder>> = (0..num_ranks)
            .map(|_| {
                Arc::new(match span_capacity {
                    Some(cap) => SpanRecorder::new(cap, epoch),
                    None => SpanRecorder::disabled(),
                })
            })
            .collect();
        let identity: Arc<Vec<usize>> = Arc::new((0..num_ranks).collect());
        // One send-buffer pool per rank; subcommunicators derived from a
        // rank share it. Kept out here so the high-water mark survives
        // into the trace after the rank threads join.
        let pools: Vec<Arc<BufferPool>> = (0..num_ranks)
            .map(|_| Arc::new(BufferPool::new()))
            .collect();
        registry.install_metrics(Arc::new(MetricsPlane::new(
            metrics,
            traces.clone(),
            recorders.clone(),
            pools.clone(),
        )));

        let mut results: Vec<Option<R>> = (0..num_ranks).map(|_| None).collect();
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = results
                .iter_mut()
                .enumerate()
                .map(|(rank, slot)| {
                    let comm = Communicator::new(
                        Arc::clone(&registry),
                        WORLD_COMM_ID,
                        rank,
                        num_ranks,
                        Arc::clone(&identity),
                        Arc::clone(&traces[rank]),
                        Arc::clone(&recorders[rank]),
                        Arc::clone(&pools[rank]),
                        recv_timeout,
                        eager_limit,
                    );
                    let reg = Arc::clone(&registry);
                    scope.spawn(move || {
                        // On panic, flag the world so peers blocked in
                        // receives fail fast rather than timing out.
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(comm)));
                        match out {
                            Ok(r) => *slot = Some(r),
                            Err(p) => {
                                reg.signal_abort();
                                std::panic::resume_unwind(p);
                            }
                        }
                    })
                })
                .collect();
            // Prefer the root-cause panic over secondary "peer failed"
            // abort panics from ranks that were merely blocked on it.
            let mut panics: Vec<Box<dyn std::any::Any + Send>> = Vec::new();
            for h in handles {
                if let Err(p) = h.join() {
                    panics.push(p);
                }
            }
            if !panics.is_empty() {
                let is_secondary = |p: &Box<dyn std::any::Any + Send>| {
                    let msg = p
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| p.downcast_ref::<&str>().copied())
                        .unwrap_or("");
                    msg.contains("a peer rank failed")
                };
                let idx = panics.iter().position(|p| !is_secondary(p)).unwrap_or(0);
                std::panic::resume_unwind(panics.swap_remove(idx));
            }
        });

        let results = results
            .into_iter()
            .map(|r| r.expect("rank produced no result"))
            .collect();
        // Mirror each pool's high-water mark into its rank trace so the
        // profile summary can report envelope-memory pressure.
        for (trace, pool) in traces.iter().zip(&pools) {
            trace.set_pool_peak_in_flight(pool.stats().peak_in_flight);
        }
        // All rank threads have joined: snapshotting the recorders is
        // race-free (single-writer protocol).
        let timeline = span_capacity.map(|_| {
            WorldTimeline::new(
                recorders
                    .iter()
                    .enumerate()
                    .map(|(rank, rec)| {
                        let (spans, dropped) = rec.snapshot();
                        RankTimeline {
                            rank,
                            spans,
                            dropped,
                        }
                    })
                    .collect(),
            )
        });
        (results, WorldTrace::new(traces), timeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_indexed_by_rank() {
        let out = World::run(6, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn single_rank_world_works() {
        let out = World::run(1, |c| {
            c.barrier();
            let v = c.allgather(&[5u8]);
            (c.size(), v)
        });
        assert_eq!(out[0].0, 1);
        assert_eq!(out[0].1, vec![5]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_is_rejected() {
        let _ = World::run(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "rank 2 exploded")]
    fn rank_panic_propagates() {
        World::run(4, |c| {
            if c.rank() == 2 {
                panic!("rank 2 exploded");
            }
        });
    }

    #[test]
    fn deadlock_is_converted_into_panic() {
        let res = std::panic::catch_unwind(|| {
            World::run_config(2, Duration::from_millis(50), |c| {
                if c.rank() == 0 {
                    // Rank 1 never sends: this receive must time out.
                    let _ = c.recv::<u8>(1, 0);
                }
            })
        });
        assert!(res.is_err());
    }

    #[test]
    fn worlds_are_isolated() {
        // Two sequential worlds must not share mailboxes or traces.
        let (_, t1) = World::run_traced(2, |c| {
            if c.rank() == 0 {
                c.send(1, 0, vec![1u8]);
            } else {
                let _ = c.recv::<u8>(0, 0);
            }
        });
        let (_, t2) = World::run_traced(2, |c| {
            c.barrier();
        });
        assert_eq!(t1.total(crate::trace::OpKind::Send).messages, 1);
        assert_eq!(t2.total(crate::trace::OpKind::Send).messages, 0);
    }
}
