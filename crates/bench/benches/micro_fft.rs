//! Criterion microbenchmarks of the serial FFT stack: radix-2 vs
//! Bluestein planning, 1D sizes, and the 2D row-column transform.

use beatnik_fft::{Complex, Fft, Fft2d};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
        .collect()
}

fn bench_fft_1d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_1d");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for n in [256usize, 1024, 4096, 16384] {
        let plan = Fft::new(n);
        let data = signal(n);
        g.bench_with_input(BenchmarkId::new("radix2_forward", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(black_box(&mut buf));
                buf
            })
        });
    }
    // Bluestein sizes near a power of two for comparison.
    for n in [1023usize, 4095] {
        let plan = Fft::new(n);
        let data = signal(n);
        g.bench_with_input(BenchmarkId::new("bluestein_forward", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(black_box(&mut buf));
                buf
            })
        });
    }
    g.finish();
}

fn bench_fft_2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_2d");
    g.measurement_time(Duration::from_secs(2)).sample_size(15);
    for n in [64usize, 128, 256] {
        let plan = Fft2d::new(n, n);
        let data = signal(n * n);
        g.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(black_box(&mut buf));
                buf
            })
        });
        g.bench_with_input(BenchmarkId::new("roundtrip", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(&mut buf);
                plan.inverse(black_box(&mut buf));
                buf
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fft_1d, bench_fft_2d);
criterion_main!(benches);
