//! Property-based tests (proptest) on the core invariants of the
//! numerical substrates: FFT algebra, neighbor-search equivalence,
//! layout partitioning, collective/serial agreement, and kernel
//! antisymmetry.

use beatnik_comm::World;
use beatnik_core::br::kernel::br_pair_velocity;
use beatnik_dfft::{Dist, Rect};
use beatnik_fft::{dft::dft_naive, Complex, Fft};
use beatnik_spatial::neighbors::{brute_force_neighbors, Backend, NeighborList};
use proptest::prelude::*;

fn complex_signal(max_len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec(
        (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(re, im)| Complex::new(re, im)),
        1..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// forward→inverse is the identity for every length (radix-2 and
    /// Bluestein paths).
    #[test]
    fn fft_roundtrip_is_identity(x in complex_signal(200)) {
        let plan = Fft::new(x.len());
        let mut buf = x.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-8 * (1.0 + b.abs()));
        }
    }

    /// The fast transform agrees with the O(n²) DFT.
    #[test]
    fn fft_matches_naive_dft(x in complex_signal(64)) {
        let plan = Fft::new(x.len());
        let mut fast = x.clone();
        plan.forward(&mut fast);
        let slow = dft_naive(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    /// Parseval: energy is conserved up to the 1/n normalization.
    #[test]
    fn fft_parseval(x in complex_signal(128)) {
        let n = x.len() as f64;
        let plan = Fft::new(x.len());
        let mut spec = x.clone();
        plan.forward(&mut spec);
        let e_time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
        prop_assert!((e_time - e_freq).abs() < 1e-6 * (1.0 + e_time));
    }
}

fn cloud(max_n: usize) -> impl Strategy<Value = Vec<[f64; 3]>> {
    prop::collection::vec(
        (-5.0f64..5.0, -5.0f64..5.0, -1.0f64..1.0).prop_map(|(x, y, z)| [x, y, z]),
        0..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Grid and k-d tree backends both equal brute force exactly
    /// (identical CSR lists after per-target sorting).
    #[test]
    fn neighbor_backends_equal_brute_force(
        targets in cloud(40),
        sources in cloud(60),
        radius in 0.1f64..3.0,
    ) {
        let want = brute_force_neighbors(&targets, &sources, radius);
        for backend in [Backend::Grid, Backend::KdTree] {
            let got = NeighborList::build(&targets, &sources, radius, backend);
            prop_assert_eq!(&got, &want);
        }
    }

    /// Balanced distributions partition exactly with near-equal parts.
    #[test]
    fn dist_partitions_perfectly(n in 0usize..10_000, parts in 1usize..64) {
        let d = Dist::new(n, parts);
        let mut covered = 0usize;
        for i in 0..parts {
            let r = d.range(i);
            prop_assert_eq!(r.start, covered);
            covered = r.end;
            prop_assert!(r.len() >= n / parts);
            prop_assert!(r.len() <= n / parts + 1);
        }
        prop_assert_eq!(covered, n);
    }

    /// Rectangle intersection is commutative and contained in both.
    #[test]
    fn rect_intersection_properties(
        a0 in 0usize..50, a1 in 0usize..50, b0 in 0usize..50, b1 in 0usize..50,
        c0 in 0usize..50, c1 in 0usize..50, d0 in 0usize..50, d1 in 0usize..50,
    ) {
        let r1 = Rect::new(a0.min(a1)..a0.max(a1), b0.min(b1)..b0.max(b1));
        let r2 = Rect::new(c0.min(c1)..c0.max(c1), d0.min(d1)..d0.max(d1));
        let i12 = r1.intersect(&r2);
        let i21 = r2.intersect(&r1);
        prop_assert_eq!(i12.area(), i21.area());
        prop_assert!(i12.area() <= r1.area().min(r2.area()));
    }

    /// The Birkhoff–Rott pair kernel is antisymmetric under exchanging
    /// two points carrying equal strengths.
    #[test]
    fn br_kernel_antisymmetry(
        p in (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
        q in (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
        s in (-2.0f64..2.0, -2.0f64..2.0, -2.0f64..2.0),
        eps in 0.01f64..1.0,
    ) {
        let p = [p.0, p.1, p.2];
        let q = [q.0, q.1, q.2];
        let s = [s.0, s.1, s.2];
        let upq = br_pair_velocity(p, q, s, eps * eps);
        let uqp = br_pair_velocity(q, p, s, eps * eps);
        for k in 0..3 {
            prop_assert!((upq[k] + uqp[k]).abs() < 1e-12 * (1.0 + upq[k].abs()));
        }
    }
}

proptest! {
    // Threaded cases are costlier; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// allreduce(sum) equals the serial fold for random per-rank vectors.
    #[test]
    fn allreduce_equals_serial_fold(
        values in prop::collection::vec(-1e6f64..1e6, 4),
    ) {
        let expect: f64 = values.iter().sum();
        let v2 = values.clone();
        let results = World::run(4, move |comm| comm.allreduce_sum(v2[comm.rank()]));
        for r in results {
            prop_assert!((r - expect).abs() < 1e-6 * (1.0 + expect.abs()));
        }
    }

    /// alltoall delivers exactly the transpose of what was sent.
    #[test]
    fn alltoall_is_a_transpose(seed in 0u64..1_000_000) {
        let results = World::run(3, move |comm| {
            let me = comm.rank() as u64;
            let blocks = (0..3).map(|d| vec![seed ^ (me * 10 + d as u64)]).collect();
            comm.alltoall(blocks)
        });
        for (r, per_rank) in results.into_iter().enumerate() {
            for (src, block) in per_rank.into_iter().enumerate() {
                prop_assert_eq!(block[0], seed ^ (src as u64 * 10 + r as u64));
            }
        }
    }
}
