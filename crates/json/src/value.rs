//! The JSON document tree.

/// A parsed JSON value.
///
/// Numbers keep three lexical classes so integers survive beyond the
/// 2^53 range where `f64` loses exactness (`u64` seeds, counters) while
/// floats keep their sign and full precision.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer literal.
    Int(i64),
    /// A non-negative integer literal.
    UInt(u64),
    /// A number with a fraction or exponent (or out of integer range).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order preserved (stable output).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value's type name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Numeric view as `f64` (integers convert; may round beyond 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            Value::Float(x) => Some(x),
            _ => None,
        }
    }

    /// Numeric view as `u64`; floats qualify only when integral and
    /// in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            Value::Float(x) if x >= 0.0 && x <= u64::MAX as f64 && x.fract() == 0.0 => {
                Some(x as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as `i64`; floats qualify only when integral and
    /// in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            Value::Float(x) if x >= i64::MIN as f64 && x <= i64::MAX as f64 && x.fract() == 0.0 => {
                Some(x as i64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object member lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views_cross_convert() {
        assert_eq!(Value::UInt(7).as_i64(), Some(7));
        assert_eq!(Value::Int(-7).as_u64(), None);
        assert_eq!(Value::Float(3.0).as_u64(), Some(3));
        assert_eq!(Value::Float(3.5).as_u64(), None);
        assert_eq!(Value::UInt(u64::MAX).as_i64(), None);
        assert_eq!(Value::Str("3".into()).as_f64(), None);
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert!(matches!(v.get("a"), Some(Value::Bool(true))));
        assert!(v.get("b").is_none());
        assert!(Value::Null.get("a").is_none());
    }
}
