//! Figure 7: particles owned by each of 256 (virtual) spatial ranks late
//! in the single-mode run — the paper's timestep 340, after rollup:
//! "processes that own sections of the mesh outside of the rollup have
//! their load stay the same at about 0.4% ... processes within the
//! rollup own between 0.2% to 0.65% of all points."
//!
//! This harness runs the *real* scaled single-mode cutoff simulation to
//! its rollup phase and bins actual point positions into 256 regions.

use beatnik_bench::{ownership_report, singlemode_reference};
use beatnik_core::diagnostics::imbalance;

fn main() {
    println!("=== Figure 7: Particles Owned by Each of 256 Ranks, late (paper t=340) ===\n");
    println!("running the scaled single-mode cutoff simulation (48^2 mesh, 4 ranks)...\n");
    let reference = singlemode_reference(48, 40, 200);
    print!("{}", ownership_report("early-time ownership (Figure 6 view)", &reference.early256));
    println!();
    print!("{}", ownership_report("late-time ownership (Figure 7 view)", &reference.late256));
    println!(
        "\nshape check: imbalance grows from {:.2} (flat) to {:.2} as the interface \
         rolls up (paper: 0.2%-0.65% spread around the 0.39% mean).",
        imbalance(&reference.early256),
        imbalance(&reference.late256)
    );
}
