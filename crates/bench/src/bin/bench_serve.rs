//! Multi-tenant service benchmark emitting `BENCH_serve.json`.
//!
//! Boots an in-process `beatnik-serve` instance on a loopback port with
//! an 8-rank pool and drives it entirely through its HTTP surface, the
//! way a real tenant would. Two phases:
//!
//! 1. **Preemption correctness** — a low-priority job wide enough to
//!    own the whole pool is preempted mid-flight by a priority-9 job,
//!    then resumed from its checkpoint. Its final diagnostics must
//!    match an uninterrupted run of the same spec to 1e-8, and at least
//!    one preemption must actually have happened — the bench aborts
//!    otherwise, so the number in the JSON is never from a run where
//!    the scheduler silently stopped preempting.
//!
//! 2. **Mixed tenancy** — a seeded mix of ~200 jobs (coarse meshes, a
//!    few steps each, gangs of 1-4 ranks, priorities 0-9, scattered
//!    deadlines) submitted closed-loop from 8 tenants. Every accepted
//!    job must reach `completed`; the bench records service throughput,
//!    p50/p99 end-to-end latency, and mean queue wait, plus a Jain
//!    fairness index over per-job slowdowns in the summary.
//!
//! Usage: `bench_serve [output.json]` (default `BENCH_serve.json`).

use beatnik_comm::telemetry::metrics::MetricsRegistry;
use beatnik_json::Value;
use beatnik_prng::Rng;
use beatnik_rocketrig::RigRunner;
use beatnik_serve::http::request;
use beatnik_serve::{serve, JobContext, JobOutcome, JobRunner, Scheduler, SchedulerConfig, JobSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const POOL_RANKS: usize = 8;
const TOTAL_JOBS: usize = 200;
const TENANTS: usize = 8;
const SEED: u64 = 41;
const TOL: f64 = 1e-8;

/// Generous drain limit: the whole mix is a few seconds of sim work,
/// but CI hosts oversubscribe the pool's thread-ranks.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(300);

struct Row {
    metric: &'static str,
    ns: f64,
}

fn get_json(addr: &str, path: &str) -> Value {
    let (code, body) = request(addr, "GET", path, None)
        .unwrap_or_else(|e| panic!("GET {path}: {e}"));
    assert_eq!(code, 200, "GET {path} returned {code}: {body}");
    beatnik_json::parse(&body).unwrap_or_else(|e| panic!("GET {path} body: {e:?}"))
}

fn post_job(addr: &str, body: &str) -> u64 {
    let (code, resp) =
        request(addr, "POST", "/jobs", Some(body)).expect("POST /jobs");
    assert_eq!(code, 201, "POST /jobs returned {code}: {resp}");
    beatnik_json::parse(&resp)
        .ok()
        .and_then(|v| v.get("id").and_then(Value::as_u64))
        .expect("POST /jobs response has no id")
}

/// Block until the job reaches `state`, or any terminal state when
/// waiting for a terminal one.
fn wait_state(addr: &str, id: u64, want: &str, timeout: Duration) -> Value {
    let deadline = Instant::now() + timeout;
    loop {
        let detail = get_json(addr, &format!("/jobs/{id}"));
        let state = detail
            .get("state")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        if state == want {
            return detail;
        }
        assert!(
            !matches!(state.as_str(), "completed" | "failed" | "canceled"),
            "job {id} reached terminal state {state:?} while waiting for {want:?}"
        );
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in {state:?} waiting for {want:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Phase 1: demonstrate a preemption and check bit-level (1e-8)
/// agreement with an uninterrupted run. Returns the victim's preemption
/// count (>= 1, asserted).
fn preemption_demo(addr: &str, scratch: &std::path::Path) -> u64 {
    // Wide enough to own the whole pool, long enough that the
    // preemptor's arrival lands between step boundaries.
    let victim_body = r#"{"name":"victim","order":"low","mesh_n":32,"steps":20,
        "ranks":8,"min_ranks":2,"priority":0}"#;
    let victim = post_job(addr, victim_body);
    wait_state(addr, victim, "running", Duration::from_secs(60));

    let preemptor = post_job(
        addr,
        r#"{"name":"preemptor","order":"low","mesh_n":16,"steps":4,"ranks":8,"priority":9}"#,
    );
    let p = wait_state(addr, preemptor, "completed", Duration::from_secs(120));
    let v = wait_state(addr, victim, "completed", Duration::from_secs(120));

    let preemptions = v.get("preemptions").and_then(Value::as_u64).unwrap_or(0);
    assert!(
        preemptions >= 1,
        "victim was never preempted — the demo proves nothing"
    );
    // The preemptor must not have waited for the victim's full run.
    let p_wait = p
        .get("timeline")
        .and_then(|t| t.get("queue_wait_ms"))
        .and_then(Value::as_u64)
        .unwrap_or(u64::MAX);
    eprintln!(
        "preemption demo: victim preempted {preemptions}x, preemptor queue wait {p_wait} ms"
    );

    // Reference: the same spec, uninterrupted, straight through the
    // runner (no scheduler in the loop).
    let spec = JobSpec {
        name: "victim-ref".into(),
        mesh_n: 32,
        steps: 20,
        ranks: 8,
        min_ranks: 2,
        ..JobSpec::default()
    };
    let ctx = JobContext::standalone(spec, POOL_RANKS, scratch.join("ref.ckpt.json"));
    let outcome = RigRunner::new().run(&ctx).expect("reference run failed");
    let (ref_amp, ref_ens) = match outcome {
        JobOutcome::Completed {
            amplitude,
            enstrophy,
            ..
        } => (amplitude, enstrophy),
        other => panic!("reference run did not complete: {other:?}"),
    };

    let result = v.get("result").expect("victim has no result");
    let amp = result.get("amplitude").and_then(Value::as_f64).unwrap();
    let ens = result.get("enstrophy").and_then(Value::as_f64).unwrap();
    for (name, got, want) in [("amplitude", amp, ref_amp), ("enstrophy", ens, ref_ens)] {
        let limit = TOL + TOL * want.abs();
        assert!(
            (got - want).abs() <= limit,
            "preempted run diverged: {name} {got:e} vs uninterrupted {want:e} \
             (|diff| {:e} > {limit:e})",
            (got - want).abs()
        );
    }
    eprintln!(
        "preemption demo: diagnostics match uninterrupted run \
         (amplitude {amp:.12e}, enstrophy {ens:.12e})"
    );
    preemptions
}

/// One tenant job from the seeded mix — same shape as loadgen's, kept
/// small so 200 of them drain in seconds.
fn mix_body(rng: &mut Rng, i: usize) -> String {
    let mesh = [12usize, 16, 24][rng.gen_index(0..3)];
    let steps = rng.gen_index(2..7);
    let ranks = rng.gen_index(1..5);
    let priority = rng.gen_index(0..10);
    let deadline = if rng.gen_bool() {
        format!(",\"deadline_ms\":{}", 5_000 + rng.gen_index(0..8) * 1_000)
    } else {
        String::new()
    };
    format!(
        "{{\"name\":\"mix-{i}\",\"order\":\"low\",\"mesh_n\":{mesh},\"steps\":{steps},\
         \"ranks\":{ranks},\"priority\":{priority}{deadline}}}"
    )
}

/// Per-job numbers pulled back out of `GET /jobs/{id}` once terminal.
struct JobStats {
    latency_ms: u64,
    queue_wait_ms: u64,
    run_ms: u64,
    preemptions: u64,
    completed: bool,
}

fn job_stats(addr: &str, id: u64) -> JobStats {
    let d = get_json(addr, &format!("/jobs/{id}"));
    let t = d.get("timeline").expect("detail has timeline");
    let u = |v: Option<&Value>| v.and_then(Value::as_u64).unwrap_or(0);
    JobStats {
        latency_ms: u(t.get("latency_ms")),
        queue_wait_ms: u(t.get("queue_wait_ms")),
        run_ms: u(t.get("run_ms")),
        preemptions: u(d.get("preemptions")),
        completed: d.get("state").and_then(Value::as_str) == Some("completed"),
    }
}

/// Jain's fairness index over per-job slowdowns (end-to-end latency
/// relative to pure run time): `(Σx)² / (n·Σx²)`, 1.0 = perfectly fair.
fn jain_index(stats: &[JobStats]) -> f64 {
    let x: Vec<f64> = stats
        .iter()
        .map(|s| s.latency_ms as f64 / (s.run_ms.max(1) as f64))
        .collect();
    let sum: f64 = x.iter().sum();
    let sq: f64 = x.iter().map(|v| v * v).sum();
    if sq == 0.0 {
        1.0
    } else {
        sum * sum / (x.len() as f64 * sq)
    }
}

fn percentile_ns(sorted_ms: &[u64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx] as f64 * 1e6
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".into());
    let scratch = std::env::temp_dir().join("beatnik_bench_serve");
    std::fs::create_dir_all(&scratch).expect("cannot create scratch dir");

    let cfg = SchedulerConfig {
        pool_ranks: POOL_RANKS,
        ckpt_dir: scratch.join("ckpt"),
        ..SchedulerConfig::default()
    };
    let scheduler = Arc::new(Scheduler::new(
        cfg,
        Arc::new(MetricsRegistry::new()),
        Arc::new(RigRunner::new()),
    ));
    let handle = serve("127.0.0.1:0", scheduler).expect("cannot bind loopback");
    let addr = handle.addr().to_string();
    eprintln!("bench_serve: service on {addr}, pool {POOL_RANKS} ranks");

    let demo_preemptions = preemption_demo(&addr, &scratch);

    // Phase 2: the seeded mix, submitted closed-loop from TENANTS
    // threads. The demo's two jobs count toward the total.
    let mix_jobs = TOTAL_JOBS - 2;
    let ids = Mutex::new(Vec::with_capacity(mix_jobs));
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..TENANTS {
            let (ids, next, addr) = (&ids, &next, addr.as_str());
            let mut rng = Rng::seed_from_u64(SEED ^ (w as u64).wrapping_mul(0x9e37_79b9));
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= mix_jobs {
                    return;
                }
                let id = post_job(addr, &mix_body(&mut rng, i));
                ids.lock().unwrap().push(id);
            });
        }
    });
    let ids = ids.into_inner().unwrap();
    assert_eq!(ids.len(), mix_jobs, "a submission was lost");

    // Drain: every accepted job must land in a terminal state.
    let deadline = Instant::now() + DRAIN_TIMEOUT;
    loop {
        let doc = get_json(&addr, "/jobs");
        let jobs = match doc.get("jobs") {
            Some(Value::Array(jobs)) => jobs,
            _ => panic!("GET /jobs has no jobs array"),
        };
        let terminal = jobs
            .iter()
            .filter(|j| {
                matches!(
                    j.get("state").and_then(Value::as_str),
                    Some("completed" | "failed" | "canceled")
                )
            })
            .count();
        if terminal == TOTAL_JOBS {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "drain timed out with {} of {TOTAL_JOBS} jobs terminal",
            terminal
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let wall_ns = start.elapsed().as_nanos() as f64;

    let stats: Vec<JobStats> = ids.iter().map(|&id| job_stats(&addr, id)).collect();
    let lost = stats.iter().filter(|s| !s.completed).count();
    assert_eq!(lost, 0, "{lost} mixed jobs did not complete");

    let mut latencies: Vec<u64> = stats.iter().map(|s| s.latency_ms).collect();
    latencies.sort_unstable();
    let mean_wait_ns = stats
        .iter()
        .map(|s| s.queue_wait_ms as f64 * 1e6)
        .sum::<f64>()
        / stats.len() as f64;
    let mix_preemptions: u64 = stats.iter().map(|s| s.preemptions).sum();
    let jain = jain_index(&stats);

    let rows = [
        Row {
            metric: "job_throughput_ns_per_job",
            ns: wall_ns / mix_jobs as f64,
        },
        Row {
            metric: "p50_latency",
            ns: percentile_ns(&latencies, 0.50),
        },
        Row {
            metric: "p99_latency",
            ns: percentile_ns(&latencies, 0.99),
        },
        Row {
            metric: "mean_queue_wait",
            ns: mean_wait_ns,
        },
    ];
    for r in &rows {
        eprintln!("{:<26} jobs={TOTAL_JOBS} pool={POOL_RANKS} {:>14.0} ns", r.metric, r.ns);
    }
    eprintln!(
        "summary: {} preemptions (demo {demo_preemptions}), jain {jain:.4}, 0 lost",
        demo_preemptions + mix_preemptions
    );

    handle.shutdown();

    let bench_rows: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("metric".into(), Value::Str(r.metric.into())),
                ("jobs".into(), Value::UInt(TOTAL_JOBS as u64)),
                ("pool_ranks".into(), Value::UInt(POOL_RANKS as u64)),
                ("ns".into(), Value::Float(r.ns)),
            ])
        })
        .collect();
    let summary = Value::Object(vec![
        (
            "preemptions".into(),
            Value::UInt(demo_preemptions + mix_preemptions),
        ),
        ("jain_fairness".into(), Value::Float(jain)),
        ("lost_jobs".into(), Value::UInt(lost as u64)),
    ]);
    let doc = Value::Object(vec![
        ("benches".into(), Value::Array(bench_rows)),
        ("summary".into(), summary),
    ]);
    std::fs::write(&path, beatnik_json::to_string_pretty(&doc))
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("wrote {path}");
}
