//! The desingularized Biot–Savart / Birkhoff–Rott pair kernel.

use crate::geometry::cross;

/// `1 / 4π`.
const INV_4PI: f64 = 1.0 / (4.0 * std::f64::consts::PI);

/// Velocity contribution of a source point with pre-integrated strength
/// `ω·ΔA` on a target point, with Krasny desingularization `ε`:
///
/// ```text
/// u += (1/4π) · (x_src − x_tgt) × (ω·ΔA) / (|x_src − x_tgt|² + ε²)^{3/2}
/// ```
///
/// The self-interaction (coincident points) contributes exactly zero
/// (zero numerator), so callers need not special-case it.
#[inline]
pub fn br_pair_velocity(
    target: [f64; 3],
    source: [f64; 3],
    strength: [f64; 3],
    eps2: f64,
) -> [f64; 3] {
    let d = [
        source[0] - target[0],
        source[1] - target[1],
        source[2] - target[2],
    ];
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + eps2;
    if r2 == 0.0 {
        // Coincident points with ε = 0: the limit is zero (the numerator
        // vanishes first), but naively it computes 0·∞ = NaN.
        return [0.0; 3];
    }
    let inv = INV_4PI / (r2 * r2.sqrt());
    let c = cross(d, strength);
    [c[0] * inv, c[1] * inv, c[2] * inv]
}

/// Accumulate the kernel over a block of sources into `vel[i]` for each
/// target `i` (the inner loop of both BR solvers).
pub fn accumulate_block(
    vel: &mut [[f64; 3]],
    targets: &[[f64; 3]],
    sources: &[([f64; 3], [f64; 3])],
    eps2: f64,
) {
    debug_assert_eq!(vel.len(), targets.len());
    for (v, &t) in vel.iter_mut().zip(targets) {
        let mut acc = [0.0f64; 3];
        for &(pos, strength) in sources {
            let u = br_pair_velocity(t, pos, strength, eps2);
            acc[0] += u[0];
            acc[1] += u[1];
            acc[2] += u[2];
        }
        v[0] += acc[0];
        v[1] += acc[1];
        v[2] += acc[2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_interaction_is_zero() {
        let p = [1.0, 2.0, 3.0];
        let u = br_pair_velocity(p, p, [5.0, -1.0, 2.0], 0.01);
        assert_eq!(u, [0.0; 3]);
    }

    #[test]
    fn kernel_direction_matches_cross_product() {
        // Source at +x with strength ŷ induces +z velocity at the origin.
        let u = br_pair_velocity([0.0; 3], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], 0.0);
        assert!(u[2] > 0.0);
        assert!(u[0].abs() < 1e-15 && u[1].abs() < 1e-15);
        // Flipping the strength flips the velocity.
        let v = br_pair_velocity([0.0; 3], [1.0, 0.0, 0.0], [0.0, -1.0, 0.0], 0.0);
        assert_eq!(v[2], -u[2]);
    }

    #[test]
    fn kernel_decays_as_inverse_square() {
        let near = br_pair_velocity([0.0; 3], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], 0.0);
        let far = br_pair_velocity([0.0; 3], [10.0, 0.0, 0.0], [0.0, 1.0, 0.0], 0.0);
        // |u| ~ r/r³ = 1/r²: factor 100.
        assert!((near[2] / far[2] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn desingularization_caps_close_approach() {
        let tight = br_pair_velocity([0.0; 3], [1e-8, 0.0, 0.0], [0.0, 1.0, 0.0], 0.0);
        let capped = br_pair_velocity([0.0; 3], [1e-8, 0.0, 0.0], [0.0, 1.0, 0.0], 0.01);
        assert!(tight[2] > 1e10); // singular without ε
        assert!(capped[2] < 1.0); // bounded with ε
    }

    #[test]
    fn accumulate_matches_pairwise_sum() {
        let targets = [[0.0; 3], [0.5, 0.5, 0.0]];
        let sources = [
            ([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]),
            ([0.0, 1.0, 0.0], [1.0, 0.0, 0.0]),
            ([0.2, 0.1, 0.3], [0.0, 0.0, 1.0]),
        ];
        let mut vel = vec![[0.0; 3]; 2];
        accumulate_block(&mut vel, &targets, &sources, 0.01);
        for (i, &t) in targets.iter().enumerate() {
            let mut want = [0.0; 3];
            for &(p, s) in &sources {
                let u = br_pair_velocity(t, p, s, 0.01);
                want[0] += u[0];
                want[1] += u[1];
                want[2] += u[2];
            }
            assert_eq!(vel[i], want);
        }
    }

    #[test]
    fn accumulation_is_additive_across_blocks() {
        let targets = [[0.1, 0.2, 0.3]];
        let all = [
            ([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]),
            ([0.0, 1.0, 0.0], [1.0, 0.0, 0.0]),
        ];
        let mut once = vec![[0.0; 3]; 1];
        accumulate_block(&mut once, &targets, &all, 0.01);
        let mut split = vec![[0.0; 3]; 1];
        accumulate_block(&mut split, &targets, &all[..1], 0.01);
        accumulate_block(&mut split, &targets, &all[1..], 0.01);
        for k in 0..3 {
            assert!((once[0][k] - split[0][k]).abs() < 1e-15);
        }
    }
}
