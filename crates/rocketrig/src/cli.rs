//! Hand-rolled command-line parsing for the `rocketrig` binary (kept
//! dependency-free; the option names mirror the paper's driver flags).

use crate::{Deck, RigConfig};
use beatnik_comm::TransportKind;
use beatnik_core::Order;
use beatnik_dfft::FftConfig;
use std::path::PathBuf;

/// Options parsed from the command line: the run config plus the number
/// of thread-ranks to launch.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// The run configuration.
    pub config: RigConfig,
    /// Ranks to launch (`--ranks`).
    pub ranks: usize,
    /// Write the run log JSON here (`--log`).
    pub log_path: Option<PathBuf>,
    /// Print the per-rank communication matrix (`--matrix`).
    pub print_matrix: bool,
    /// Record span telemetry and write a Chrome Trace Event JSON here,
    /// plus `<stem>-phases.csv` / `<stem>-skew.csv` next to it
    /// (`--profile`).
    pub profile_path: Option<PathBuf>,
    /// Record span telemetry and print the wait-time-attribution /
    /// collective-skew summary (`--profile-summary`).
    pub profile_summary: bool,
    /// Fault-injection plan spec (`--faults`), validated at parse time;
    /// seeded from `BEATNIK_FAULT_SEED`.
    pub fault_spec: Option<String>,
    /// Checkpoint cadence in steps (`--checkpoint-every`, 0 = off). The
    /// checkpoint file is `<out>/checkpoint.json`.
    pub checkpoint_every: usize,
    /// Communication backend (`--transport`); defaults to
    /// `BEATNIK_TRANSPORT` (or the thread backend).
    pub transport: TransportKind,
    /// Launch one OS process per rank instead of one thread per rank
    /// (`--procs`); requires `--transport shmem` or `--transport tcp`.
    pub procs: bool,
    /// Print the resolved communication config and exit
    /// (`--print-config`).
    pub print_config: bool,
}

impl CliOptions {
    /// Whether a span-recorded run is needed: either profiling flag, or
    /// `--metrics` (the live metrics plane emits `critical-path.json`
    /// from the span timeline, so metrics runs record spans too).
    pub fn profiling(&self) -> bool {
        self.profile_path.is_some() || self.profile_summary || self.config.metrics_path.is_some()
    }

    /// Whether the fault-tolerant driver loop should run (any fault plan
    /// or checkpoint cadence opts in).
    pub fn fault_tolerant(&self) -> bool {
        self.fault_spec.is_some() || self.checkpoint_every > 0
    }
}

/// Usage text.
pub const USAGE: &str = "rocketrig - Beatnik-RS Rayleigh-Taylor mini-application driver

USAGE:
    rocketrig [OPTIONS]

OPTIONS:
    --deck <multimode|singlemode>   input deck            [multimode]
    --order <low|medium|high>       model order           [low]
    --solver <exact|cutoff|balanced|tree>  BR solver      [cutoff]
    --theta <F>                     tree opening angle    [0.5]
    --n <N>                         mesh nodes per axis   [64]
    --steps <N>                     timesteps             [20]
    --ranks <N>                     thread-ranks          [4]
    --transport <thread|shmem|tcp>  communication backend
                                    [BEATNIK_TRANSPORT or thread]
    --procs                         one OS process per rank (requires
                                    --transport shmem or tcp)
    --print-config                  print the resolved BEATNIK_* comm
                                    config and exit
    --atwood <F>                    Atwood number         [0.5]
    --gravity <F>                   gravity               [9.8]
    --mu <F>                        artificial viscosity  [1.0]
    --epsilon <F>                   desingularization     [0.25]
    --cutoff <F>                    cutoff distance       [0.5]
    --dt <F>                        timestep size         [1e-3]
    --fft-config <0..7>             heFFTe-style config   [7]
    --filter-every <N>              Krasny filter cadence [0 = off]
    --filter-tol <F>                Krasny filter tol     [1e-12]
    --diag-every <N>                diagnostics cadence   [1]
    --ownership                     record ownership fractions
    --matrix                        print the communication matrix
    --vtk-every <N>                 VTK dump cadence      [0 = off]
    --out <DIR>                     output directory      [rocketrig-out]
    --log <FILE>                    write run log JSON
    --profile <FILE>                record span telemetry; write Chrome
                                    Trace Event JSON (chrome://tracing /
                                    Perfetto) plus phase/skew CSVs
    --profile-summary               record span telemetry; print wait-time
                                    attribution, collective skew, and the
                                    critical-path decomposition
    --metrics <FILE>                flush live metrics as OpenMetrics text
                                    at FILE (JSON twin at FILE.json); also
                                    writes <FILE stem>-matrix.csv and
                                    critical-path.json after the run
    --metrics-every <N>             metrics flush cadence in steps
                                    [0 = final step only]
    --faults <SPEC>                 inject faults, e.g.
                                    kill:r2@step5,delay:r1@op10:50ms
                                    (seeded by BEATNIK_FAULT_SEED)
    --checkpoint-every <N>          checkpoint cadence    [0 = off];
                                    writes <out>/checkpoint.json and
                                    enables shrink+restart recovery
    --help                          print this text
";

/// Parse arguments (not including argv[0]). Returns `Err(message)` on
/// bad input; the caller prints and exits.
pub fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut opts = CliOptions {
        config: RigConfig::default(),
        ranks: 4,
        log_path: None,
        print_matrix: false,
        profile_path: None,
        profile_summary: false,
        fault_spec: None,
        checkpoint_every: 0,
        transport: beatnik_comm::CommConfig::from_env().transport,
        procs: false,
        print_config: false,
    };
    let mut i = 0;
    let take = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {flag}"))
    };
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--deck" => {
                opts.config.deck = match take(args, &mut i, flag)?.as_str() {
                    "multimode" => Deck::MultiModePeriodic,
                    "singlemode" => Deck::SingleModeOpen,
                    other => return Err(format!("unknown deck '{other}'")),
                }
            }
            "--order" => {
                opts.config.order = take(args, &mut i, flag)?.parse::<Order>()?;
            }
            "--solver" => match take(args, &mut i, flag)?.as_str() {
                "exact" => {
                    opts.config.cutoff_solver = false;
                    opts.config.tree_theta = None;
                }
                "cutoff" => {
                    opts.config.cutoff_solver = true;
                    opts.config.tree_theta = None;
                    opts.config.balanced = false;
                }
                "balanced" => {
                    opts.config.cutoff_solver = true;
                    opts.config.tree_theta = None;
                    opts.config.balanced = true;
                }
                "tree" => {
                    opts.config.cutoff_solver = false;
                    opts.config.tree_theta.get_or_insert(0.5);
                }
                other => return Err(format!("unknown solver '{other}'")),
            },
            "--theta" => {
                opts.config.tree_theta = Some(parse_f(&take(args, &mut i, flag)?, flag)?)
            }
            "--n" => opts.config.mesh_n = parse_num(&take(args, &mut i, flag)?, flag)?,
            "--steps" => opts.config.steps = parse_num(&take(args, &mut i, flag)?, flag)?,
            "--ranks" => opts.ranks = parse_num(&take(args, &mut i, flag)?, flag)?,
            "--transport" => {
                opts.transport = take(args, &mut i, flag)?
                    .parse::<TransportKind>()
                    .map_err(|e| format!("{flag}: {e}"))?
            }
            "--procs" => opts.procs = true,
            "--print-config" => opts.print_config = true,
            "--atwood" => opts.config.params.atwood = parse_f(&take(args, &mut i, flag)?, flag)?,
            "--gravity" => opts.config.params.gravity = parse_f(&take(args, &mut i, flag)?, flag)?,
            "--mu" => opts.config.params.mu = parse_f(&take(args, &mut i, flag)?, flag)?,
            "--epsilon" => opts.config.params.epsilon = parse_f(&take(args, &mut i, flag)?, flag)?,
            "--cutoff" => opts.config.params.cutoff = parse_f(&take(args, &mut i, flag)?, flag)?,
            "--dt" => opts.config.params.dt = parse_f(&take(args, &mut i, flag)?, flag)?,
            "--fft-config" => {
                let idx: usize = parse_num(&take(args, &mut i, flag)?, flag)?;
                if idx > 7 {
                    return Err("--fft-config must be 0..7".into());
                }
                opts.config.fft = FftConfig::from_index(idx);
            }
            "--filter-every" => {
                opts.config.params.filter_every = parse_num(&take(args, &mut i, flag)?, flag)?
            }
            "--filter-tol" => {
                opts.config.params.filter_tolerance =
                    parse_f(&take(args, &mut i, flag)?, flag)?
            }
            "--diag-every" => {
                opts.config.diag_every = parse_num(&take(args, &mut i, flag)?, flag)?
            }
            "--ownership" => opts.config.record_ownership = true,
            "--matrix" => opts.print_matrix = true,
            "--vtk-every" => opts.config.vtk_every = parse_num(&take(args, &mut i, flag)?, flag)?,
            "--out" => opts.config.out_dir = PathBuf::from(take(args, &mut i, flag)?),
            "--log" => opts.log_path = Some(PathBuf::from(take(args, &mut i, flag)?)),
            "--profile" => opts.profile_path = Some(PathBuf::from(take(args, &mut i, flag)?)),
            "--profile-summary" => opts.profile_summary = true,
            "--metrics" => {
                opts.config.metrics_path = Some(PathBuf::from(take(args, &mut i, flag)?))
            }
            "--metrics-every" => {
                opts.config.metrics_every = parse_num(&take(args, &mut i, flag)?, flag)?
            }
            "--faults" => {
                let spec = take(args, &mut i, flag)?;
                // Validate eagerly so a typo fails at the prompt, not
                // five minutes into the run.
                beatnik_comm::FaultPlan::parse(&spec, beatnik_comm::seed_from_env())?;
                opts.fault_spec = Some(spec);
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = parse_num(&take(args, &mut i, flag)?, flag)?
            }
            other => return Err(format!("unknown option '{other}'\n\n{USAGE}")),
        }
        i += 1;
    }
    if opts.ranks == 0 {
        return Err("--ranks must be at least 1".into());
    }
    if opts.procs && opts.transport == TransportKind::Thread {
        return Err("--procs needs a cross-process backend: --transport shmem or tcp".into());
    }
    if opts.procs && (opts.fault_tolerant() || opts.profiling()) {
        return Err(
            "--procs runs the plain driver loop; drop --faults/--checkpoint-every/--profile/--metrics"
                .into(),
        );
    }
    opts.config.params.validate()?;
    Ok(opts)
}

/// Options for the `rocketrig serve` subcommand.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address (`--addr`).
    pub addr: String,
    /// Rank slots in the shared pool (`--pool`).
    pub pool_ranks: usize,
    /// Queue depth before 429s (`--max-queue`).
    pub max_queue: usize,
    /// Checkpoint directory (`--ckpt-dir`).
    pub ckpt_dir: PathBuf,
    /// Largest accepted mesh edge (`--max-mesh-n`).
    pub max_mesh_n: usize,
    /// Largest accepted step count (`--max-steps`).
    pub max_steps: usize,
}

/// Usage text for `rocketrig serve`.
pub const SERVE_USAGE: &str = "rocketrig serve - run a multi-tenant simulation service

USAGE:
    rocketrig serve [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>     listen address            [127.0.0.1:7747]
    --pool <N>             rank slots in the pool    [8]
    --max-queue <N>        queued jobs before 429    [256]
    --ckpt-dir <DIR>       checkpoint directory      [<tmp>/beatnik-serve]
    --max-mesh-n <N>       largest accepted mesh     [256]
    --max-steps <N>        largest accepted steps    [100000]
    --help                 print this text

The server exposes GET /healthz, GET /metrics (OpenMetrics), GET /jobs,
POST /jobs, GET /jobs/{id}, DELETE /jobs/{id}. SIGTERM (or SIGINT)
drains gracefully: queued jobs are canceled, running jobs checkpoint
and stop.
";

/// Parse `rocketrig serve` arguments (not including argv[0] or the
/// literal `serve`).
pub fn parse_serve_args(args: &[String]) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions {
        addr: "127.0.0.1:7747".to_string(),
        pool_ranks: 8,
        max_queue: 256,
        ckpt_dir: std::env::temp_dir().join("beatnik-serve"),
        max_mesh_n: 256,
        max_steps: 100_000,
    };
    let mut i = 0;
    let take = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {flag}"))
    };
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--help" | "-h" => return Err(SERVE_USAGE.to_string()),
            "--addr" => opts.addr = take(args, &mut i, flag)?,
            "--pool" => opts.pool_ranks = parse_num(&take(args, &mut i, flag)?, flag)?,
            "--max-queue" => opts.max_queue = parse_num(&take(args, &mut i, flag)?, flag)?,
            "--ckpt-dir" => opts.ckpt_dir = PathBuf::from(take(args, &mut i, flag)?),
            "--max-mesh-n" => opts.max_mesh_n = parse_num(&take(args, &mut i, flag)?, flag)?,
            "--max-steps" => opts.max_steps = parse_num(&take(args, &mut i, flag)?, flag)?,
            other => return Err(format!("unknown option '{other}'\n\n{SERVE_USAGE}")),
        }
        i += 1;
    }
    if opts.pool_ranks == 0 {
        return Err("--pool must be at least 1".into());
    }
    if opts.max_queue == 0 {
        return Err("--max-queue must be at least 1".into());
    }
    Ok(opts)
}

fn parse_num(s: &str, flag: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("bad integer for {flag}: '{s}'"))
}

fn parse_f(s: &str, flag: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("bad number for {flag}: '{s}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_parse_from_empty() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.ranks, 4);
        assert_eq!(o.config.mesh_n, 64);
        assert_eq!(o.config.order, Order::Low);
    }

    #[test]
    fn full_command_line() {
        let o = parse_args(&sv(&[
            "--deck", "singlemode", "--order", "high", "--solver", "exact", "--n", "32",
            "--steps", "5", "--ranks", "2", "--atwood", "0.3", "--gravity", "1.5", "--mu",
            "0.0", "--epsilon", "0.1", "--cutoff", "0.7", "--dt", "0.002", "--fft-config",
            "3", "--diag-every", "2", "--ownership", "--vtk-every", "4", "--out", "/tmp/x",
            "--log", "/tmp/x/log.json",
        ]))
        .unwrap();
        assert_eq!(o.config.deck, Deck::SingleModeOpen);
        assert_eq!(o.config.order, Order::High);
        assert!(!o.config.cutoff_solver);
        assert_eq!(o.config.mesh_n, 32);
        assert_eq!(o.ranks, 2);
        assert_eq!(o.config.params.atwood, 0.3);
        assert_eq!(o.config.fft.index(), 3);
        assert!(o.config.record_ownership);
        assert_eq!(o.config.vtk_every, 4);
        assert_eq!(o.log_path.unwrap(), PathBuf::from("/tmp/x/log.json"));
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(parse_args(&sv(&["--deck", "cube"])).is_err());
        assert!(parse_args(&sv(&["--order", "ultra"])).is_err());
        assert!(parse_args(&sv(&["--n"])).is_err());
        assert!(parse_args(&sv(&["--n", "abc"])).is_err());
        assert!(parse_args(&sv(&["--fft-config", "9"])).is_err());
        assert!(parse_args(&sv(&["--ranks", "0"])).is_err());
        assert!(parse_args(&sv(&["--atwood", "2.0"])).is_err());
        assert!(parse_args(&sv(&["--frobnicate"])).is_err());
    }

    #[test]
    fn filter_options() {
        let o = parse_args(&sv(&["--filter-every", "10", "--filter-tol", "1e-10"])).unwrap();
        assert_eq!(o.config.params.filter_every, 10);
        assert_eq!(o.config.params.filter_tolerance, 1e-10);
        assert!(parse_args(&sv(&["--filter-tol", "-1.0"])).is_err());
    }

    #[test]
    fn tree_solver_options() {
        let o = parse_args(&sv(&["--solver", "tree"])).unwrap();
        assert_eq!(o.config.tree_theta, Some(0.5));
        let o = parse_args(&sv(&["--solver", "tree", "--theta", "0.8"])).unwrap();
        assert_eq!(o.config.tree_theta, Some(0.8));
        let o = parse_args(&sv(&["--theta", "0.3", "--solver", "tree"])).unwrap();
        assert_eq!(o.config.tree_theta, Some(0.3));
        let o = parse_args(&sv(&["--solver", "cutoff"])).unwrap();
        assert_eq!(o.config.tree_theta, None);
        let o = parse_args(&sv(&["--solver", "balanced"])).unwrap();
        assert!(o.config.balanced && o.config.cutoff_solver);
    }

    #[test]
    fn profile_options() {
        let o = parse_args(&[]).unwrap();
        assert!(!o.profiling());
        let o = parse_args(&sv(&["--profile", "/tmp/t.json"])).unwrap();
        assert_eq!(o.profile_path.unwrap(), PathBuf::from("/tmp/t.json"));
        assert!(!o.profile_summary);
        let o = parse_args(&sv(&["--profile-summary"])).unwrap();
        assert!(o.profile_summary && o.profiling());
        assert!(parse_args(&sv(&["--profile"])).is_err());
    }

    #[test]
    fn metrics_options() {
        let o = parse_args(&[]).unwrap();
        assert!(o.config.metrics_path.is_none());
        assert_eq!(o.config.metrics_every, 0);
        let o = parse_args(&sv(&["--metrics", "/tmp/m.om", "--metrics-every", "5"])).unwrap();
        assert_eq!(o.config.metrics_path, Some(PathBuf::from("/tmp/m.om")));
        assert_eq!(o.config.metrics_every, 5);
        // --metrics implies a span-recorded run (for critical-path.json).
        assert!(o.profiling());
        assert!(parse_args(&sv(&["--metrics"])).is_err());
        assert!(parse_args(&sv(&["--metrics-every", "x"])).is_err());
    }

    #[test]
    fn fault_options() {
        let o = parse_args(&[]).unwrap();
        assert!(!o.fault_tolerant());
        let o = parse_args(&sv(&[
            "--faults",
            "kill:r2@step5",
            "--checkpoint-every",
            "2",
        ]))
        .unwrap();
        assert_eq!(o.fault_spec.as_deref(), Some("kill:r2@step5"));
        assert_eq!(o.checkpoint_every, 2);
        assert!(o.fault_tolerant());
        // Checkpointing alone also opts into the recovery loop.
        let o = parse_args(&sv(&["--checkpoint-every", "3"])).unwrap();
        assert!(o.fault_tolerant());
        // Bad specs fail at the prompt.
        assert!(parse_args(&sv(&["--faults", "explode:r2@step5"])).is_err());
        assert!(parse_args(&sv(&["--faults", "drop:r0@step3"])).is_err());
        assert!(parse_args(&sv(&["--faults"])).is_err());
    }

    #[test]
    fn transport_options() {
        let o = parse_args(&[]).unwrap();
        assert!(!o.procs && !o.print_config);
        let o = parse_args(&sv(&["--transport", "shmem", "--procs"])).unwrap();
        assert_eq!(o.transport, TransportKind::Shmem);
        assert!(o.procs);
        let o = parse_args(&sv(&["--transport", "tcp", "--print-config"])).unwrap();
        assert_eq!(o.transport, TransportKind::Tcp);
        assert!(o.print_config);
        // --procs needs a cross-process backend and the plain loop.
        assert!(parse_args(&sv(&["--procs"])).is_err());
        assert!(parse_args(&sv(&["--transport", "carrier-pigeon"])).is_err());
        assert!(
            parse_args(&sv(&["--transport", "shmem", "--procs", "--profile-summary"])).is_err()
        );
    }

    #[test]
    fn help_returns_usage() {
        let err = parse_args(&sv(&["--help"])).unwrap_err();
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn serve_defaults() {
        let o = parse_serve_args(&[]).unwrap();
        assert_eq!(o.addr, "127.0.0.1:7747");
        assert_eq!(o.pool_ranks, 8);
        assert_eq!(o.max_queue, 256);
        assert_eq!(o.max_mesh_n, 256);
        assert_eq!(o.max_steps, 100_000);
    }

    #[test]
    fn serve_options_parse() {
        let o = parse_serve_args(&sv(&[
            "--addr",
            "0.0.0.0:9000",
            "--pool",
            "4",
            "--max-queue",
            "16",
            "--ckpt-dir",
            "/tmp/ck",
            "--max-mesh-n",
            "64",
            "--max-steps",
            "500",
        ]))
        .unwrap();
        assert_eq!(o.addr, "0.0.0.0:9000");
        assert_eq!(o.pool_ranks, 4);
        assert_eq!(o.max_queue, 16);
        assert_eq!(o.ckpt_dir, PathBuf::from("/tmp/ck"));
        assert_eq!(o.max_mesh_n, 64);
        assert_eq!(o.max_steps, 500);
    }

    #[test]
    fn serve_rejects_bad_input() {
        assert!(parse_serve_args(&sv(&["--pool", "0"])).is_err());
        assert!(parse_serve_args(&sv(&["--max-queue", "0"])).is_err());
        assert!(parse_serve_args(&sv(&["--addr"])).is_err());
        assert!(parse_serve_args(&sv(&["--bogus"])).is_err());
        let err = parse_serve_args(&sv(&["--help"])).unwrap_err();
        assert!(err.contains("rocketrig serve"));
    }
}
