//! The in-process thread backend: the classic Beatnik path.
//!
//! Ranks are threads sharing one [`Registry`], so delivery is a single
//! mailbox push — the envelope's payload buffer moves by pointer from
//! the sending thread to the receiving one. There is no wire, no
//! serialization, and no control plane: the failure ledger itself is
//! shared state.

use super::{CtrlMsg, Route, Transport, TransportKind};
use crate::message::Envelope;
use crate::registry::Registry;

/// Zero-cost transport for thread-per-rank worlds.
pub struct ThreadTransport;

impl Transport for ThreadTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Thread
    }

    fn deliver(&self, registry: &Registry, route: Route, env: Envelope) {
        registry.mailbox(route.comm, route.dst_local).push(env);
    }

    fn pointer_handoff(&self, _dst_world: usize) -> bool {
        // Every delivery is a mailbox push: payload buffers always move
        // by pointer between rank threads.
        true
    }

    fn publish_ctrl(&self, _ctrl: CtrlMsg) {
        // Every rank shares the ledger; there is nobody to tell.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn delivers_straight_into_the_destination_mailbox() {
        let registry = Arc::new(Registry::new());
        let t = ThreadTransport;
        t.deliver(
            &registry,
            Route {
                comm: 0,
                dst_local: 1,
                src_world: 0,
                dst_world: 1,
            },
            Envelope::new(0, 7, vec![1u32, 2, 3]),
        );
        let env = registry
            .mailbox(0, 1)
            .recv_matching_timeout(1, 0, 7, std::time::Duration::from_secs(1))
            .expect("envelope should be waiting");
        assert_eq!(env.into_data::<u32>(), vec![1, 2, 3]);
    }
}
