//! Fault-injection integration tests: every collective must surface a
//! mid-operation rank death as `Err(RankFailed)` or `Err(Timeout)`
//! within its deadline — never hang — and the seeded fault engine must
//! replay byte-identically.

use beatnik_comm::{CommError, Communicator, FaultPlan, SumOp, World};
use std::time::{Duration, Instant};

/// Base world deadline: generous, only reached if detection is broken.
const WORLD_TIMEOUT: Duration = Duration::from_secs(60);
/// Detection deadline the survivors run under; errors must land inside
/// a small multiple of this.
const DETECT: Duration = Duration::from_secs(2);

/// Outcome of one survivor: which error ended its loop and how long
/// after the faulted iteration began it took to surface.
type Survivor = (usize, CommError, Duration);

/// Run `coll` in a loop on `p` ranks with rank `victim` killed at the
/// start of iteration 2 (iteration 1 must complete cleanly). Returns
/// each survivor's terminating error and its latency.
fn kill_mid_collective<F>(p: usize, victim: usize, coll: F) -> Vec<Survivor>
where
    F: Fn(&Communicator) -> Result<(), CommError> + Send + Sync,
{
    let spec = format!("kill:r{victim}@step2");
    let plan = FaultPlan::parse(&spec, 0).expect("static plan");
    let coll = &coll;
    let report = World::builder(p).recv_timeout(WORLD_TIMEOUT).fault_plan(&plan).run_ft(move |comm| {
        let comm = comm.with_recv_timeout(DETECT);
        for step in 1..=100u64 {
            let started = Instant::now();
            comm.fault_step(step); // victim dies here on step 2
            // Non-uniform completion is allowed: a survivor whose
            // messages don't route through the victim (a broadcast root
            // only sends) may legitimately finish the faulted iteration
            // — and without lockstep it could finish the whole loop
            // before the victim even reaches its kill point. The barrier
            // makes every iteration mutually dependent, so each survivor
            // observes the death either inside the collective under test
            // or in the same iteration's barrier.
            match coll(&comm).and_then(|()| comm.try_barrier()) {
                Ok(()) => {}
                Err(e) => return (comm.rank(), e, started.elapsed()),
            }
        }
        panic!("rank {} never observed the failure", comm.rank());
    });
    assert_eq!(report.killed, [victim], "kill did not land");
    let survivors: Vec<Survivor> = report.results.into_iter().flatten().collect();
    assert_eq!(survivors.len(), p - 1, "every survivor must report");
    survivors
}

/// Assert every survivor failed with `RankFailed` (or `Timeout`, if its
/// receive raced the ledger update) well inside the deadline budget.
fn assert_failed_fast(survivors: &[Survivor], what: &str) {
    for (rank, err, latency) in survivors {
        match err {
            CommError::RankFailed { failed, .. } => {
                assert_eq!(*failed, 2, "{what}: wrong culprit on rank {rank}")
            }
            CommError::Timeout { .. } => {}
            other => panic!("{what}: rank {rank} got unexpected error {other}"),
        }
        assert!(
            *latency < DETECT + Duration::from_secs(8),
            "{what}: rank {rank} took {latency:?} to observe the failure"
        );
    }
}

/// Every collective, one rank killed mid-stream, at world size `p`.
/// The victim is rank 2 so it is an interior participant of every
/// algorithm (tree child and parent, ring member, Bruck peer).
type Case = Box<dyn Fn(&Communicator) -> Result<(), CommError> + Send + Sync>;

fn all_collectives_fail_fast(p: usize) {
    let cases: Vec<(&str, Case)> = vec![
        ("barrier", Box::new(|c: &Communicator| c.try_barrier())),
        (
            "broadcast",
            Box::new(|c: &Communicator| {
                let root_data = (c.rank() == 0).then(|| vec![7u64; 16]);
                c.try_broadcast(0, root_data).map(|_| ())
            }),
        ),
        (
            "reduce",
            Box::new(|c: &Communicator| c.try_reduce(0, c.rank() as f64, &SumOp).map(|_| ())),
        ),
        (
            "allreduce",
            Box::new(|c: &Communicator| c.try_allreduce(c.rank() as f64, &SumOp).map(|_| ())),
        ),
        (
            "gather",
            Box::new(|c: &Communicator| c.try_gather(0, &[c.rank() as u64; 4]).map(|_| ())),
        ),
        (
            "allgather",
            Box::new(|c: &Communicator| c.try_allgather(&[c.rank() as u64; 4]).map(|_| ())),
        ),
        (
            "scatter",
            Box::new(|c: &Communicator| {
                let root_data: Option<Vec<u64>> = (c.rank() == 0).then(|| vec![1; c.size()]);
                c.try_scatter(0, root_data.as_deref()).map(|_| ())
            }),
        ),
        (
            "alltoall",
            Box::new(|c: &Communicator| c.try_alltoall(&vec![c.rank() as u64; c.size()]).map(|_| ())),
        ),
        (
            "alltoallv",
            Box::new(|c: &Communicator| {
                let counts = vec![1usize; c.size()];
                c.try_alltoallv(&vec![c.rank() as u64; c.size()], &counts).map(|_| ())
            }),
        ),
        (
            "scan",
            Box::new(|c: &Communicator| c.try_scan(c.rank() as i64, &SumOp).map(|_| ())),
        ),
        (
            "exscan",
            Box::new(|c: &Communicator| c.try_exscan(c.rank() as i64, &SumOp).map(|_| ())),
        ),
        (
            "reduce_scatter",
            Box::new(|c: &Communicator| {
                c.try_reduce_scatter(&vec![1.0f64; c.size()], &SumOp).map(|_| ())
            }),
        ),
    ];
    for (name, coll) in cases {
        eprintln!("case: {name} p={p}");
        let survivors = kill_mid_collective(p, 2, coll);
        assert_failed_fast(&survivors, name);
    }
}

#[test]
fn every_collective_fails_fast_when_a_rank_dies_4_ranks() {
    all_collectives_fail_fast(4);
}

#[test]
fn every_collective_fails_fast_when_a_rank_dies_9_ranks() {
    all_collectives_fail_fast(9);
}

/// A dropped message is not a death: the waiting rank must time out
/// (no rank is marked failed) instead of hanging.
#[test]
fn dropped_message_surfaces_as_timeout_not_hang() {
    let plan = FaultPlan::parse("drop:r1@op1", 0).expect("static plan");
    let report = World::builder(4).recv_timeout(WORLD_TIMEOUT).fault_plan(&plan).run_ft(|comm| {
            let comm = comm.with_recv_timeout(Duration::from_millis(500));
            comm.try_allreduce(comm.rank() as f64, &SumOp)
        },
    );
    assert!(report.killed.is_empty(), "a drop must not kill anyone");
    assert_eq!(report.fault_events.len(), 1);
    assert_eq!(report.fault_events[0].rank, 1);
    let errors: Vec<&CommError> = report
        .results
        .iter()
        .flatten()
        .filter_map(|r| r.as_ref().err())
        .collect();
    assert!(!errors.is_empty(), "someone must miss the dropped message");
    for e in errors {
        assert!(
            matches!(e, CommError::Timeout { .. }),
            "drop must surface as Timeout, got {e}"
        );
    }
}

/// A delayed message still arrives: the collective completes correctly,
/// and the jittered delay is recorded in the fault ledger.
#[test]
fn delayed_message_is_still_delivered() {
    let plan = FaultPlan::parse("delay:r1@op1:20ms", 0).expect("static plan");
    let report = World::builder(4).recv_timeout(WORLD_TIMEOUT).fault_plan(&plan).run_ft(|comm| {
        comm.try_allreduce(comm.rank() as f64, &SumOp)
    });
    assert!(report.killed.is_empty());
    for r in report.results.iter().flatten() {
        assert_eq!(*r.as_ref().expect("delay must not fail the op"), 6.0);
    }
    assert_eq!(report.fault_events.len(), 1);
    assert!(report.fault_events[0].delay_ns > 0, "jittered delay recorded");
}

/// The full ULFM recovery sequence: a rank dies, survivors shrink, and
/// collectives on the shrunken communicator work — with the dead rank
/// still in the failure ledger.
#[test]
fn shrink_after_death_yields_working_communicator() {
    let plan = FaultPlan::parse("kill:r2@step1", 0).expect("static plan");
    let report = World::builder(4).recv_timeout(WORLD_TIMEOUT).fault_plan(&plan).run_ft(|comm| {
        comm.fault_step(1); // rank 2 dies here
        let shrunk = comm.shrink().expect("survivors agree and shrink");
        assert_eq!(shrunk.size(), 3);
        // World ranks 0, 1, 3 survive; their sum distinguishes a correct
        // group from one that silently kept or renumbered the dead rank.
        let sum = shrunk
            .try_allreduce(comm.rank() as f64, &SumOp)
            .expect("collective on shrunken comm");
        assert_eq!(sum, 4.0);
        shrunk.rank()
    });
    assert_eq!(report.killed, [2]);
    let mut new_ranks: Vec<usize> = report.results.into_iter().flatten().collect();
    new_ranks.sort_unstable();
    assert_eq!(new_ranks, [0, 1, 2], "survivors renumber densely");
}

/// Same seed, same plan, same program: the fault ledger — including
/// jittered delay durations — and the kill set replay identically.
#[test]
fn seeded_fault_replay_is_deterministic() {
    let run = || {
        // Both delays fire during the clean steps (1 and 2, two sends
        // per allreduce at p=4), before the kill makes surviving-rank op
        // counts race-dependent: the *ledger* must replay byte-for-byte.
        let plan =
            FaultPlan::parse("delay:r1@op2:10ms, delay:r3@op3:3ms, kill:r2@step3", 42)
                .expect("static plan");
        World::builder(4).recv_timeout(WORLD_TIMEOUT).fault_plan(&plan).run_ft(|comm| {
            let comm = comm.with_recv_timeout(DETECT);
            for step in 1..=3u64 {
                comm.fault_step(step);
                if comm.try_allreduce(1.0f64, &SumOp).is_err() {
                    break;
                }
            }
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.killed, b.killed);
    assert_eq!(a.fault_events, b.fault_events, "fault ledger must replay");
    assert_eq!(a.killed, [2]);
    // The delays actually fired and carried jitter from the seeded PRNG.
    assert!(a.fault_events.iter().any(|e| e.delay_ns > 0));
}

/// A different seed perturbs the jitter: determinism comes from the
/// seed, not from the delays being constants.
#[test]
fn different_seed_changes_delay_jitter() {
    let run = |seed: u64| {
        let plan = FaultPlan::parse("delay:r1@op1:10ms", seed).expect("static plan");
        World::builder(2).recv_timeout(WORLD_TIMEOUT).fault_plan(&plan).run_ft(|comm| {
            comm.try_allreduce(1.0f64, &SumOp).expect("no deaths here")
        })
    };
    let a = run(7);
    let b = run(8);
    assert_eq!(a.fault_events.len(), 1);
    assert_eq!(b.fault_events.len(), 1);
    assert_ne!(
        a.fault_events[0].delay_ns, b.fault_events[0].delay_ns,
        "jitter must depend on the seed"
    );
}

/// A rank death must be *observable*, not just survivable: the
/// revoke/shrink/recovery sequence has to show up in the span timeline
/// (what the Chrome trace is written from), in the metrics snapshot's
/// phase-entry counters, and in the per-phase communication matrix —
/// where the dead rank's rows freeze at their pre-death values.
#[test]
fn killed_run_surfaces_recovery_in_metrics_and_timeline() {
    use beatnik_comm::telemetry::metrics::{MetricValue, MetricsSnapshot};
    use beatnik_comm::telemetry::{SpanKind, DEFAULT_SPAN_CAPACITY};
    use std::sync::Mutex;

    // Sum every sample of `name` whose labels contain all of `want`.
    fn family_sum(snap: &MetricsSnapshot, name: &str, want: &[(&str, &str)]) -> u64 {
        snap.families
            .iter()
            .filter(|f| f.name == name)
            .flat_map(|f| &f.samples)
            .filter(|s| {
                want.iter()
                    .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| match &s.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => *v,
                MetricValue::Histogram { .. } => 0,
            })
            .sum()
    }

    let plan = FaultPlan::parse("kill:r2@step2", 0).expect("static plan");
    let snap_slot: Mutex<Option<MetricsSnapshot>> = Mutex::new(None);
    let report = World::builder(4).recv_timeout(WORLD_TIMEOUT).span_capacity(DEFAULT_SPAN_CAPACITY).fault_plan(&plan).run_ft(|comm| {
            let comm = comm.with_recv_timeout(DETECT);
            comm.fault_step(1);
            {
                // One clean step so the victim has matrix rows to freeze.
                let _p = comm.telemetry().phase("step");
                let sum = comm.try_allreduce(1.0f64, &SumOp).expect("clean step");
                assert_eq!(sum, 4.0);
            }
            comm.fault_step(2); // rank 2 dies here
            if comm.try_allreduce(1.0f64, &SumOp).is_err() {
                comm.revoke();
            }
            let shrunk = {
                let _span = comm.telemetry().phase(beatnik_comm::RECOVERY_PHASE);
                let shrunk = comm.shrink().expect("survivors shrink");
                let sum = shrunk
                    .try_allreduce(comm.rank() as f64, &SumOp)
                    .expect("collective on shrunken comm");
                assert_eq!(sum, 4.0); // world ranks 0 + 1 + 3
                shrunk
            };
            // Quiesce before sampling: survivors hand rank 0 a token as
            // their final send (peer-traffic counters are bumped before a
            // message is enqueued, so receiving the token means every
            // earlier byte from that rank is already counted). Nothing is
            // sent afterwards, so the snapshot equals the final totals.
            if shrunk.rank() == 0 {
                for src in 1..shrunk.size() {
                    let _ = shrunk.recv::<u8>(src, 77);
                }
                *snap_slot.lock().unwrap() = comm.metrics_snapshot();
            } else {
                shrunk.send(0, 77, vec![1u8]);
            }
        },
    );
    assert_eq!(report.killed, [2]);

    // The recovery sequence is on the span timeline (the Chrome trace is
    // a straight serialization of these spans).
    let timeline = report.timeline.expect("profiled run has a timeline");
    for phase in ["revoke", "shrink", beatnik_comm::RECOVERY_PHASE] {
        assert!(
            timeline
                .ranks
                .iter()
                .flat_map(|r| &r.spans)
                .any(|s| s.kind == SpanKind::Phase(phase)),
            "phase {phase:?} missing from the timeline"
        );
    }

    let snap = snap_slot.into_inner().unwrap().expect("rank 0 snapshot");

    // ...and in the always-on phase-entry counters: each of the three
    // survivors revokes, shrinks, and enters recovery exactly once.
    for phase in ["revoke", "shrink", beatnik_comm::RECOVERY_PHASE] {
        assert_eq!(
            family_sum(&snap, "beatnik_phase_entries_total", &[("phase", phase)]),
            3,
            "phase {phase:?} entry count"
        );
    }

    // The dead rank earned matrix rows in the clean step, then froze:
    // no recovery-phase traffic may carry src=2.
    let matrix = "beatnik_comm_matrix_bytes_total";
    assert!(family_sum(&snap, matrix, &[("src", "2"), ("phase", "step")]) > 0);
    assert_eq!(
        family_sum(
            &snap,
            "beatnik_comm_matrix_messages_total",
            &[("src", "2"), ("phase", "recovery")]
        ),
        0,
        "dead rank must not appear in recovery-phase matrix rows"
    );
    for survivor in ["0", "1", "3"] {
        assert!(
            family_sum(&snap, matrix, &[("src", survivor), ("phase", "recovery")]) > 0,
            "survivor {survivor} must have recovery-phase matrix bytes"
        );
    }

    // The snapshot's matrix agrees with the RankTrace counters exactly:
    // same total as the post-join phased matrix and the classic P×P
    // byte matrix.
    let snap_total = family_sum(&snap, matrix, &[]);
    let phased_total: u64 = report.trace.phased_matrix().iter().map(|c| c.bytes).sum();
    let classic_total: u64 = report
        .trace
        .peer_matrix()
        .iter()
        .flat_map(|row| row.iter())
        .sum();
    assert_eq!(snap_total, phased_total);
    assert_eq!(snap_total, classic_total);
}
