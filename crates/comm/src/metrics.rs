//! The world-scope metrics plane.
//!
//! One [`MetricsPlane`] is installed per [`crate::World`] (into the
//! shared [`crate::registry::Registry`]), tying together everything
//! that publishes metrics:
//!
//! * the shared [`MetricsRegistry`] every [`RankTrace`] registers its
//!   atomic counters into,
//! * the per-rank [`SpanRecorder`]s (dropped-span counts, always-on
//!   phase-entry counts),
//! * the per-rank [`BufferPool`]s (in-flight / free / peak envelopes),
//! * and, at snapshot time, the world registry itself (mailbox
//!   posted-receive depth, failure ledger, revoke epoch).
//!
//! The hot paths never see the plane: ranks write through the atomic
//! handles `RankTrace` obtained at registration. The plane only *reads*
//! — [`MetricsPlane::snapshot`] refreshes the pull-style gauges, copies
//! the registry, and synthesizes the families that live outside atomic
//! cells: per-phase entry counters and the per-phase P×P communication
//! matrix with its imbalance summary.

use crate::pool::BufferPool;
use crate::registry::{Registry, WORLD_COMM_ID};
use crate::trace::{MatrixImbalance, RankTrace};
use beatnik_telemetry::metrics::{
    Gauge, MetricFamily, MetricKind, MetricSample, MetricValue, MetricsRegistry, MetricsSnapshot,
};
use beatnik_telemetry::{algos, SpanRecorder};
use std::sync::Arc;

/// World-scope view over every metrics publisher (see module docs).
pub struct MetricsPlane {
    registry: Arc<MetricsRegistry>,
    traces: Vec<Arc<RankTrace>>,
    recorders: Vec<Arc<SpanRecorder>>,
    pools: Vec<Arc<BufferPool>>,
    // Pull-style gauges, refreshed on every snapshot.
    dropped: Vec<Gauge>,
    pool_in_flight: Vec<Gauge>,
    pool_free: Vec<Gauge>,
    posted: Vec<Gauge>,
    rank_failed: Vec<Gauge>,
    ranks_failed: Gauge,
    revoke_epoch: Gauge,
}

impl MetricsPlane {
    /// Build the plane over a world's publishers, registering its
    /// pull-style gauges into `registry`. All vectors are indexed by
    /// world rank and must have equal length.
    pub fn new(
        registry: Arc<MetricsRegistry>,
        traces: Vec<Arc<RankTrace>>,
        recorders: Vec<Arc<SpanRecorder>>,
        pools: Vec<Arc<BufferPool>>,
    ) -> Self {
        let n = traces.len();
        assert_eq!(recorders.len(), n, "one recorder per rank");
        assert_eq!(pools.len(), n, "one pool per rank");
        let mut dropped = Vec::with_capacity(n);
        let mut pool_in_flight = Vec::with_capacity(n);
        let mut pool_free = Vec::with_capacity(n);
        let mut posted = Vec::with_capacity(n);
        let mut rank_failed = Vec::with_capacity(n);
        for rank in 0..n {
            let r = rank.to_string();
            let labels: &[(&str, &str)] = &[("rank", &r)];
            dropped.push(registry.gauge(
                "beatnik_telemetry_dropped_spans",
                "Spans evicted from the rank's ring buffer (drop-oldest)",
                labels,
            ));
            pool_in_flight.push(registry.gauge(
                "beatnik_pool_in_flight",
                "Send-buffer envelopes currently checked out of the pool",
                labels,
            ));
            pool_free.push(registry.gauge(
                "beatnik_pool_free",
                "Send-buffer envelopes parked on the pool free list",
                labels,
            ));
            posted.push(registry.gauge(
                "beatnik_mailbox_posted_receives",
                "Posted-receive registry depth of the rank's world mailbox",
                labels,
            ));
            rank_failed.push(registry.gauge(
                "beatnik_rank_failed",
                "1 while the rank is marked dead in the failure ledger",
                labels,
            ));
        }
        let ranks_failed = registry.gauge(
            "beatnik_ranks_failed",
            "Number of world ranks marked dead",
            &[],
        );
        let revoke_epoch = registry.gauge(
            "beatnik_revoke_epoch",
            "Number of communicator revocations issued in this world",
            &[],
        );
        MetricsPlane {
            registry,
            traces,
            recorders,
            pools,
            dropped,
            pool_in_flight,
            pool_free,
            posted,
            rank_failed,
            ranks_failed,
            revoke_epoch,
        }
    }

    /// Number of world ranks the plane observes.
    pub fn num_ranks(&self) -> usize {
        self.traces.len()
    }

    /// The shared registry the plane snapshots.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Refresh every pull-style gauge from its source of truth.
    fn refresh(&self, world: &Registry) {
        for rank in 0..self.num_ranks() {
            self.dropped[rank].set(self.recorders[rank].dropped_spans());
            let stats = self.pools[rank].stats();
            self.pool_in_flight[rank].set(stats.in_flight);
            self.pool_free[rank].set(stats.free as u64);
            self.traces[rank].set_pool_peak_in_flight(stats.peak_in_flight);
            self.posted[rank].set(world.mailbox(WORLD_COMM_ID, rank).posted_len() as u64);
        }
        let failed = world.failed_snapshot();
        for (rank, g) in self.rank_failed.iter().enumerate() {
            g.set(u64::from(failed.contains(&rank)));
        }
        self.ranks_failed.set(failed.len() as u64);
        self.revoke_epoch.set(world.revoke_epoch());
    }

    /// Refresh the pull gauges, copy the registry, and append the
    /// synthesized families (phase-entry counters, the per-phase comm
    /// matrix, and its imbalance summary). Safe to call mid-run from
    /// any thread: everything read is atomic or internally locked.
    pub fn snapshot(&self, world: &Registry) -> MetricsSnapshot {
        self.refresh(world);
        let mut snap = self.registry.snapshot();
        snap.push_family(self.phase_family());
        let (messages, bytes) = self.matrix_families();
        snap.push_family(messages);
        snap.push_family(bytes);
        for fam in self.imbalance_families() {
            snap.push_family(fam);
        }
        snap
    }

    /// `beatnik_phase_entries_total{rank,phase}` from the always-on
    /// phase counters of every recorder.
    fn phase_family(&self) -> MetricFamily {
        let mut samples = Vec::new();
        for (rank, rec) in self.recorders.iter().enumerate() {
            let r = rank.to_string();
            for (phase, count) in rec.phase_counts() {
                samples.push(MetricSample {
                    labels: vec![
                        ("rank".to_string(), r.clone()),
                        ("phase".to_string(), phase.to_string()),
                    ],
                    value: MetricValue::Counter(count),
                });
            }
        }
        MetricFamily {
            name: "beatnik_phase_entries_total".to_string(),
            help: "Times each solver phase was entered, per rank".to_string(),
            kind: MetricKind::Counter,
            samples,
        }
    }

    /// The per-phase P×P communication matrix as two counter families:
    /// `beatnik_comm_matrix_messages_total` and
    /// `beatnik_comm_matrix_bytes_total`, labelled
    /// `{src,dst,phase,algo}`.
    fn matrix_families(&self) -> (MetricFamily, MetricFamily) {
        let mut messages = Vec::new();
        let mut bytes = Vec::new();
        for (src, trace) in self.traces.iter().enumerate() {
            let s = src.to_string();
            for cell in trace.matrix_cells() {
                let labels = vec![
                    ("src".to_string(), s.clone()),
                    ("dst".to_string(), cell.dst.to_string()),
                    ("phase".to_string(), cell.phase.to_string()),
                    (
                        "algo".to_string(),
                        algos::name(cell.algo).unwrap_or("").to_string(),
                    ),
                ];
                messages.push(MetricSample {
                    labels: labels.clone(),
                    value: MetricValue::Counter(cell.messages),
                });
                bytes.push(MetricSample {
                    labels,
                    value: MetricValue::Counter(cell.bytes),
                });
            }
        }
        (
            MetricFamily {
                name: "beatnik_comm_matrix_messages_total".to_string(),
                help: "Point-to-point messages per (src,dst,phase,algo)".to_string(),
                kind: MetricKind::Counter,
                samples: messages,
            },
            MetricFamily {
                name: "beatnik_comm_matrix_bytes_total".to_string(),
                help: "Point-to-point payload bytes per (src,dst,phase,algo)".to_string(),
                kind: MetricKind::Counter,
                samples: bytes,
            },
        )
    }

    /// Row-imbalance summary of the matrix (per-source total bytes):
    /// max, mean, max/mean and Gini, the latter two scaled by 1000
    /// because the exposition is integer-valued.
    fn imbalance_families(&self) -> Vec<MetricFamily> {
        let rows: Vec<u64> = self
            .traces
            .iter()
            .map(|t| t.peer_bytes().values().sum())
            .collect();
        let imb = MatrixImbalance::from_rank_bytes(&rows);
        let gauge = |name: &str, help: &str, value: u64| MetricFamily {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Gauge,
            samples: vec![MetricSample {
                labels: Vec::new(),
                value: MetricValue::Gauge(value),
            }],
        };
        vec![
            gauge(
                "beatnik_comm_matrix_row_bytes_max",
                "Largest per-source total of matrix bytes",
                imb.max_bytes,
            ),
            gauge(
                "beatnik_comm_matrix_row_bytes_mean",
                "Mean per-source total of matrix bytes",
                imb.mean_bytes as u64,
            ),
            gauge(
                "beatnik_comm_matrix_max_over_mean_milli",
                "Max/mean row imbalance of the comm matrix, x1000",
                (imb.max_over_mean * 1000.0).round() as u64,
            ),
            gauge(
                "beatnik_comm_matrix_gini_milli",
                "Gini coefficient of per-source matrix bytes, x1000",
                (imb.gini * 1000.0).round() as u64,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(n: usize) -> (MetricsPlane, Arc<Registry>) {
        let reg = Arc::new(MetricsRegistry::new());
        let traces: Vec<Arc<RankTrace>> = (0..n)
            .map(|r| Arc::new(RankTrace::with_registry(&reg, r)))
            .collect();
        let recorders: Vec<Arc<SpanRecorder>> =
            (0..n).map(|_| Arc::new(SpanRecorder::disabled())).collect();
        let pools: Vec<Arc<BufferPool>> = (0..n).map(|_| Arc::new(BufferPool::new())).collect();
        let world = Arc::new(Registry::new());
        (MetricsPlane::new(reg, traces, recorders, pools), world)
    }

    #[test]
    fn snapshot_carries_gauges_and_synthesized_families() {
        let (plane, world) = plane(2);
        plane.traces[0].record_peer_ctx(1, 300, "halo", algos::NONE);
        plane.recorders[1].phase("halo");
        world.mark_failed(1);
        world.revoke(0);

        let snap = plane.snapshot(&world);
        assert_eq!(snap.value("beatnik_rank_failed", &[("rank", "1")]), Some(1));
        assert_eq!(snap.value("beatnik_rank_failed", &[("rank", "0")]), Some(0));
        assert_eq!(snap.value("beatnik_ranks_failed", &[]), Some(1));
        assert_eq!(snap.value("beatnik_revoke_epoch", &[]), Some(1));
        assert_eq!(
            snap.value("beatnik_phase_entries_total", &[("rank", "1"), ("phase", "halo")]),
            Some(1)
        );
        assert_eq!(
            snap.value(
                "beatnik_comm_matrix_bytes_total",
                &[("src", "0"), ("dst", "1"), ("phase", "halo")]
            ),
            Some(300)
        );
        assert_eq!(
            snap.value("beatnik_comm_matrix_messages_total", &[("src", "0"), ("dst", "1")]),
            Some(1)
        );
        // Rows are [300, 0]: max 300, mean 150, ratio 2.0, Gini 0.5.
        assert_eq!(snap.value("beatnik_comm_matrix_row_bytes_max", &[]), Some(300));
        assert_eq!(snap.value("beatnik_comm_matrix_row_bytes_mean", &[]), Some(150));
        assert_eq!(
            snap.value("beatnik_comm_matrix_max_over_mean_milli", &[]),
            Some(2000)
        );
        assert_eq!(snap.value("beatnik_comm_matrix_gini_milli", &[]), Some(500));
    }

    #[test]
    fn pool_and_mailbox_depth_are_pulled_at_snapshot() {
        let (plane, world) = plane(1);
        let (buf, _) = plane.pools[0].acquire(16);
        // One consumer parked in the posted-receive registry.
        let mb = world.mailbox(WORLD_COMM_ID, 0);
        let _slot = mb.post_recv(0, 7);
        let snap = plane.snapshot(&world);
        assert_eq!(snap.value("beatnik_pool_in_flight", &[("rank", "0")]), Some(1));
        assert_eq!(
            snap.value("beatnik_mailbox_posted_receives", &[("rank", "0")]),
            Some(1)
        );
        drop(buf);
        let snap = plane.snapshot(&world);
        assert_eq!(snap.value("beatnik_pool_in_flight", &[("rank", "0")]), Some(0));
        assert_eq!(snap.value("beatnik_pool_free", &[("rank", "0")]), Some(1));
    }
}
