//! Load-balanced cutoff solver: the paper's §6 "load balancing
//! communication steps" future-work item, implemented.
//!
//! Identical to [`crate::br::CutoffBrSolver`] except that the spatial
//! decomposition is rebuilt every evaluation by recursive coordinate
//! bisection over the *current* point positions, so per-rank point counts
//! stay flat even as the interface rolls up. The rebuild itself is a new
//! communication step (an allgather of positions) — exactly the extra
//! pattern the paper wants a benchmark to expose.

use super::kernel::br_pair_velocity;
use super::{BrPoint, BrSolver};
use beatnik_comm::Communicator;
use beatnik_mesh::migrate::{
    halo_exchange_points, migrate_results_home, migrate_to_spatial,
};
use beatnik_mesh::{PointResult, RcbDecomposition, SurfacePoint};
use beatnik_spatial::neighbors::{Backend, NeighborList};
use crate::par::prelude::*;

/// Cutoff solver over a per-evaluation RCB decomposition.
pub struct BalancedCutoffBrSolver {
    /// x/y domain corners the decomposition tiles.
    pub lo: [f64; 2],
    /// Upper domain corner.
    pub hi: [f64; 2],
    cutoff: f64,
    backend: Backend,
}

impl BalancedCutoffBrSolver {
    /// Create a solver over the x/y domain `[lo, hi]` with a cutoff
    /// radius.
    pub fn new(lo: [f64; 2], hi: [f64; 2], cutoff: f64, backend: Backend) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive");
        BalancedCutoffBrSolver {
            lo,
            hi,
            cutoff,
            backend,
        }
    }

    /// The cutoff radius.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Build the decomposition for the current global point set
    /// (collective; exposed so diagnostics can measure balance).
    pub fn decompose(&self, comm: &Communicator, points: &[BrPoint]) -> RcbDecomposition {
        let positions: Vec<[f64; 3]> = points.iter().map(|p| p.pos).collect();
        RcbDecomposition::build_distributed(comm, &positions, comm.size(), self.lo, self.hi)
    }
}

impl BrSolver for BalancedCutoffBrSolver {
    fn velocities(
        &self,
        comm: &Communicator,
        points: &[BrPoint],
        epsilon: f64,
    ) -> Vec<[f64; 3]> {
        let eps2 = epsilon * epsilon;
        let me = comm.rank() as u32;

        // Load-balancing step: rebuild the decomposition from current
        // positions (allgather).
        let decomp = self.decompose(comm, points);

        // Steps 1-5 of the cutoff cycle, over the balanced regions.
        let outgoing: Vec<SurfacePoint> = points
            .iter()
            .enumerate()
            .map(|(i, b)| SurfacePoint {
                pos: b.pos,
                payload: b.strength,
                home_rank: me,
                home_idx: i as u32,
            })
            .collect();
        let owned = migrate_to_spatial(comm, &decomp, outgoing);
        let ghosts = halo_exchange_points(comm, &decomp, &owned, self.cutoff);

        let targets: Vec<[f64; 3]> = owned.iter().map(|p| p.pos).collect();
        let mut sources = targets.clone();
        sources.extend(ghosts.iter().map(|p| p.pos));
        let mut strengths: Vec<[f64; 3]> = owned.iter().map(|p| p.payload).collect();
        strengths.extend(ghosts.iter().map(|p| p.payload));
        let nlist = NeighborList::build(&targets, &sources, self.cutoff, self.backend);

        let velocities: Vec<[f64; 3]> = (0..targets.len())
            .into_par_iter()
            .map(|t| {
                let mut acc = [0.0f64; 3];
                for &s in nlist.neighbors(t) {
                    let u = br_pair_velocity(
                        targets[t],
                        sources[s as usize],
                        strengths[s as usize],
                        eps2,
                    );
                    acc[0] += u[0];
                    acc[1] += u[1];
                    acc[2] += u[2];
                }
                acc
            })
            .collect();

        let results: Vec<(usize, PointResult)> = owned
            .iter()
            .zip(&velocities)
            .map(|(pt, v)| {
                (
                    pt.home_rank as usize,
                    PointResult {
                        home_idx: pt.home_idx,
                        value: *v,
                    },
                )
            })
            .collect();
        migrate_results_home(comm, results, points.len())
    }

    fn name(&self) -> &'static str {
        "balanced-cutoff"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::br::cutoff::CutoffBrSolver;
    use crate::br::exact::ExactBrSolver;
    use beatnik_comm::{dims_create, World};
    use beatnik_mesh::{PointDecomposition, SpatialMesh};

    /// Rollup-like cloud: most points in a tight cluster.
    fn clustered_points(n: usize) -> Vec<BrPoint> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                let pos = if i % 4 != 0 {
                    [
                        0.4 + (t * 0.173).fract() * 0.5,
                        -0.6 + (t * 0.311).fract() * 0.5,
                        (t * 0.07).fract() * 0.2,
                    ]
                } else {
                    [
                        -2.9 + (t * 0.737).fract() * 5.8,
                        -2.9 + (t * 0.419).fract() * 5.8,
                        0.0,
                    ]
                };
                BrPoint {
                    pos,
                    strength: [(t * 0.29).fract() - 0.5, (t * 0.53).fract() - 0.5, 0.1],
                }
            })
            .collect()
    }

    #[test]
    fn huge_cutoff_matches_exact_solver() {
        let n = 48;
        for p in [1usize, 4] {
            World::builder(p).run(move |comm| {
                let all = clustered_points(n);
                let chunk = n / comm.size();
                let lo = comm.rank() * chunk;
                let mine = &all[lo..lo + chunk];
                let exact = ExactBrSolver.velocities(&comm, mine, 0.1);
                let solver = BalancedCutoffBrSolver::new(
                    [-3.0, -3.0],
                    [3.0, 3.0],
                    20.0,
                    Backend::Grid,
                );
                let got = solver.velocities(&comm, mine, 0.1);
                for (e, g) in exact.iter().zip(&got) {
                    for k in 0..3 {
                        assert!((e[k] - g[k]).abs() < 1e-11, "p={p}");
                    }
                }
            });
        }
    }

    #[test]
    fn matches_uniform_cutoff_solver_at_same_cutoff() {
        // Same pairs (cutoff criterion is geometric), different owners:
        // results must agree to FP noise despite different decompositions.
        World::builder(4).run(|comm| {
            let all = clustered_points(80);
            let mine = &all[comm.rank() * 20..comm.rank() * 20 + 20];
            let uniform = CutoffBrSolver::new(
                SpatialMesh::new([-3.0, -3.0, -1.0], [3.0, 3.0, 1.0], dims_create(4)),
                1.2,
                Backend::Grid,
            )
            .velocities(&comm, mine, 0.1);
            let balanced =
                BalancedCutoffBrSolver::new([-3.0, -3.0], [3.0, 3.0], 1.2, Backend::Grid)
                    .velocities(&comm, mine, 0.1);
            for (u, b) in uniform.iter().zip(&balanced) {
                for k in 0..3 {
                    assert!((u[k] - b[k]).abs() < 1e-12, "{u:?} vs {b:?}");
                }
            }
        });
    }

    #[test]
    fn balances_clustered_load_where_uniform_grid_does_not() {
        World::builder(4).run(|comm| {
            let all = clustered_points(400);
            let mine = &all[comm.rank() * 100..comm.rank() * 100 + 100];
            let solver =
                BalancedCutoffBrSolver::new([-3.0, -3.0], [3.0, 3.0], 0.5, Backend::Grid);
            let decomp = solver.decompose(&comm, mine);
            // Count global ownership per region.
            let mut counts = vec![0.0f64; 4];
            for p in mine {
                counts[decomp.rank_of_point(p.pos)] += 1.0;
            }
            let counts = comm.allreduce_vec(counts, &beatnik_comm::SumOp);
            let max = counts.iter().cloned().fold(0.0f64, f64::max);
            assert!(max / 100.0 < 1.3, "rcb counts {counts:?}");

            // The uniform grid concentrates the cluster on one rank.
            let uniform =
                SpatialMesh::new([-3.0, -3.0, -1.0], [3.0, 3.0, 1.0], dims_create(4));
            let mut ucounts = vec![0.0f64; 4];
            for p in mine {
                ucounts[PointDecomposition::rank_of_point(&uniform, p.pos)] += 1.0;
            }
            let ucounts = comm.allreduce_vec(ucounts, &beatnik_comm::SumOp);
            let umax = ucounts.iter().cloned().fold(0.0f64, f64::max);
            assert!(umax / 100.0 > 2.0, "uniform counts {ucounts:?}");
        });
    }
}
