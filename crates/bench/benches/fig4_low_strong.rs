//! Figure 4: low-order (FFT) solver strong scaling of a fixed 4864² mesh.
//!
//! Paper result: 3.5× speedup moving from 4 to 64 GPUs (21% parallel
//! efficiency), then performance "turns over and begins to decrease"
//! as messages shrink and per-round all-to-all latency dominates.

use beatnik_bench::fig4_series;
use beatnik_model::{efficiency, format_table, Machine};

fn main() {
    let series = fig4_series(&Machine::lassen());
    println!("=== Figure 4: Low-Order Strong Scaling (Lassen model, 4864^2 total) ===\n");
    print!("{}", format_table(std::slice::from_ref(&series)));

    let t4 = series.time_at(4).unwrap();
    let t64 = series.time_at(64).unwrap();
    println!("\nspeedup 4 -> 64 GPUs: {:.2}x (paper: 3.5x)", t4 / t64);
    println!(
        "parallel efficiency 4 -> 64: {:.1}% (paper: 21%)",
        100.0 * efficiency(4, t4, 64, t64)
    );
    println!(
        "turnover (minimum runtime) at {} GPUs (paper: performance decreases past 64)",
        series.best_ranks().unwrap()
    );
}
