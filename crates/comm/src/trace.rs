//! Communication instrumentation.
//!
//! Beatnik exists to *measure communication*, so every operation the
//! runtime performs is counted here: one [`RankTrace`] per world rank,
//! shared by all communicators that rank derives (splits, Cartesian row/
//! column subcommunicators), aggregated into a [`WorldTrace`] when the
//! world finishes. The analytic performance model in `beatnik-model` maps
//! these counts onto machine parameters to predict time at scale.

use crate::sync::Mutex;
use beatnik_telemetry::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use beatnik_telemetry::{algos, sizebins};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Per-message size histogram over the shared power-of-two buckets of
/// [`beatnik_telemetry::sizebins`]: `hist[i]` counts messages whose
/// payload falls in bucket `i`. Telemetry skew reports and the `model`
/// crate's network predictions use the same buckets, so a measured
/// histogram feeds the analytic model directly.
pub type ByteHistogram = [u64; sizebins::NUM_BUCKETS];

/// The kinds of operations the runtime distinguishes in traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Point-to-point send.
    Send,
    /// Point-to-point receive.
    Recv,
    /// Barrier participation.
    Barrier,
    /// Broadcast participation.
    Broadcast,
    /// Reduce-to-root participation.
    Reduce,
    /// Allreduce participation.
    Allreduce,
    /// Scan / exscan participation (prefix reductions).
    Scan,
    /// Gather participation.
    Gather,
    /// Allgather participation.
    Allgather,
    /// Scatter participation.
    Scatter,
    /// All-to-all participation (regular counts).
    Alltoall,
    /// All-to-all participation (variable counts).
    Alltoallv,
}

impl OpKind {
    /// Every op kind, in trace order (`index` order).
    pub const ALL: [OpKind; 12] = [
        OpKind::Send,
        OpKind::Recv,
        OpKind::Barrier,
        OpKind::Broadcast,
        OpKind::Reduce,
        OpKind::Allreduce,
        OpKind::Scan,
        OpKind::Gather,
        OpKind::Allgather,
        OpKind::Scatter,
        OpKind::Alltoall,
        OpKind::Alltoallv,
    ];

    /// Dense index of this kind into [`OpKind::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Lowercase label used for the `op` metric label.
    pub fn metric_label(self) -> &'static str {
        match self {
            OpKind::Send => "send",
            OpKind::Recv => "recv",
            OpKind::Barrier => "barrier",
            OpKind::Broadcast => "broadcast",
            OpKind::Reduce => "reduce",
            OpKind::Allreduce => "allreduce",
            OpKind::Scan => "scan",
            OpKind::Gather => "gather",
            OpKind::Allgather => "allgather",
            OpKind::Scatter => "scatter",
            OpKind::Alltoall => "alltoall",
            OpKind::Alltoallv => "alltoallv",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Counters for one operation kind on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Number of calls to the operation.
    pub calls: u64,
    /// Number of point-to-point messages the operation put on the "wire".
    pub messages: u64,
    /// Total payload bytes sent by this rank within the operation.
    pub bytes: u64,
}

impl OpStats {
    fn merge(&mut self, other: &OpStats) {
        self.calls += other.calls;
        self.messages += other.messages;
        self.bytes += other.bytes;
    }
}

/// One (phase, algorithm, destination) cell of a rank's communication
/// matrix row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixCell {
    /// Innermost solver phase open when the traffic was sent (`""` for
    /// traffic outside any phase).
    pub phase: &'static str,
    /// Collective-algorithm code in force ([`algos::NONE`] outside any
    /// all-to-all engine).
    pub algo: u8,
    /// Destination *world* rank.
    pub dst: usize,
    /// Point-to-point messages sent to `dst` in this (phase, algo).
    pub messages: u64,
    /// Payload bytes sent to `dst` in this (phase, algo).
    pub bytes: u64,
}

/// Registry-backed atomic cells for one op kind: the per-op byte
/// accounting of this trace *is* the metrics registry's cells, so the
/// summary tables and the OpenMetrics exposition can never drift.
#[derive(Debug)]
struct OpCells {
    calls: Counter,
    messages: Counter,
    bytes: Counter,
    sizes: Histogram,
}

/// Matrix cells keyed by `(phase, algo, dst)`, holding
/// `(messages, bytes)`.
type PhasedCells = BTreeMap<(&'static str, u8, usize), (u64, u64)>;

/// All counters for one rank, shared across its derived communicators.
///
/// Since the metrics plane landed, the per-op counters and size
/// histograms are handles into a [`MetricsRegistry`] (lock-free atomic
/// cells registered under `beatnik_comm_*{rank,op}`); the old ad-hoc
/// mutex-map accounting is gone and every read path — summaries, the
/// analytic model, OpenMetrics — observes the same cells.
#[derive(Debug)]
pub struct RankTrace {
    /// Registry-backed per-op cells, indexed by [`OpKind::index`].
    ops: Vec<OpCells>,
    /// Per-(phase, algo, dst) communication-matrix row. `peer_bytes` is
    /// derived from this by summing over phases, so the per-phase
    /// matrix and the classic byte matrix agree *exactly* by
    /// construction.
    phased: Mutex<PhasedCells>,
    /// Send-buffer pool acquisitions served from the free list.
    pool_hits: Counter,
    /// Send-buffer pool acquisitions that had to allocate.
    pool_misses: Counter,
    /// Nonblocking requests currently posted but not yet retired.
    outstanding: Gauge,
    /// High-water mark of `outstanding` — how deeply the program pipelines.
    peak_outstanding: Gauge,
    /// Payload bytes physically copied by the transport on this rank's
    /// sends (eager/pooled sends count the payload twice — once into the
    /// envelope, once out at the receiver; rendezvous sends count it
    /// once; ownership-transfer sends move the allocation and count
    /// zero, on every backend — wire serialization is transport-internal
    /// and never charged here, so the accounting is backend-uniform).
    copied: Counter,
    /// Payload bytes moved by ownership transfer (owned-`Vec` and shared
    /// `Arc` sends): the zero-copy traffic. Disjoint from `copied` by
    /// construction — a send charges one or the other, never both.
    handoff: Counter,
    /// Peak simultaneously checked-out send-pool buffers, mirrored from
    /// [`crate::BufferPool`] when the world joins.
    pool_peak_in_flight: Gauge,
}

impl Default for RankTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl RankTrace {
    /// Fresh, zeroed trace backed by a private registry (rank label 0).
    /// Worlds use [`with_registry`](RankTrace::with_registry) so every
    /// rank publishes into one shared registry.
    pub fn new() -> Self {
        Self::with_registry(&MetricsRegistry::new(), 0)
    }

    /// A trace whose counters are registered in `reg` under
    /// `rank="<rank>"` labels.
    pub fn with_registry(reg: &MetricsRegistry, rank: usize) -> Self {
        let r = rank.to_string();
        let ops = OpKind::ALL
            .iter()
            .map(|k| {
                let labels: [(&str, &str); 2] = [("rank", &r), ("op", k.metric_label())];
                OpCells {
                    calls: reg.counter(
                        "beatnik_comm_calls_total",
                        "communication operation calls",
                        &labels,
                    ),
                    messages: reg.counter(
                        "beatnik_comm_messages_total",
                        "point-to-point messages put on the wire",
                        &labels,
                    ),
                    bytes: reg.counter(
                        "beatnik_comm_bytes_total",
                        "payload bytes sent",
                        &labels,
                    ),
                    sizes: reg.histogram(
                        "beatnik_comm_message_size_bytes",
                        "per-message payload size",
                        &labels,
                    ),
                }
            })
            .collect();
        let rl: [(&str, &str); 1] = [("rank", &r)];
        RankTrace {
            ops,
            phased: Mutex::new(BTreeMap::new()),
            pool_hits: reg.counter(
                "beatnik_pool_hits_total",
                "send-pool acquisitions served from the free list",
                &rl,
            ),
            pool_misses: reg.counter(
                "beatnik_pool_misses_total",
                "send-pool acquisitions that allocated",
                &rl,
            ),
            outstanding: reg.gauge(
                "beatnik_requests_outstanding",
                "nonblocking requests posted but not retired",
                &rl,
            ),
            peak_outstanding: reg.gauge(
                "beatnik_requests_outstanding_peak",
                "high-water mark of outstanding nonblocking requests",
                &rl,
            ),
            copied: reg.counter(
                "beatnik_transport_copied_bytes_total",
                "payload bytes physically copied by the transport",
                &rl,
            ),
            handoff: reg.counter(
                "beatnik_transport_handoff_bytes_total",
                "payload bytes moved by zero-copy ownership transfer",
                &rl,
            ),
            pool_peak_in_flight: reg.gauge(
                "beatnik_pool_peak_in_flight",
                "peak simultaneously checked-out send-pool buffers",
                &rl,
            ),
        }
    }

    /// Record one *call* of `kind` that sent `messages` messages totalling
    /// `bytes` payload bytes from this rank.
    pub fn record(&self, kind: OpKind, messages: u64, bytes: u64) {
        let c = &self.ops[kind.index()];
        c.calls.inc();
        c.messages.add(messages);
        c.bytes.add(bytes);
    }

    /// Add messages/bytes to an already-counted call (used by collectives
    /// built from several point-to-point rounds).
    pub fn add_traffic(&self, kind: OpKind, messages: u64, bytes: u64) {
        let c = &self.ops[kind.index()];
        c.messages.add(messages);
        c.bytes.add(bytes);
    }

    /// Record one message of `bytes` payload bytes in `kind`'s size
    /// histogram. Called once per point-to-point message the runtime
    /// puts on the "wire" (user sends and collective-internal sends).
    pub fn record_message(&self, kind: OpKind, bytes: u64) {
        self.ops[kind.index()].sizes.observe(bytes);
    }

    /// The per-message size histogram for one op kind (zeroed if the op
    /// never sent a message).
    pub fn byte_histogram(&self, kind: OpKind) -> ByteHistogram {
        self.ops[kind.index()].sizes.bucket_counts()
    }

    /// All per-op message-size histograms (ops that never sent are
    /// omitted).
    pub fn byte_histograms(&self) -> BTreeMap<OpKind, ByteHistogram> {
        OpKind::ALL
            .iter()
            .filter(|k| self.ops[k.index()].sizes.count() > 0)
            .map(|&k| (k, self.byte_histogram(k)))
            .collect()
    }

    /// Record bytes sent to a world peer (communication-matrix entry),
    /// attributed to no phase or algorithm. The send paths use
    /// [`record_peer_ctx`](RankTrace::record_peer_ctx).
    pub fn record_peer(&self, peer: usize, bytes: u64) {
        self.record_peer_ctx(peer, bytes, "", algos::NONE);
    }

    /// Record one message of `bytes` to world rank `peer`, attributed to
    /// the given solver phase and collective-algorithm code.
    pub fn record_peer_ctx(&self, peer: usize, bytes: u64, phase: &'static str, algo: u8) {
        let mut m = self.phased.lock();
        let e = m.entry((phase, algo, peer)).or_insert((0, 0));
        e.0 += 1;
        e.1 += bytes;
    }

    /// Bytes sent per world peer (summed over phases and algorithms).
    pub fn peer_bytes(&self) -> BTreeMap<usize, u64> {
        let mut out: BTreeMap<usize, u64> = BTreeMap::new();
        for (&(_, _, dst), &(_, bytes)) in self.phased.lock().iter() {
            *out.entry(dst).or_default() += bytes;
        }
        out
    }

    /// The full per-(phase, algo, dst) communication-matrix row.
    pub fn matrix_cells(&self) -> Vec<MatrixCell> {
        self.phased
            .lock()
            .iter()
            .map(|(&(phase, algo, dst), &(messages, bytes))| MatrixCell {
                phase,
                algo,
                dst,
                messages,
                bytes,
            })
            .collect()
    }

    /// Snapshot the per-op counters (ops never recorded are omitted).
    pub fn snapshot(&self) -> BTreeMap<OpKind, OpStats> {
        OpKind::ALL
            .iter()
            .map(|&k| (k, self.get(k)))
            .filter(|(_, s)| *s != OpStats::default())
            .collect()
    }

    /// Stats for one op kind (zeroed if never recorded).
    pub fn get(&self, kind: OpKind) -> OpStats {
        let c = &self.ops[kind.index()];
        OpStats {
            calls: c.calls.get(),
            messages: c.messages.get(),
            bytes: c.bytes.get(),
        }
    }

    /// Total bytes sent by this rank across all op kinds.
    pub fn total_bytes(&self) -> u64 {
        self.ops.iter().map(|c| c.bytes.get()).sum()
    }

    /// Total messages sent by this rank across all op kinds.
    pub fn total_messages(&self) -> u64 {
        self.ops.iter().map(|c| c.messages.get()).sum()
    }

    /// Record one buffer-pool acquisition on the nonblocking send path.
    pub fn record_pool(&self, hit: bool) {
        if hit {
            self.pool_hits.inc();
        } else {
            self.pool_misses.inc();
        }
    }

    /// Record that a nonblocking request (`isend`/`irecv`) was posted.
    pub fn request_posted(&self) {
        let now = self.outstanding.add(1);
        self.peak_outstanding.max_with(now);
    }

    /// Record that a nonblocking request completed (wait/test success or
    /// handle drop).
    pub fn request_completed(&self) {
        self.outstanding.sub(1);
    }

    /// Buffer-pool acquisitions served without allocating.
    pub fn pool_hits(&self) -> u64 {
        self.pool_hits.get()
    }

    /// Buffer-pool acquisitions that allocated a fresh buffer.
    pub fn pool_misses(&self) -> u64 {
        self.pool_misses.get()
    }

    /// Fraction of pool acquisitions served from the free list, in
    /// `[0, 1]`; zero when the nonblocking path was never used.
    pub fn pool_hit_rate(&self) -> f64 {
        let h = self.pool_hits();
        let m = self.pool_misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Record that the transport physically copied `bytes` payload bytes
    /// while sending (see the `copied` field for the accounting rules).
    pub fn record_copied(&self, bytes: u64) {
        self.copied.add(bytes);
    }

    /// Payload bytes physically copied by this rank's sends.
    pub fn copied_bytes(&self) -> u64 {
        self.copied.get()
    }

    /// Record that `bytes` payload bytes moved by ownership transfer —
    /// the allocation changed hands without a copy.
    pub fn record_handoff(&self, bytes: u64) {
        self.handoff.add(bytes);
    }

    /// Payload bytes this rank's sends moved by zero-copy handoff.
    pub fn handoff_bytes(&self) -> u64 {
        self.handoff.get()
    }

    /// Mirror the send pool's peak-in-flight gauge into the trace (the
    /// world does this after joining so summaries can report it).
    pub fn set_pool_peak_in_flight(&self, peak: u64) {
        self.pool_peak_in_flight.set(peak);
    }

    /// Peak simultaneously checked-out send-pool buffers on this rank.
    pub fn pool_peak_in_flight(&self) -> u64 {
        self.pool_peak_in_flight.get()
    }

    /// Nonblocking requests currently posted and not yet retired.
    pub fn outstanding_requests(&self) -> u64 {
        self.outstanding.get()
    }

    /// High-water mark of simultaneously outstanding requests.
    pub fn peak_outstanding(&self) -> u64 {
        self.peak_outstanding.get()
    }

    /// Reset every counter to zero (benchmark harnesses call this between
    /// warmup and measured phases).
    pub fn reset(&self) {
        for c in &self.ops {
            c.calls.reset();
            c.messages.reset();
            c.bytes.reset();
            c.sizes.reset();
        }
        self.phased.lock().clear();
        self.pool_hits.reset();
        self.pool_misses.reset();
        self.outstanding.reset();
        self.peak_outstanding.reset();
        self.copied.reset();
        self.handoff.reset();
        self.pool_peak_in_flight.reset();
    }
}

/// Aggregated traces for a completed world run, indexed by world rank.
#[derive(Debug)]
pub struct WorldTrace {
    per_rank: Vec<Arc<RankTrace>>,
}

impl WorldTrace {
    /// Build from the per-rank trace handles the world created.
    pub fn new(per_rank: Vec<Arc<RankTrace>>) -> Self {
        WorldTrace { per_rank }
    }

    /// Number of ranks traced.
    pub fn num_ranks(&self) -> usize {
        self.per_rank.len()
    }

    /// The trace of one rank.
    pub fn rank(&self, r: usize) -> &RankTrace {
        &self.per_rank[r]
    }

    /// Sum of an op's stats over all ranks.
    pub fn total(&self, kind: OpKind) -> OpStats {
        let mut acc = OpStats::default();
        for t in &self.per_rank {
            acc.merge(&t.get(kind));
        }
        acc
    }

    /// Total bytes moved across the whole world.
    pub fn total_bytes(&self) -> u64 {
        self.per_rank.iter().map(|t| t.total_bytes()).sum()
    }

    /// Maximum bytes sent by any single rank — a first-order load-imbalance
    /// indicator for communication volume.
    pub fn max_rank_bytes(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|t| t.total_bytes())
            .max()
            .unwrap_or(0)
    }

    /// World-aggregate buffer-pool hit rate over the nonblocking send
    /// path, in `[0, 1]`; zero when no rank used pooled sends.
    pub fn pool_hit_rate(&self) -> f64 {
        let hits: u64 = self.per_rank.iter().map(|t| t.pool_hits()).sum();
        let misses: u64 = self.per_rank.iter().map(|t| t.pool_misses()).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Deepest request pipeline any rank built (max over ranks of the
    /// per-rank peak of simultaneously outstanding `isend`/`irecv`
    /// requests).
    pub fn peak_outstanding(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|t| t.peak_outstanding())
            .max()
            .unwrap_or(0)
    }

    /// Payload bytes physically copied by sends across the whole world.
    /// Compare against [`total_bytes`](WorldTrace::total_bytes) to see
    /// the copy factor the transport achieved (2× = fully eager/pooled,
    /// 1× = fully rendezvous, 0× = owned-`Vec` moves).
    pub fn copied_bytes(&self) -> u64 {
        self.per_rank.iter().map(|t| t.copied_bytes()).sum()
    }

    /// Payload bytes moved by zero-copy ownership transfer across the
    /// whole world. Together with [`copied_bytes`](WorldTrace::copied_bytes)
    /// this partitions all accounted payload traffic: handoff bytes are
    /// the ones the transport did *not* have to touch.
    pub fn handoff_bytes(&self) -> u64 {
        self.per_rank.iter().map(|t| t.handoff_bytes()).sum()
    }

    /// Largest send-pool peak-in-flight gauge over all ranks.
    pub fn pool_peak_in_flight(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|t| t.pool_peak_in_flight())
            .max()
            .unwrap_or(0)
    }

    /// Sum of one op's per-message size histogram over all ranks.
    pub fn byte_histogram(&self, kind: OpKind) -> ByteHistogram {
        let mut acc = [0u64; sizebins::NUM_BUCKETS];
        for t in &self.per_rank {
            for (i, c) in t.byte_histogram(kind).iter().enumerate() {
                acc[i] += c;
            }
        }
        acc
    }

    /// Render the non-empty per-op message-size histograms as a table
    /// (one row per populated size bucket).
    pub fn histogram_text(&self) -> String {
        use std::fmt::Write as _;
        let mut kinds: BTreeMap<OpKind, ByteHistogram> = BTreeMap::new();
        for t in &self.per_rank {
            for (k, h) in t.byte_histograms() {
                let acc = kinds.entry(k).or_insert([0; sizebins::NUM_BUCKETS]);
                for (i, c) in h.iter().enumerate() {
                    acc[i] += c;
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "message-size histograms (shared model buckets):");
        for (k, h) in kinds {
            if h.iter().all(|&c| c == 0) {
                continue;
            }
            let _ = writeln!(out, "  {k}:");
            for (i, &c) in h.iter().enumerate() {
                if c > 0 {
                    let _ = writeln!(out, "    {:>8} {c:>10}", sizebins::label(i));
                }
            }
        }
        out
    }

    /// The world communication matrix: `matrix[src][dst]` = bytes sent.
    pub fn peer_matrix(&self) -> Vec<Vec<u64>> {
        let n = self.per_rank.len();
        let mut m = vec![vec![0u64; n]; n];
        for (src, t) in self.per_rank.iter().enumerate() {
            for (dst, bytes) in t.peer_bytes() {
                if dst < n {
                    m[src][dst] = bytes;
                }
            }
        }
        m
    }

    /// Render the communication matrix as an aligned table (KiB entries).
    pub fn matrix_text(&self) -> String {
        use std::fmt::Write as _;
        let m = self.peer_matrix();
        let n = m.len();
        let mut out = String::new();
        let _ = writeln!(out, "communication matrix (KiB sent, row=src col=dst):");
        let _ = write!(out, "{:>6}", "");
        for d in 0..n {
            let _ = write!(out, " {d:>8}");
        }
        let _ = writeln!(out);
        for (s, row) in m.iter().enumerate() {
            let _ = write!(out, "{s:>6}");
            for &b in row {
                let _ = write!(out, " {:>8}", b / 1024);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// The full per-phase communication matrix: one entry per
    /// (src, phase, algo, dst) with traffic, sorted by source rank then
    /// phase. Summing a (src, dst) pair over phases and algorithms
    /// reproduces [`peer_matrix`](WorldTrace::peer_matrix) exactly.
    pub fn phased_matrix(&self) -> Vec<WorldMatrixCell> {
        let mut out = Vec::new();
        for (src, t) in self.per_rank.iter().enumerate() {
            for c in t.matrix_cells() {
                out.push(WorldMatrixCell {
                    src,
                    phase: c.phase,
                    algo: c.algo,
                    dst: c.dst,
                    messages: c.messages,
                    bytes: c.bytes,
                });
            }
        }
        out
    }

    /// Communication-volume imbalance statistics over the per-rank
    /// total bytes sent (the row sums of the matrix).
    pub fn imbalance(&self) -> MatrixImbalance {
        let rows: Vec<u64> = self
            .per_rank
            .iter()
            .map(|t| t.peer_bytes().values().sum::<u64>())
            .collect();
        MatrixImbalance::from_rank_bytes(&rows)
    }

    /// Human-readable multi-line summary table.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut kinds: BTreeMap<OpKind, OpStats> = BTreeMap::new();
        for t in &self.per_rank {
            for (k, s) in t.snapshot() {
                kinds.entry(k).or_default().merge(&s);
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{:<12} {:>10} {:>12} {:>16}", "op", "calls", "messages", "bytes");
        for (k, s) in kinds {
            let _ = writeln!(
                out,
                "{:<12} {:>10} {:>12} {:>16}",
                k.to_string(),
                s.calls,
                s.messages,
                s.bytes
            );
        }
        let hits: u64 = self.per_rank.iter().map(|t| t.pool_hits()).sum();
        let misses: u64 = self.per_rank.iter().map(|t| t.pool_misses()).sum();
        if hits + misses > 0 {
            let _ = writeln!(
                out,
                "send-buffer pool: {hits} hits / {misses} misses ({:.1}% hit rate)",
                self.pool_hit_rate() * 100.0
            );
        }
        let pool_peak = self.pool_peak_in_flight();
        if pool_peak > 0 {
            let _ = writeln!(out, "send-buffer pool peak in flight (any rank): {pool_peak}");
        }
        let copied = self.copied_bytes();
        if copied > 0 {
            let _ = writeln!(out, "payload bytes copied by transport: {copied}");
        }
        let handoff = self.handoff_bytes();
        if handoff > 0 {
            let _ = writeln!(out, "payload bytes moved zero-copy (ownership transfer): {handoff}");
        }
        let peak = self.peak_outstanding();
        if peak > 0 {
            let _ = writeln!(out, "peak outstanding requests (any rank): {peak}");
        }
        out
    }
}

/// One world-scope cell of the per-phase communication matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldMatrixCell {
    /// Source world rank.
    pub src: usize,
    /// Solver phase the traffic was sent under (`""` if none).
    pub phase: &'static str,
    /// Collective-algorithm code (see [`algos`]).
    pub algo: u8,
    /// Destination world rank.
    pub dst: usize,
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
}

/// Communication-volume imbalance over the matrix row sums.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixImbalance {
    /// Largest per-rank total bytes sent.
    pub max_bytes: u64,
    /// Mean per-rank total bytes sent.
    pub mean_bytes: f64,
    /// `max / mean` — 1.0 is perfectly balanced; meaningless (reported
    /// as 0) when nothing was sent.
    pub max_over_mean: f64,
    /// Gini coefficient of the per-rank totals in `[0, 1)`; 0 is
    /// perfectly balanced.
    pub gini: f64,
}

impl MatrixImbalance {
    /// Compute from per-rank total sent bytes.
    pub fn from_rank_bytes(rows: &[u64]) -> Self {
        let n = rows.len();
        if n == 0 {
            return MatrixImbalance {
                max_bytes: 0,
                mean_bytes: 0.0,
                max_over_mean: 0.0,
                gini: 0.0,
            };
        }
        let total: u64 = rows.iter().sum();
        let mean = total as f64 / n as f64;
        let max = rows.iter().copied().max().unwrap_or(0);
        if total == 0 {
            return MatrixImbalance {
                max_bytes: 0,
                mean_bytes: 0.0,
                max_over_mean: 0.0,
                gini: 0.0,
            };
        }
        // Gini via the sorted formulation: G = (2·Σ i·x_i)/(n·Σ x) − (n+1)/n
        // with 1-based index i over ascending x.
        let mut sorted: Vec<u64> = rows.to_vec();
        sorted.sort_unstable();
        let weighted: f64 = sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
            .sum();
        let gini = (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64;
        MatrixImbalance {
            max_bytes: max,
            mean_bytes: mean,
            max_over_mean: max as f64 / mean,
            gini: gini.max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let t = RankTrace::new();
        t.record(OpKind::Send, 1, 100);
        t.record(OpKind::Send, 1, 50);
        t.add_traffic(OpKind::Send, 2, 10);
        let s = t.get(OpKind::Send);
        assert_eq!(s.calls, 2);
        assert_eq!(s.messages, 4);
        assert_eq!(s.bytes, 160);
        assert_eq!(t.total_bytes(), 160);
        t.reset();
        assert_eq!(t.get(OpKind::Send), OpStats::default());
    }

    #[test]
    fn pool_and_request_counters() {
        let t = RankTrace::new();
        assert_eq!(t.pool_hit_rate(), 0.0);
        t.record_pool(false);
        t.record_pool(true);
        t.record_pool(true);
        assert_eq!(t.pool_hits(), 2);
        assert_eq!(t.pool_misses(), 1);
        assert!((t.pool_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        t.request_posted();
        t.request_posted();
        assert_eq!(t.outstanding_requests(), 2);
        t.request_completed();
        t.request_posted();
        t.request_posted();
        assert_eq!(t.peak_outstanding(), 3);
        t.request_completed();
        t.request_completed();
        t.request_completed();
        assert_eq!(t.outstanding_requests(), 0);
        assert_eq!(t.peak_outstanding(), 3);
        t.reset();
        assert_eq!(t.pool_hits(), 0);
        assert_eq!(t.peak_outstanding(), 0);
    }

    #[test]
    fn byte_histograms_share_model_buckets() {
        let t = RankTrace::new();
        t.record_message(OpKind::Send, 1); // bucket 0
        t.record_message(OpKind::Send, 100); // 64 < 100 <= 128 -> bucket 7
        t.record_message(OpKind::Send, 128); // bucket 7
        t.record_message(OpKind::Alltoall, 4096); // bucket 12
        let h = t.byte_histogram(OpKind::Send);
        assert_eq!(h[0], 1);
        assert_eq!(h[sizebins::bucket_of(100)], 2);
        assert_eq!(h.iter().sum::<u64>(), 3);
        assert_eq!(t.byte_histogram(OpKind::Alltoall)[12], 1);
        // Never-recorded op yields an all-zero histogram.
        assert_eq!(t.byte_histogram(OpKind::Barrier), [0; sizebins::NUM_BUCKETS]);
        t.reset();
        assert!(t.byte_histograms().is_empty());
    }

    #[test]
    fn world_histogram_sums_ranks() {
        let a = Arc::new(RankTrace::new());
        let b = Arc::new(RankTrace::new());
        a.record_message(OpKind::Send, 1024);
        b.record_message(OpKind::Send, 1024);
        b.record_message(OpKind::Send, 3);
        let w = WorldTrace::new(vec![a, b]);
        let h = w.byte_histogram(OpKind::Send);
        assert_eq!(h[sizebins::bucket_of(1024)], 2);
        assert_eq!(h[sizebins::bucket_of(3)], 1);
        let text = w.histogram_text();
        assert!(text.contains("Send"), "{text}");
        assert!(text.contains("message-size histograms"), "{text}");
    }

    #[test]
    fn world_trace_reports_pool_and_peak() {
        let a = Arc::new(RankTrace::new());
        let b = Arc::new(RankTrace::new());
        a.record_pool(true);
        a.record_pool(false);
        b.record_pool(true);
        for _ in 0..4 {
            b.request_posted();
        }
        let w = WorldTrace::new(vec![a, b]);
        assert!((w.pool_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(w.peak_outstanding(), 4);
        let s = w.summary();
        assert!(s.contains("send-buffer pool"));
        assert!(s.contains("peak outstanding"));
    }

    #[test]
    fn copied_bytes_and_pool_peak_aggregate() {
        let a = Arc::new(RankTrace::new());
        let b = Arc::new(RankTrace::new());
        a.record_copied(100);
        a.record_copied(28);
        b.record_copied(72);
        a.set_pool_peak_in_flight(3);
        b.set_pool_peak_in_flight(9);
        assert_eq!(a.copied_bytes(), 128);
        let w = WorldTrace::new(vec![Arc::clone(&a), b]);
        assert_eq!(w.copied_bytes(), 200);
        assert_eq!(w.pool_peak_in_flight(), 9);
        let s = w.summary();
        assert!(s.contains("payload bytes copied by transport: 200"), "{s}");
        assert!(s.contains("peak in flight (any rank): 9"), "{s}");
        a.reset();
        assert_eq!(a.copied_bytes(), 0);
        assert_eq!(a.pool_peak_in_flight(), 0);
    }

    #[test]
    fn phased_matrix_sums_to_peer_bytes_exactly() {
        let t = RankTrace::new();
        t.record_peer_ctx(1, 100, "halo", algos::NONE);
        t.record_peer_ctx(1, 50, "halo", algos::NONE);
        t.record_peer_ctx(1, 25, "dfft-redistribute", algos::BRUCK);
        t.record_peer_ctx(2, 8, "dfft-redistribute", algos::BRUCK);
        t.record_peer(2, 7); // phaseless traffic still lands in the matrix
        let peers = t.peer_bytes();
        assert_eq!(peers.get(&1), Some(&175));
        assert_eq!(peers.get(&2), Some(&15));
        let cells = t.matrix_cells();
        assert_eq!(cells.len(), 4);
        let by_dst: u64 = cells.iter().filter(|c| c.dst == 1).map(|c| c.bytes).sum();
        assert_eq!(by_dst, 175);
        let halo = cells.iter().find(|c| c.phase == "halo").unwrap();
        assert_eq!((halo.messages, halo.bytes), (2, 150));
        let bruck: u64 = cells
            .iter()
            .filter(|c| c.algo == algos::BRUCK)
            .map(|c| c.bytes)
            .sum();
        assert_eq!(bruck, 33);
        t.reset();
        assert!(t.matrix_cells().is_empty());
        assert!(t.peer_bytes().is_empty());
    }

    #[test]
    fn world_phased_matrix_and_imbalance() {
        let a = Arc::new(RankTrace::new());
        let b = Arc::new(RankTrace::new());
        a.record_peer_ctx(1, 300, "step", algos::NONE);
        b.record_peer_ctx(0, 100, "step", algos::NONE);
        let w = WorldTrace::new(vec![a, b]);
        let cells = w.phased_matrix();
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().any(|c| c.src == 0 && c.dst == 1 && c.bytes == 300));
        // Per-(src,dst) totals reproduce the classic matrix exactly.
        let m = w.peer_matrix();
        for c in &cells {
            assert_eq!(m[c.src][c.dst], c.bytes);
        }
        let imb = w.imbalance();
        assert_eq!(imb.max_bytes, 300);
        assert!((imb.mean_bytes - 200.0).abs() < 1e-9);
        assert!((imb.max_over_mean - 1.5).abs() < 1e-9);
        // Two ranks at 300/100: Gini = |300-100| / (2·2·200) = 0.25.
        assert!((imb.gini - 0.25).abs() < 1e-9, "{}", imb.gini);
    }

    #[test]
    fn imbalance_degenerate_cases() {
        let z = MatrixImbalance::from_rank_bytes(&[]);
        assert_eq!(z.max_over_mean, 0.0);
        let z = MatrixImbalance::from_rank_bytes(&[0, 0]);
        assert_eq!((z.max_bytes, z.gini), (0, 0.0));
        let even = MatrixImbalance::from_rank_bytes(&[50, 50, 50, 50]);
        assert!((even.max_over_mean - 1.0).abs() < 1e-12);
        assert!(even.gini.abs() < 1e-12);
    }

    #[test]
    fn trace_publishes_into_shared_registry() {
        let reg = MetricsRegistry::new();
        let t0 = RankTrace::with_registry(&reg, 0);
        let t1 = RankTrace::with_registry(&reg, 1);
        t0.record(OpKind::Send, 1, 64);
        t0.record_message(OpKind::Send, 64);
        t1.record(OpKind::Alltoall, 3, 300);
        t1.record_pool(true);
        t1.request_posted();
        let snap = reg.snapshot();
        assert_eq!(
            snap.value("beatnik_comm_bytes_total", &[("rank", "0"), ("op", "send")]),
            Some(64)
        );
        assert_eq!(
            snap.value("beatnik_comm_calls_total", &[("rank", "1"), ("op", "alltoall")]),
            Some(1)
        );
        assert_eq!(
            snap.value("beatnik_comm_message_size_bytes", &[("rank", "0"), ("op", "send")]),
            Some(1)
        );
        assert_eq!(snap.value("beatnik_pool_hits_total", &[("rank", "1")]), Some(1));
        assert_eq!(
            snap.value("beatnik_requests_outstanding_peak", &[("rank", "1")]),
            Some(1)
        );
    }

    #[test]
    fn registry_backed_traces_leave_the_summary_byte_identical() {
        // Redirecting the counters through a metrics registry is a pure
        // publication change: the human-facing summary — the text users
        // diff across runs — must not move by a single byte.
        let record = |t: &RankTrace| {
            t.record(OpKind::Send, 2, 128);
            t.record_message(OpKind::Send, 64);
            t.record_message(OpKind::Send, 64);
            t.record(OpKind::Alltoall, 3, 300);
            t.record_message(OpKind::Alltoall, 100);
            t.record_copied(100);
            t.record_pool(true);
            t.record_pool(false);
            t.request_posted();
            t.set_pool_peak_in_flight(2);
        };
        let plain = Arc::new(RankTrace::new());
        record(&plain);
        let reg = MetricsRegistry::new();
        let backed = Arc::new(RankTrace::with_registry(&reg, 0));
        record(&backed);
        let w_plain = WorldTrace::new(vec![plain]);
        let w_backed = WorldTrace::new(vec![backed]);
        assert_eq!(w_plain.summary(), w_backed.summary());
        assert_eq!(w_plain.histogram_text(), w_backed.histogram_text());
        assert_eq!(w_plain.matrix_text(), w_backed.matrix_text());
    }

    #[test]
    fn world_trace_aggregates_over_ranks() {
        let a = Arc::new(RankTrace::new());
        let b = Arc::new(RankTrace::new());
        a.record(OpKind::Alltoall, 3, 300);
        b.record(OpKind::Alltoall, 3, 500);
        b.record(OpKind::Send, 1, 7);
        let w = WorldTrace::new(vec![a, b]);
        assert_eq!(w.num_ranks(), 2);
        let t = w.total(OpKind::Alltoall);
        assert_eq!(t.calls, 2);
        assert_eq!(t.bytes, 800);
        assert_eq!(w.total_bytes(), 807);
        assert_eq!(w.max_rank_bytes(), 507);
        let s = w.summary();
        assert!(s.contains("Alltoall"));
        assert!(s.contains("800"));
    }
}

#[cfg(test)]
mod matrix_tests {
    use crate::world::World;

    #[test]
    fn matrix_records_world_peers_for_p2p() {
        let (_, trace) = World::builder(3).run_traced(|c| {
            if c.rank() == 0 {
                c.send(2, 0, vec![0u8; 1024]);
            } else if c.rank() == 2 {
                let _ = c.recv::<u8>(0, 0);
            }
        });
        let m = trace.peer_matrix();
        assert_eq!(m[0][2], 1024);
        assert_eq!(m[0][1], 0);
        assert_eq!(m[2][0], 0);
        let text = trace.matrix_text();
        assert!(text.contains("communication matrix"));
    }

    #[test]
    fn matrix_attributes_subcommunicator_traffic_to_world_ranks() {
        // Split into a reversed-order subgroup; traffic must still land on
        // the correct *world* rows/cols.
        let (_, trace) = World::builder(4).run_traced(|c| {
            let sub = c.split(Some(0), -(c.rank() as i64)).unwrap();
            // sub rank 0 = world rank 3, sub rank 3 = world rank 0.
            if sub.rank() == 0 {
                sub.send(3, 7, vec![0u64; 16]); // world 3 -> world 0, 128 B
            } else if sub.rank() == 3 {
                let _ = sub.recv::<u64>(0, 7);
            }
        });
        let m = trace.peer_matrix();
        // The 128-byte payload lands on the world-3 -> world-0 entry (on
        // top of the split's own small collective traffic); the reverse
        // direction carries only collective overhead.
        assert!(m[3][0] >= 128, "{m:?}");
        assert!(m[0][3] < 128, "{m:?}");
    }

    #[test]
    fn collective_traffic_appears_in_the_matrix() {
        let (_, trace) = World::builder(4).run_traced(|c| {
            let _ = c.alltoall(&[0u8; 1024]); // 256 bytes per destination
        });
        let m = trace.peer_matrix();
        for (s, row) in m.iter().enumerate() {
            for (d, &bytes) in row.iter().enumerate() {
                if s != d {
                    assert_eq!(bytes, 256, "{s}->{d}");
                }
            }
        }
    }
}
