//! Roofline compute-cost model for the kernels Beatnik runs per rank.
//!
//! Kernel time is modeled additively as `flops / gpu_flops +
//! bytes / gpu_mem_bw` plus a fixed launch overhead — pessimistic for
//! perfectly overlapped kernels, accurate for the memory-bound stencil
//! and FFT kernels that dominate Beatnik.

use crate::machine::Machine;

/// Per-GPU launch overhead, seconds (CUDA kernel launch + driver).
const KERNEL_LAUNCH: f64 = 5.0e-6;

/// Compute-cost calculator for one rank's local kernels.
#[derive(Debug, Clone)]
pub struct ComputeModel {
    machine: Machine,
}

impl ComputeModel {
    /// Bind to a machine description.
    pub fn new(machine: &Machine) -> Self {
        ComputeModel {
            machine: machine.clone(),
        }
    }

    /// Generic roofline kernel: `flops` floating-point ops touching
    /// `bytes` of memory.
    pub fn kernel_time(&self, flops: f64, bytes: f64) -> f64 {
        KERNEL_LAUNCH + flops / self.machine.gpu_flops + bytes / self.machine.gpu_mem_bw
    }

    /// Local 1D complex-to-complex FFT over `n` points, batched `batch`
    /// times: `5 n log2 n` flops per transform (the standard count),
    /// reading and writing 16-byte complex values.
    pub fn fft_time(&self, n: usize, batch: usize) -> f64 {
        if n == 0 || batch == 0 {
            return 0.0;
        }
        let nf = n as f64;
        let flops = 5.0 * nf * nf.log2().max(1.0) * batch as f64;
        let bytes = 2.0 * 16.0 * nf * batch as f64;
        self.kernel_time(flops, bytes)
    }

    /// Width-2 stencil sweep (gradients + Laplacians) over `points` mesh
    /// nodes with `fields` scalar fields: ~60 flops and ~9 reads + 1 write
    /// of 8 bytes per field per point.
    pub fn stencil_time(&self, points: usize, fields: usize) -> f64 {
        let p = points as f64 * fields as f64;
        self.kernel_time(60.0 * p, 80.0 * p)
    }

    /// Birkhoff–Rott pair interactions: ~30 flops per (source, target)
    /// pair (distance, desingularized kernel, cross product, accumulate),
    /// streaming 48 bytes per source point per target tile.
    pub fn br_pair_time(&self, pairs: f64) -> f64 {
        self.kernel_time(30.0 * pairs, 8.0 * pairs)
    }

    /// Neighbor-list construction over `points` with average `avg_neighbors`
    /// candidates inspected per point (bin/grid search).
    pub fn neighbor_build_time(&self, points: usize, avg_neighbors: f64) -> f64 {
        let inspected = points as f64 * avg_neighbors;
        self.kernel_time(8.0 * inspected, 24.0 * inspected)
    }

    /// Pack/unpack cost for staging `bytes` through GPU memory (2 copies).
    pub fn pack_time(&self, bytes: f64) -> f64 {
        KERNEL_LAUNCH + 2.0 * bytes / self.machine.gpu_mem_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn model() -> ComputeModel {
        ComputeModel::new(&Machine::lassen())
    }

    #[test]
    fn kernel_time_has_launch_floor() {
        let m = model();
        assert!(m.kernel_time(0.0, 0.0) >= KERNEL_LAUNCH);
    }

    #[test]
    fn fft_time_superlinear_in_n() {
        let m = model();
        // Discount the fixed launch overhead to expose the n log n term.
        let t1 = m.fft_time(1 << 10, 1) - KERNEL_LAUNCH;
        let t2 = m.fft_time(1 << 20, 1) - KERNEL_LAUNCH;
        assert!(t2 > 1000.0 * t1); // >= 1024x points, 2x log factor
        assert_eq!(m.fft_time(0, 1), 0.0);
        assert_eq!(m.fft_time(1024, 0), 0.0);
    }

    #[test]
    fn fft_batches_scale_linearly() {
        let m = model();
        let one = m.fft_time(4096, 1) - KERNEL_LAUNCH;
        let ten = m.fft_time(4096, 10) - KERNEL_LAUNCH;
        assert!((ten / one - 10.0).abs() < 0.2);
    }

    #[test]
    fn br_pairs_dominate_at_n_squared() {
        let m = model();
        let n: f64 = 250_000.0; // paper's single-mode mesh
        let exact = m.br_pair_time(n * n);
        let cutoff = m.br_pair_time(n * 400.0); // ~400 neighbors in cutoff
        assert!(exact / cutoff > 100.0);
    }

    #[test]
    fn stencil_is_memory_bound_on_lassen() {
        let m = model();
        let machine = Machine::lassen();
        let points = 1_000_000;
        let t = m.stencil_time(points, 5);
        let flop_time = 60.0 * points as f64 * 5.0 / machine.gpu_flops;
        assert!(t > flop_time); // memory term dominates
    }
}
