//! Integration tests of span telemetry under real comm traffic: span
//! ordering stays deterministic and chronological per rank even when a
//! 9-rank nonblocking storm completes out of order, and the recorded
//! peers/bytes match what the ranks actually moved.

use beatnik_comm::telemetry::{CommOp, SpanKind};
use beatnik_comm::{wait_all, World, ANY_SOURCE, ANY_TAG};
use std::time::Duration;

#[test]
fn nine_rank_nonblocking_stress_records_deterministic_spans() {
    // Every nonzero rank floods rank 0; rank 0 drains through wildcard
    // irecvs via wait_all. Arrival order is nondeterministic, but the
    // *span* record must not be: per rank, spans come out in
    // chronological begin order with properly nested intervals, rank 0
    // sees exactly one wait_all covering the storm, and each sender's
    // span sequence is its program order.
    let p = 9usize;
    let per_sender = 20u64;
    let (_, _, timeline) = World::builder(p).run_profiled(move |comm| {
        if comm.rank() == 0 {
            let total = per_sender as usize * (p - 1);
            let reqs: Vec<_> = (0..total)
                .map(|_| comm.irecv::<u64>(ANY_SOURCE, ANY_TAG))
                .collect();
            let payloads = wait_all(reqs);
            assert_eq!(payloads.len(), total);
        } else {
            let me = comm.rank() as u64;
            for i in 0..per_sender {
                comm.isend(0, i, &[me, i]).wait();
            }
        }
    });

    assert_eq!(timeline.num_ranks(), p);
    for rt in &timeline.ranks {
        assert_eq!(rt.dropped, 0, "rank {} dropped spans", rt.rank);
        // Chronological by begin time, every interval well-formed.
        for w in rt.spans.windows(2) {
            assert!(
                w[0].start_ns <= w[1].start_ns,
                "rank {} spans out of order",
                rt.rank
            );
        }
        for s in &rt.spans {
            assert!(s.end_ns >= s.start_ns);
        }
    }

    let total = per_sender as usize * (p - 1);
    let root = &timeline.ranks[0];
    let irecvs: Vec<_> = root
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Op(CommOp::Irecv))
        .collect();
    assert_eq!(irecvs.len(), total);
    let waits: Vec<_> = root
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Op(CommOp::WaitAll))
        .collect();
    assert_eq!(waits.len(), 1);
    // The wait_all interval contains no posted-irecv span and accounts
    // for every received byte (each payload is two u64s).
    assert!(irecvs.iter().all(|s| s.start_ns < waits[0].start_ns));
    assert_eq!(waits[0].bytes, 16 * total as u64);

    for rt in &timeline.ranks[1..] {
        let sends: Vec<_> = rt
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Op(CommOp::Isend))
            .collect();
        assert_eq!(sends.len(), per_sender as usize, "rank {}", rt.rank);
        // Program order: tags 0..per_sender in sequence, all to rank 0,
        // each carrying the two-u64 payload.
        for (i, s) in sends.iter().enumerate() {
            assert_eq!(s.tag, i as u64, "rank {}", rt.rank);
            assert_eq!(s.peer, 0);
            assert_eq!(s.bytes, 16);
        }
        // Buffered isend().wait() never blocks, so senders record no
        // wait spans — only blocked receives do.
        assert!(
            !rt.spans.iter().any(|s| s.kind == SpanKind::Op(CommOp::Wait)),
            "rank {}",
            rt.rank
        );
    }
}

#[test]
fn stress_pattern_is_reproducible_across_runs() {
    // Two identical runs must produce identical per-rank span *kind*
    // sequences (timestamps differ; structure must not).
    let run = || {
        let (_, _, tl) = World::builder(9).run_profiled(|comm| {
            if comm.rank() == 0 {
                let reqs: Vec<_> = (1..9).map(|s| comm.irecv::<u64>(s, 3)).collect();
                let _ = wait_all(reqs);
            } else {
                std::thread::sleep(Duration::from_millis(
                    (9 - comm.rank()) as u64,
                ));
                comm.send(0, 3, vec![comm.rank() as u64]);
            }
        });
        tl.ranks
            .iter()
            .map(|rt| {
                rt.spans
                    .iter()
                    .map(|s| (s.kind.name().to_string(), s.peer, s.tag, s.bytes))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "span structure must be deterministic");
}

#[test]
fn disabled_telemetry_adds_no_allocations_to_pooled_sends() {
    // Every pool miss is a fresh envelope allocation, so identical
    // hit/miss counts with telemetry off (run_traced) and on
    // (run_profiled) mean the recorder adds zero allocations to the
    // pooled send path — and the disabled run must record no spans at
    // all.
    let p = 4usize;
    let laps = 25u64;
    let exchange = move |comm: &beatnik_comm::Communicator| {
        let right = (comm.rank() + 1) % p;
        let left = (comm.rank() + p - 1) % p;
        let mut token = vec![comm.rank() as u64; 128];
        for lap in 0..laps {
            let recv = comm.irecv::<u64>(left, lap);
            let send = comm.isend(right, lap, &token);
            token = recv.wait();
            send.wait();
            comm.barrier();
        }
    };
    let (_, traced) = World::builder(p).run_traced(move |comm| {
        assert!(!comm.telemetry().is_enabled());
        exchange(&comm);
        assert_eq!(comm.telemetry().total_pushed(), 0);
    });
    let (_, profiled, timeline) = World::builder(p).run_profiled(move |comm| exchange(&comm));
    assert!(timeline.total_spans() > 0);
    for r in 0..p {
        assert_eq!(
            (traced.rank(r).pool_hits(), traced.rank(r).pool_misses()),
            (profiled.rank(r).pool_hits(), profiled.rank(r).pool_misses()),
            "rank {r}: telemetry changed pool behaviour"
        );
    }
}

#[test]
fn tiny_capacity_under_stress_drops_oldest_and_counts() {
    // With a 16-span ring under the same storm, overflow must keep the
    // newest spans and report the exact drop count on the gauge.
    let (_, _, timeline) = World::builder(2).recv_timeout(Duration::from_secs(120)).span_capacity(16).run_profiled(|comm| {
            if comm.rank() == 0 {
                for i in 0..100u64 {
                    let _: Vec<u64> = comm.recv(1, i);
                }
            } else {
                for i in 0..100u64 {
                    comm.send(0, i, vec![i]);
                }
            }
        },
    );
    for rt in &timeline.ranks {
        assert_eq!(rt.spans.len(), 16, "rank {}", rt.rank);
        assert_eq!(rt.dropped, 100 - 16, "rank {}", rt.rank);
        // Drop-oldest: the survivors are the *last* 16 ops, so the
        // final span carries the final tag.
        assert_eq!(rt.spans.last().unwrap().tag, 99);
    }
}
