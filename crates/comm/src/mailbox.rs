//! Per-rank mailboxes with MPI-style `(source, tag)` matching.
//!
//! Each `(communicator, rank)` pair owns one mailbox. Senders push
//! envelopes (never blocking — sends are buffered, as with small/eager MPI
//! messages); receivers block on a condition variable until an envelope
//! matching their `(src, tag)` selector arrives. Matching scans in arrival
//! order, which preserves MPI's non-overtaking guarantee for messages from
//! the same sender with the same tag.

use crate::error::CommError;
use crate::message::Envelope;
use crate::sync::{Condvar, Mutex};
use std::time::Duration;

/// A blocking, matching message queue for one rank of one communicator.
#[derive(Default)]
pub struct Mailbox {
    queue: Mutex<Vec<Envelope>>,
    cond: Condvar,
}

impl Mailbox {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit an envelope and wake any waiting receiver.
    pub fn push(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.push(env);
        // Receivers with non-matching selectors re-check and sleep again, so
        // notify_all is required for correctness when multiple receives with
        // different selectors could be outstanding.
        self.cond.notify_all();
    }

    /// Block until an envelope matching `(src, tag)` is available and
    /// remove it. `usize::MAX`/`u64::MAX` are wildcards.
    pub fn recv_matching(&self, src: usize, tag: u64) -> Envelope {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|e| e.matches(src, tag)) {
                return q.remove(pos);
            }
            self.cond.wait(&mut q);
        }
    }

    /// Like [`Mailbox::recv_matching`] but gives up after `timeout`.
    ///
    /// Used by tests to convert deadlocks into failures instead of hangs.
    pub fn recv_matching_timeout(
        &self,
        rank: usize,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Envelope, CommError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|e| e.matches(src, tag)) {
                return Ok(q.remove(pos));
            }
            // Recompute the remaining window on every pass: wakeups for
            // non-matching messages (and spurious wakeups) must shorten the
            // wait, never restart the full timeout.
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout { rank, src, tag });
            }
            let remaining = deadline - now;
            let _ = self.cond.wait_for(&mut q, remaining);
        }
    }

    /// Block until some queued envelope matches one of `selectors`
    /// (`(src, tag)` pairs, wildcards allowed), or until `timeout`
    /// elapses. Returns the index of the first selector with a waiting
    /// match, without consuming the envelope.
    ///
    /// This is the progress primitive behind
    /// [`crate::request::wait_all`]: checking the selectors and sleeping
    /// happen under one lock, so a message that arrives between the two
    /// cannot be missed.
    pub fn wait_any(&self, selectors: &[(usize, u64)], timeout: Duration) -> Option<usize> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.queue.lock();
        loop {
            if let Some(i) = selectors
                .iter()
                .position(|&(s, t)| q.iter().any(|e| e.matches(s, t)))
            {
                return Some(i);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let _ = self.cond.wait_for(&mut q, deadline - now);
        }
    }

    /// Non-blocking probe: does any queued envelope match `(src, tag)`?
    pub fn probe(&self, src: usize, tag: u64) -> bool {
        self.queue.lock().iter().any(|e| e.matches(src, tag))
    }

    /// Number of queued envelopes (any selector).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the mailbox has no pending envelopes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Envelope;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn push_then_recv_same_thread() {
        let mb = Mailbox::new();
        mb.push(Envelope::new(0, 1, vec![42i32]));
        let env = mb.recv_matching(0, 1);
        assert_eq!(env.into_data::<i32>(), vec![42]);
    }

    #[test]
    fn matching_skips_non_matching_messages() {
        let mb = Mailbox::new();
        mb.push(Envelope::new(0, 1, vec![1i32]));
        mb.push(Envelope::new(0, 2, vec![2i32]));
        let env = mb.recv_matching(0, 2);
        assert_eq!(env.into_data::<i32>(), vec![2]);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn non_overtaking_order_for_same_selector() {
        let mb = Mailbox::new();
        mb.push(Envelope::new(3, 9, vec![1u8]));
        mb.push(Envelope::new(3, 9, vec![2u8]));
        assert_eq!(mb.recv_matching(3, 9).into_data::<u8>(), vec![1]);
        assert_eq!(mb.recv_matching(3, 9).into_data::<u8>(), vec![2]);
    }

    #[test]
    fn blocking_recv_wakes_on_cross_thread_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || mb2.recv_matching(5, 5).into_data::<u64>());
        std::thread::sleep(Duration::from_millis(20));
        mb.push(Envelope::new(5, 5, vec![99u64]));
        assert_eq!(handle.join().unwrap(), vec![99]);
    }

    #[test]
    fn timeout_fires_when_nothing_arrives() {
        let mb = Mailbox::new();
        let err = mb
            .recv_matching_timeout(7, 0, 0, Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(
            err,
            CommError::Timeout {
                rank: 7,
                src: 0,
                tag: 0
            }
        );
    }

    #[test]
    fn timeout_deadline_survives_spurious_wakeups() {
        // Regression: a steady stream of *non-matching* messages wakes the
        // receiver over and over; each wakeup must shorten the remaining
        // window rather than restart the full timeout, so the receive
        // still fails at ~deadline instead of being kept alive
        // indefinitely.
        let mb = Arc::new(Mailbox::new());
        let feeder = {
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || {
                for _ in 0..60 {
                    mb.push(Envelope::new(1, 1, vec![0u8]));
                    std::thread::sleep(Duration::from_millis(10));
                }
            })
        };
        let t0 = std::time::Instant::now();
        let err = mb
            .recv_matching_timeout(0, 2, 2, Duration::from_millis(100))
            .unwrap_err();
        let elapsed = t0.elapsed();
        assert!(matches!(err, CommError::Timeout { .. }));
        // 60 wakeups x 10 ms would stretch a restarting implementation to
        // ~600 ms; the fixed one stays near the 100 ms deadline.
        assert!(
            elapsed < Duration::from_millis(400),
            "deadline restarted on spurious wakeups: {elapsed:?}"
        );
        feeder.join().unwrap();
    }

    #[test]
    fn wait_any_reports_first_matching_selector() {
        let mb = Arc::new(Mailbox::new());
        // Nothing queued: times out.
        assert_eq!(
            mb.wait_any(&[(0, 0), (1, 1)], Duration::from_millis(10)),
            None
        );
        mb.push(Envelope::new(1, 1, vec![0u8]));
        // Selector 1 matches; the envelope is not consumed.
        assert_eq!(
            mb.wait_any(&[(0, 0), (1, 1)], Duration::from_millis(10)),
            Some(1)
        );
        assert_eq!(mb.len(), 1);
        // Cross-thread wakeup.
        let mb2 = Arc::clone(&mb);
        let waiter = std::thread::spawn(move || {
            mb2.wait_any(&[(7, 7)], Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.push(Envelope::new(7, 7, vec![1u8]));
        assert_eq!(waiter.join().unwrap(), Some(0));
    }

    #[test]
    fn probe_reports_matches_without_consuming() {
        let mb = Mailbox::new();
        assert!(!mb.probe(usize::MAX, u64::MAX));
        mb.push(Envelope::new(1, 4, vec![0f32]));
        assert!(mb.probe(1, 4));
        assert!(mb.probe(usize::MAX, u64::MAX));
        assert!(!mb.probe(2, 4));
        assert_eq!(mb.len(), 1);
    }
}
