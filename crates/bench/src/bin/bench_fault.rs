//! Fault-tolerance benchmark emitting `BENCH_fault.json`.
//!
//! Two questions the fault-injection engine exists to answer, measured
//! on real thread-ranks:
//!
//! 1. **Detection latency** — how long after a rank dies do the
//!    survivors observe the failure? Survivors hammer `try_barrier`
//!    until it errors; the latency is the failure ledger's age at the
//!    moment of observation (`failure_age`), so thread-spawn and
//!    barrier cadence don't pollute the number. Reported as the worst
//!    survivor (the rank recovery has to wait for).
//!
//! 2. **Recovery cost vs. checkpoint interval** — total wall time of a
//!    rocketrig run that loses a rank mid-flight and recovers via
//!    revoke/shrink/restore, across checkpoint cadences. A clean run of
//!    the same deck is the baseline; `recovery_time` is the difference.
//!    Tighter cadences re-execute fewer steps after restore but pay the
//!    gather/write on more steps — this table is that trade-off.
//!
//! Usage: `bench_fault [output.json]` (default `BENCH_fault.json`).

use beatnik_comm::{FaultPlan, World};
use beatnik_json::Value;
use beatnik_rocketrig::{run_rig, run_rig_ft, RigConfig};
use std::time::{Duration, Instant};

/// Generous stall limit: CI machines can oversubscribe 16 thread-ranks.
const TIMEOUT: Duration = Duration::from_secs(120);

struct Row {
    metric: &'static str,
    ranks: usize,
    checkpoint_every: usize,
    ns: f64,
}

impl Row {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("metric".into(), Value::Str(self.metric.into())),
            ("ranks".into(), Value::UInt(self.ranks as u64)),
            (
                "checkpoint_every".into(),
                Value::UInt(self.checkpoint_every as u64),
            ),
            ("ns".into(), Value::Float(self.ns)),
        ])
    }
}

/// Worst-survivor detection latency for one world size: kill rank 1
/// after a few barriers, have every survivor spin on `try_barrier`
/// until it errors, and read the ledger age at that instant.
fn detection_latency(p: usize) -> f64 {
    let plan = FaultPlan::parse("kill:r1@op40", 0).expect("static plan");
    let report = World::builder(p).recv_timeout(TIMEOUT).fault_plan(&plan).run_ft(|comm| {
        let tight = comm.with_recv_timeout(Duration::from_secs(10));
        loop {
            match tight.try_barrier() {
                Ok(()) => {}
                Err(_) => {
                    // Any error here (RankFailed, or Timeout from a
                    // survivor whose barrier round raced the death) means
                    // the failure was observed; the ledger holds the
                    // authoritative death instant.
                    let failed = tight.failed_ranks();
                    let age = failed
                        .first()
                        .and_then(|&w| tight.failure_age(w))
                        .unwrap_or_default();
                    return age.as_nanos() as f64;
                }
            }
        }
    });
    assert_eq!(report.killed, [1], "kill did not land");
    report.results.iter().flatten().cloned().fold(0.0, f64::max)
}

/// A small low-order deck that finishes in well under a second per run
/// but spans enough steps for mid-flight death and checkpoint cadence
/// to matter.
fn bench_config(out: &std::path::Path) -> RigConfig {
    let mut cfg = RigConfig {
        mesh_n: 16,
        steps: 8,
        diag_every: 0,
        out_dir: out.to_path_buf(),
        ..RigConfig::default()
    };
    cfg.params.dt = 1e-3;
    cfg
}

/// Wall time of a faulted run (kill one rank at step 5, recover,
/// finish) at the given checkpoint cadence.
fn faulted_run(p: usize, every: usize, dir: &std::path::Path) -> f64 {
    let cfg = bench_config(dir);
    let ckpt = dir.join("checkpoint.json");
    let _ = std::fs::remove_file(&ckpt);
    let plan = FaultPlan::parse("kill:r1@step5", 0).expect("static plan");
    let start = Instant::now();
    let report = World::builder(p).recv_timeout(TIMEOUT).fault_plan(&plan).run_ft(move |comm| {
        run_rig_ft(comm, &cfg, every, &ckpt)
    });
    let ns = start.elapsed().as_nanos() as f64;
    assert_eq!(report.killed, [1], "kill did not land");
    assert!(
        report.results.iter().any(|r| r.is_some()),
        "no survivor finished the run"
    );
    ns
}

/// Wall time of the same deck with no faults and no checkpoints.
fn clean_run(p: usize, dir: &std::path::Path) -> f64 {
    let cfg = bench_config(dir);
    let start = Instant::now();
    World::builder(p).run(move |comm| run_rig(&comm, &cfg));
    start.elapsed().as_nanos() as f64
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fault.json".into());
    let dir = std::env::temp_dir().join("beatnik_bench_fault");
    std::fs::create_dir_all(&dir).expect("cannot create scratch dir");
    let mut rows: Vec<Row> = Vec::new();

    for p in [8, 16] {
        rows.push(Row {
            metric: "detection_latency",
            ranks: p,
            checkpoint_every: 0,
            ns: detection_latency(p),
        });

        let baseline = clean_run(p, &dir);
        rows.push(Row {
            metric: "clean_run",
            ranks: p,
            checkpoint_every: 0,
            ns: baseline,
        });
        for every in [1, 2, 4] {
            let total = faulted_run(p, every, &dir);
            rows.push(Row {
                metric: "faulted_run",
                ranks: p,
                checkpoint_every: every,
                ns: total,
            });
            rows.push(Row {
                metric: "recovery_time",
                ranks: p,
                checkpoint_every: every,
                ns: (total - baseline).max(0.0),
            });
        }
    }

    for r in &rows {
        eprintln!(
            "{:<18} p={:<3} ckpt_every={:<2} {:>14.0} ns",
            r.metric, r.ranks, r.checkpoint_every, r.ns
        );
    }

    let doc = Value::Object(vec![(
        "benches".into(),
        Value::Array(rows.iter().map(Row::to_value).collect()),
    )]);
    std::fs::write(&path, beatnik_json::to_string_pretty(&doc))
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("wrote {path}");
}
