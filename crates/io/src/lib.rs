//! # beatnik-io — simulation output (the Silo substitute)
//!
//! The paper's Beatnik writes surface meshes through LLNL's Silo library
//! for visualization (its `SiloWriter`). This crate provides equivalent
//! output paths with zero external format dependencies:
//!
//! * [`vtk`] — legacy-ASCII VTK `STRUCTURED_GRID` files (loadable in
//!   ParaView/VisIt) of the interface with vorticity point data, the
//!   direct analogue of the paper's Figure 1/2 dumps;
//! * [`csv`] — flat per-point tables for ad-hoc analysis;
//! * [`stats`] — JSON time-series of global diagnostics and ownership
//!   distributions (consumed by the figure harnesses and EXPERIMENTS.md);
//! * [`checkpoint`] — full-state save/restore for long campaigns;
//! * [`profile`] — Chrome Trace Event JSON and CSV summaries of the
//!   span timelines recorded by `WorldBuilder::run_profiled`.
//!
//! All writers gather to rank 0 and write a single file; at benchmark
//! scale this is exactly what the paper's visualization dumps do too.

pub mod checkpoint;
pub mod csv;
pub mod metrics;
pub mod profile;
pub mod stats;
pub mod vtk;

pub use checkpoint::Checkpoint;
pub use metrics::{
    write_comm_matrix_csv, write_critical_path_json, write_metrics_json, write_openmetrics,
};
pub use profile::{write_chrome_trace, write_phase_csv, write_skew_csv};
pub use stats::{RunLog, StepRecord};

use beatnik_core::ProblemManager;

/// The gathered surface: `(rows, cols, points)` where
/// `points[gr * cols + gc] = ([x, y, z], [w1, w2])`.
pub type GatheredSurface = (usize, usize, Vec<([f64; 3], [f64; 2])>);

/// Gather the full global surface on rank 0. Returns `None` on other
/// ranks. Collective.
pub fn gather_surface(pm: &ProblemManager) -> Option<GatheredSurface> {
    let mesh = pm.mesh();
    let [nr, nc] = mesh.global();
    // Each rank contributes (gr, gc, x, y, z, w1, w2) tuples.
    let mut local = Vec::with_capacity(mesh.owned_count());
    for (lr, lc, gr, gc) in mesh.owned_indices() {
        let z = pm.z().node(lr, lc);
        let w = pm.w().node(lr, lc);
        local.push((gr as u64, gc as u64, [z[0], z[1], z[2]], [w[0], w[1]]));
    }
    let gathered = mesh.comm().gather(0, &local)?;
    let mut out = vec![([0.0; 3], [0.0; 2]); nr * nc];
    let mut seen = 0usize;
    for (gr, gc, z, w) in gathered {
        out[gr as usize * nc + gc as usize] = (z, w);
        seen += 1;
    }
    assert_eq!(seen, nr * nc, "gather_surface: incomplete surface");
    Some((nr, nc, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_comm::World;
    use beatnik_core::InitialCondition;
    use beatnik_mesh::{BoundaryCondition, SurfaceMesh};

    #[test]
    fn gather_reassembles_global_surface() {
        for p in [1usize, 4] {
            World::builder(p).run(|comm| {
                let mesh = SurfaceMesh::new(
                    &comm,
                    [8, 8],
                    [true, true],
                    2,
                    [0.0, 0.0],
                    [1.0, 1.0],
                );
                let mut pm = ProblemManager::new(
                    mesh,
                    BoundaryCondition::Periodic { periods: [1.0, 1.0] },
                );
                InitialCondition::SingleMode {
                    amplitude: 0.1,
                    modes: [1.0, 1.0],
                }
                .apply(&mut pm);
                let gathered = gather_surface(&pm);
                if comm.rank() == 0 {
                    let (nr, nc, pts) = gathered.unwrap();
                    assert_eq!((nr, nc), (8, 8));
                    assert_eq!(pts.len(), 64);
                    // Spot-check: node (0,0) is at the domain corner.
                    let (z, w) = pts[0];
                    assert_eq!(z[0], 0.0);
                    assert_eq!(z[1], 0.0);
                    assert!((z[2] - 0.1).abs() < 1e-12);
                    assert_eq!(w, [0.0, 0.0]);
                } else {
                    assert!(gathered.is_none());
                }
            });
        }
    }
}
