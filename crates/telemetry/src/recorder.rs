//! The per-rank lock-free span ring buffer.

use crate::span::{algos, CommOp, Span, SpanKind};
use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default ring capacity: 64 Ki spans ≈ 3 MiB per rank, enough for
/// several hundred rocketrig timesteps before the ring wraps.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

/// Opaque start-of-span timestamp handed out by [`SpanRecorder::begin`].
///
/// Carrying the disabled state in the ticket keeps the `end` call
/// branch-cheap and means callers never test an `Option`.
#[derive(Debug, Clone, Copy)]
pub struct Ticket(u64);

const DISABLED: u64 = u64::MAX;

/// A per-rank span recorder: a preallocated ring buffer of [`Span`]s
/// stamped against a monotonic epoch shared by every rank of a world.
///
/// # Single-writer protocol (why this is lock-free *and* sound)
///
/// Each rank's `Communicator` — and every communicator split or
/// duplicated from it — runs on exactly one OS thread and shares one
/// recorder, so **all writes to a given recorder come from one
/// thread**. The world keeps a second handle per rank but only reads
/// it after `thread::scope` joins the rank threads, which establishes
/// a happens-before edge covering every slot write. The hot path is
/// therefore a plain indexed store plus one release counter bump: no
/// locks, no CAS loops, no allocation.
///
/// [`snapshot`](SpanRecorder::snapshot) must only be called when the
/// writing thread has finished (after the world joins) or from the
/// writing thread itself; calling it concurrently with recording can
/// observe a half-written slot.
///
/// # Overflow policy
///
/// The ring wraps: the newest span overwrites the oldest, and the
/// number of overwritten spans is reported by
/// [`dropped_spans`](SpanRecorder::dropped_spans). Recent history is
/// what the timeline analyses need, so drop-oldest degrades gracefully.
pub struct SpanRecorder {
    epoch: Instant,
    slots: Box<[UnsafeCell<Span>]>,
    /// Total spans ever pushed (monotonic; `pushed % capacity` is the
    /// next write index, `pushed - capacity` the drop count).
    pushed: AtomicU64,
    /// Stack of currently open phase names, maintained even when span
    /// recording is disabled so the comm layer can attribute traffic to
    /// the innermost solver phase (the live comm-matrix dimension).
    /// Written and read only by the owning rank thread — the same
    /// single-writer protocol as the ring itself.
    phase_stack: UnsafeCell<Vec<&'static str>>,
    /// Collective-algorithm code currently in force (see
    /// [`algos`]), set by the all-to-all engines around their send
    /// rounds via [`algo_scope`](SpanRecorder::algo_scope).
    current_algo: AtomicU8,
    /// Always-on phase entry counters (phase name → entries), published
    /// into the metrics snapshot so recovery/revoke/shrink occurrences
    /// are visible without span recording. Entered phases are not hot
    /// (a handful per timestep), so an uncontended mutex is fine here.
    phase_counts: Mutex<BTreeMap<&'static str, u64>>,
}

// SAFETY: see "Single-writer protocol" above — slot writes never race
// with each other (one writing thread) and reads happen only after a
// join (happens-before) or on the writing thread.
unsafe impl Sync for SpanRecorder {}

impl SpanRecorder {
    /// An enabled recorder with `capacity` preallocated slots.
    /// `capacity == 0` yields a disabled recorder.
    pub fn new(capacity: usize, epoch: Instant) -> Self {
        let slots: Vec<UnsafeCell<Span>> =
            (0..capacity).map(|_| UnsafeCell::new(Span::default())).collect();
        SpanRecorder {
            epoch,
            slots: slots.into_boxed_slice(),
            pushed: AtomicU64::new(0),
            phase_stack: UnsafeCell::new(Vec::with_capacity(8)),
            current_algo: AtomicU8::new(algos::NONE),
            phase_counts: Mutex::new(BTreeMap::new()),
        }
    }

    /// A recorder that records nothing and costs one branch per call.
    /// This is what every world uses unless profiling is requested.
    pub fn disabled() -> Self {
        SpanRecorder::new(0, Instant::now())
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Nanoseconds since the shared epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Start a span. Returns a [`Ticket`] to hand back to
    /// [`end`](SpanRecorder::end). When disabled this reads one bool
    /// and touches neither the clock nor the buffer.
    #[inline]
    pub fn begin(&self) -> Ticket {
        if self.slots.is_empty() {
            return Ticket(DISABLED);
        }
        Ticket(self.now_ns())
    }

    /// Finish a span started with [`begin`](SpanRecorder::begin).
    #[inline]
    pub fn end(&self, ticket: Ticket, kind: SpanKind, peer: i64, tag: u64, bytes: u64) {
        self.end_full(ticket, kind, peer, tag, bytes, algos::NONE);
    }

    /// [`end`](SpanRecorder::end) with an algorithm code attached.
    #[inline]
    fn end_full(&self, ticket: Ticket, kind: SpanKind, peer: i64, tag: u64, bytes: u64, algo: u8) {
        if ticket.0 == DISABLED {
            return;
        }
        let end_ns = self.now_ns();
        self.push(Span {
            kind,
            peer,
            tag,
            bytes,
            algo,
            start_ns: ticket.0,
            end_ns,
        });
    }

    /// Record a zero-duration marker (e.g. an `irecv` post).
    #[inline]
    pub fn instant(&self, kind: SpanKind, peer: i64, tag: u64, bytes: u64) {
        if let SpanKind::Phase(name) = kind {
            // Instant phase markers (revoke, shrink, fault injections)
            // count as phase entries even when span recording is off.
            self.count_phase(name);
        }
        if self.slots.is_empty() {
            return;
        }
        let now = self.now_ns();
        self.push(Span {
            kind,
            peer,
            tag,
            bytes,
            algo: algos::NONE,
            start_ns: now,
            end_ns: now,
        });
    }

    /// RAII guard recording a named phase span over its lifetime.
    ///
    /// Also pushes `name` onto the always-on phase stack (popped when
    /// the guard drops) and bumps the phase entry counter, so the comm
    /// matrix and metrics snapshot see phases even when span recording
    /// is disabled.
    #[inline]
    pub fn phase(&self, name: &'static str) -> PhaseGuard<'_> {
        self.count_phase(name);
        // SAFETY: single-writer protocol — only the owning rank thread
        // touches the phase stack (see the field docs).
        unsafe {
            (*self.phase_stack.get()).push(name);
        }
        PhaseGuard {
            rec: self,
            start: self.begin(),
            name,
        }
    }

    /// The innermost currently open phase, or `""` outside any phase.
    /// Must be called from the owning rank thread.
    #[inline]
    pub fn current_phase(&self) -> &'static str {
        // SAFETY: single-writer protocol — caller is the owning thread.
        unsafe { (*self.phase_stack.get()).last().copied().unwrap_or("") }
    }

    /// The collective-algorithm code currently in force (see
    /// [`algos`]); [`algos::NONE`] outside any algorithm scope.
    #[inline]
    pub fn current_algo(&self) -> u8 {
        self.current_algo.load(Ordering::Relaxed)
    }

    /// RAII scope stamping `code` as the current collective algorithm;
    /// the previous code is restored on drop. The all-to-all engines
    /// wrap their send rounds in this so matrix traffic is attributed
    /// per algorithm.
    #[inline]
    pub fn algo_scope(&self, code: u8) -> AlgoScope<'_> {
        let prev = self.current_algo.swap(code, Ordering::Relaxed);
        AlgoScope { rec: self, prev }
    }

    #[inline]
    fn count_phase(&self, name: &'static str) {
        let mut m = self.phase_counts.lock().unwrap_or_else(|p| p.into_inner());
        *m.entry(name).or_insert(0) += 1;
    }

    /// Phase entry counts (phase name → times entered), always on.
    /// Safe to call from any thread.
    pub fn phase_counts(&self) -> Vec<(&'static str, u64)> {
        let m = self.phase_counts.lock().unwrap_or_else(|p| p.into_inner());
        m.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// RAII guard recording a communication-op span over its lifetime.
    /// Peer/tag/bytes can be filled in before the guard drops.
    #[inline]
    pub fn op(&self, op: CommOp) -> OpGuard<'_> {
        OpGuard {
            rec: self,
            start: self.begin(),
            op,
            peer: -1,
            tag: 0,
            bytes: 0,
            algo: algos::NONE,
        }
    }

    #[inline]
    fn push(&self, span: Span) {
        let cap = self.slots.len() as u64;
        let n = self.pushed.load(Ordering::Relaxed);
        // SAFETY: single-writer protocol (see type docs) — no other
        // thread writes this slot, and readers synchronize via the
        // release store below or via thread join.
        unsafe {
            *self.slots[(n % cap) as usize].get() = span;
        }
        self.pushed.store(n + 1, Ordering::Release);
    }

    /// Spans pushed over the recorder's lifetime (including dropped).
    pub fn total_pushed(&self) -> u64 {
        self.pushed.load(Ordering::Acquire)
    }

    /// Spans lost to ring wrap-around (drop-oldest overflow gauge).
    pub fn dropped_spans(&self) -> u64 {
        self.total_pushed().saturating_sub(self.slots.len() as u64)
    }

    /// Spans currently held in the ring.
    pub fn len(&self) -> usize {
        self.total_pushed().min(self.slots.len() as u64) as usize
    }

    /// Whether no spans have been recorded (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out the retained spans in chronological (record) order,
    /// plus the dropped-span count.
    ///
    /// Call only after the writing rank thread has finished, or from
    /// that thread — see the single-writer protocol in the type docs.
    pub fn snapshot(&self) -> (Vec<Span>, u64) {
        let pushed = self.pushed.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        if cap == 0 || pushed == 0 {
            return (Vec::new(), 0);
        }
        let kept = pushed.min(cap);
        let first = if pushed > cap { pushed % cap } else { 0 };
        let mut out = Vec::with_capacity(kept as usize);
        for i in 0..kept {
            let idx = ((first + i) % cap) as usize;
            // SAFETY: the writer has finished (caller contract), so the
            // slot is not being concurrently written.
            out.push(unsafe { *self.slots[idx].get() });
        }
        (out, pushed - kept)
    }
}

/// Records a phase span when dropped. See [`SpanRecorder::phase`].
pub struct PhaseGuard<'a> {
    rec: &'a SpanRecorder,
    start: Ticket,
    name: &'static str,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        // SAFETY: single-writer protocol — guards live on the owning
        // rank thread and drop LIFO, mirroring the pushes in `phase`.
        unsafe {
            (*self.rec.phase_stack.get()).pop();
        }
        self.rec
            .end(self.start, SpanKind::Phase(self.name), -1, 0, 0);
    }
}

/// Restores the previous collective-algorithm code when dropped. See
/// [`SpanRecorder::algo_scope`].
pub struct AlgoScope<'a> {
    rec: &'a SpanRecorder,
    prev: u8,
}

impl Drop for AlgoScope<'_> {
    fn drop(&mut self) {
        self.rec.current_algo.store(self.prev, Ordering::Relaxed);
    }
}

/// Records a comm-op span when dropped. See [`SpanRecorder::op`].
pub struct OpGuard<'a> {
    rec: &'a SpanRecorder,
    start: Ticket,
    op: CommOp,
    peer: i64,
    tag: u64,
    bytes: u64,
    algo: u8,
}

impl OpGuard<'_> {
    /// Set the peer rank recorded with the span.
    #[inline]
    pub fn peer(&mut self, peer: usize) {
        self.peer = if peer == usize::MAX { -1 } else { peer as i64 };
    }

    /// Set the matching tag recorded with the span.
    #[inline]
    pub fn tag(&mut self, tag: u64) {
        self.tag = tag;
    }

    /// Set (or accumulate onto) the byte count recorded with the span.
    #[inline]
    pub fn bytes(&mut self, bytes: u64) {
        self.bytes = bytes;
    }

    /// Add to the byte count (for batched waits).
    #[inline]
    pub fn add_bytes(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Set the collective-algorithm code (see [`crate::span::algos`])
    /// recorded with the span.
    #[inline]
    pub fn algo(&mut self, code: u8) {
        self.algo = code;
    }
}

impl Drop for OpGuard<'_> {
    fn drop(&mut self) {
        self.rec.end_full(
            self.start,
            SpanKind::Op(self.op),
            self.peer,
            self.tag,
            self.bytes,
            self.algo,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_metadata() {
        let rec = SpanRecorder::new(16, Instant::now());
        assert!(rec.is_enabled());
        let t = rec.begin();
        rec.end(t, SpanKind::Op(CommOp::Send), 3, 7, 64);
        rec.instant(SpanKind::Op(CommOp::Irecv), 1, 9, 0);
        {
            let _g = rec.phase("halo");
        }
        let (spans, dropped) = rec.snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].kind, SpanKind::Op(CommOp::Send));
        assert_eq!((spans[0].peer, spans[0].tag, spans[0].bytes), (3, 7, 64));
        assert_eq!(spans[1].dur_ns(), 0);
        assert_eq!(spans[2].kind, SpanKind::Phase("halo"));
        // Chronological: start times never decrease.
        assert!(spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let rec = SpanRecorder::new(4, Instant::now());
        for i in 0..10u64 {
            rec.instant(SpanKind::Op(CommOp::Send), 0, i, i);
        }
        assert_eq!(rec.total_pushed(), 10);
        assert_eq!(rec.dropped_spans(), 6);
        assert_eq!(rec.len(), 4);
        let (spans, dropped) = rec.snapshot();
        assert_eq!(dropped, 6);
        // The four *newest* spans survive, oldest-first.
        let tags: Vec<u64> = spans.iter().map(|s| s.tag).collect();
        assert_eq!(tags, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = SpanRecorder::disabled();
        assert!(!rec.is_enabled());
        let t = rec.begin();
        rec.end(t, SpanKind::Op(CommOp::Recv), 0, 0, 8);
        rec.instant(SpanKind::Op(CommOp::Irecv), 0, 0, 0);
        {
            let mut g = rec.op(CommOp::Allreduce);
            g.bytes(128);
            let _p = rec.phase("step");
        }
        assert_eq!(rec.total_pushed(), 0);
        assert_eq!(rec.dropped_spans(), 0);
        let (spans, dropped) = rec.snapshot();
        assert!(spans.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn op_guard_records_peer_tag_bytes() {
        let rec = SpanRecorder::new(8, Instant::now());
        {
            let mut g = rec.op(CommOp::Alltoallv);
            g.peer(2);
            g.tag(5);
            g.bytes(100);
            g.add_bytes(28);
        }
        {
            let mut g = rec.op(CommOp::Recv);
            g.peer(usize::MAX); // ANY_SOURCE maps to -1
        }
        let (spans, _) = rec.snapshot();
        assert_eq!(spans[0].kind, SpanKind::Op(CommOp::Alltoallv));
        assert_eq!((spans[0].peer, spans[0].tag, spans[0].bytes), (2, 5, 128));
        assert_eq!(spans[1].peer, -1);
    }

    #[test]
    fn phase_context_tracks_even_when_disabled() {
        let rec = SpanRecorder::disabled();
        assert_eq!(rec.current_phase(), "");
        {
            let _step = rec.phase("step");
            assert_eq!(rec.current_phase(), "step");
            {
                let _halo = rec.phase("halo");
                assert_eq!(rec.current_phase(), "halo");
            }
            assert_eq!(rec.current_phase(), "step");
            let _halo2 = rec.phase("halo");
        }
        assert_eq!(rec.current_phase(), "");
        rec.instant(SpanKind::Phase("revoke"), -1, 0, 0);
        assert_eq!(rec.total_pushed(), 0, "disabled ring stays empty");
        let counts: std::collections::BTreeMap<_, _> =
            rec.phase_counts().into_iter().collect();
        assert_eq!(counts.get("step"), Some(&1));
        assert_eq!(counts.get("halo"), Some(&2));
        assert_eq!(counts.get("revoke"), Some(&1));
    }

    #[test]
    fn algo_scope_nests_and_restores() {
        let rec = SpanRecorder::disabled();
        assert_eq!(rec.current_algo(), algos::NONE);
        {
            let _a = rec.algo_scope(algos::BRUCK);
            assert_eq!(rec.current_algo(), algos::BRUCK);
            {
                let _b = rec.algo_scope(algos::PAIRWISE);
                assert_eq!(rec.current_algo(), algos::PAIRWISE);
            }
            assert_eq!(rec.current_algo(), algos::BRUCK);
        }
        assert_eq!(rec.current_algo(), algos::NONE);
    }

    #[test]
    fn op_guard_records_algorithm_code() {
        let rec = SpanRecorder::new(8, Instant::now());
        {
            let mut g = rec.op(CommOp::Alltoall);
            g.algo(algos::BRUCK);
        }
        {
            let _g = rec.op(CommOp::Barrier);
        }
        let (spans, _) = rec.snapshot();
        assert_eq!(spans[0].algo, algos::BRUCK);
        assert_eq!(spans[1].algo, algos::NONE);
    }
}
