//! Finite-difference stencils over [`Field`]s.
//!
//! Beatnik's geometry kernels (tangents, normals, Laplacians of position
//! and vorticity) use "two-node-deep stencils" (paper §3.1): 4th-order
//! central differences for first derivatives and a 9-point Laplacian.
//! All operators here read only within the width-2 halo frame.

use crate::field::Field;

/// 2nd-order central first derivative along columns (x / α₁).
#[inline]
pub fn ddx2(f: &Field, r: usize, c: usize, k: usize, dx: f64) -> f64 {
    (f.get(r, c + 1, k) - f.get(r, c - 1, k)) / (2.0 * dx)
}

/// 2nd-order central first derivative along rows (y / α₂).
#[inline]
pub fn ddy2(f: &Field, r: usize, c: usize, k: usize, dy: f64) -> f64 {
    (f.get(r + 1, c, k) - f.get(r - 1, c, k)) / (2.0 * dy)
}

/// 4th-order central first derivative along columns (needs halo ≥ 2).
#[inline]
pub fn ddx4(f: &Field, r: usize, c: usize, k: usize, dx: f64) -> f64 {
    (-f.get(r, c + 2, k) + 8.0 * f.get(r, c + 1, k) - 8.0 * f.get(r, c - 1, k)
        + f.get(r, c - 2, k))
        / (12.0 * dx)
}

/// 4th-order central first derivative along rows (needs halo ≥ 2).
#[inline]
pub fn ddy4(f: &Field, r: usize, c: usize, k: usize, dy: f64) -> f64 {
    (-f.get(r + 2, c, k) + 8.0 * f.get(r + 1, c, k) - 8.0 * f.get(r - 1, c, k)
        + f.get(r - 2, c, k))
        / (12.0 * dy)
}

/// 5-point Laplacian (2nd order, anisotropic-safe).
#[inline]
pub fn laplacian5(f: &Field, r: usize, c: usize, k: usize, dy: f64, dx: f64) -> f64 {
    let center = f.get(r, c, k);
    (f.get(r, c + 1, k) - 2.0 * center + f.get(r, c - 1, k)) / (dx * dx)
        + (f.get(r + 1, c, k) - 2.0 * center + f.get(r - 1, c, k)) / (dy * dy)
}

/// 9-point Laplacian (2nd order with smaller leading error constant;
/// requires `dx == dy`). This is the stencil Beatnik applies to position
/// and vorticity for its artificial-viscosity terms.
#[inline]
pub fn laplacian9(f: &Field, r: usize, c: usize, k: usize, h: f64) -> f64 {
    let edge = f.get(r, c + 1, k) + f.get(r, c - 1, k) + f.get(r + 1, c, k) + f.get(r - 1, c, k);
    let corner = f.get(r + 1, c + 1, k)
        + f.get(r + 1, c - 1, k)
        + f.get(r - 1, c + 1, k)
        + f.get(r - 1, c - 1, k);
    (4.0 * edge + corner - 20.0 * f.get(r, c, k)) / (6.0 * h * h)
}

/// Dispatching Laplacian: 9-point when the spacing is isotropic,
/// 5-point otherwise.
#[inline]
pub fn laplacian(f: &Field, r: usize, c: usize, k: usize, dy: f64, dx: f64) -> f64 {
    if (dx - dy).abs() < 1e-14 * dx.abs().max(dy.abs()) {
        laplacian9(f, r, c, k, dx)
    } else {
        laplacian5(f, r, c, k, dy, dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Field;

    /// Build a (rows x cols) single-component field sampling `g` at
    /// spacing `h`, covering indices as coordinates directly.
    fn sample(rows: usize, cols: usize, h: f64, g: impl Fn(f64, f64) -> f64) -> Field {
        let mut f = Field::zeros(rows, cols, 1);
        for r in 0..rows {
            for c in 0..cols {
                f.set(r, c, 0, g(r as f64 * h, c as f64 * h));
            }
        }
        f
    }

    #[test]
    fn first_derivatives_exact_for_cubics() {
        // 4th-order stencils differentiate cubics exactly.
        let h = 0.1;
        let f = sample(8, 8, h, |y, x| x * x * x - 2.0 * y * y * y + x * y);
        let (r, c) = (4, 4);
        let (y, x) = (r as f64 * h, c as f64 * h);
        let dx_want = 3.0 * x * x + y;
        let dy_want = -6.0 * y * y + x;
        assert!((ddx4(&f, r, c, 0, h) - dx_want).abs() < 1e-10);
        assert!((ddy4(&f, r, c, 0, h) - dy_want).abs() < 1e-10);
        // 2nd-order stencils are exact for quadratics only.
        let q = sample(8, 8, h, |y, x| x * x + 3.0 * y);
        assert!((ddx2(&q, r, c, 0, h) - 2.0 * x).abs() < 1e-10);
        assert!((ddy2(&q, r, c, 0, h) - 3.0).abs() < 1e-10);
    }

    #[test]
    fn laplacians_exact_for_quadratics() {
        let h = 0.05;
        let f = sample(10, 10, h, |y, x| 2.0 * x * x + 3.0 * y * y - x * y);
        let want = 2.0 * 2.0 + 2.0 * 3.0;
        assert!((laplacian5(&f, 5, 5, 0, h, h) - want).abs() < 1e-8);
        assert!((laplacian9(&f, 5, 5, 0, h) - want).abs() < 1e-8);
        assert!((laplacian(&f, 5, 5, 0, h, h) - want).abs() < 1e-8);
    }

    #[test]
    fn convergence_order_of_ddx() {
        // Halving h must reduce the ddx4 error ~16x and ddx2 error ~4x.
        let g = |_y: f64, x: f64| (2.0 * x).sin();
        let err = |h: f64, order4: bool| {
            let f = sample(4, 64, h, g);
            let c = 16; // interior
            let x = c as f64 * h;
            let want = 2.0 * (2.0 * x).cos();
            let got = if order4 {
                ddx4(&f, 2, c, 0, h)
            } else {
                ddx2(&f, 2, c, 0, h)
            };
            (got - want).abs()
        };
        let (h1, h2) = (0.02, 0.01);
        let r4 = err(h1, true) / err(h2, true);
        let r2 = err(h1, false) / err(h2, false);
        assert!(r4 > 12.0 && r4 < 20.0, "4th-order ratio {r4}");
        assert!(r2 > 3.2 && r2 < 4.8, "2nd-order ratio {r2}");
    }

    #[test]
    fn anisotropic_laplacian_dispatch() {
        let f = sample(8, 8, 0.1, |y, x| x * x + y * y);
        // dy != dx routes to the 5-point form; with coordinates scaled by
        // the same h in both directions the test uses matching spacings
        // for correctness, different ones for dispatch.
        let iso = laplacian(&f, 4, 4, 0, 0.1, 0.1);
        assert!((iso - 4.0).abs() < 1e-8);
    }

    #[test]
    fn laplacian_of_linear_field_is_zero() {
        let f = sample(8, 8, 0.1, |y, x| 3.0 * x - 7.0 * y + 2.0);
        assert!(laplacian9(&f, 4, 4, 0, 0.1).abs() < 1e-10);
        assert!(laplacian5(&f, 4, 4, 0, 0.1, 0.1).abs() < 1e-10);
    }
}
