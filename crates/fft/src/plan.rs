//! Planned 1D FFTs.
//!
//! [`Fft::new`] builds a reusable plan: for power-of-two sizes an
//! iterative radix-2 Cooley–Tukey transform with a precomputed
//! bit-reversal permutation and per-size twiddle table; for all other
//! sizes Bluestein's chirp-z algorithm (see [`crate::bluestein`]), which
//! itself reuses a radix-2 plan of the padded size.

use crate::bluestein::Bluestein;
use crate::complex::Complex;

/// A reusable plan for forward/inverse transforms of one length.
pub struct Fft {
    n: usize,
    kind: Kind,
}

enum Kind {
    /// Degenerate lengths 0 and 1 (transform is the identity).
    Identity,
    Radix2(Radix2),
    Bluestein(Box<Bluestein>),
}

impl Fft {
    /// Plan a transform of length `n` (any `n`, including 0 and 1).
    pub fn new(n: usize) -> Self {
        let kind = if n <= 1 {
            Kind::Identity
        } else if n.is_power_of_two() {
            Kind::Radix2(Radix2::new(n))
        } else {
            Kind::Bluestein(Box::new(Bluestein::new(n)))
        };
        Fft { n, kind }
    }

    /// Transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the planned length is zero.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward transform (negative exponent, unnormalized).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "fft: buffer length mismatch");
        match &self.kind {
            Kind::Identity => {}
            Kind::Radix2(r) => r.transform(data, Direction::Forward),
            Kind::Bluestein(b) => b.forward(data),
        }
    }

    /// In-place inverse transform (positive exponent, scaled by `1/n`).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn inverse(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "fft: buffer length mismatch");
        match &self.kind {
            Kind::Identity => {}
            Kind::Radix2(r) => {
                r.transform(data, Direction::Inverse);
                let s = 1.0 / self.n as f64;
                for v in data.iter_mut() {
                    *v = v.scale(s);
                }
            }
            Kind::Bluestein(b) => b.inverse(data),
        }
    }

    /// In-place inverse without the `1/n` normalization (used by
    /// distributed transforms that normalize once at the end).
    pub fn inverse_unnormalized(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "fft: buffer length mismatch");
        match &self.kind {
            Kind::Identity => {}
            Kind::Radix2(r) => r.transform(data, Direction::Inverse),
            Kind::Bluestein(b) => {
                b.inverse(data);
                let s = self.n as f64;
                for v in data.iter_mut() {
                    *v = v.scale(s);
                }
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Forward,
    Inverse,
}

/// Iterative radix-2 Cooley–Tukey with cached twiddles.
struct Radix2 {
    n: usize,
    /// Bit-reversal permutation targets: `rev[i]` is `i` with log2(n) bits
    /// reversed.
    rev: Vec<u32>,
    /// Forward twiddles `e^{-2πi k/n}` for `k < n/2`; stage `s` uses the
    /// stride-`n/2s`-spaced subset, so one table serves all stages.
    twiddles: Vec<Complex>,
}

impl Radix2 {
    fn new(n: usize) -> Self {
        debug_assert!(n.is_power_of_two() && n >= 2);
        let bits = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for (i, r) in rev.iter_mut().enumerate() {
            *r = (i as u32).reverse_bits() >> (32 - bits);
        }
        let half = n / 2;
        let twiddles = (0..half)
            .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        Radix2 { n, rev, twiddles }
    }

    fn transform(&self, data: &mut [Complex], dir: Direction) {
        let n = self.n;
        // Bit-reversal permutation (swap once per pair).
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterfly stages: width doubles each stage.
        let mut width = 2usize;
        while width <= n {
            let half = width / 2;
            let stride = n / width; // twiddle table stride for this stage
            for start in (0..n).step_by(width) {
                for k in 0..half {
                    let w = self.twiddles[k * stride];
                    let w = match dir {
                        Direction::Forward => w,
                        Direction::Inverse => w.conj(),
                    };
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            width *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft_naive, idft_naive};

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64).sin() + 0.3, (i as f64 * 0.7).cos()))
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn radix2_matches_naive_dft() {
        for n in [2usize, 4, 8, 16, 64, 256] {
            let x = ramp(n);
            let mut fast = x.clone();
            Fft::new(n).forward(&mut fast);
            let slow = dft_naive(&x);
            assert_close(&fast, &slow, 1e-9 * n as f64);
        }
    }

    #[test]
    fn bluestein_sizes_match_naive_dft() {
        for n in [3usize, 5, 6, 7, 12, 15, 100] {
            let x = ramp(n);
            let mut fast = x.clone();
            Fft::new(n).forward(&mut fast);
            let slow = dft_naive(&x);
            assert_close(&fast, &slow, 1e-8 * n as f64);
        }
    }

    #[test]
    fn forward_inverse_roundtrip_all_sizes() {
        for n in [1usize, 2, 3, 4, 5, 8, 12, 17, 32, 100, 128] {
            let x = ramp(n);
            let mut buf = x.clone();
            let plan = Fft::new(n);
            plan.forward(&mut buf);
            plan.inverse(&mut buf);
            assert_close(&buf, &x, 1e-10 * (n.max(1)) as f64);
        }
    }

    #[test]
    fn inverse_matches_naive_idft() {
        for n in [8usize, 12] {
            let x = ramp(n);
            let mut fast = x.clone();
            Fft::new(n).inverse(&mut fast);
            let slow = idft_naive(&x);
            assert_close(&fast, &slow, 1e-10 * n as f64);
        }
    }

    #[test]
    fn unnormalized_inverse_differs_by_n() {
        let n = 16;
        let x = ramp(n);
        let plan = Fft::new(n);
        let mut a = x.clone();
        plan.inverse(&mut a);
        let mut b = x;
        plan.inverse_unnormalized(&mut b);
        for (u, v) in a.iter().zip(&b) {
            assert!((u.scale(n as f64) - *v).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 64;
        let x = ramp(n);
        let mut spec = x.clone();
        Fft::new(n).forward(&mut spec);
        let e_time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((e_time - e_freq).abs() < 1e-9 * e_time);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a = ramp(n);
        let b: Vec<Complex> = ramp(n).iter().map(|z| z.conj()).collect();
        let plan = Fft::new(n);
        let mut fa = a.clone();
        plan.forward(&mut fa);
        let mut fb = b.clone();
        plan.forward(&mut fb);
        let mut fab: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + y.scale(2.0)).collect();
        plan.forward(&mut fab);
        for i in 0..n {
            assert!((fab[i] - (fa[i] + fb[i].scale(2.0))).abs() < 1e-9);
        }
    }

    #[test]
    fn length_zero_and_one_are_identity() {
        let plan0 = Fft::new(0);
        let mut empty: Vec<Complex> = vec![];
        plan0.forward(&mut empty);
        assert!(plan0.is_empty());
        let plan1 = Fft::new(1);
        let mut one = vec![Complex::new(3.0, -2.0)];
        plan1.forward(&mut one);
        plan1.inverse(&mut one);
        assert_eq!(one[0], Complex::new(3.0, -2.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_buffer_length_panics() {
        let plan = Fft::new(8);
        let mut buf = vec![Complex::default(); 7];
        plan.forward(&mut buf);
    }

    #[test]
    fn time_shift_theorem() {
        // Shifting input rotates phases: X_shifted[k] = X[k] e^{-2πik s/n}.
        let n = 32;
        let s = 5usize;
        let x = ramp(n);
        let shifted: Vec<Complex> = (0..n).map(|i| x[(i + s) % n]).collect();
        let plan = Fft::new(n);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fs = shifted;
        plan.forward(&mut fs);
        for k in 0..n {
            let rot = Complex::cis(2.0 * std::f64::consts::PI * (k * s) as f64 / n as f64);
            assert!((fs[k] - fx[k] * rot).abs() < 1e-8);
        }
    }
}
