//! Property-based tests of the spatial search structures.

use beatnik_spatial::neighbors::{brute_force_neighbors, Backend, NeighborList};
use beatnik_spatial::{dist2, Aabb, BhTree};
use proptest::prelude::*;

fn points(max_n: usize) -> impl Strategy<Value = Vec<[f64; 3]>> {
    prop::collection::vec(
        (-10.0f64..10.0, -10.0f64..10.0, -2.0f64..2.0).prop_map(|(x, y, z)| [x, y, z]),
        0..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn both_backends_equal_brute_force(
        pts in points(60),
        radius in 0.05f64..5.0,
    ) {
        let want = brute_force_neighbors(&pts, &pts, radius);
        for backend in [Backend::Grid, Backend::KdTree] {
            let got = NeighborList::build(&pts, &pts, radius, backend);
            prop_assert_eq!(&got, &want);
        }
    }

    #[test]
    fn aabb_contains_its_points(pts in points(50)) {
        prop_assume!(!pts.is_empty());
        let b = Aabb::bounding(&pts).unwrap();
        for p in &pts {
            prop_assert!(b.contains(*p));
            prop_assert_eq!(b.dist2_to(*p), 0.0);
        }
        // Expanding never loses containment.
        let e = b.expanded(1.5);
        for p in &pts {
            prop_assert!(e.contains(*p));
        }
    }

    #[test]
    fn bhtree_theta_zero_is_exact_summation(pts in points(80)) {
        let strengths: Vec<[f64; 3]> = pts
            .iter()
            .map(|p| [p[1] * 0.1, -p[0] * 0.1, 0.05])
            .collect();
        let tree = BhTree::build(pts.clone(), strengths.clone());
        let kernel = |t: [f64; 3], p: [f64; 3], s: [f64; 3]| -> [f64; 3] {
            let r2 = dist2(t, p) + 0.01;
            let inv = 1.0 / (r2 * r2.sqrt());
            [s[0] * inv, s[1] * inv, s[2] * inv]
        };
        let target = [0.3, -0.2, 0.1];
        let got = tree.evaluate(target, 0.0, &kernel);
        let mut want = [0.0f64; 3];
        for (p, s) in pts.iter().zip(&strengths) {
            let u = kernel(target, *p, *s);
            want[0] += u[0];
            want[1] += u[1];
            want[2] += u[2];
        }
        for k in 0..3 {
            prop_assert!((got[k] - want[k]).abs() < 1e-9 * (1.0 + want[k].abs()));
        }
    }

    #[test]
    fn bhtree_interaction_count_monotone_in_theta(pts in points(120)) {
        prop_assume!(pts.len() >= 20);
        let strengths = vec![[0.1, 0.0, 0.0]; pts.len()];
        let tree = BhTree::build(pts.clone(), strengths);
        let t = pts[0];
        let exact = tree.interaction_count(t, 0.0);
        let mid = tree.interaction_count(t, 0.5);
        let coarse = tree.interaction_count(t, 1.5);
        prop_assert_eq!(exact, pts.len());
        prop_assert!(mid <= exact);
        prop_assert!(coarse <= mid);
    }
}
