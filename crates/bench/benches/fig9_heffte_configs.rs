//! Figure 9: total runtime when weak-scaling all eight heFFTe
//! configurations of Table 1 (low-order solver, 4 → 1024 GPUs).
//!
//! Paper result: "on small numbers of processes, heFFTe performance is
//! better when using its custom communication routines and not using
//! Spectrum MPI's MPI_Alltoall primitive. In contrast, on large numbers
//! of processes, heFFTe performance improves if the AllToAll parameter
//! is true."

use beatnik_bench::{fig9_matrix, paper_rank_sweep};
use beatnik_model::Machine;

fn main() {
    let matrix = fig9_matrix(&Machine::lassen());
    let sweep = paper_rank_sweep();

    println!("=== Figure 9: heFFTe Configurations, Weak Scaling (s/step, Lassen model) ===\n");
    print!("{:>6}", "ranks");
    for (cfg, _) in &matrix {
        print!(" {:>9}", format!("cfg{}", cfg.index()));
    }
    println!();
    for &p in &sweep {
        print!("{p:>6}");
        for (_, series) in &matrix {
            print!(" {:>9.3}", series.time_at(p).unwrap());
        }
        println!();
    }

    println!("\nbest configuration per rank count:");
    for &p in &sweep {
        let (best_cfg, best_t) = matrix
            .iter()
            .map(|(c, s)| (c, s.time_at(p).unwrap()))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        println!("  {p:>5} ranks: {} ({best_t:.3} s/step)", best_cfg);
    }

    // The paper's headline comparison: AllToAll on vs off, other knobs at
    // heFFTe defaults (pencils+reorder): configs 3 vs 7.
    let custom = &matrix[3].1;
    let alltoall = &matrix[7].1;
    println!("\nAllToAll=false (cfg3) vs AllToAll=true (cfg7):");
    for &p in &sweep {
        let (c, a) = (custom.time_at(p).unwrap(), alltoall.time_at(p).unwrap());
        let winner = if c < a { "custom p2p" } else { "MPI_Alltoall" };
        println!("  {p:>5} ranks: custom {c:>8.3}  alltoall {a:>8.3}  -> {winner}");
    }
    println!("\nshape check: custom exchange wins at small scale, MPI_Alltoall at large scale (paper Fig. 9).");
}
